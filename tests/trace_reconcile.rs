//! The two-instrument contract, end to end: the event tracer, the µPC
//! histogram board, and the hardware counters watch the same run and
//! must tell exactly the same story — for any workload, any length.
//!
//! Also the zero-cost side of the bargain: with the tracer detached
//! (the default `CycleSink` trace hooks), a run is cycle-for-cycle and
//! counter-for-counter identical to an unmonitored one.

use proptest::prelude::*;
use upc_monitor::{Command, CycleSink, HistogramBoard, NullSink};
use vax_mem::HwCounters;
use vax_trace::Tracer;
use vax_workloads::{build_machine, profile, Machine, ProfileParams, WorkloadKind};

/// A scaled-down profile so property cases run in milliseconds.
fn small_profile(kind: WorkloadKind, seed_salt: u64) -> ProfileParams {
    let base = profile(kind);
    ProfileParams {
        processes: 3,
        functions_per_process: 8,
        slots_per_function: 20,
        scalar_bytes: 16 * 1024,
        terminal_users: 4,
        seed: base.seed ^ seed_salt,
        ..base
    }
}

struct TracedRun {
    tracer: Tracer,
    histogram: upc_monitor::Histogram,
    hw: HwCounters,
    pending_ib_tb_miss: bool,
    instructions: u64,
}

/// Boot a machine with the board+tracer tee attached from the first
/// cycle and run `instructions`; both instruments see every event.
fn traced_run(params: &ProfileParams, instructions: u64) -> TracedRun {
    let mut machine = build_machine(params);
    let hw_base = *machine.cpu.mem().counters();
    let instr_base = machine.cpu.instructions();
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    let mut tracer = Tracer::new();
    {
        let mut tee = (&mut board, &mut tracer);
        machine
            .run_phase("measure", instructions, &mut tee)
            .expect("workload runs");
    }
    TracedRun {
        tracer,
        histogram: board.snapshot(),
        hw: machine.cpu.mem().counters().delta_since(&hw_base),
        pending_ib_tb_miss: machine.cpu.pending_ib_tb_miss(),
        instructions: machine.cpu.instructions() - instr_base,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random workloads and lengths, every aggregate the trace
    /// derives must equal — exactly, not approximately — what the
    /// histogram board and the hardware counters measured.
    #[test]
    fn instruments_reconcile_exactly(
        kind in prop::sample::select(vec![
            WorkloadKind::TimesharingLight,
            WorkloadKind::Educational,
            WorkloadKind::SciEng,
        ]),
        instructions in 2_000u64..5_000,
        salt in 0u64..1_000,
    ) {
        let params = small_profile(kind, salt);
        let run = traced_run(&params, instructions);
        let r = vax_analysis::reconcile::reconcile(
            &run.tracer,
            &run.histogram,
            &run.hw,
            run.pending_ib_tb_miss,
        );
        prop_assert!(r.is_ok(), "{r}");
        // The derived clock is the histogram's cycle total.
        prop_assert_eq!(run.tracer.now(), run.histogram.total_cycles());
        // One Retire event per retired instruction.
        prop_assert_eq!(run.tracer.counters().retires, run.instructions);
        prop_assert_eq!(run.tracer.counters().decodes, run.tracer.counters().retires);
        // Nothing dropped at these sizes, so replay must agree too.
        prop_assert_eq!(run.tracer.dropped(), 0);
        prop_assert_eq!(&run.tracer.replay(), run.tracer.counters());
    }
}

fn run_machine<S: CycleSink>(params: &ProfileParams, n: u64, sink: &mut S) -> Machine {
    let mut machine = build_machine(params);
    machine.run_instructions(n, sink).expect("workload runs");
    machine
}

/// A sink using only the required methods — the trace hooks stay at
/// their default no-op bodies, exactly like a third-party sink written
/// before the tracing layer existed.
struct MinimalSink {
    issues: u64,
    stalls: u64,
}

impl CycleSink for MinimalSink {
    fn record_issue(&mut self, _addr: vax_ucode::MicroAddr) {
        self.issues += 1;
    }
    fn record_stall(&mut self, _addr: vax_ucode::MicroAddr, cycles: u32) {
        self.stalls += u64::from(cycles);
    }
}

/// Detached tracing is free: the machine's behaviour — cycles, PC,
/// retired instructions, every hardware counter — is bit-identical
/// whether it runs unmonitored, under the board, under a trace-less
/// minimal sink, or under the full board+tracer tee. The sinks observe;
/// they never steer.
#[test]
fn detached_tracing_does_not_perturb_the_machine() {
    let params = small_profile(WorkloadKind::TimesharingLight, 7);
    const N: u64 = 8_000;

    let baseline = run_machine(&params, N, &mut NullSink);
    let fingerprint = |m: &Machine| {
        (
            m.cpu.now(),
            m.cpu.pc(),
            m.cpu.instructions(),
            *m.cpu.mem().counters(),
        )
    };
    let expect = fingerprint(&baseline);

    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    assert_eq!(fingerprint(&run_machine(&params, N, &mut board)), expect);

    let mut minimal = MinimalSink {
        issues: 0,
        stalls: 0,
    };
    assert_eq!(fingerprint(&run_machine(&params, N, &mut minimal)), expect);
    assert_eq!(minimal.issues + minimal.stalls, expect.0, "clock from feed");

    let mut board2 = HistogramBoard::new();
    board2.execute(Command::Start);
    let mut tracer = Tracer::new();
    let mut tee = (&mut board2, &mut tracer);
    assert_eq!(fingerprint(&run_machine(&params, N, &mut tee)), expect);
    assert!(!tracer.is_empty(), "attached tracer did record");
}

/// A stopped board and a null sink see nothing; only an attached tracer
/// accumulates events. Detachment means literally zero recorded state.
#[test]
fn detached_sinks_record_nothing() {
    let params = small_profile(WorkloadKind::Educational, 11);
    let mut stopped = HistogramBoard::new(); // never started
    let machine = run_machine(&params, 2_000, &mut stopped);
    assert!(machine.cpu.now() > 0);
    assert_eq!(stopped.snapshot().total_cycles(), 0);
}
