//! The host-loop equivalence contract: both accelerated interpreters —
//! the predecode fast loop (`CpuConfig::fast_loop`) and the
//! block-compiled tier on top of it (`CpuConfig::default`) — must be
//! *indistinguishable* from the naive byte-by-byte loop
//! (`CpuConfig::naive_loop`) to everything that observes the simulated
//! machine — µPC histograms, hardware counters, and the full trace
//! event stream — across every workload profile, while faults are
//! being injected, and across a checkpoint/resume boundary (a campaign
//! checkpointed by one loop must resume under any other without a bit
//! of difference).

use upc_monitor::{Command, HistogramBoard};
use vax780_core::{Checkpoint, CompositeStudy, MeasuredWorkload};
use vax_cpu::CpuConfig;
use vax_fault::{FaultClass, FaultEngine, FaultPlan, FiredFault};
use vax_mem::HwCounters;
use vax_trace::{TraceEvent, Tracer};
use vax_workloads::{build_machine_with_config, profile, ProfileParams, WorkloadKind};

/// A scaled-down profile so each case runs in milliseconds (the same
/// shrink as `tests/fault_determinism.rs`).
fn small_profile(kind: WorkloadKind, seed_salt: u64) -> ProfileParams {
    let base = profile(kind);
    ProfileParams {
        processes: 3,
        functions_per_process: 8,
        slots_per_function: 20,
        scalar_bytes: 16 * 1024,
        terminal_users: 4,
        seed: base.seed ^ seed_salt,
        ..base
    }
}

/// Everything one observed run produces.
struct Observed {
    events: Vec<TraceEvent>,
    histogram: upc_monitor::Histogram,
    hw: HwCounters,
    fired: Vec<FiredFault>,
    pending_ib_tb_miss: bool,
    predecode_hits: u64,
    block_replayed: u64,
    reconciled: bool,
}

/// Warm up, optionally install+arm a fault engine at the measurement
/// boundary, and run the measured region under the board+tracer tee.
fn observed_run(
    params: &ProfileParams,
    config: CpuConfig,
    plan: Option<&FaultPlan>,
    warmup: u64,
    measured: u64,
) -> Observed {
    let mut machine = build_machine_with_config(params, config, vax_mem::MemConfig::default());
    let hw_base = *machine.cpu.mem().counters();
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    let mut tracer = Tracer::new();
    {
        let mut tee = (&mut board, &mut tracer);
        machine
            .run_phase("warmup", warmup, &mut tee)
            .expect("warmup runs");
        if let Some(plan) = plan {
            machine
                .cpu
                .mem_mut()
                .set_fault_hook(Box::new(FaultEngine::new(plan)));
            let now = machine.cpu.now();
            machine.cpu.mem_mut().arm_fault_hook(now);
        }
        machine
            .run_phase("measure", measured, &mut tee)
            .expect("measured region runs");
    }
    board.execute(Command::Stop);
    let histogram = board.snapshot();
    let hw = machine.cpu.mem().counters().delta_since(&hw_base);
    let reconciled = vax_analysis::reconcile::reconcile(
        &tracer,
        &histogram,
        &hw,
        machine.cpu.pending_ib_tb_miss(),
    )
    .is_ok();
    Observed {
        events: tracer.events().copied().collect(),
        histogram,
        hw,
        fired: machine.cpu.mem().faults_fired(),
        pending_ib_tb_miss: machine.cpu.pending_ib_tb_miss(),
        predecode_hits: machine.cpu.predecode_stats().hits,
        block_replayed: machine.cpu.block_stats().replayed,
        reconciled,
    }
}

/// Assert every observable of two runs is bit-identical.
fn assert_indistinguishable(name: &str, naive: &Observed, fast: &Observed) {
    assert_eq!(
        naive.histogram, fast.histogram,
        "{name}: histograms differ between loops"
    );
    assert_eq!(
        naive.hw, fast.hw,
        "{name}: hardware counters differ between loops"
    );
    assert_eq!(
        naive.events, fast.events,
        "{name}: trace event streams differ between loops"
    );
    assert_eq!(
        naive.pending_ib_tb_miss, fast.pending_ib_tb_miss,
        "{name}: trailing IB state differs between loops"
    );
    assert!(naive.reconciled, "{name}: naive loop fails reconciliation");
    assert!(fast.reconciled, "{name}: fast loop fails reconciliation");
}

/// Every workload profile, all three tiers, full trace-stream
/// equality. Each accelerated run must also actually *be* its tier —
/// predecode hits for the fast loop, replayed block instructions for
/// the block tier — so this can never silently degrade into comparing
/// naive with naive.
#[test]
fn all_profiles_bit_identical_across_loops() {
    for (i, kind) in WorkloadKind::ALL.into_iter().enumerate() {
        let params = small_profile(kind, 0x5EED ^ i as u64);
        let naive = observed_run(&params, CpuConfig::naive_loop(), None, 1_500, 4_000);
        let fast = observed_run(&params, CpuConfig::fast_loop(), None, 1_500, 4_000);
        let block = observed_run(&params, CpuConfig::default(), None, 1_500, 4_000);
        assert_eq!(
            naive.predecode_hits,
            0,
            "{}: naive loop must not touch the predecode cache",
            kind.name()
        );
        assert!(
            fast.predecode_hits > 0,
            "{}: fast loop never hit the predecode cache",
            kind.name()
        );
        assert_eq!(
            fast.block_replayed,
            0,
            "{}: fast loop must not enter blocks",
            kind.name()
        );
        assert!(
            block.block_replayed > 0,
            "{}: block tier never replayed a block",
            kind.name()
        );
        assert_indistinguishable(kind.name(), &naive, &fast);
        assert_indistinguishable(kind.name(), &naive, &block);
    }
}

/// The contract holds while machine checks are being injected and
/// recovered from: the same faults fire at the same cycles under every
/// tier, and every downstream observable stays bit-identical. (While a
/// fault hook is installed the block tier refuses to enter blocks and
/// the fast paths tick per-cycle, so the measured region is exact by
/// construction — this pins that the fallback actually engages.)
#[test]
fn bit_identical_under_fault_injection() {
    let plan = FaultPlan::seeded(&FaultClass::ALL, 780, 2, 20_000);
    for kind in [WorkloadKind::TimesharingLight, WorkloadKind::SciEng] {
        let params = small_profile(kind, 0xFA17);
        let naive = observed_run(&params, CpuConfig::naive_loop(), Some(&plan), 2_000, 5_000);
        let fast = observed_run(&params, CpuConfig::fast_loop(), Some(&plan), 2_000, 5_000);
        let block = observed_run(&params, CpuConfig::default(), Some(&plan), 2_000, 5_000);
        assert!(
            !naive.fired.is_empty(),
            "{}: the plan must actually inject",
            kind.name()
        );
        assert_eq!(
            naive.fired,
            fast.fired,
            "{}: fault logs differ (fast)",
            kind.name()
        );
        assert_eq!(
            naive.fired,
            block.fired,
            "{}: fault logs differ (block)",
            kind.name()
        );
        assert_indistinguishable(kind.name(), &naive, &fast);
        assert_indistinguishable(kind.name(), &naive, &block);
    }
}

fn assert_same_measurements(label: &str, a: &[MeasuredWorkload], b: &[MeasuredWorkload]) {
    assert_eq!(a.len(), b.len(), "{label}: result counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.name, y.name, "{label}: workload order differs");
        assert_eq!(x.histogram, y.histogram, "{label}: {} histogram", x.name);
        assert_eq!(x.counters, y.counters, "{label}: {} counters", x.name);
        assert_eq!(
            (x.instructions, x.cycles),
            (y.instructions, y.cycles),
            "{label}: {} progress",
            x.name
        );
    }
}

/// A campaign checkpointed under one tier resumes under another with
/// nothing to show for it: the combined results equal an uninterrupted
/// single-tier campaign, in both block<->naive crossing directions
/// (plus fast->block). This is what licenses flipping `CpuConfig`
/// between a crash and its resume.
#[test]
fn checkpoint_resume_crosses_loop_boundary() {
    let kinds = [
        WorkloadKind::TimesharingLight,
        WorkloadKind::Educational,
        WorkloadKind::SciEng,
    ];
    let study = |config: CpuConfig| {
        CompositeStudy::new(4_000)
            .with_kinds(&kinds)
            .warmup(1_000)
            .cpu_config(config)
    };
    let reference = study(CpuConfig::default()).run_supervised();
    assert!(reference.is_complete(), "reference campaign must complete");

    let dir = std::env::temp_dir().join("vax-perf-equiv-ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    for (first, second, label) in [
        (
            CpuConfig::naive_loop(),
            CpuConfig::default(),
            "naive->block",
        ),
        (
            CpuConfig::default(),
            CpuConfig::naive_loop(),
            "block->naive",
        ),
        (CpuConfig::fast_loop(), CpuConfig::default(), "fast->block"),
    ] {
        let path = dir.join(format!("{}.ckpt", label.replace("->", "-")));
        {
            // Run one job, then "crash" (halt_after is the deterministic
            // stand-in for a mid-campaign kill).
            let mut cp = Checkpoint::open(&path, 4_000, 1_000).unwrap();
            let halted = study(first).run_checkpointed(&mut cp, Some(1)).unwrap();
            assert_eq!(
                halted.results.len(),
                1,
                "{label}: one fresh job before halt"
            );
            assert_eq!(halted.pending.len(), 2, "{label}: two jobs left pending");
        }
        // Reopen from disk (the process that wrote it is gone) and
        // finish the campaign under the *other* loop.
        let mut cp = Checkpoint::open(&path, 4_000, 1_000).unwrap();
        let resumed = study(second).run_checkpointed(&mut cp, None).unwrap();
        assert!(resumed.is_complete(), "{label}: resumed campaign completes");
        assert_eq!(resumed.resumed, 1, "{label}: one job restored from disk");
        assert_same_measurements(label, &reference.results, &resumed.results);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
