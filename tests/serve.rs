//! End-to-end durability for `vax780 serve`: the queue survives
//! `kill -9`. A server is started, fed a mixed batch over its socket,
//! and SIGKILLed mid-queue; the restarted queue must re-run exactly
//! the unsettled jobs and produce merged results byte-identical to an
//! uninterrupted serial reference — zero lost, zero duplicated.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn vax780() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vax780"))
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// SIGKILL the child on drop — the test's "power failure".
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// A mixed batch: every workload, one fault-plan job, one non-default
/// tier. The later jobs are heavier so the kill lands with work still
/// pending.
const SPECS: &[&str] = &[
    "workload=timesharing-light instructions=15000 warmup=2000 seed=1",
    "workload=sci-eng instructions=15000 warmup=2000 seed=2",
    "workload=commercial instructions=20000 warmup=2000 seed=3 \
     faults=cache-parity+sbi-timeout fault-seed=780 fault-count=2",
    "workload=educational instructions=30000 warmup=2000 seed=4",
    "workload=timesharing-heavy instructions=40000 warmup=2000 seed=5",
    "workload=educational instructions=40000 warmup=2000 seed=6 tier=fast",
];

fn enqueue_batch(target_flag: &str, target: impl AsRef<std::ffi::OsStr>) {
    let mut cmd = vax780();
    cmd.args(["enqueue", target_flag]).arg(target);
    for spec in SPECS {
        cmd.args(["--spec", spec]);
    }
    let out = cmd.output().expect("runs");
    assert!(
        out.status.success(),
        "enqueue failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).lines().count(),
        SPECS.len(),
        "one `enqueued <id>` line per spec"
    );
}

#[test]
fn sigkilled_server_resumes_bit_identical_to_serial_reference() {
    let dir = tempdir("vax780-serve-kill-test");

    // Uninterrupted serial reference: same batch, no server, one
    // worker, straight through.
    let reference_journal = dir.join("reference.journal");
    let reference_out = dir.join("reference.jsonl");
    enqueue_batch("--queue", &reference_journal);
    let out = vax780()
        .args(["drain", "--queue"])
        .arg(&reference_journal)
        .args(["--serial", "--out"])
        .arg(&reference_out)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "reference drain failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Live server: enqueue the same batch over the socket.
    let live_journal = dir.join("live.journal");
    let socket = dir.join("sock");
    let server = KillOnDrop(
        vax780()
            .args(["serve", "--queue"])
            .arg(&live_journal)
            .arg("--socket")
            .arg(&socket)
            .args(["--jobs", "2"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("server spawns"),
    );
    enqueue_batch("--socket", &socket);

    // Wait for the first `complete` record, then kill -9: the journal
    // is mid-queue, with settled, running, and pending jobs.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let text = std::fs::read_to_string(&live_journal).unwrap_or_default();
        if text.lines().any(|l| l.starts_with("complete ")) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no job completed within 120s:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(server);

    let text = std::fs::read_to_string(&live_journal).unwrap();
    let settled = text
        .lines()
        .filter(|l| l.starts_with("complete ") || l.starts_with("fail "))
        .count();
    assert!(
        settled < SPECS.len(),
        "kill landed after the whole queue settled; nothing left to resume"
    );

    // Restart the queue offline and settle the remainder.
    let merged_out = dir.join("merged.jsonl");
    let out = vax780()
        .args(["drain", "--queue"])
        .arg(&live_journal)
        .args(["--jobs", "2", "--out"])
        .arg(&merged_out)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "resumed drain failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Bit-identical merged results: zero lost, zero duplicated, and
    // every line byte-for-byte equal to the uninterrupted reference.
    let merged = std::fs::read_to_string(&merged_out).unwrap();
    let reference = std::fs::read_to_string(&reference_out).unwrap();
    assert_eq!(merged.lines().count(), SPECS.len());
    assert_eq!(
        merged, reference,
        "resumed queue must reproduce the uninterrupted reference bit for bit"
    );

    // The journal agrees: every job settled exactly once.
    let out = vax780()
        .args(["status", "--queue"])
        .arg(&live_journal)
        .output()
        .expect("runs");
    assert!(out.status.success());
    let status = String::from_utf8_lossy(&out.stdout);
    assert!(
        status.contains(&format!("pending 0 done {} failed 0", SPECS.len())),
        "{status}"
    );
}

#[test]
fn server_applies_backpressure_and_rejects_bad_specs() {
    let dir = tempdir("vax780-serve-backpressure-test");
    let journal = dir.join("queue.journal");
    let socket = dir.join("sock");
    let server = KillOnDrop(
        vax780()
            .args(["serve", "--queue"])
            .arg(&journal)
            .arg("--socket")
            .arg(&socket)
            .args(["--jobs", "1", "--capacity", "2"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("server spawns"),
    );

    // Big jobs hold the two capacity slots while we probe the edge.
    let slow = "workload=sci-eng instructions=2000000 warmup=2000 seed=9";
    for _ in 0..2 {
        let out = vax780()
            .args(["enqueue", "--socket"])
            .arg(&socket)
            .args(["--spec", slow])
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let out = vax780()
        .args(["enqueue", "--socket"])
        .arg(&socket)
        .args(["--spec", slow])
        .output()
        .expect("runs");
    assert!(!out.status.success(), "third enqueue must hit capacity 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("queue full"), "{err}");
    assert!(err.contains("capacity 2"), "{err}");

    // A bad spec is rejected with the parse error, not enqueued.
    let out = vax780()
        .args(["enqueue", "--socket"])
        .arg(&socket)
        .args(["--spec", "workload=warp-drive instructions=1000"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("bad --spec"), "{err}");

    drop(server);
    // Only the two admitted jobs ever reached the journal.
    let text = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(
        text.lines().filter(|l| l.starts_with("enqueue ")).count(),
        2,
        "{text}"
    );
}

/// A seventh job for the quota probe, enqueued under a named client.
const EXTRA_SPEC: &str = "workload=timesharing-light instructions=15000 warmup=2000 seed=7";

/// Remote execution end to end: a server with zero local workers
/// (`--jobs 0`) listening on TCP, one `vax780 worker --connect`
/// process settling the whole queue over the claim protocol, and a
/// per-client quota enforced over the wire. The merged results —
/// digests included — must be byte-identical to an in-process serial
/// reference.
#[test]
fn remote_tcp_worker_settles_the_queue_bit_identical() {
    let dir = tempdir("vax780-serve-remote-worker-test");

    // In-process serial reference over the same seven jobs.
    let reference_journal = dir.join("reference.journal");
    let reference_out = dir.join("reference.jsonl");
    enqueue_batch("--queue", &reference_journal);
    let out = vax780()
        .args(["enqueue", "--queue"])
        .arg(&reference_journal)
        .args(["--client", "alice", "--spec", EXTRA_SPEC])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = vax780()
        .args(["drain", "--queue"])
        .arg(&reference_journal)
        .args(["--serial", "--out"])
        .arg(&reference_out)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "reference drain failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A free TCP port: bind to :0, note the port, release it.
    let port = std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port();
    let addr = format!("tcp:127.0.0.1:{port}");

    // The server runs no jobs itself: all execution is remote.
    let live_journal = dir.join("live.journal");
    let server = KillOnDrop(
        vax780()
            .args(["serve", "--queue"])
            .arg(&live_journal)
            .args(["--socket", &addr, "--jobs", "0", "--client-quota", "6"])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("server spawns"),
    );
    enqueue_batch("--socket", &addr);

    // The anonymous client now holds 6 unsettled jobs — quota full.
    let out = vax780()
        .args(["enqueue", "--socket", &addr, "--spec", EXTRA_SPEC])
        .output()
        .expect("runs");
    assert!(
        !out.status.success(),
        "seventh anonymous job must be over quota"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("quota exceeded"), "{err}");
    assert!(err.contains("quota 6"), "{err}");

    // A named client has its own budget.
    let out = vax780()
        .args(["enqueue", "--socket", &addr])
        .args(["--client", "alice", "--spec", EXTRA_SPEC])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // One remote worker claims and runs everything over TCP.
    let mut worker = vax780()
        .args(["worker", "--connect", &addr])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("worker spawns");

    // Drain blocks until the worker settles all seven jobs, then the
    // server exits; the worker notices and exits on its own.
    let merged_out = dir.join("merged.jsonl");
    let out = vax780()
        .args(["drain", "--socket", &addr, "--out"])
        .arg(&merged_out)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "drain failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    drop(server);

    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        match worker.try_wait().expect("wait") {
            Some(status) => break status,
            None if Instant::now() >= deadline => {
                let _ = worker.kill();
                let _ = worker.wait();
                panic!("worker did not exit after the server went away");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    assert!(status.success(), "worker exited with {status}");
    let mut worker_err = String::new();
    use std::io::Read;
    worker
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut worker_err)
        .unwrap();
    assert!(
        worker_err.contains("ran 7 job(s), 0 failed attempt(s)"),
        "worker must have run every job itself:\n{worker_err}"
    );

    // Bit-identical to the in-process reference, digests and all.
    let merged = std::fs::read_to_string(&merged_out).unwrap();
    let reference = std::fs::read_to_string(&reference_out).unwrap();
    assert_eq!(merged.lines().count(), SPECS.len() + 1);
    assert!(
        merged.lines().all(|l| l.contains("\"digest\":\"")),
        "{merged}"
    );
    assert_eq!(
        merged, reference,
        "remote execution must reproduce in-process results bit for bit"
    );
}
