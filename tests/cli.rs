//! Integration tests for the `vax780` command-line front end.

use std::process::Command;

fn vax780() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vax780"))
}

#[test]
fn list_prints_all_workloads() {
    let out = vax780().arg("list").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in [
        "timesharing-light",
        "timesharing-heavy",
        "educational",
        "sci-eng",
        "commercial",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn usage_on_no_args() {
    let out = vax780().output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn run_save_and_report_round_trip() {
    let dir = std::env::temp_dir().join("vax780-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let hist = dir.join("hist.txt");
    let out = vax780()
        .args([
            "run",
            "--workload",
            "timesharing-light",
            "--instructions",
            "8000",
            "--warmup",
            "2000",
            "--save-histogram",
        ])
        .arg(&hist)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("TABLE 8"));
    assert!(text.contains("paper vs measured"));

    // Re-analyse the saved histogram: same instruction count appears.
    let out2 = vax780()
        .args(["report", "--histogram"])
        .arg(&hist)
        .output()
        .expect("runs");
    assert!(out2.status.success());
    let t1 = text.split("instructions ").nth(1).unwrap();
    let t2 = String::from_utf8_lossy(&out2.stdout);
    let t2 = t2.split("instructions ").nth(1).unwrap().to_string();
    let n1: u64 = t1.split_whitespace().next().unwrap().parse().unwrap();
    let n2: u64 = t2.split_whitespace().next().unwrap().parse().unwrap();
    assert_eq!(n1, n2, "saved histogram preserves the measurement");
}

#[test]
fn disasm_produces_vax_assembly() {
    let out = vax780()
        .args([
            "disasm",
            "--workload",
            "sci-eng",
            "--function",
            "1",
            "--lines",
            "10",
        ])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(".entry mask="));
    assert!(text.contains("moval"), "prologue expected:\n{text}");
}

#[test]
fn rejects_unknown_workload() {
    let out = vax780()
        .args(["run", "--workload", "nonesuch"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
}

#[test]
fn trace_exports_both_formats_and_reconciles() {
    let dir = std::env::temp_dir().join("vax780-trace-test");
    std::fs::create_dir_all(&dir).unwrap();

    // JSONL export, with self-metrics.
    let jsonl = dir.join("run.jsonl");
    let out = vax780()
        .args([
            "trace",
            "--workload",
            "educational",
            "--instructions",
            "6000",
            "--warmup",
            "2000",
            "--metrics",
            "--trace-out",
        ])
        .arg(&jsonl)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("all instruments agree"),
        "reconciliation:\n{text}"
    );
    assert!(text.contains("simulator self-metrics"));
    assert!(text.contains("cyc/s"));
    let trace = std::fs::read_to_string(&jsonl).unwrap();
    for line in trace.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "JSONL line is not an object: {line}"
        );
    }
    assert!(trace.lines().last().unwrap().contains("\"ev\":\"summary\""));
    assert!(trace.contains("\"ev\":\"retire\""));
    assert!(trace.contains("\"ev\":\"phase\",\"name\":\"measure\""));

    // Chrome trace_event export.
    let chrome = dir.join("run.chrome.json");
    let out = vax780()
        .args([
            "trace",
            "--workload",
            "timesharing-light",
            "--instructions",
            "6000",
            "--warmup",
            "2000",
            "--trace-format",
            "chrome",
            "--trace-out",
        ])
        .arg(&chrome)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("all instruments agree"));
    let trace = std::fs::read_to_string(&chrome).unwrap();
    assert!(trace.starts_with("{\"displayTimeUnit\""));
    assert!(trace.trim_end().ends_with("]}"));
    assert!(trace.contains("\"traceEvents\""));
}

#[test]
fn trace_rejects_bad_format() {
    let out = vax780()
        .args(["trace", "--trace-format", "yaml"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown trace format"));
}
