//! Integration tests for the `vax780` command-line front end.

use std::process::Command;

fn vax780() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vax780"))
}

#[test]
fn list_prints_all_workloads() {
    let out = vax780().arg("list").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in [
        "timesharing-light",
        "timesharing-heavy",
        "educational",
        "sci-eng",
        "commercial",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn usage_on_no_args() {
    let out = vax780().output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn run_save_and_report_round_trip() {
    let dir = std::env::temp_dir().join("vax780-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let hist = dir.join("hist.txt");
    let out = vax780()
        .args([
            "run",
            "--workload",
            "timesharing-light",
            "--instructions",
            "8000",
            "--warmup",
            "2000",
            "--save-histogram",
        ])
        .arg(&hist)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("TABLE 8"));
    assert!(text.contains("paper vs measured"));

    // Re-analyse the saved histogram: same instruction count appears.
    let out2 = vax780()
        .args(["report", "--histogram"])
        .arg(&hist)
        .output()
        .expect("runs");
    assert!(out2.status.success());
    let t1 = text.split("instructions ").nth(1).unwrap();
    let t2 = String::from_utf8_lossy(&out2.stdout);
    let t2 = t2.split("instructions ").nth(1).unwrap().to_string();
    let n1: u64 = t1.split_whitespace().next().unwrap().parse().unwrap();
    let n2: u64 = t2.split_whitespace().next().unwrap().parse().unwrap();
    assert_eq!(n1, n2, "saved histogram preserves the measurement");
}

#[test]
fn disasm_produces_vax_assembly() {
    let out = vax780()
        .args([
            "disasm",
            "--workload",
            "sci-eng",
            "--function",
            "1",
            "--lines",
            "10",
        ])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(".entry mask="));
    assert!(text.contains("moval"), "prologue expected:\n{text}");
}

#[test]
fn rejects_unknown_workload() {
    let out = vax780()
        .args(["run", "--workload", "nonesuch"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
}

#[test]
fn trace_exports_both_formats_and_reconciles() {
    let dir = std::env::temp_dir().join("vax780-trace-test");
    std::fs::create_dir_all(&dir).unwrap();

    // JSONL export, with self-metrics.
    let jsonl = dir.join("run.jsonl");
    let out = vax780()
        .args([
            "trace",
            "--workload",
            "educational",
            "--instructions",
            "6000",
            "--warmup",
            "2000",
            "--metrics",
            "--trace-out",
        ])
        .arg(&jsonl)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("all instruments agree"),
        "reconciliation:\n{text}"
    );
    assert!(text.contains("simulator self-metrics"));
    assert!(text.contains("cyc/s"));
    let trace = std::fs::read_to_string(&jsonl).unwrap();
    for line in trace.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "JSONL line is not an object: {line}"
        );
    }
    assert!(trace.lines().last().unwrap().contains("\"ev\":\"summary\""));
    assert!(trace.contains("\"ev\":\"retire\""));
    assert!(trace.contains("\"ev\":\"phase\",\"name\":\"measure\""));

    // Chrome trace_event export.
    let chrome = dir.join("run.chrome.json");
    let out = vax780()
        .args([
            "trace",
            "--workload",
            "timesharing-light",
            "--instructions",
            "6000",
            "--warmup",
            "2000",
            "--trace-format",
            "chrome",
            "--trace-out",
        ])
        .arg(&chrome)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("all instruments agree"));
    let trace = std::fs::read_to_string(&chrome).unwrap();
    assert!(trace.starts_with("{\"displayTimeUnit\""));
    assert!(trace.trim_end().ends_with("]}"));
    assert!(trace.contains("\"traceEvents\""));
}

#[test]
fn trace_rejects_bad_format() {
    let out = vax780()
        .args(["trace", "--trace-format", "yaml"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown trace format"));
}

#[test]
fn rejects_unknown_flags_naming_the_flag() {
    // A typo must abort with a nonzero exit naming the flag — never
    // silently run the defaults.
    for (sub, bad) in [
        ("run", "--instruction"),
        ("trace", "--trace-outt"),
        ("inject", "--seeds"),
        ("probe", "--pairs"),
        ("report", "--histograms"),
        ("disasm", "--line"),
        ("sweep", "--axes"),
        ("lint", "--profiles"),
        ("list", "--verbose"),
    ] {
        let out = vax780().args([sub, bad, "5"]).output().expect("runs");
        assert!(!out.status.success(), "{sub} {bad} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(&format!("unrecognized option '{bad}'")),
            "{sub}: stderr should name {bad}:\n{err}"
        );
    }
    // Stray positional arguments are rejected too.
    let out = vax780().args(["run", "oops"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unexpected argument 'oops'"));
    // A value-taking option at the end of the line wants its value.
    let out = vax780().args(["run", "--workload"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires a value"));
}

#[test]
fn retry_flags_reject_non_numeric_values_naming_the_flag() {
    for sub in ["run", "sweep", "serve", "drain"] {
        let out = vax780()
            .args([sub, "--retry", "three"])
            .output()
            .expect("runs");
        assert!(!out.status.success(), "{sub} --retry three should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("--retry"),
            "{sub}: stderr must name the flag:\n{err}"
        );
        assert!(
            err.contains("'three'"),
            "{sub}: stderr must echo the value:\n{err}"
        );

        let out = vax780()
            .args([sub, "--retry-backoff-ms", "-5"])
            .output()
            .expect("runs");
        assert!(
            !out.status.success(),
            "{sub} --retry-backoff-ms -5 should fail"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("--retry-backoff-ms"),
            "{sub}: stderr must name the flag:\n{err}"
        );
        assert!(
            err.contains("'-5'"),
            "{sub}: stderr must echo the value:\n{err}"
        );
    }

    // Valid values are accepted end to end.
    let out = vax780()
        .args([
            "run",
            "--workload",
            "timesharing-light",
            "--instructions",
            "2000",
            "--warmup",
            "500",
            "--retry",
            "2",
            "--retry-backoff-ms",
            "1",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn inject_campaign_reconciles_and_reports_sensitivity() {
    let out = vax780()
        .args([
            "inject",
            "--workload",
            "educational",
            "--instructions",
            "6000",
            "--warmup",
            "2000",
            "--faults",
            "parity,sbi-timeout",
            "--seed",
            "780",
            "--report",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fired cache-parity @ cycle"), "{text}");
    assert!(text.contains("fired sbi-timeout @ cycle"), "{text}");
    assert!(
        text.contains("all instruments agree"),
        "injected run must reconcile:\n{text}"
    );
    assert!(text.contains("machine_checks"), "{text}");
    assert!(text.contains("FAULT SENSITIVITY"), "{text}");
    assert!(text.contains("dCPI"), "{text}");

    // The same seed prints the same fault log, cycle for cycle.
    let again = vax780()
        .args([
            "inject",
            "--workload",
            "educational",
            "--instructions",
            "6000",
            "--warmup",
            "2000",
            "--faults",
            "parity,sbi-timeout",
            "--seed",
            "780",
        ])
        .output()
        .expect("runs");
    assert!(again.status.success());
    let fired = |t: &str| -> Vec<String> {
        t.lines()
            .filter(|l| l.starts_with("fired "))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(
        fired(&text),
        fired(&String::from_utf8_lossy(&again.stdout)),
        "seeded injection must be reproducible"
    );
}

#[test]
fn inject_rejects_bad_plans_and_classes() {
    let out = vax780().arg("inject").output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --fault-plan"));

    let out = vax780()
        .args(["inject", "--faults", "gamma-ray"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown fault class 'gamma-ray'"));

    let dir = std::env::temp_dir().join("vax780-inject-test");
    std::fs::create_dir_all(&dir).unwrap();
    let plan = dir.join("bad.plan");
    std::fs::write(&plan, "not a plan\n").unwrap();
    let out = vax780()
        .args(["inject", "--fault-plan"])
        .arg(&plan)
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot parse"), "{err}");
    assert!(err.contains("bad.plan"), "error must name the file: {err}");
}

/// Satellite of the robustness work: every subcommand that writes an
/// output file must exit nonzero *naming the path* when the write
/// fails, instead of panicking.
#[test]
fn output_write_failures_exit_nonzero_naming_the_path() {
    let dir = std::env::temp_dir().join("vax780-unwritable-test");
    std::fs::create_dir_all(&dir).unwrap();
    // A path under a regular file can never be created.
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, "x").unwrap();
    let bad = blocker.join("out.txt");
    let bad_str = bad.to_string_lossy().into_owned();

    let cases: Vec<Vec<String>> = vec![
        vec![
            "run".into(),
            "--workload".into(),
            "timesharing-light".into(),
            "--instructions".into(),
            "2000".into(),
            "--warmup".into(),
            "500".into(),
            "--save-histogram".into(),
            bad_str.clone(),
        ],
        vec![
            "sweep".into(),
            "--workload".into(),
            "timesharing-light".into(),
            "--instructions".into(),
            "1500".into(),
            "--warmup".into(),
            "500".into(),
            "--axis".into(),
            "write-buffer".into(),
            "--csv".into(),
            bad_str.clone(),
        ],
        vec![
            "trace".into(),
            "--workload".into(),
            "timesharing-light".into(),
            "--instructions".into(),
            "1500".into(),
            "--warmup".into(),
            "500".into(),
            "--trace-out".into(),
            bad_str.clone(),
        ],
        vec![
            "lint".into(),
            "--profile".into(),
            "timesharing-light".into(),
            "--emit-image".into(),
            bad_str.clone(),
        ],
        vec![
            "probe".into(),
            "--pair".into(),
            "movl:none".into(),
            "--out".into(),
            bad_str.clone(),
        ],
        vec![
            "run".into(),
            "--workload".into(),
            "all".into(),
            "--instructions".into(),
            "1000".into(),
            "--warmup".into(),
            "300".into(),
            "--checkpoint".into(),
            bad_str.clone(),
        ],
    ];
    for case in cases {
        let out = vax780().args(&case).output().expect("runs");
        assert!(
            !out.status.success(),
            "{:?} should fail on an unwritable path",
            case[0]
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("blocker"),
            "{}: stderr must name the path:\n{err}",
            case[0]
        );
        assert!(
            !err.contains("panicked"),
            "{}: must fail cleanly, not panic:\n{err}",
            case[0]
        );
    }
}

#[test]
fn run_checkpoint_halts_resumes_and_matches_uninterrupted() {
    let dir = std::env::temp_dir().join("vax780-ckpt-cli-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("camp.ckpt");
    let base = [
        "run",
        "--workload",
        "all",
        "--instructions",
        "2000",
        "--warmup",
        "800",
    ];

    let uninterrupted = vax780().args(base).output().expect("runs");
    assert!(uninterrupted.status.success());
    let headline = |t: &str| {
        t.lines()
            .find(|l| l.starts_with("instructions "))
            .expect("headline")
            .to_string()
    };
    let expect = headline(&String::from_utf8_lossy(&uninterrupted.stdout));

    // "Kill" the campaign after two jobs...
    let halted = vax780()
        .args(base)
        .args(["--checkpoint"])
        .arg(&ckpt)
        .args(["--halt-after", "2"])
        .output()
        .expect("runs");
    assert!(
        halted.status.success(),
        "{}",
        String::from_utf8_lossy(&halted.stderr)
    );
    let herr = String::from_utf8_lossy(&halted.stderr);
    assert!(herr.contains("halted: 3 job(s) pending"), "{herr}");

    // ...resume, and get the uninterrupted campaign's exact numbers.
    let resumed = vax780()
        .args(base)
        .args(["--checkpoint"])
        .arg(&ckpt)
        .output()
        .expect("runs");
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let rerr = String::from_utf8_lossy(&resumed.stderr);
    assert!(rerr.contains("resuming: 2 job(s) restored"), "{rerr}");
    assert_eq!(
        headline(&String::from_utf8_lossy(&resumed.stdout)),
        expect,
        "resumed campaign must be bit-identical to uninterrupted"
    );

    // A mismatched config is refused, not silently mixed.
    let mismatch = vax780()
        .args([
            "run",
            "--workload",
            "all",
            "--instructions",
            "4000",
            "--warmup",
            "800",
            "--checkpoint",
        ])
        .arg(&ckpt)
        .output()
        .expect("runs");
    assert!(!mismatch.status.success());
    assert!(String::from_utf8_lossy(&mismatch.stderr).contains("instructions=2000"));

    // --halt-after without --checkpoint is an error.
    let out = vax780()
        .args(base)
        .args(["--halt-after", "1"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--checkpoint"));
}

#[test]
fn run_parallel_composite_matches_serial_and_reports_metrics() {
    let base = [
        "run",
        "--workload",
        "all",
        "--instructions",
        "3000",
        "--warmup",
        "1000",
    ];
    let parallel = vax780()
        .args(base)
        .args(["--jobs", "2", "--metrics"])
        .output()
        .expect("runs");
    assert!(
        parallel.status.success(),
        "{}",
        String::from_utf8_lossy(&parallel.stderr)
    );
    let ptext = String::from_utf8_lossy(&parallel.stdout);
    assert!(ptext.contains("campaign self-metrics"), "{ptext}");
    assert!(ptext.contains("speedup"), "{ptext}");

    let serial = vax780().args(base).arg("--serial").output().expect("runs");
    assert!(serial.status.success());
    let stext = String::from_utf8_lossy(&serial.stdout);
    // Same measurement either way: identical instruction/cycle/CPI line.
    let headline = |t: &str| {
        t.lines()
            .find(|l| l.starts_with("instructions "))
            .expect("headline")
            .to_string()
    };
    assert_eq!(headline(&ptext), headline(&stext));
}

#[test]
fn sweep_smoke_emits_table_csv_and_jsonl() {
    let dir = std::env::temp_dir().join("vax780-sweep-test");
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("sweep.csv");
    let jsonl = dir.join("sweep.jsonl");
    let out = vax780()
        .args([
            "sweep",
            "--workload",
            "timesharing-light",
            "--instructions",
            "2500",
            "--warmup",
            "1000",
            "--axis",
            "write-buffer",
            "--jobs",
            "2",
            "--metrics",
            "--csv",
        ])
        .arg(&csv)
        .arg("--jsonl")
        .arg(&jsonl)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("configuration sweep"), "{text}");
    assert!(text.contains("baseline"), "{text}");
    assert!(text.contains("write-buffer=4"), "{text}");
    assert!(text.contains("sweep self-metrics"), "{text}");
    assert!(text.contains("speedup"), "{text}");

    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.starts_with("label,axis,instructions,cycles,cpi"));
    assert_eq!(csv_text.lines().count(), 5); // header + baseline + 3 depths
    let jsonl_text = std::fs::read_to_string(&jsonl).unwrap();
    assert_eq!(jsonl_text.lines().count(), 4);
    for line in jsonl_text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"cpi\":"), "{line}");
    }

    let out = vax780()
        .args(["sweep", "--axis", "nonesuch"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown sweep axis 'nonesuch'"));
}

#[test]
fn lint_clean_profile_exits_zero() {
    let out = vax780()
        .args(["lint", "--profile", "timesharing-light", "--deny", "all"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("lint: clean"));

    // Unknown profiles and deny rules are rejected up front.
    let out = vax780()
        .args(["lint", "--profile", "nonesuch"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
    let out = vax780()
        .args(["lint", "--all-profiles", "--deny", "nonesuch"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown rule 'nonesuch'"));
}

#[test]
fn lint_corrupted_image_fails_naming_rule_and_offset() {
    let dir = std::env::temp_dir().join("vax780-lint-test");
    std::fs::create_dir_all(&dir).unwrap();
    let img = dir.join("img.txt");
    let out = vax780()
        .args(["lint", "--profile", "timesharing-light", "--emit-image"])
        .arg(&img)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The dispatcher ends with `brw top` — opcode 0x31 plus two
    // displacement bytes — ending exactly at the first function. Patch
    // the displacement to +32767, far outside the image.
    let text = std::fs::read_to_string(&img).unwrap();
    let hex_field = |key: &str| -> u32 {
        let line = text
            .lines()
            .find(|l| l.starts_with(key))
            .unwrap_or_else(|| panic!("no '{key}' line"));
        let word = line.split_whitespace().nth(1).unwrap();
        u32::from_str_radix(word.trim_start_matches("0x"), 16).unwrap()
    };
    let brw_off = (hex_field("functions ") - hex_field("base ") - 3) as usize;

    let bytes_line_start = text.find("\nbytes ").unwrap() + 1;
    let hex_start = bytes_line_start + text[bytes_line_start..].find('\n').unwrap() + 1;
    let header = &text[..hex_start];
    let hex: String = text[hex_start..].split_whitespace().collect();
    let mut bytes: Vec<u8> = (0..hex.len() / 2)
        .map(|i| u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).unwrap())
        .collect();
    assert_eq!(bytes[brw_off], 0x31, "expected the dispatcher's brw");
    bytes[brw_off + 1] = 0xff;
    bytes[brw_off + 2] = 0x7f;
    let mut patched = header.to_string();
    for row in bytes.chunks(32) {
        for b in row {
            patched.push_str(&format!("{b:02x}"));
        }
        patched.push('\n');
    }
    std::fs::write(&img, patched).unwrap();

    let out = vax780()
        .args(["lint", "--image"])
        .arg(&img)
        .output()
        .expect("runs");
    assert!(!out.status.success(), "corrupted image must fail lint");
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("image-branch-target"), "{report}");
    assert!(
        report.contains(&format!("+{brw_off:#06x}")),
        "diagnostic should name the byte offset:\n{report}"
    );
}

#[test]
fn probe_writes_artifact_and_sample_exports() {
    let dir = std::env::temp_dir().join("vax780-probe-test");
    std::fs::create_dir_all(&dir).unwrap();
    let tables = dir.join("tables.txt");
    let samples = dir.join("samples.jsonl");
    let folded = dir.join("samples.folded");
    let out = vax780()
        .args([
            "probe",
            "--pair",
            "movl:none",
            "--pair",
            "incl:register-deferred",
            "--deny",
            "all",
            "--out",
        ])
        .arg(&tables)
        .arg("--samples")
        .arg(&samples)
        .arg("--folded")
        .arg(&folded)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("lint: clean"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("probed 2 pair(s): 2 clean"));

    let text = std::fs::read_to_string(&tables).unwrap();
    assert!(text.starts_with("vax-probe-tables v1\n"), "{text}");
    assert!(text.contains("meta cpu-model "), "{text}");
    assert!(text.contains("op movl entry=1 "), "{text}");
    assert!(text.contains("pair movl none ok"), "{text}");
    assert!(text.contains("pair incl register-deferred ok"), "{text}");
    assert!(text.trim_end().ends_with("end"), "{text}");

    // Samples land under per-pair phases in both export formats.
    let samples = std::fs::read_to_string(&samples).unwrap();
    for line in samples.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
    assert!(samples.contains("movl:none/probe"), "{samples}");
    let folded = std::fs::read_to_string(&folded).unwrap();
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("incl:register-deferred/cal;")),
        "{folded}"
    );
}

#[test]
fn probe_refutes_the_model_without_the_allowlist() {
    // The byte-displacement fast path: without PROBE_ALLOW.txt the
    // probe must refute the static table's compute claim...
    let out = vax780()
        .args(["probe", "--pair", "movl:displacement"])
        .output()
        .expect("runs");
    assert!(!out.status.success(), "disagreement must be a nonzero exit");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("probe-mode"), "{text}");
    assert!(
        text.contains("mode displacement read compute: model claims 1, measured 0"),
        "{text}"
    );

    // ...and with the checked-in allowlist the refinement is accepted.
    let out = vax780()
        .args([
            "probe",
            "--pair",
            "movl:displacement",
            "--allowlist",
            "PROBE_ALLOW.txt",
            "--deny",
            "all",
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn probe_rejects_bad_pairs_rules_and_geometry() {
    let out = vax780()
        .args(["probe", "--pair", "movl:sideways"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad pair 'movl:sideways'"));

    let out = vax780()
        .args(["probe", "--deny", "nonesuch"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown rule 'nonesuch'"));

    let out = vax780()
        .args(["probe", "--pair", "movl:none", "--iters", "0"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("probe-coverage"), "{text}");
}

#[test]
fn report_json_exports_table8_with_host_stamp() {
    let dir = std::env::temp_dir().join("vax780-report-json-test");
    std::fs::create_dir_all(&dir).unwrap();
    let hist = dir.join("hist.txt");
    let json = dir.join("report.json");
    let out = vax780()
        .args([
            "run",
            "--workload",
            "educational",
            "--instructions",
            "4000",
            "--warmup",
            "1200",
            "--save-histogram",
        ])
        .arg(&hist)
        .output()
        .expect("runs");
    assert!(out.status.success());

    let out = vax780()
        .args(["report", "--histogram"])
        .arg(&hist)
        .arg("--json")
        .arg(&json)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("JSON report written"));
    let text = std::fs::read_to_string(&json).unwrap();
    for key in [
        "\"host\"",
        "\"cpu_model\"",
        "\"instructions\"",
        "\"cpi\"",
        "\"table8\"",
    ] {
        assert!(text.contains(key), "missing {key} in:\n{text}");
    }
}

#[test]
fn report_instructions_hint_overrides_and_validates() {
    let dir = std::env::temp_dir().join("vax780-hint-test");
    std::fs::create_dir_all(&dir).unwrap();
    let hist = dir.join("hist.txt");
    let out = vax780()
        .args([
            "run",
            "--workload",
            "educational",
            "--instructions",
            "5000",
            "--warmup",
            "1500",
            "--save-histogram",
        ])
        .arg(&hist)
        .output()
        .expect("runs");
    assert!(out.status.success());
    let derived: u64 = String::from_utf8_lossy(&out.stdout)
        .split("instructions ")
        .nth(1)
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();

    // A hint within tolerance overrides the normalization count.
    let hint = derived + derived / 50; // +2%
    let out = vax780()
        .args(["report", "--histogram"])
        .arg(&hist)
        .args(["--instructions-hint", &hint.to_string()])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains(&format!("instructions {hint}")),
        "hint should override the analysis count:\n{text}"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("instruction count overridden"));

    // A wildly wrong hint means the wrong histogram: refuse.
    let out = vax780()
        .args(["report", "--histogram"])
        .arg(&hist)
        .args(["--instructions-hint", &(derived * 10).to_string()])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("disagrees with the histogram"), "{err}");

    // Garbage hints are rejected up front.
    let out = vax780()
        .args(["report", "--histogram"])
        .arg(&hist)
        .args(["--instructions-hint", "many"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("positive integer"));
}
