//! Cross-crate integration tests: the full study pipeline, its
//! measurement invariants, and the paper's qualitative claims.

use upc_monitor::NullSink;
use vax780_core::{CompositeStudy, Experiment};
use vax_analysis::tables::{Table1, Table2, Table3, Table5, Table8, Table9};
use vax_analysis::{Column, Section4Stats};
use vax_arch::OpcodeGroup;
use vax_cpu::CpuConfig;
use vax_ucode::Row;
use vax_workloads::{build_machine, profile, WorkloadKind};

const QUICK: u64 = 25_000;

fn quick_analysis(kind: WorkloadKind) -> vax_analysis::Analysis {
    Experiment::new(kind)
        .warmup(8_000)
        .instructions(QUICK)
        .run()
        .analysis()
}

#[test]
fn every_cycle_is_classified_exactly_once() {
    let a = quick_analysis(WorkloadKind::TimesharingLight);
    let row_sum: f64 = Row::ALL.iter().map(|&r| a.row_total(r)).sum();
    let col_sum: f64 = Column::ALL.iter().map(|&c| a.col_total(c)).sum();
    assert!(
        (row_sum - a.cpi()).abs() < 1e-9,
        "rows {row_sum} vs {}",
        a.cpi()
    );
    assert!(
        (col_sum - a.cpi()).abs() < 1e-9,
        "cols {col_sum} vs {}",
        a.cpi()
    );
}

#[test]
fn cpi_lands_in_the_paper_neighbourhood() {
    let a = quick_analysis(WorkloadKind::TimesharingLight);
    let cpi = a.cpi();
    assert!(
        (8.0..13.5).contains(&cpi),
        "single-workload CPI should be near the paper's 10.6, got {cpi}"
    );
}

#[test]
fn group_frequencies_have_the_paper_shape() {
    let a = quick_analysis(WorkloadKind::TimesharingLight);
    let t1 = Table1::from_analysis(&a);
    // SIMPLE dominates; FIELD > FLOAT-or-CALLRET > CHARACTER > DECIMAL.
    assert!(t1.pct(OpcodeGroup::Simple) > 75.0);
    assert!(t1.pct(OpcodeGroup::Field) > t1.pct(OpcodeGroup::Character));
    assert!(t1.pct(OpcodeGroup::Character) > t1.pct(OpcodeGroup::Decimal));
    let sum: f64 = OpcodeGroup::ALL.iter().map(|&g| t1.pct(g)).sum();
    assert!((sum - 100.0).abs() < 1e-6);
}

#[test]
fn rare_groups_cost_orders_of_magnitude_more() {
    // §5: "the range of cycle time requirements ... covers two orders of
    // magnitude" — SIMPLE ≈ 1.2 within-group vs CHARACTER/DECIMAL ≈ 100+.
    let a = quick_analysis(WorkloadKind::Commercial);
    let t9 = Table9::from_analysis(&a);
    let simple = t9.total(OpcodeGroup::Simple);
    let heavy = t9
        .total(OpcodeGroup::Character)
        .max(t9.total(OpcodeGroup::Decimal));
    assert!(simple < 3.0, "SIMPLE within-group {simple}");
    assert!(
        heavy / simple > 25.0,
        "heavy/simple spread only {:.1}x",
        heavy / simple
    );
}

#[test]
fn reads_outnumber_writes_about_two_to_one() {
    let a = quick_analysis(WorkloadKind::TimesharingLight);
    let t5 = Table5::from_analysis(&a);
    let ratio = t5.read_write_ratio();
    assert!((1.4..3.0).contains(&ratio), "read:write {ratio}");
}

#[test]
fn decode_plus_specifiers_take_about_half_the_time() {
    let a = quick_analysis(WorkloadKind::TimesharingLight);
    let t8 = Table8::from_analysis(&a);
    let frac = t8.decode_plus_spec_fraction();
    assert!((0.38..0.62).contains(&frac), "decode+spec fraction {frac}");
}

#[test]
fn specifier_rates_match_table3_shape() {
    let a = quick_analysis(WorkloadKind::TimesharingLight);
    let t3 = Table3::from_analysis(&a);
    assert!((0.6..0.95).contains(&t3.spec1), "spec1 {}", t3.spec1);
    assert!((0.6..0.95).contains(&t3.spec2_6), "spec2-6 {}", t3.spec2_6);
    assert!((0.2..0.45).contains(&t3.bdisp), "bdisp {}", t3.bdisp);
}

#[test]
fn branch_taken_counts_never_exceed_class_counts() {
    let a = quick_analysis(WorkloadKind::Educational);
    let t2 = Table2::from_analysis(&a);
    for (class, _, taken_pct, _) in &t2.rows {
        assert!(
            *taken_pct <= 100.0 + 1e-9,
            "{class:?} taken {taken_pct}% exceeds 100%"
        );
    }
    assert!(t2.total.1 > 50.0 && t2.total.1 <= 100.0);
}

#[test]
fn composite_is_the_sum_of_its_parts() {
    let (results, composite) = CompositeStudy::new(8_000)
        .warmup(3_000)
        .with_kinds(&[WorkloadKind::TimesharingLight, WorkloadKind::Commercial])
        .run();
    let per_instr: u64 = results.iter().map(|r| r.analysis().instructions()).sum();
    assert_eq!(composite.instructions(), per_instr);
    let per_cycles: u64 = results.iter().map(|r| r.analysis().total_cycles()).sum();
    assert_eq!(composite.total_cycles(), per_cycles);
}

#[test]
fn monitor_is_passive() {
    // Running with the histogram board attached must produce exactly the
    // same machine state as running unmonitored (§2.2: "totally passive
    // ... having no effect on the execution of programs").
    let params = profile(WorkloadKind::TimesharingLight);
    let mut unmonitored = build_machine(&params);
    let mut sink = NullSink;
    unmonitored.run_instructions(15_000, &mut sink).unwrap();

    let mut monitored = build_machine(&params);
    let mut board = upc_monitor::HistogramBoard::new();
    board.execute(upc_monitor::Command::Start);
    monitored.run_instructions(15_000, &mut board).unwrap();

    assert_eq!(unmonitored.cpu.now(), monitored.cpu.now());
    assert_eq!(unmonitored.cpu.pc(), monitored.cpu.pc());
    assert_eq!(
        unmonitored.cpu.mem().counters(),
        monitored.cpu.mem().counters()
    );
}

#[test]
fn measurement_is_deterministic() {
    let run = || {
        let m = Experiment::new(WorkloadKind::SciEng)
            .warmup(4_000)
            .instructions(10_000)
            .run();
        (m.cycles, m.instructions, m.histogram.total_cycles())
    };
    assert_eq!(run(), run());
}

#[test]
fn decode_overlap_saves_close_to_the_nonbranching_fraction() {
    let base = Experiment::new(WorkloadKind::TimesharingLight)
        .warmup(8_000)
        .instructions(QUICK)
        .run()
        .analysis();
    let folded = Experiment::new(WorkloadKind::TimesharingLight)
        .warmup(8_000)
        .instructions(QUICK)
        .cpu_config(CpuConfig::with_decode_overlap())
        .run()
        .analysis();
    let t2 = Table2::from_analysis(&base);
    let predicted = 1.0 - t2.total.0 / 100.0;
    // The fold removes exactly the IRD1 issue cycle of non-PC-changing
    // instructions, so the *decode row* must thin by the non-branching
    // fraction. Total CPI also drops, but by a noisier amount: shifting
    // every later instruction earlier realigns interrupts, DMA and
    // write-buffer drain, which perturbs the other rows.
    let decode_saving = base.row_total(Row::Decode) - folded.row_total(Row::Decode);
    assert!(
        (decode_saving - predicted).abs() < 0.05,
        "decode-row saving {decode_saving:.3} vs predicted {predicted:.3}"
    );
    let cpi_saving = base.cpi() - folded.cpi();
    assert!(
        cpi_saving > 0.5 * predicted,
        "total CPI saving {cpi_saving:.3} implausibly small vs {predicted:.3}"
    );
}

#[test]
fn tb_service_time_is_near_the_paper() {
    let a = quick_analysis(WorkloadKind::TimesharingHeavy);
    let s4 = Section4Stats::from_analysis(&a);
    assert!(
        (15.0..28.0).contains(&s4.tb_service_cycles),
        "TB service {} cycles (paper: 21.6)",
        s4.tb_service_cycles
    );
    assert!(s4.tb_service_read_stall > 0.5);
}

#[test]
fn all_five_workloads_run_and_differ() {
    let mut float_shares = Vec::new();
    for kind in WorkloadKind::ALL {
        let a = Experiment::new(kind)
            .warmup(4_000)
            .instructions(12_000)
            .run()
            .analysis();
        assert!(a.instructions() > 0, "{kind:?} ran");
        float_shares.push((kind, Table1::from_analysis(&a).pct(OpcodeGroup::Float)));
    }
    let sci = float_shares
        .iter()
        .find(|(k, _)| *k == WorkloadKind::SciEng)
        .unwrap()
        .1;
    let com = float_shares
        .iter()
        .find(|(k, _)| *k == WorkloadKind::Commercial)
        .unwrap()
        .1;
    assert!(
        sci > com,
        "sci/eng should be more float-heavy: {float_shares:?}"
    );
}
