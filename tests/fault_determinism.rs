//! Determinism under faults (the robustness contract): the same seed
//! and the same fault plan must reproduce the injected run bit for bit
//! — histogram, hardware counters, and the full trace event stream —
//! and the three instruments must still reconcile exactly while
//! machine-check recovery cycles are being burned.

use proptest::prelude::*;
use upc_monitor::{Command, HistogramBoard};
use vax_cpu::CpuConfig;
use vax_fault::{FaultClass, FaultEngine, FaultPlan, FaultTrigger, FiredFault};
use vax_mem::{HwCounters, MemConfig};
use vax_trace::{TraceEvent, Tracer};
use vax_workloads::{build_machine_with_config, profile, ProfileParams, WorkloadKind};

/// A scaled-down profile so property cases run in milliseconds.
fn small_profile(kind: WorkloadKind, seed_salt: u64) -> ProfileParams {
    let base = profile(kind);
    ProfileParams {
        processes: 3,
        functions_per_process: 8,
        slots_per_function: 20,
        scalar_bytes: 16 * 1024,
        terminal_users: 4,
        seed: base.seed ^ seed_salt,
        ..base
    }
}

struct InjectedRun {
    events: Vec<TraceEvent>,
    histogram: upc_monitor::Histogram,
    hw: HwCounters,
    fired: Vec<FiredFault>,
    pending_ib_tb_miss: bool,
    tracer_machine_checks: u64,
    reconciled: bool,
}

/// Warm up, install and arm the fault engine at the measurement
/// boundary, and run the measured region under the board+tracer tee —
/// the same shape as `vax780 inject`.
fn injected_run(
    params: &ProfileParams,
    config: CpuConfig,
    plan: &FaultPlan,
    warmup: u64,
    measured: u64,
) -> InjectedRun {
    let mut machine = build_machine_with_config(params, config, MemConfig::default());
    let hw_base = *machine.cpu.mem().counters();
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    let mut tracer = Tracer::new();
    {
        let mut tee = (&mut board, &mut tracer);
        machine
            .run_phase("warmup", warmup, &mut tee)
            .expect("warmup runs");
        machine
            .cpu
            .mem_mut()
            .set_fault_hook(Box::new(FaultEngine::new(plan)));
        let now = machine.cpu.now();
        machine.cpu.mem_mut().arm_fault_hook(now);
        machine
            .run_phase("measure", measured, &mut tee)
            .expect("measured region runs");
    }
    board.execute(Command::Stop);
    let histogram = board.snapshot();
    let hw = machine.cpu.mem().counters().delta_since(&hw_base);
    let reconciled = vax_analysis::reconcile::reconcile(
        &tracer,
        &histogram,
        &hw,
        machine.cpu.pending_ib_tb_miss(),
    )
    .is_ok();
    InjectedRun {
        events: tracer.events().copied().collect(),
        histogram,
        hw,
        fired: machine.cpu.mem().faults_fired(),
        pending_ib_tb_miss: machine.cpu.pending_ib_tb_miss(),
        tracer_machine_checks: tracer.counters().machine_checks,
        reconciled,
    }
}

/// The headline case: a mixed plan over every fault class, run twice.
#[test]
fn same_seed_and_plan_reproduce_the_run_bit_for_bit() {
    let params = small_profile(WorkloadKind::TimesharingLight, 11);
    let plan = FaultPlan::seeded(&FaultClass::ALL, 780, 2, 20_000);
    let a = injected_run(&params, CpuConfig::default(), &plan, 2_000, 5_000);
    let b = injected_run(&params, CpuConfig::default(), &plan, 2_000, 5_000);

    assert!(!a.fired.is_empty(), "the plan must actually inject");
    assert_eq!(a.fired, b.fired, "fault log differs between runs");
    assert_eq!(a.histogram, b.histogram, "histogram differs");
    assert_eq!(a.hw, b.hw, "hardware counters differ");
    assert_eq!(
        a.events.len(),
        b.events.len(),
        "trace stream length differs"
    );
    assert_eq!(a.events, b.events, "trace event stream differs");
    assert_eq!(a.pending_ib_tb_miss, b.pending_ib_tb_miss);
}

/// Reconciliation stays *exact* while faults fire: the recovery cycles
/// are attributed identically by all three instruments.
#[test]
fn instruments_reconcile_exactly_while_faults_fire() {
    let params = small_profile(WorkloadKind::Educational, 23);
    let plan = FaultPlan::new()
        .with(FaultClass::CacheParity, FaultTrigger::AtCycle(1_000))
        .with(FaultClass::SbiTimeout, FaultTrigger::AtCycle(3_000))
        .with(FaultClass::TbCorrupt, FaultTrigger::AtCycle(6_000))
        .with(FaultClass::WriteBufferError, FaultTrigger::AtCycle(9_000))
        .with(
            FaultClass::ControlStoreBitFlip,
            FaultTrigger::AtCycle(12_000),
        );
    let run = injected_run(&params, CpuConfig::default(), &plan, 2_000, 6_000);
    assert_eq!(run.fired.len(), 5, "every scheduled fault must mature");
    assert!(run.reconciled, "instruments must agree under injection");
    assert_eq!(run.hw.machine_checks, 5);
    assert_eq!(run.tracer_machine_checks, 5);
}

/// µPC-keyed triggers are deterministic too: the Nth issue from a given
/// micro-address lands at the same cycle every run.
#[test]
fn upc_triggered_faults_are_reproducible() {
    let params = small_profile(WorkloadKind::SciEng, 5);
    let cs = vax_ucode::ControlStore::build();
    let plan = FaultPlan::new().with(
        FaultClass::TbCorrupt,
        FaultTrigger::AtMicroPc {
            addr: cs.ird1().value(),
            hits: 500,
        },
    );
    let a = injected_run(&params, CpuConfig::default(), &plan, 1_000, 4_000);
    let b = injected_run(&params, CpuConfig::default(), &plan, 1_000, 4_000);
    assert_eq!(a.fired.len(), 1, "the decode stream reaches 500 issues");
    assert_eq!(a.fired, b.fired);
    assert_eq!(a.histogram, b.histogram);
    assert_eq!(a.hw, b.hw);
    assert!(a.reconciled && b.reconciled);
}

/// Audit pin: an `AtCycle` trigger bisected into the *middle* of a
/// stretch the fast paths would otherwise coalesce into one bulk clock
/// advance. With a fault hook installed every tier falls back to
/// per-cycle ticking (and the block tier refuses to enter blocks), so
/// the trigger must mature at exactly the same cycle — same fired log,
/// histogram, counters, and trace stream — under naive, fast, and
/// block configs. Sweeping the trigger across a contiguous window
/// catches any cycle the coalesced path could jump over.
#[test]
fn cycle_trigger_inside_a_bulk_tick_is_tier_invariant() {
    let params = small_profile(WorkloadKind::TimesharingLight, 41);
    for trigger in (1_000u64..1_036).step_by(7) {
        let plan = FaultPlan::new().with(FaultClass::CacheParity, FaultTrigger::AtCycle(trigger));
        let naive = injected_run(&params, CpuConfig::naive_loop(), &plan, 1_500, 3_000);
        assert_eq!(naive.fired.len(), 1, "trigger @{trigger} must mature");
        for (label, config) in [
            ("fast", CpuConfig::fast_loop()),
            ("block", CpuConfig::default()),
        ] {
            let run = injected_run(&params, config, &plan, 1_500, 3_000);
            assert_eq!(run.fired, naive.fired, "{label}: fired log @{trigger}");
            assert_eq!(
                run.histogram, naive.histogram,
                "{label}: histogram @{trigger}"
            );
            assert_eq!(run.hw, naive.hw, "{label}: counters @{trigger}");
            assert_eq!(run.events, naive.events, "{label}: trace @{trigger}");
        }
    }
}

/// Same audit for µPC-keyed triggers: the Nth issue of the decode
/// micro-address lands inside what the shortcut paths batch into one
/// issue run. Sweeping adjacent hit counts bisects the trigger into
/// the middle of such a run; every tier must agree on when it fires.
#[test]
fn micro_pc_trigger_inside_a_batched_issue_run_is_tier_invariant() {
    let params = small_profile(WorkloadKind::Educational, 57);
    let cs = vax_ucode::ControlStore::build();
    for hits in [40u32, 41, 42] {
        let plan = FaultPlan::new().with(
            FaultClass::TbCorrupt,
            FaultTrigger::AtMicroPc {
                addr: cs.ird1().value(),
                hits,
            },
        );
        let naive = injected_run(&params, CpuConfig::naive_loop(), &plan, 1_500, 3_000);
        assert_eq!(naive.fired.len(), 1, "trigger @{hits} hits must mature");
        for (label, config) in [
            ("fast", CpuConfig::fast_loop()),
            ("block", CpuConfig::default()),
        ] {
            let run = injected_run(&params, config, &plan, 1_500, 3_000);
            assert_eq!(run.fired, naive.fired, "{label}: fired log @{hits} hits");
            assert_eq!(
                run.histogram, naive.histogram,
                "{label}: histogram @{hits} hits"
            );
            assert_eq!(run.hw, naive.hw, "{label}: counters @{hits} hits");
            assert_eq!(run.events, naive.events, "{label}: trace @{hits} hits");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For small random plans (random classes, seeds, and densities),
    /// the injected run is reproducible bit for bit and the instruments
    /// reconcile exactly.
    #[test]
    fn random_plans_are_deterministic_and_reconciled(
        kind in prop::sample::select(vec![
            WorkloadKind::TimesharingLight,
            WorkloadKind::Educational,
            WorkloadKind::Commercial,
        ]),
        seed in 0u64..10_000,
        per_class in 1u32..3,
        class_mask in 1usize..32,
        salt in 0u64..1_000,
    ) {
        let classes: Vec<FaultClass> = FaultClass::ALL
            .into_iter()
            .filter(|c| class_mask & (1 << c.index()) != 0)
            .collect();
        let plan = FaultPlan::seeded(&classes, seed, per_class, 15_000);
        let params = small_profile(kind, salt);
        let a = injected_run(&params, CpuConfig::default(), &plan, 1_500, 4_000);
        let b = injected_run(&params, CpuConfig::default(), &plan, 1_500, 4_000);
        prop_assert_eq!(&a.fired, &b.fired);
        prop_assert_eq!(&a.histogram, &b.histogram);
        prop_assert_eq!(&a.hw, &b.hw);
        prop_assert_eq!(&a.events, &b.events);
        prop_assert!(a.reconciled, "injected run must reconcile");
        prop_assert_eq!(a.hw.machine_checks, a.fired.len() as u64);
        prop_assert_eq!(a.tracer_machine_checks, a.fired.len() as u64);
    }
}
