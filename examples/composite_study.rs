//! The full characterization study: run all five workloads (in parallel,
//! one worker per core), merge their µPC histograms, and print every
//! table of the paper with the paper-vs-measured comparison plus the
//! simulator's own campaign metrics.
//!
//! ```sh
//! cargo run --release --example composite_study [instructions_per_workload]
//! ```

use vax780_core::CompositeStudy;
use vax_analysis::report::StudyReport;

fn main() {
    let instructions: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);
    eprintln!("running 5 workloads x {instructions} instructions ...");
    let (results, analysis, metrics) = CompositeStudy::new(instructions).run_with_metrics();
    eprintln!("{metrics}");
    for r in &results {
        let a = r.analysis();
        eprintln!(
            "  {:<20} {:>9} instr  {:>10} cycles  CPI {:>5.2}",
            r.name,
            r.instructions,
            r.cycles,
            a.cpi()
        );
    }
    let report = StudyReport::new(&analysis);
    println!(
        "=== composite: {} instructions, CPI {:.3} ===",
        analysis.instructions(),
        analysis.cpi()
    );
    println!("{}", report.rendered_tables);
    println!("=== paper vs measured ===");
    println!("{}", report.comparison_table());
}
