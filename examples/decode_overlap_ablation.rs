//! What-if from the paper's §5: "saving the non-overlapped I-Decode
//! cycle could save one cycle on each non-PC-changing instruction. (The
//! later VAX model 11/750 did [this].)" Run the same workload on both
//! machine variants and measure the saving.
//!
//! ```sh
//! cargo run --release --example decode_overlap_ablation [instructions]
//! ```

use vax780_core::Experiment;
use vax_analysis::tables::Table2;
use vax_cpu::CpuConfig;
use vax_workloads::WorkloadKind;

fn main() {
    let instructions: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150_000);
    let run = |config: CpuConfig| {
        Experiment::new(WorkloadKind::TimesharingLight)
            .instructions(instructions)
            .cpu_config(config)
            .run()
            .analysis()
    };
    eprintln!("running both machine variants x {instructions} instructions ...");
    let base = run(CpuConfig::default());
    let folded = run(CpuConfig::with_decode_overlap());

    let t2 = Table2::from_analysis(&base);
    let non_pc_changing = 1.0 - t2.total.0 / 100.0;
    println!("11/780 (non-overlapped decode):  CPI {:.3}", base.cpi());
    println!("11/750-style (folded decode):    CPI {:.3}", folded.cpi());
    println!(
        "measured saving: {:.3} cycles/instruction",
        base.cpi() - folded.cpi()
    );
    println!(
        "paper's prediction: one cycle per non-PC-changing instruction = {non_pc_changing:.3}"
    );
}
