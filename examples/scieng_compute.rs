//! The scientific/engineering workload (40 simulated users of scientific
//! computation, paper §2.2): floating-point-heavy, loop-heavy. Shows the
//! per-workload variation the composite averages over.
//!
//! ```sh
//! cargo run --release --example scieng_compute [instructions]
//! ```

use vax780_core::Experiment;
use vax_analysis::tables::{Table1, Table2, Table8};
use vax_analysis::Column;
use vax_arch::{BranchClass, OpcodeGroup};
use vax_ucode::Row;
use vax_workloads::WorkloadKind;

fn main() {
    let instructions: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(250_000);
    eprintln!("measuring sci/eng workload: {instructions} instructions ...");
    let measured = Experiment::new(WorkloadKind::SciEng)
        .instructions(instructions)
        .run();
    let a = measured.analysis();

    println!(
        "sci-eng: {} instructions, CPI {:.2}",
        a.instructions(),
        a.cpi()
    );
    let t1 = Table1::from_analysis(&a);
    let t2 = Table2::from_analysis(&a);
    let t8 = Table8::from_analysis(&a);
    println!("\n{t1}");
    println!(
        "FLOAT share {:.2}% (composite paper value: 3.62%) — scientific work runs hotter",
        t1.pct(OpcodeGroup::Float)
    );
    let loops = t2
        .rows
        .iter()
        .find(|(c, ..)| *c == BranchClass::Loop)
        .expect("loop row");
    println!(
        "loop branches: {:.1}% of instructions, {:.0}% taken (≈{:.0} iterations/loop)",
        loops.1,
        loops.2,
        1.0 / (1.0 - loops.2 / 100.0)
    );
    println!(
        "FLOAT execute time: {:.3} cycles/instruction; compute column total {:.2}",
        t8.row_total(Row::Exec(OpcodeGroup::Float)),
        t8.col_totals[Column::Compute.index()]
    );
    println!("\n{t8}");
}
