//! Sweep the machine-configuration grid — the §6 what-if analyses done
//! by re-simulation instead of Table 8 arithmetic — and print the
//! per-point CPI/stall breakdown with the worker-pool self-metrics.
//!
//! ```sh
//! cargo run --release --example sweep_ablations [instructions_per_workload]
//! ```
//!
//! Each point re-measures the five-workload composite under one ablated
//! configuration (cache size/ways, TB entries/split, write-buffer
//! depth, decode overlap); points fan across one worker per host core.

use vax780_core::sweep::{Sweep, SweepGrid};

fn main() {
    let instructions: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let grid = SweepGrid::all();
    eprintln!(
        "sweeping {} points x 5 workloads x {instructions} instructions ...",
        grid.len()
    );
    let outcome = Sweep::new(grid, instructions).run();
    println!("=== configuration sweep ===");
    print!("{}", vax_analysis::sweep::render_table(&outcome.rows));
    println!("\n=== sweep self-metrics ===");
    println!("{}", outcome.metrics);
}
