//! Quickstart: build a tiny machine, attach the µPC histogram monitor,
//! run a hand-written VAX program, and read the measurement back — the
//! whole methodology of the paper in fifty lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use upc_monitor::{Command, HistogramBoard};
use vax_analysis::tables::{Table1, Table8};
use vax_analysis::Analysis;
use vax_arch::{Assembler, Opcode, Operand, Reg};
use vax_cpu::harness::SimpleMachine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 1's component inventory, as built by this model.
    println!("VAX-11/780 model: I-Fetch (8-byte IB) + I-Decode + microcoded EBOX");
    println!("memory: 128-entry TB | 8 KB write-through cache | 1-longword write buffer | SBI");
    println!();

    // A small program: sum an array with a counted loop, then HALT.
    let mut asm = Assembler::new(0x400);
    let data = asm.new_label();
    asm.moval_pcrel(data, Operand::Reg(Reg::R11))?;
    asm.inst(Opcode::Clrl, &[Operand::Reg(Reg::R0)])?;
    asm.inst(Opcode::Clrl, &[Operand::Reg(Reg::R1)])?;
    let top = asm.label_here();
    asm.inst(
        Opcode::Addl2,
        &[Operand::AutoIncrement(Reg::R11), Operand::Reg(Reg::R0)],
    )?;
    asm.branch(
        Opcode::Aoblss,
        &[Operand::Literal(32), Operand::Reg(Reg::R1)],
        top,
    )?;
    asm.inst(Opcode::Halt, &[])?;
    asm.place(data)?;
    for i in 0..32u32 {
        asm.long(i);
    }
    let image = asm.finish()?;

    // Attach the monitor — passive, like the real Unibus board.
    let mut machine = SimpleMachine::with_code(&image);
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    let outcome = machine.cpu.run(10_000, &mut board);
    board.execute(Command::Stop);
    println!("run ended with: {:?}", outcome.unwrap_err()); // HALT
    println!("R0 (array sum) = {}", machine.cpu.regs().get(Reg::R0));
    assert_eq!(machine.cpu.regs().get(Reg::R0), (0..32).sum::<u32>());

    // Reduce the histogram exactly the way the paper does.
    let analysis = Analysis::new(
        &board.snapshot(),
        machine.cpu.control_store(),
        machine.cpu.mem().counters(),
    );
    println!("\ninstructions: {}", analysis.instructions());
    println!("cycles/instruction: {:.2}", analysis.cpi());
    println!("\n{}", Table1::from_analysis(&analysis));
    println!("{}", Table8::from_analysis(&analysis));
    Ok(())
}
