//! §5's improvement analysis, quantified: measure a workload, then ask
//! "where may 11/780 performance be improved, and where may it not?" —
//! the CPI-stack reasoning this paper introduced.
//!
//! ```sh
//! cargo run --release --example whatif_improvements [instructions]
//! ```

use vax780_core::Experiment;
use vax_analysis::whatif::{apply, standard_sweep, Scenario};
use vax_arch::OpcodeGroup;
use vax_workloads::WorkloadKind;

fn main() {
    let instructions: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    eprintln!("measuring timesharing workload: {instructions} instructions ...");
    let a = Experiment::new(WorkloadKind::TimesharingLight)
        .instructions(instructions)
        .run()
        .analysis();

    println!("baseline CPI {:.3}\n", a.cpi());
    println!("what-if sweep (upper bounds on each improvement):");
    for w in standard_sweep(&a) {
        println!("  {w}");
    }

    // The paper's own example: "optimizing FIELD memory writes will have
    // a payoff of at most 0.007 cycles per instruction, or only about
    // 0.07 percent of total performance."
    let field_writes = a.cell(
        vax_ucode::Row::Exec(OpcodeGroup::Field),
        vax_analysis::Column::Write,
    ) + a.cell(
        vax_ucode::Row::Exec(OpcodeGroup::Field),
        vax_analysis::Column::WStall,
    );
    println!(
        "\npaper's §5 example — optimizing FIELD memory writes:\n  \
         at most {:.4} cycles/instruction ({:.2}% of total; paper: 0.007, 0.07%)",
        field_writes,
        100.0 * field_writes / a.cpi()
    );

    // And the converse: what a perfect memory system would NOT fix.
    let all_stalls = apply(&a, Scenario::NoReadStalls).saving()
        + apply(&a, Scenario::NoWriteStalls).saving()
        + apply(&a, Scenario::NoIbStalls).saving();
    println!(
        "\nall stalls combined: {:.2} cycles/instruction — even a perfect memory \
         system leaves CPI at {:.2}",
        all_stalls,
        a.cpi() - all_stalls
    );
}
