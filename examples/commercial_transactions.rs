//! The commercial transaction-processing workload (32 simulated users of
//! database inquiries and updates, paper §2.2): run it alone and show
//! what makes it distinctive — decimal and character-string work, system
//! service traffic, and the cost those rare instructions carry (§3.1:
//! "some of the rarer, more complex instructions are responsible for a
//! great deal of the memory references and processing time").
//!
//! ```sh
//! cargo run --release --example commercial_transactions [instructions]
//! ```

use vax780_core::Experiment;
use vax_analysis::tables::{Table1, Table7, Table9};
use vax_arch::OpcodeGroup;
use vax_workloads::WorkloadKind;

fn main() {
    let instructions: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(250_000);
    eprintln!("measuring commercial workload: {instructions} instructions ...");
    let measured = Experiment::new(WorkloadKind::Commercial)
        .instructions(instructions)
        .run();
    let a = measured.analysis();

    println!(
        "commercial: {} instructions, {} cycles, CPI {:.2}",
        a.instructions(),
        a.total_cycles(),
        a.cpi()
    );
    let t1 = Table1::from_analysis(&a);
    let t9 = Table9::from_analysis(&a);
    println!("\n{t1}");
    println!("{t9}");
    println!("{}", Table7::from_analysis(&a));

    // The paper's point, quantified: DECIMAL+CHARACTER are a fraction of a
    // percent of executions but orders of magnitude costlier each.
    let rare_freq = t1.pct(OpcodeGroup::Decimal) + t1.pct(OpcodeGroup::Character);
    let rare_time = (t9.total(OpcodeGroup::Decimal) * t1.pct(OpcodeGroup::Decimal)
        + t9.total(OpcodeGroup::Character) * t1.pct(OpcodeGroup::Character))
        / 100.0;
    println!(
        "DECIMAL+CHARACTER: {:.2}% of instructions, {:.2} cycles/instruction of the total {:.2}",
        rare_freq,
        rare_time,
        a.cpi()
    );
}
