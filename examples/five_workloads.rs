//! Per-workload comparison: run each of the paper's five workloads
//! separately and print a side-by-side matrix — the variation the
//! composite averages over ("these results are, of course, dependent on
//! the characteristics of that workload", §6).
//!
//! ```sh
//! cargo run --release --example five_workloads [instructions]
//! ```

use vax780_core::Experiment;
use vax_analysis::tables::{Table1, Table8};
use vax_analysis::{Column, Section4Stats};
use vax_arch::OpcodeGroup;
use vax_workloads::WorkloadKind;

fn main() {
    let instructions: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150_000);

    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        eprintln!("running {} ...", kind.name());
        let a = Experiment::new(kind)
            .instructions(instructions)
            .run()
            .analysis();
        let t1 = Table1::from_analysis(&a);
        let t8 = Table8::from_analysis(&a);
        let s4 = Section4Stats::from_analysis(&a);
        rows.push((
            kind.name(),
            a.cpi(),
            t1.pct(OpcodeGroup::Float),
            t1.pct(OpcodeGroup::Decimal) + t1.pct(OpcodeGroup::Character),
            t8.col_totals[Column::RStall.index()]
                + t8.col_totals[Column::WStall.index()]
                + t8.col_totals[Column::IbStall.index()],
            s4.cache_miss_per_instr(),
            s4.tb_miss_per_instr,
        ));
    }

    println!(
        "{:<20} {:>6} {:>8} {:>9} {:>8} {:>9} {:>9}",
        "workload", "CPI", "FLOAT%", "DEC+CHR%", "stalls", "c-miss", "tb-miss"
    );
    for (name, cpi, float, decchr, stalls, cmiss, tbmiss) in &rows {
        println!(
            "{name:<20} {cpi:>6.2} {float:>8.2} {decchr:>9.2} {stalls:>8.2} {cmiss:>9.3} {tbmiss:>9.4}"
        );
    }
    println!("\ncomposite target (paper): CPI 10.59, stalls 2.13, c-miss 0.280, tb-miss 0.029");
}
