#!/bin/sh
# Repository gate: formatting, lints, and the full test suite.
# Run from the workspace root before committing.
set -eux

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
