#!/bin/sh
# Repository gate: formatting, lints, and the full test suite.
# Run from the workspace root before committing.
set -eux

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
# Static verification: every built-in profile must lint clean, warnings
# promoted to errors (generation is seed-deterministic, so this is stable).
cargo run --release -- lint --all-profiles --deny all
