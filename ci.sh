#!/bin/sh
# Repository gate: formatting, lints, and the full test suite.
# Run from the workspace root before committing.
set -eux

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
# Static verification: every built-in profile must lint clean — with
# the block-tier effect audit included — warnings promoted to errors
# (generation is seed-deterministic, so this is stable).
cargo run --release -- lint --all-profiles --effects --deny all

# Derived-effects + abstract-interpretation gate: the exhaustive
# block/resume safety audit, SMC-freedom and stack-depth proofs for
# every profile image, and the static run-length prediction reconciled
# against a real 200k-instruction block-tier run per profile (the
# pinned spec RUN_LENGTH_TOLERANCE is calibrated at). --deny all
# promotes any foregone-coverage or reconcile drift to an error.
cargo run --release -- verify --all-profiles --instructions 200000 --deny all

# Fault-campaign gate: an injected run must take its machine checks and
# still reconcile all three instruments exactly (nonzero exit otherwise).
cargo run --release -- inject --faults parity,sbi-timeout --seed 780 \
    --workload educational --instructions 20000 --warmup 5000 --report

# Checkpoint/resume gate: "kill" a composite campaign after 2 jobs, resume
# it from the checkpoint, and require the exact numbers of an
# uninterrupted campaign.
CKPT_DIR=$(mktemp -d)
trap 'rm -rf "$CKPT_DIR"' EXIT
cargo run --release -- run --workload all --instructions 5000 --warmup 1500 \
    > "$CKPT_DIR/uninterrupted.txt"
cargo run --release -- run --workload all --instructions 5000 --warmup 1500 \
    --checkpoint "$CKPT_DIR/campaign.ckpt" --halt-after 2 > /dev/null
cargo run --release -- run --workload all --instructions 5000 --warmup 1500 \
    --checkpoint "$CKPT_DIR/campaign.ckpt" > "$CKPT_DIR/resumed.txt"
diff "$CKPT_DIR/uninterrupted.txt" "$CKPT_DIR/resumed.txt"

# Serve gate: the job queue must survive kill -9. Start a server, feed
# it a mixed batch (one fault-plan job included) over its socket,
# SIGKILL it mid-queue, then settle the same journal offline — the
# merged result JSONL must be byte-identical to an uninterrupted
# serial reference: zero lost, zero duplicated, bit-identical.
cargo build --release
VAX780=target/release/vax780
SERVE_SPECS="workload=timesharing-light instructions=500000 warmup=5000 seed=1
workload=sci-eng instructions=500000 warmup=5000 seed=2
workload=commercial instructions=500000 warmup=5000 seed=3 faults=cache-parity+sbi-timeout fault-seed=780 fault-count=2
workload=educational instructions=2000000 warmup=5000 seed=4
workload=timesharing-heavy instructions=3000000 warmup=5000 seed=5"
echo "$SERVE_SPECS" | while IFS= read -r spec; do
    "$VAX780" enqueue --queue "$CKPT_DIR/reference.journal" --spec "$spec"
done
"$VAX780" drain --queue "$CKPT_DIR/reference.journal" --serial \
    --out "$CKPT_DIR/reference.jsonl"
"$VAX780" serve --queue "$CKPT_DIR/live.journal" \
    --socket "$CKPT_DIR/sock" --jobs 2 &
SERVE_PID=$!
echo "$SERVE_SPECS" | while IFS= read -r spec; do
    "$VAX780" enqueue --socket "$CKPT_DIR/sock" --spec "$spec"
done
# Wait for the first settled job, then kill -9 mid-queue.
while ! grep -q '^complete ' "$CKPT_DIR/live.journal" 2>/dev/null; do
    sleep 0.05
done
kill -9 "$SERVE_PID"
wait "$SERVE_PID" || true
# The kill must have left unsettled work behind, or the gate proves
# nothing.
SETTLED=$(grep -c -e '^complete ' -e '^fail ' "$CKPT_DIR/live.journal")
test "$SETTLED" -lt 5
# Restart the queue offline; the merge must match the reference bit
# for bit.
"$VAX780" drain --queue "$CKPT_DIR/live.journal" --jobs 2 \
    --out "$CKPT_DIR/merged.jsonl"
diff "$CKPT_DIR/reference.jsonl" "$CKPT_DIR/merged.jsonl"
test "$(wc -l < "$CKPT_DIR/merged.jsonl")" -eq 5

# Compaction gate: fold settled records into the v2 snapshot segment
# mid-campaign (over the socket, with auto-compaction armed), kill -9
# the server, compact the crash survivor again offline, and resume —
# the merged results must still match the reference bit for bit.
"$VAX780" serve --queue "$CKPT_DIR/compact.journal" \
    --socket "$CKPT_DIR/csock" --jobs 2 --compact-every 2 &
SERVE_PID=$!
echo "$SERVE_SPECS" | while IFS= read -r spec; do
    "$VAX780" enqueue --socket "$CKPT_DIR/csock" --spec "$spec"
done
while ! grep -q '^complete ' "$CKPT_DIR/compact.journal" 2>/dev/null; do
    sleep 0.05
done
"$VAX780" compact --socket "$CKPT_DIR/csock"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" || true
# The snapshot segment exists and carries the v2 header.
test -s "$CKPT_DIR/compact.journal.snap"
grep -q '^vax-queue-snapshot v2 ' "$CKPT_DIR/compact.journal.snap"
# Offline compaction of the crash survivor must be safe too.
"$VAX780" compact --queue "$CKPT_DIR/compact.journal"
"$VAX780" drain --queue "$CKPT_DIR/compact.journal" --jobs 2 \
    --out "$CKPT_DIR/compacted.jsonl"
diff "$CKPT_DIR/reference.jsonl" "$CKPT_DIR/compacted.jsonl"

# Remote-worker gate: a server with zero local workers on TCP, one
# `vax780 worker` process settling the queue over the claim protocol.
# The streamed results — digests included — must be byte-identical to
# the in-process reference.
"$VAX780" serve --queue "$CKPT_DIR/remote.journal" \
    --socket tcp:127.0.0.1:17780 --jobs 0 &
SERVE_PID=$!
echo "$SERVE_SPECS" | while IFS= read -r spec; do
    "$VAX780" enqueue --socket tcp:127.0.0.1:17780 --spec "$spec"
done
"$VAX780" worker --connect tcp:127.0.0.1:17780 &
WORKER_PID=$!
"$VAX780" drain --socket tcp:127.0.0.1:17780 --out "$CKPT_DIR/remote.jsonl"
wait "$SERVE_PID"
wait "$WORKER_PID"
diff "$CKPT_DIR/reference.jsonl" "$CKPT_DIR/remote.jsonl"

# Self-characterization gate: the full probe campaign — every opcode x
# addressing-mode pair the five profiles execute, plus the per-mode
# reference carriers — must measure, reconcile all three instruments
# exactly, and agree with the static latency model everywhere except
# the refinements recorded (with evidence) in PROBE_ALLOW.txt. Stale
# allowlist entries are warnings, promoted to errors here by --deny all.
cargo run --release -- probe --allowlist PROBE_ALLOW.txt --deny all \
    --out "$CKPT_DIR/probe-tables.txt"
# The artifact must round-trip and carry its provenance stamps.
test -s "$CKPT_DIR/probe-tables.txt"
grep -q '^vax-probe-tables v1$' "$CKPT_DIR/probe-tables.txt"
grep -q '^meta cpu-model ' "$CKPT_DIR/probe-tables.txt"
grep -q '^end$' "$CKPT_DIR/probe-tables.txt"

# Simulator benchmark gate (the host-loop trajectory): run all three
# interpreter tiers — naive byte-by-byte, predecode fast loop, and the
# block-compiled tier — and fail on ANY instrument divergence between
# them: bit-identical histograms, hardware counters, and trace streams,
# plus proof that each accelerated tier actually engaged (predecode
# hits, replayed block instructions), or nonzero exit. Sizes are pinned
# smaller than the committed BENCH_7.json (which is regenerated at the
# default spec) so the gate stays fast; the equivalence machinery
# exercised is identical.
cargo run --release -- bench --instructions 200000 --trace-instructions 10000 \
    --warmup 10000 --repeat 2 --tier naive --tier fast --tier block \
    --json "$CKPT_DIR/BENCH_ci.json"

# The --tier flag must reject unknown tiers instead of silently
# benchmarking the defaults.
if cargo run --release -- bench --tier warp > /dev/null 2>&1; then
    echo "bench --tier accepted an unknown tier" >&2
    exit 1
fi
