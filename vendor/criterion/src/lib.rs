//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion 0.5 API used by `crates/bench`:
//! `Criterion`, `benchmark_group` with `sample_size` / `throughput`,
//! `Bencher::iter`, `Throughput::Elements`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical machinery it reports a simple min/mean over a fixed
//! number of timed samples — enough to compare runs by eye and to keep
//! the benches executable without crates.io access.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times one benchmark routine.
pub struct Bencher {
    samples: usize,
    /// Per-sample wall time, filled by [`Bencher::iter`].
    times: Vec<Duration>,
}

impl Bencher {
    /// Run `routine` repeatedly, timing each sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup run.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

fn report(id: &str, times: &[Duration], throughput: Option<Throughput>) {
    if times.is_empty() {
        println!("bench {id:<40} (no samples)");
        return;
    }
    let min = times.iter().min().copied().unwrap_or_default();
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let mut line = format!(
        "bench {id:<40} min {:>12.3?} mean {:>12.3?} ({} samples)",
        min,
        mean,
        times.len()
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let secs = mean.as_secs_f64();
        if secs > 0.0 {
            line.push_str(&format!("  {:>12.0} {unit}", count as f64 / secs));
        }
    }
    println!("{line}");
}

/// Benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Time a single function under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b);
        report(id, &b.times, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A named set of benchmarks sharing sample-size / throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time one function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b.times, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a.wrapping_add(b))
    }

    fn bench(c: &mut Criterion) {
        c.bench_function("sum_direct", |b| {
            b.iter(|| black_box(sum_to(black_box(1000))))
        });
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1000));
        group.bench_function("sum", |b| b.iter(|| black_box(sum_to(1000))));
        group.finish();
    }

    criterion_group!(benches, bench);

    #[test]
    fn group_runs_all_targets() {
        benches();
    }
}
