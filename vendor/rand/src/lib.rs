//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! workspace `rand` dependency points here. It implements exactly the
//! rand 0.9 surface the simulator uses — `StdRng::seed_from_u64`,
//! `Rng::random`, `Rng::random_range` and `Rng::random_bool` — with a
//! deterministic xoshiro256++ generator. Streams are *not* bit-compatible
//! with upstream rand; everything downstream only requires determinism
//! given a seed, which this provides.

#![forbid(unsafe_code)]

/// Pseudo-random generator core: the engine the [`Rng`] extension trait
/// builds on.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generators, keyed by name for drop-in compatibility.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state, the
            // construction the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A type that can be drawn from the standard uniform distribution.
pub trait StandardUniform: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range argument accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = ((end as $u).wrapping_sub(start as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

/// User-facing random methods; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the standard distribution of `T`.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A value uniform over `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.random_range(2..=5u16);
            assert!((2..=5).contains(&w));
            let s = rng.random_range(-8..8i32);
            assert!((-8..8).contains(&s));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
