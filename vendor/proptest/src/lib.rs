//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds with no crates.io access, so this crate provides
//! the proptest surface the test suite uses: the `proptest!` /
//! `prop_assert*!` / `prop_oneof!` macros, the [`strategy::Strategy`]
//! combinators (`prop_map`, `prop_flat_map`, `boxed`), range / tuple /
//! `Vec` / `any::<T>()` / `Just` / `select` strategies and
//! `prop::collection::vec`. Semantics differ from upstream in one
//! deliberate way: failing cases are *not shrunk* — the failing input is
//! reported as generated. Generation is deterministic per test case
//! index, so failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic per-case random source.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// An rng fully determined by the test-case index (and a fixed
        /// stream constant, so consecutive cases are decorrelated).
        pub fn deterministic(case: u64) -> TestRng {
            TestRng(StdRng::seed_from_u64(
                case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5DEE_CE66_D1CE_4E5B,
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Run configuration; only the case count is meaningful here.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// A failed property case (assertion message carried as text).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A value generator. Upstream proptest separates generation from
    /// shrinking via `ValueTree`; here a strategy simply samples.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
        }
    }

    /// Strategy yielding one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Type-erased strategy handle (cheaply cloneable).
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between alternative strategies (what `prop_oneof!`
    /// builds).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// A union over the given (non-empty) alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rand::Rng::random_range(rng, 0..self.0.len());
            self.0[idx].sample(rng)
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Result of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// One value per element strategy (used by `prop_flat_map` to build
    /// operand lists of instruction-dependent arity).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.sample(rng)).collect()
        }
    }

    /// Minimal regex-pattern string strategy. Supports the `.{m,n}`
    /// form (a printable-ASCII string of length `m..=n`); any other
    /// pattern falls back to an arbitrary short printable string.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let len = match parse_dot_repeat(self) {
                Some((lo, hi)) => rand::Rng::random_range(rng, lo..=hi),
                None => rand::Rng::random_range(rng, 0usize..=64),
            };
            (0..len)
                .map(|_| rand::Rng::random_range(rng, 0x20u8..0x7F) as char)
                .collect()
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rand::Rng::random(rng)
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length bound accepted by [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for vectors with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::random_range(rng, self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy drawing uniformly from a fixed set of values.
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rand::Rng::random_range(rng, 0..self.0.len())].clone()
        }
    }

    /// `prop::sample::select(values)`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select() needs at least one value");
        Select(values)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`,
    /// `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Each function body runs once per generated
/// case; arguments are either `pattern in strategy` or `name: Type`
/// (shorthand for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            for __case in 0..__config.cases {
                let __outcome = {
                    let mut __rng =
                        $crate::test_runner::TestRng::deterministic(u64::from(__case));
                    let mut __body = || -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $crate::__proptest_bind!(__rng; $($args)*);
                        $body
                        ::core::result::Result::Ok(())
                    };
                    __body()
                };
                if let ::core::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest property `{}` failed at case {}:\n{}",
                        stringify!($name),
                        __case,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty =
            $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), &mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty =
            $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Assert a condition, failing the current case (without panicking the
/// generator loop directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality with Debug output on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Assert inequality with Debug output on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
}

/// Uniform choice among heterogeneous strategy expressions producing the
/// same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u8, u8)> {
        (0u8..10, 20u8..30)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_tuples((a, b) in pair()) {
            prop_assert!(a < 10);
            prop_assert!((20..30).contains(&b));
        }

        #[test]
        fn shorthand_args(x: u32, flip in any::<bool>()) {
            let _ = flip;
            prop_assert_eq!(x, x);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u16..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u32..4).prop_map(|x| x * 2),
            Just(99u32),
        ]) {
            prop_assert!(v == 99 || v % 2 == 0);
        }

        #[test]
        fn flat_map_vec_of_boxed(ops in (1usize..4).prop_flat_map(|n| {
            let strategies: Vec<BoxedStrategy<u8>> =
                (0..n).map(|_| (0u8..7).boxed()).collect();
            (Just(n), strategies)
        })) {
            let (n, vals) = ops;
            prop_assert_eq!(n, vals.len());
        }

        #[test]
        fn select_strategy(x in prop::sample::select(vec![3u8, 5, 7])) {
            prop_assert!([3, 5, 7].contains(&x));
        }

        #[test]
        fn regex_strings(s in ".{0,20}") {
            prop_assert!(s.len() <= 20);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn failing_property_panics_with_message() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(3))]
                fn always_fails(x: u8) {
                    prop_assert!(x != x, "impossible for {}", x);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
