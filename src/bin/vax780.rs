//! `vax780` — command-line front end for the characterization study.
//!
//! ```text
//! vax780 run [--workload NAME|all] [--instructions N] [--warmup N]
//!            [--decode-overlap] [--save-histogram FILE]
//!            [--jobs N] [--serial] [--metrics]
//!            [--checkpoint FILE] [--halt-after N]
//!            [--retry N] [--retry-backoff-ms MS]
//! vax780 serve --queue FILE --socket PATH|tcp:ADDR [--jobs N]
//!              [--capacity N] [--client-quota N] [--compact-every N]
//!              [--retry N] [--retry-backoff-ms MS]
//!              [--timeout-secs S] [--process-workers] [--metrics]
//! vax780 enqueue (--queue FILE | --socket PATH) [--client NAME] --spec LINE...
//! vax780 status (--queue FILE | --socket PATH)
//! vax780 drain (--queue FILE [--jobs N] ... | --socket PATH) [--out FILE]
//! vax780 worker --connect PATH|tcp:ADDR [--timeout-secs S] [--process-workers]
//! vax780 compact (--queue FILE | --socket PATH)
//! vax780 sweep [--workload NAME|all] [--instructions N] [--warmup N]
//!              [--axis NAME]... [--jobs N] [--serial]
//!              [--csv FILE] [--jsonl FILE] [--metrics]
//! vax780 trace [--workload NAME] [--instructions N] [--warmup N]
//!              [--trace-out FILE] [--trace-format jsonl|chrome]
//!              [--trace-limit N] [--metrics]
//! vax780 inject (--fault-plan FILE | --faults LIST [--seed N])
//!               [--workload NAME] [--instructions N] [--warmup N]
//!               [--report]
//! vax780 probe [--pair MN:CLASS|none]... [--unroll N] [--iters N]
//!              [--allowlist FILE] [--out FILE]
//!              [--samples FILE] [--folded FILE]
//!              [--jsonl] [--deny RULE|all]
//! vax780 report --histogram FILE [--instructions-hint N] [--json FILE]
//! vax780 disasm --workload NAME [--function K] [--lines N]
//! vax780 bench [--instructions N] [--trace-instructions N] [--warmup N]
//!              [--tier naive|fast|block]... [--json FILE]
//! vax780 list
//! ```
//!
//! `run` measures one workload (or the five-workload composite, fanned
//! across a worker pool), prints every table plus the paper comparison,
//! and can save the raw histogram; `serve` runs the crash-safe campaign
//! server: a persistent `vax-queue-journal v2` job queue (append-only
//! tail plus a compacted snapshot of settled jobs, so replay stays
//! O(unsettled) no matter the history) drained by a worker pool
//! (threads, `job-worker` OS processes with `--process-workers`, or
//! remote `vax780 worker --connect` processes claiming over TCP),
//! listening on a Unix socket or TCP address with bounded-capacity
//! backpressure and optional per-client quotas — `enqueue`, `status`,
//! `drain`, and `compact` are its clients (each also works offline
//! against `--queue` when no server owns the journal); a SIGKILLed
//! server restarts from the
//! journal and re-runs only unsettled jobs, bit-identically; `sweep` re-measures the composite
//! under a grid of machine ablations (§6 what-ifs by simulation) and
//! emits a per-point CPI/stall table plus optional CSV/JSONL; `trace`
//! runs a workload with the second instrument attached (the event
//! tracer riding alongside the µPC board), exports the trace, and
//! reconciles the two instruments against the hardware counters;
//! `inject` runs a workload under a deterministic fault plan — the
//! scheduled faults trap to machine-check microcode, every instrument
//! attributes the recovery cycles, and the run must still reconcile
//! exactly (with `--report`, a clean baseline and one run per fault
//! class quantify ΔCPI per class);
//! `probe` characterizes the machine from the outside: one generated
//! microbenchmark per opcode × addressing-mode pair, measured under
//! every instrument at once, differenced against a calibration loop,
//! and diffed bucket-by-bucket against the static latency model —
//! disagreements become typed `probe-*` diagnostics unless an
//! allowlist accepts them as measured refinements;
//! `report` re-analyses a saved histogram (the paper's "additional
//! interpretation of the raw histogram data", §2.2); `disasm` shows the
//! generated VAX code a workload actually runs; `bench` measures the
//! *simulator* — the naive byte-by-byte loop vs the predecode-cache
//! fast loop vs the block-compiled tier (select with `--tier`, default
//! all three) over all five workloads — and fails unless every tier
//! produces bit-identical histograms, counters, and trace streams.
//!
//! Unrecognized options are an error: a typo aborts the run instead of
//! silently measuring the defaults.

use std::process::ExitCode;
use vax780_core::sweep::{Sweep, SweepAxis, SweepGrid};
use vax780_core::{Checkpoint, CompositeStudy, Experiment, RetryPolicy};
use vax_analysis::report::StudyReport;
use vax_analysis::Analysis;
use vax_cpu::CpuConfig;
use vax_ucode::ControlStore;
use vax_workloads::{profile, WorkloadKind};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => checked(cmd_run, "run", &args[1..], RUN_SPEC),
        Some("sweep") => checked(cmd_sweep, "sweep", &args[1..], SWEEP_SPEC),
        Some("trace") => checked(cmd_trace, "trace", &args[1..], TRACE_SPEC),
        Some("inject") => checked(cmd_inject, "inject", &args[1..], INJECT_SPEC),
        Some("report") => checked(cmd_report, "report", &args[1..], REPORT_SPEC),
        Some("probe") => checked(cmd_probe, "probe", &args[1..], PROBE_SPEC),
        Some("disasm") => checked(cmd_disasm, "disasm", &args[1..], DISASM_SPEC),
        Some("lint") => checked(cmd_lint, "lint", &args[1..], LINT_SPEC),
        Some("verify") => checked(cmd_verify, "verify", &args[1..], VERIFY_SPEC),
        Some("bench") => checked(cmd_bench, "bench", &args[1..], BENCH_SPEC),
        Some("serve") => checked(cmd_serve, "serve", &args[1..], SERVE_SPEC),
        Some("enqueue") => checked(cmd_enqueue, "enqueue", &args[1..], ENQUEUE_SPEC),
        Some("status") => checked(cmd_status, "status", &args[1..], STATUS_SPEC),
        Some("drain") => checked(cmd_drain, "drain", &args[1..], DRAIN_SPEC),
        Some("worker") => checked(cmd_worker, "worker", &args[1..], WORKER_SPEC),
        Some("compact") => checked(cmd_compact, "compact", &args[1..], COMPACT_SPEC),
        // Internal: one job per process, spec on stdin, result blob on
        // stdout (spawned by `serve --process-workers`).
        Some("job-worker") => checked(cmd_job_worker, "job-worker", &args[1..], &[]),
        Some("list") => checked(
            |_| {
                for kind in WorkloadKind::ALL {
                    println!("{}", kind.name());
                }
                ExitCode::SUCCESS
            },
            "list",
            &args[1..],
            &[],
        ),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str =
    "usage: vax780 <run|sweep|serve|enqueue|status|drain|worker|compact|trace|inject|probe|\
     report|disasm|lint|verify|bench|list> [options]\n\
     \n\
     run     --workload NAME|all  --instructions N  --warmup N\n\
     \x20       --decode-overlap  --save-histogram FILE\n\
     \x20       --jobs N  --serial  --metrics\n\
     \x20       --checkpoint FILE  --halt-after N\n\
     \x20       --retry N  --retry-backoff-ms MS\n\
     serve   --queue FILE  --socket PATH|tcp:ADDR  --jobs N  --capacity N\n\
     \x20       --client-quota N  --compact-every N\n\
     \x20       --retry N  --retry-backoff-ms MS  --timeout-secs S\n\
     \x20       --process-workers  --metrics\n\
     \x20       (--jobs 0 = no local workers; remote `vax780 worker` only)\n\
     enqueue (--queue FILE | --socket PATH)  --client NAME  --spec LINE (repeatable)\n\
     \x20       (spec: workload=NAME instructions=N warmup=N [seed=N] [tier=T]\n\
     \x20        [decode-overlap=1] [cache-kb=N] [cache-ways=N] [tb-entries=N]\n\
     \x20        [write-buffer=N] [faults=A+B fault-seed=N fault-count=N fault-window=N])\n\
     status  (--queue FILE | --socket PATH)\n\
     drain   (--queue FILE  --jobs N  --retry N  --retry-backoff-ms MS\n\
     \x20        --timeout-secs S  --process-workers | --socket PATH)  --out FILE\n\
     worker  --connect PATH|tcp:ADDR  --timeout-secs S  --process-workers\n\
     \x20       (claim jobs from a remote `serve` until it drains)\n\
     compact (--queue FILE | --socket PATH)\n\
     \x20       (fold settled records into the journal's snapshot segment)\n\
     sweep   --workload NAME|all  --instructions N  --warmup N\n\
     \x20       --axis cache-size|cache-ways|tb-entries|tb-split|write-buffer|decode-overlap\n\
     \x20       --jobs N  --serial  --csv FILE  --jsonl FILE  --metrics\n\
     \x20       --retry N  --retry-backoff-ms MS\n\
     trace   --workload NAME  --instructions N  --warmup N\n\
     \x20       --trace-out FILE  --trace-format jsonl|chrome\n\
     \x20       --trace-limit N  --metrics\n\
     inject  --fault-plan FILE | --faults CLASS[,CLASS...]  --seed N\n\
     \x20       --workload NAME  --instructions N  --warmup N  --report\n\
     \x20       (classes: cache-parity tb-corrupt sbi-timeout write-buffer cs-bit-flip)\n\
     probe   --pair MN:CLASS|none (repeatable)  --unroll N  --iters N\n\
     \x20       --allowlist FILE  --out FILE  --samples FILE  --folded FILE\n\
     \x20       --jsonl  --deny RULE|all\n\
     report  --histogram FILE  --instructions-hint N  --json FILE\n\
     disasm  --workload NAME  --function K  --lines N\n\
     lint    --profile NAME  --all-profiles  --image FILE\n\
     \x20       --emit-image FILE  --effects  --list-rules\n\
     \x20       --jsonl  --deny RULE|all\n\
     verify  --profile NAME|--all-profiles  --instructions N\n\
     \x20       --static-only  --jsonl  --deny RULE|all\n\
     bench   --instructions N  --trace-instructions N  --warmup N\n\
     \x20       --repeat N  --tier naive|fast|block (repeatable)  --json FILE\n\
     list    (print workload names)";

/// Option spec for one subcommand: `(name, takes_value)`.
type Spec = &'static [(&'static str, bool)];

const RUN_SPEC: Spec = &[
    ("--workload", true),
    ("--instructions", true),
    ("--warmup", true),
    ("--decode-overlap", false),
    ("--save-histogram", true),
    ("--jobs", true),
    ("--serial", false),
    ("--metrics", false),
    ("--checkpoint", true),
    ("--halt-after", true),
    ("--retry", true),
    ("--retry-backoff-ms", true),
];
const SWEEP_SPEC: Spec = &[
    ("--workload", true),
    ("--instructions", true),
    ("--warmup", true),
    ("--axis", true),
    ("--jobs", true),
    ("--serial", false),
    ("--csv", true),
    ("--jsonl", true),
    ("--metrics", false),
    ("--retry", true),
    ("--retry-backoff-ms", true),
];
const SERVE_SPEC: Spec = &[
    ("--queue", true),
    ("--socket", true),
    ("--jobs", true),
    ("--serial", false),
    ("--capacity", true),
    ("--client-quota", true),
    ("--compact-every", true),
    ("--retry", true),
    ("--retry-backoff-ms", true),
    ("--timeout-secs", true),
    ("--process-workers", false),
    ("--metrics", false),
];
const ENQUEUE_SPEC: Spec = &[
    ("--queue", true),
    ("--socket", true),
    ("--client", true),
    ("--spec", true),
];
const WORKER_SPEC: Spec = &[
    ("--connect", true),
    ("--timeout-secs", true),
    ("--process-workers", false),
];
const COMPACT_SPEC: Spec = &[("--queue", true), ("--socket", true)];
const STATUS_SPEC: Spec = &[("--queue", true), ("--socket", true)];
const DRAIN_SPEC: Spec = &[
    ("--queue", true),
    ("--socket", true),
    ("--jobs", true),
    ("--serial", false),
    ("--retry", true),
    ("--retry-backoff-ms", true),
    ("--timeout-secs", true),
    ("--process-workers", false),
    ("--out", true),
];
const TRACE_SPEC: Spec = &[
    ("--workload", true),
    ("--instructions", true),
    ("--warmup", true),
    ("--trace-out", true),
    ("--trace-format", true),
    ("--trace-limit", true),
    ("--metrics", false),
];
const INJECT_SPEC: Spec = &[
    ("--workload", true),
    ("--instructions", true),
    ("--warmup", true),
    ("--fault-plan", true),
    ("--faults", true),
    ("--seed", true),
    ("--report", false),
];
const REPORT_SPEC: Spec = &[
    ("--histogram", true),
    ("--instructions-hint", true),
    ("--json", true),
];
const PROBE_SPEC: Spec = &[
    ("--pair", true),
    ("--unroll", true),
    ("--iters", true),
    ("--allowlist", true),
    ("--out", true),
    ("--samples", true),
    ("--folded", true),
    ("--jsonl", false),
    ("--deny", true),
];
const DISASM_SPEC: Spec = &[
    ("--workload", true),
    ("--function", true),
    ("--lines", true),
];
const BENCH_SPEC: Spec = &[
    ("--instructions", true),
    ("--trace-instructions", true),
    ("--warmup", true),
    ("--repeat", true),
    ("--tier", true),
    ("--json", true),
];
const LINT_SPEC: Spec = &[
    ("--profile", true),
    ("--all-profiles", false),
    ("--image", true),
    ("--emit-image", true),
    ("--effects", false),
    ("--list-rules", false),
    ("--jsonl", false),
    ("--deny", true),
];
const VERIFY_SPEC: Spec = &[
    ("--profile", true),
    ("--all-profiles", false),
    ("--instructions", true),
    ("--static-only", false),
    ("--jsonl", false),
    ("--deny", true),
];

/// Reject unrecognized options before dispatching: a typo like
/// `--instruction` must abort, not silently run the defaults.
fn check_args(cmd: &str, args: &[String], spec: Spec) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        match spec.iter().find(|(name, _)| name == a) {
            Some((name, true)) => {
                if i + 1 >= args.len() {
                    return Err(format!("vax780 {cmd}: option '{name}' requires a value"));
                }
                i += 2;
            }
            Some((_, false)) => i += 1,
            None if a.starts_with("--") => {
                return Err(format!("vax780 {cmd}: unrecognized option '{a}'"));
            }
            None => return Err(format!("vax780 {cmd}: unexpected argument '{a}'")),
        }
    }
    Ok(())
}

fn checked(
    cmd: impl Fn(&[String]) -> ExitCode,
    name: &str,
    args: &[String],
    spec: Spec,
) -> ExitCode {
    match check_args(name, args, spec) {
        Ok(()) => cmd(args),
        Err(message) => {
            eprintln!("{message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn opt<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Every value of a repeatable option, in order.
fn opt_all<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Worker-pool size from `--jobs`/`--serial` (`None` = library default).
fn jobs_arg(args: &[String]) -> Result<Option<usize>, String> {
    if flag(args, "--serial") {
        return Ok(Some(1));
    }
    match opt(args, "--jobs") {
        None => Ok(None),
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(format!("--jobs wants a positive integer, got '{s}'")),
        },
    }
}

/// Retry policy from `--retry`/`--retry-backoff-ms` (`None` = library
/// default). `--retry N` means N retries *after* the first attempt.
/// Non-numeric values are an error naming the flag.
fn retry_arg(args: &[String]) -> Result<Option<RetryPolicy>, String> {
    let retries = match opt(args, "--retry") {
        None => None,
        Some(s) => match s.parse::<u32>() {
            Ok(n) => Some(n),
            Err(_) => return Err(format!("--retry wants a non-negative integer, got '{s}'")),
        },
    };
    let backoff_ms = match opt(args, "--retry-backoff-ms") {
        None => None,
        Some(s) => match s.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                return Err(format!(
                    "--retry-backoff-ms wants a non-negative integer of milliseconds, got '{s}'"
                ))
            }
        },
    };
    if retries.is_none() && backoff_ms.is_none() {
        return Ok(None);
    }
    let default = RetryPolicy::default();
    Ok(Some(RetryPolicy::from_retries(
        retries.unwrap_or(default.max_attempts.saturating_sub(1)),
        backoff_ms.unwrap_or(default.backoff.as_millis() as u64),
    )))
}

fn parse_kind(name: &str) -> Option<WorkloadKind> {
    WorkloadKind::ALL.into_iter().find(|k| k.name() == name)
}

fn print_analysis(analysis: &Analysis) {
    let report = StudyReport::new(analysis);
    println!(
        "instructions {}   cycles {}   CPI {:.3}\n",
        analysis.instructions(),
        analysis.total_cycles(),
        analysis.cpi()
    );
    println!("{}", report.rendered_tables);
    println!("=== paper vs measured ===");
    println!("{}", report.comparison_table());
}

fn cmd_run(args: &[String]) -> ExitCode {
    let instructions: u64 = opt(args, "--instructions")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let warmup: u64 = opt(args, "--warmup")
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let workload = opt(args, "--workload").unwrap_or("all");
    let jobs = match jobs_arg(args) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let retry = match retry_arg(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cpu_config = CpuConfig::default();
    if flag(args, "--decode-overlap") {
        cpu_config = CpuConfig::with_decode_overlap();
    }
    let checkpoint_path = opt(args, "--checkpoint");
    let halt_after: Option<usize> = match opt(args, "--halt-after") {
        None => None,
        Some(s) => match s.parse() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("--halt-after wants a non-negative integer, got '{s}'");
                return ExitCode::FAILURE;
            }
        },
    };
    if halt_after.is_some() && checkpoint_path.is_none() {
        eprintln!("--halt-after only makes sense with --checkpoint");
        return ExitCode::FAILURE;
    }
    if checkpoint_path.is_some() && workload != "all" {
        eprintln!("--checkpoint resumes the composite campaign; use --workload all");
        return ExitCode::FAILURE;
    }

    let (analysis, histogram, counters) = if workload == "all" {
        eprintln!("running composite: 5 workloads x {instructions} instructions ...");
        let mut study = CompositeStudy::new(instructions)
            .warmup(warmup)
            .cpu_config(cpu_config);
        if let Some(n) = jobs {
            study = study.max_workers(n);
        }
        if let Some(policy) = retry {
            study = study.retry(policy);
        }
        let outcome = match checkpoint_path {
            Some(path) => {
                let mut cp =
                    match Checkpoint::open(std::path::Path::new(path), instructions, warmup) {
                        Ok(cp) => cp,
                        Err(e) => {
                            eprintln!("vax780 run: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                let restored = cp.completed().len();
                if restored > 0 {
                    eprintln!("resuming: {restored} job(s) restored from {path}");
                }
                match study.run_checkpointed(&mut cp, halt_after) {
                    Ok(o) => o,
                    Err(e) => {
                        eprintln!("vax780 run: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => study.run_supervised(),
        };
        let mut merged = upc_monitor::Histogram::new();
        let mut counters = vax_mem::HwCounters::new();
        for r in &outcome.results {
            eprintln!("  {:<20} CPI {:.2}", r.name, r.analysis().cpi());
            merged.merge(&r.histogram);
            counters.merge(&r.counters);
        }
        if flag(args, "--metrics") {
            println!("=== campaign self-metrics ===");
            println!("{}\n", outcome.metrics);
        }
        for f in &outcome.failures {
            eprintln!("quarantined: {f}");
        }
        if !outcome.failures.is_empty() {
            return ExitCode::FAILURE;
        }
        if !outcome.pending.is_empty() {
            // A deliberate halt is not a failure: the checkpoint holds
            // the completed jobs, resuming finishes the campaign.
            eprintln!(
                "halted: {} job(s) pending ({}); re-run with the same --checkpoint to resume",
                outcome.pending.len(),
                outcome.pending.join(", ")
            );
            return ExitCode::SUCCESS;
        }
        (outcome.analysis, merged, counters)
    } else {
        let Some(kind) = parse_kind(workload) else {
            eprintln!("unknown workload '{workload}'; try `vax780 list`");
            return ExitCode::FAILURE;
        };
        eprintln!("running {workload}: {instructions} instructions ...");
        let measured = Experiment::new(kind)
            .warmup(warmup)
            .instructions(instructions)
            .cpu_config(cpu_config)
            .run();
        let counters = measured.counters;
        (measured.analysis(), measured.histogram, counters)
    };

    print_analysis(&analysis);
    if let Some(path) = opt(args, "--save-histogram") {
        let text = upc_monitor::codec::to_text_with_counters(&histogram, &counters.to_pairs());
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("failed to save histogram to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("histogram saved to {path}");
    }
    ExitCode::SUCCESS
}

/// Re-measure the composite under a grid of machine ablations (§6) and
/// print the per-point CPI/stall breakdown, with optional CSV/JSONL
/// export and host-side self-metrics for the worker pool.
fn cmd_sweep(args: &[String]) -> ExitCode {
    let instructions: u64 = opt(args, "--instructions")
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let warmup: u64 = opt(args, "--warmup")
        .and_then(|s| s.parse().ok())
        .unwrap_or(15_000);
    let workload = opt(args, "--workload").unwrap_or("all");
    let jobs = match jobs_arg(args) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let retry = match retry_arg(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let kinds: Vec<WorkloadKind> = if workload == "all" {
        WorkloadKind::ALL.to_vec()
    } else {
        let Some(kind) = parse_kind(workload) else {
            eprintln!("unknown workload '{workload}'; try `vax780 list`");
            return ExitCode::FAILURE;
        };
        vec![kind]
    };

    let axis_names = opt_all(args, "--axis");
    let grid = if axis_names.is_empty() {
        SweepGrid::all()
    } else {
        let mut axes = Vec::new();
        for name in axis_names {
            let Some(axis) = SweepAxis::parse(name) else {
                eprintln!(
                    "unknown sweep axis '{name}' (want one of: {})",
                    SweepAxis::ALL.map(SweepAxis::name).join(", ")
                );
                return ExitCode::FAILURE;
            };
            axes.push(axis);
        }
        SweepGrid::with_axes(&axes)
    };

    eprintln!(
        "sweeping {} points x {} workload(s) x {instructions} instructions ...",
        grid.len(),
        kinds.len()
    );
    let mut sweep = Sweep::new(grid, instructions)
        .warmup(warmup)
        .with_kinds(&kinds);
    if let Some(n) = jobs {
        sweep = sweep.max_workers(n);
    }
    if let Some(policy) = retry {
        sweep = sweep.retry(policy);
    }
    let outcome = sweep.run();

    println!("=== configuration sweep ===");
    print!("{}", vax_analysis::sweep::render_table(&outcome.rows));

    for (path, text, what) in [
        opt(args, "--csv").map(|p| (p, vax_analysis::sweep::to_csv(&outcome.rows), "CSV")),
        opt(args, "--jsonl").map(|p| (p, vax_analysis::sweep::to_jsonl(&outcome.rows), "JSONL")),
    ]
    .into_iter()
    .flatten()
    {
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("failed to write {what} to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("{what} written to {path}");
    }

    if flag(args, "--metrics") {
        println!("\n=== sweep self-metrics ===");
        println!("{}", outcome.metrics);
    }
    ExitCode::SUCCESS
}

/// Parse the worker-pool options shared by `serve` and offline
/// `drain` — queue path, workers, capacity, retry, per-attempt
/// timeout — and pick the executor: in-process threads by default,
/// one `vax780 job-worker` OS process per attempt with
/// `--process-workers`.
fn pool_setup(
    args: &[String],
) -> Result<
    (
        vax_serve::ServeConfig,
        std::sync::Arc<dyn vax_serve::Executor>,
    ),
    String,
> {
    use vax_serve::ServeConfig;

    let jobs = pool_jobs_arg(args)?;
    let retry = retry_arg(args)?;
    let capacity = match opt(args, "--capacity") {
        None => None,
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => return Err(format!("--capacity wants a positive integer, got '{s}'")),
        },
    };
    let client_quota = match opt(args, "--client-quota") {
        None => None,
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                return Err(format!(
                    "--client-quota wants a positive integer, got '{s}'"
                ))
            }
        },
    };
    let compact_every = match opt(args, "--compact-every") {
        None => None,
        Some(s) => match s.parse::<usize>() {
            Ok(n) => Some(n),
            _ => {
                return Err(format!(
                    "--compact-every wants a non-negative integer (0 = never), got '{s}'"
                ))
            }
        },
    };
    let timeout = timeout_arg(args)?;
    let default = ServeConfig::default();
    let config = ServeConfig {
        journal: opt(args, "--queue").unwrap_or("queue.journal").into(),
        workers: jobs.unwrap_or(default.workers),
        capacity: capacity.unwrap_or(default.capacity),
        client_quota,
        compact_every: compact_every.unwrap_or(default.compact_every),
        retry: retry.unwrap_or(default.retry),
        timeout,
        drain_on_start: false,
    };
    Ok((config, executor_arg(args)?))
}

/// Worker-pool size for the queue commands: like [`jobs_arg`] but `0`
/// is legal — a listening server with `--jobs 0` runs no local workers
/// and leaves all execution to remote `vax780 worker` processes.
fn pool_jobs_arg(args: &[String]) -> Result<Option<usize>, String> {
    if flag(args, "--serial") {
        return Ok(Some(1));
    }
    match opt(args, "--jobs") {
        None => Ok(None),
        Some(s) => match s.parse::<usize>() {
            Ok(n) => Ok(Some(n)),
            _ => Err(format!("--jobs wants a non-negative integer, got '{s}'")),
        },
    }
}

/// Per-attempt deadline from `--timeout-secs`.
fn timeout_arg(args: &[String]) -> Result<Option<std::time::Duration>, String> {
    match opt(args, "--timeout-secs") {
        None => Ok(None),
        Some(s) => match s.parse::<u64>() {
            Ok(n) if n >= 1 => Ok(Some(std::time::Duration::from_secs(n))),
            _ => Err(format!(
                "--timeout-secs wants a positive integer of seconds, got '{s}'"
            )),
        },
    }
}

/// The executor for local attempts: in-process threads by default, one
/// `vax780 job-worker` OS process per attempt with `--process-workers`.
fn executor_arg(args: &[String]) -> Result<std::sync::Arc<dyn vax_serve::Executor>, String> {
    use std::sync::Arc;
    use vax_serve::{InProcessExecutor, ProcessExecutor};
    if flag(args, "--process-workers") {
        let exe = std::env::current_exe()
            .map_err(|e| format!("cannot locate the vax780 binary for --process-workers: {e}"))?;
        Ok(Arc::new(ProcessExecutor { exe }))
    } else {
        Ok(Arc::new(InProcessExecutor))
    }
}

/// Long-running campaign server: replay the queue journal, listen on
/// `--socket`, shard jobs across the worker pool, and keep every
/// state transition durable. Exits when a client sends `drain` or
/// `shutdown`; nonzero if any job settled as failed.
fn cmd_serve(args: &[String]) -> ExitCode {
    use vax_serve::{run_server, Endpoint};

    let (config, executor) = match pool_setup(args) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(socket) = opt(args, "--socket") else {
        eprintln!("serve wants --socket PATH|tcp:ADDR (offline settling is `drain --queue FILE`)");
        return ExitCode::FAILURE;
    };
    let endpoint = Endpoint::parse(socket);
    eprintln!(
        "vax780 serve: queue {} on {endpoint} ({} worker(s), capacity {})",
        config.journal.display(),
        config.workers,
        config.capacity
    );
    match run_server(&config, Some(&endpoint), executor) {
        Ok(report) => {
            println!("settled: {} done, {} failed", report.done, report.failed);
            if flag(args, "--metrics") {
                println!("\n=== serve self-metrics ===");
                println!("{}", report.metrics);
            }
            if report.failed > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("vax780 serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Append jobs to a queue: over `--socket` through a live server's
/// backpressure, or directly into a `--queue` journal while no server
/// owns it. Every spec is parsed and validated before the first one
/// is enqueued, so a typo admits nothing.
fn cmd_enqueue(args: &[String]) -> ExitCode {
    use std::time::Duration;
    use vax_serve::{Client, Endpoint, JobSpec, Journal};

    let lines = opt_all(args, "--spec");
    if lines.is_empty() {
        eprintln!("enqueue wants at least one --spec LINE (see `vax780` usage for the grammar)");
        return ExitCode::FAILURE;
    }
    let client_name = opt(args, "--client").unwrap_or("");
    if !client_name.is_empty() && !vax_serve::valid_client_name(client_name) {
        eprintln!("bad --client '{client_name}': one token of [A-Za-z0-9._@-], at most 64 bytes");
        return ExitCode::FAILURE;
    }
    let mut specs = Vec::new();
    for line in &lines {
        match JobSpec::parse(line).and_then(|s| s.validate().map(|()| s)) {
            Ok(spec) => specs.push(spec),
            Err(e) => {
                eprintln!("bad --spec '{line}': {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match (opt(args, "--queue"), opt(args, "--socket")) {
        (Some(_), Some(_)) => {
            eprintln!("enqueue wants exactly one of --queue or --socket, not both");
            ExitCode::FAILURE
        }
        (None, None) => {
            eprintln!("enqueue wants --queue FILE or --socket PATH|tcp:ADDR");
            ExitCode::FAILURE
        }
        (Some(queue), None) => {
            let mut journal = match Journal::open(std::path::Path::new(queue)) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            for w in journal.warnings() {
                eprintln!("vax780 enqueue: queue journal {queue}: {w}");
            }
            for spec in &specs {
                match journal.append_enqueue_for(client_name, spec) {
                    Ok(id) => println!("enqueued {id}"),
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        (None, Some(socket)) => {
            let client = Client::new(Endpoint::parse(socket), Duration::from_secs(5));
            for spec in &specs {
                let line = spec.render();
                let request = if client_name.is_empty() {
                    format!("enqueue {line}")
                } else {
                    format!("enqueue client={client_name} {line}")
                };
                match client.request_line(&request) {
                    Ok(reply) => match reply.strip_prefix("ok ") {
                        Some(id) => println!("enqueued {id}"),
                        None => {
                            eprintln!("server rejected '{line}': {reply}");
                            return ExitCode::FAILURE;
                        }
                    },
                    Err(e) => {
                        eprintln!("enqueue over {socket}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
    }
}

/// Show the queue: per-job state plus done/failed counts, either from
/// a live server (`--socket`) or straight from a journal (`--queue`).
fn cmd_status(args: &[String]) -> ExitCode {
    use std::time::Duration;
    use vax_serve::{Client, Endpoint, Journal};

    match (opt(args, "--queue"), opt(args, "--socket")) {
        (Some(_), Some(_)) => {
            eprintln!("status wants exactly one of --queue or --socket, not both");
            ExitCode::FAILURE
        }
        (None, None) => {
            eprintln!("status wants --queue FILE or --socket PATH|tcp:ADDR");
            ExitCode::FAILURE
        }
        (None, Some(socket)) => {
            let client = Client::new(Endpoint::parse(socket), Duration::from_secs(5));
            match client.request_stream("status", &mut std::io::stdout()) {
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("status over {socket}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        (Some(queue), None) => {
            let journal = match Journal::open(std::path::Path::new(queue)) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            for w in journal.warnings() {
                eprintln!("vax780 status: queue journal {queue}: {w}");
            }
            // Written through the io layer, not println!: a consumer
            // like `status | head` closing the pipe early is a clean
            // stop, not a panic.
            use std::io::Write;
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            let (pending, done, failed) = journal.counts();
            let mut write_jobs = || -> std::io::Result<()> {
                writeln!(
                    out,
                    "queue {queue}: pending {pending} done {done} failed {failed}"
                )?;
                for (id, state) in journal.states() {
                    let spec = journal
                        .spec_line(id)
                        .map_err(|e| std::io::Error::other(e.to_string()))?
                        .unwrap_or_default();
                    writeln!(out, "job {id} {} {spec}", state.name())?;
                }
                Ok(())
            };
            match write_jobs() {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("status: writing to stdout: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}

/// A pass-through writer that counts streamed result lines containing
/// `"failed":true` — drain's exit code, computed on the fly so the
/// stream never has to be buffered in memory.
struct FailCount<W: std::io::Write> {
    inner: W,
    partial: Vec<u8>,
    failed: usize,
}

impl<W: std::io::Write> FailCount<W> {
    fn new(inner: W) -> Self {
        FailCount {
            inner,
            partial: Vec::new(),
            failed: 0,
        }
    }

    fn scan(&mut self, line: &[u8]) {
        const NEEDLE: &[u8] = b"\"failed\":true";
        if line.windows(NEEDLE.len()).any(|w| w == NEEDLE) {
            self.failed += 1;
        }
    }

    /// Count any unterminated final line and return the failed total.
    fn finish(mut self) -> usize {
        if !self.partial.is_empty() {
            let line = std::mem::take(&mut self.partial);
            self.scan(&line);
        }
        self.failed
    }
}

impl<W: std::io::Write> std::io::Write for FailCount<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut rest = buf;
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            self.partial.extend_from_slice(&rest[..pos]);
            let line = std::mem::take(&mut self.partial);
            self.scan(&line);
            rest = &rest[pos + 1..];
        }
        self.partial.extend_from_slice(rest);
        self.inner.write_all(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Open drain's result sink: `--out FILE` or stdout, always buffered.
fn drain_sink(args: &[String]) -> Result<Box<dyn std::io::Write>, String> {
    use std::io::BufWriter;
    match opt(args, "--out") {
        Some(path) => std::fs::File::create(path)
            .map(|f| Box::new(BufWriter::new(f)) as Box<dyn std::io::Write>)
            .map_err(|e| format!("failed to write results to {path}: {e}")),
        None => Ok(Box::new(BufWriter::new(std::io::stdout()))),
    }
}

/// Settle every job and stream the merged result JSONL (id order,
/// bit-deterministic) to `--out` or stdout without holding it in
/// memory. `--socket` asks a live server to finish and exit;
/// `--queue` runs an offline pool over the journal — the resume path
/// after a crash. Nonzero if any job settled as failed.
fn cmd_drain(args: &[String]) -> ExitCode {
    use std::io::Write;
    use std::time::Duration;
    use vax_serve::{run_server, Client, Endpoint, Journal};

    // Pool flags are validated up front even in `--socket` mode, where
    // the live server's own pool settings apply and these are unused.
    for check in [retry_arg(args).map(|_| ()), pool_jobs_arg(args).map(|_| ())] {
        if let Err(e) = check {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    match (opt(args, "--queue"), opt(args, "--socket")) {
        (Some(_), Some(_)) => {
            eprintln!("drain wants exactly one of --queue or --socket, not both");
            ExitCode::FAILURE
        }
        (None, None) => {
            eprintln!("drain wants --queue FILE or --socket PATH|tcp:ADDR");
            ExitCode::FAILURE
        }
        (None, Some(socket)) => {
            let client = Client::new(Endpoint::parse(socket), Duration::from_secs(5));
            let out = match drain_sink(args) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut counter = FailCount::new(out);
            let streamed = match client.request_stream("drain", &mut counter) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("drain over {socket}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = counter.flush() {
                eprintln!("drain: writing results: {e}");
                return ExitCode::FAILURE;
            }
            let failed = counter.finish();
            eprintln!("drained {streamed} result(s), {failed} failed");
            if failed > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        (Some(queue), None) => {
            let (mut config, executor) = match pool_setup(args) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            config.drain_on_start = true;
            match run_server(&config, None, executor) {
                Ok(report) => {
                    // The pool has exited; reopen the settled journal
                    // and stream results straight from its segments.
                    let stream = || -> Result<usize, String> {
                        let journal = Journal::open(std::path::Path::new(queue))
                            .map_err(|e| e.to_string())?;
                        let mut out = drain_sink(args)?;
                        let n = journal
                            .stream_results(&mut out)
                            .map_err(|e| e.to_string())?;
                        out.flush()
                            .map_err(|e| format!("drain: writing results: {e}"))?;
                        Ok(n)
                    };
                    if let Err(e) = stream() {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("settled: {} done, {} failed", report.done, report.failed);
                    if report.failed > 0 {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("vax780 drain: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}

/// Remote worker: connect to a listening server (usually over TCP),
/// claim jobs one at a time, run each locally, and send the result
/// back on the claim connection. Exits cleanly when the server goes
/// away or replies `gone`. A crash here costs the server one
/// retryable attempt, never a job.
fn cmd_worker(args: &[String]) -> ExitCode {
    use std::io::{BufRead, Write};
    use std::time::Duration;
    use vax_serve::queue::render_result_blob;
    use vax_serve::{Endpoint, JobSpec};

    let Some(connect) = opt(args, "--connect") else {
        eprintln!("worker wants --connect tcp:HOST:PORT (or a Unix socket path)");
        return ExitCode::FAILURE;
    };
    let (timeout, executor) = match timeout_arg(args).and_then(|t| Ok((t, executor_arg(args)?))) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let endpoint = Endpoint::parse(connect);
    eprintln!("vax780 worker: claiming from {endpoint}");
    let (mut done, mut failed) = (0usize, 0usize);
    loop {
        // One claim per connection, mirroring the rest of the protocol.
        let conn = match endpoint.connect(Duration::from_secs(5)) {
            Ok(conn) => conn,
            Err(e) => {
                eprintln!("vax780 worker: {endpoint}: {e}");
                break;
            }
        };
        let Ok((mut reader, mut writer)) = conn.split() else {
            eprintln!("vax780 worker: cannot split connection");
            return ExitCode::FAILURE;
        };
        let mut reply = String::new();
        let ok = writeln!(writer, "claim")
            .and_then(|()| writer.flush())
            .and_then(|()| reader.read_line(&mut reply));
        match ok {
            Ok(0) | Err(_) => break, // server went away between claims
            Ok(_) => {}
        }
        let reply = reply.trim_end();
        if reply == "idle" {
            std::thread::sleep(Duration::from_millis(200));
            continue;
        }
        if reply == "gone" || reply.is_empty() {
            break;
        }
        let Some(rest) = reply.strip_prefix("job ") else {
            eprintln!("vax780 worker: unexpected reply `{reply}`");
            return ExitCode::FAILURE;
        };
        let Some((id, spec_line)) = rest.split_once(' ') else {
            eprintln!("vax780 worker: malformed job line `{reply}`");
            return ExitCode::FAILURE;
        };
        let outcome = JobSpec::parse(spec_line)
            .map_err(|e| format!("bad spec: {e}"))
            .and_then(|spec| {
                executor
                    .run(&spec, timeout)
                    .map_err(|e| e.to_string().replace('\n', " "))
            });
        let sent = match &outcome {
            Ok(m) => {
                done += 1;
                write!(writer, "result {id}\n{}", render_result_blob(m))
            }
            Err(msg) => {
                failed += 1;
                eprintln!("vax780 worker: job {id}: {msg}");
                writeln!(writer, "fail {id} {msg}")
            }
        }
        .and_then(|()| writer.flush());
        if sent.is_err() {
            break; // the server will retry the attempt elsewhere
        }
        // Wait for the ack so the next claim sees the settled state.
        let mut ack = String::new();
        if reader.read_line(&mut ack).is_err() {
            break;
        }
    }
    eprintln!("vax780 worker: ran {done} job(s), {failed} failed attempt(s)");
    ExitCode::SUCCESS
}

/// Fold settled jobs into the journal's snapshot segment now: offline
/// against `--queue`, or over `--socket` by asking a live server.
fn cmd_compact(args: &[String]) -> ExitCode {
    use std::time::Duration;
    use vax_serve::{Client, Endpoint, Journal};

    match (opt(args, "--queue"), opt(args, "--socket")) {
        (Some(_), Some(_)) => {
            eprintln!("compact wants exactly one of --queue or --socket, not both");
            ExitCode::FAILURE
        }
        (None, None) => {
            eprintln!("compact wants --queue FILE or --socket PATH|tcp:ADDR");
            ExitCode::FAILURE
        }
        (None, Some(socket)) => {
            let client = Client::new(Endpoint::parse(socket), Duration::from_secs(5));
            match client.request_line("compact") {
                Ok(reply) if reply.starts_with("ok") => {
                    println!("{reply}");
                    ExitCode::SUCCESS
                }
                Ok(reply) => {
                    eprintln!("compact over {socket}: {reply}");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("compact over {socket}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        (Some(queue), None) => {
            let mut journal = match Journal::open(std::path::Path::new(queue)) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            for w in journal.warnings() {
                eprintln!("vax780 compact: queue journal {queue}: {w}");
            }
            let folded = journal.settled_in_tail();
            if let Err(e) = journal.compact() {
                eprintln!("vax780 compact: {e}");
                return ExitCode::FAILURE;
            }
            let (pending, done, failed) = journal.counts();
            println!(
                "compacted {queue}: generation {}, folded {folded} settled record(s); \
                 {pending} pending, {done} done, {failed} failed",
                journal.generation()
            );
            ExitCode::SUCCESS
        }
    }
}

/// Internal executor child for `serve --process-workers`: one job
/// spec on stdin, one `vax-job-result v1` blob on stdout. A panic or
/// nonzero exit here is one failed *attempt* in the parent, never a
/// lost queue.
fn cmd_job_worker(_args: &[String]) -> ExitCode {
    use std::io::Read;
    use vax_serve::{Executor, InProcessExecutor, JobSpec};

    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("job-worker: reading spec from stdin: {e}");
        return ExitCode::FAILURE;
    }
    let spec = match JobSpec::parse(input.trim()) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("job-worker: {e}");
            return ExitCode::FAILURE;
        }
    };
    match InProcessExecutor.run(&spec, None) {
        Ok(m) => {
            print!("{}", vax_serve::queue::render_result_blob(&m));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("job-worker: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Run one workload with both instruments attached from boot — the µPC
/// board and the event tracer tee'd off the same [`CycleSink`] feed —
/// then export the trace and reconcile trace vs histogram vs hardware
/// counters. Any disagreement is a nonzero exit: the instruments must
/// tell one story.
fn cmd_trace(args: &[String]) -> ExitCode {
    use upc_monitor::{Command, HistogramBoard};
    use vax_trace::{SelfMetrics, Tracer};

    let instructions: u64 = opt(args, "--instructions")
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let warmup: u64 = opt(args, "--warmup")
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let workload = opt(args, "--workload").unwrap_or("timesharing-light");
    let Some(kind) = parse_kind(workload) else {
        eprintln!("unknown workload '{workload}'; try `vax780 list`");
        return ExitCode::FAILURE;
    };
    let format = opt(args, "--trace-format").unwrap_or("jsonl");
    if format != "jsonl" && format != "chrome" {
        eprintln!("unknown trace format '{format}' (want jsonl or chrome)");
        return ExitCode::FAILURE;
    }
    let limit: usize = opt(args, "--trace-limit")
        .and_then(|s| s.parse().ok())
        .unwrap_or(vax_trace::DEFAULT_CAPACITY);

    let mut metrics = SelfMetrics::new();
    let mut machine = match vax_workloads::try_build_machine(&profile(kind)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("vax780 trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Baseline after build: the counter deltas from here cover exactly
    // the cycles both sinks observe.
    let hw_base = *machine.cpu.mem().counters();
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    let mut tracer = Tracer::with_capacity(limit);

    eprintln!("tracing {workload}: {warmup} warmup + {instructions} measured instructions ...");
    {
        let mut tee = (&mut board, &mut tracer);
        for (phase, count) in [("warmup", warmup), ("measure", instructions)] {
            if count == 0 {
                continue;
            }
            metrics.begin_phase(phase, machine.cpu.now(), machine.cpu.instructions());
            if let Err(e) = machine.run_phase(phase, count, &mut tee) {
                eprintln!("machine stopped during {phase}: {e:?}");
                return ExitCode::FAILURE;
            }
            metrics.end_phase(machine.cpu.now(), machine.cpu.instructions());
        }
    }
    board.execute(Command::Stop);

    if let Some(path) = opt(args, "--trace-out") {
        metrics.begin_phase("export", machine.cpu.now(), machine.cpu.instructions());
        let result = std::fs::File::create(path).and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            if format == "chrome" {
                vax_trace::export::write_chrome_trace(&tracer, &mut w)
            } else {
                vax_trace::export::write_jsonl(&tracer, &mut w)
            }
        });
        metrics.end_phase(machine.cpu.now(), machine.cpu.instructions());
        if let Err(e) = result {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "{} events written to {path} ({format}, {} dropped by the ring)",
            tracer.len(),
            tracer.dropped()
        );
    }

    if flag(args, "--metrics") {
        println!("=== simulator self-metrics ===");
        println!("{metrics}\n");
    }

    let histogram = board.snapshot();
    let hw = machine.cpu.mem().counters().delta_since(&hw_base);
    let reconciliation = vax_analysis::reconcile::reconcile(
        &tracer,
        &histogram,
        &hw,
        machine.cpu.pending_ib_tb_miss(),
    );
    println!("=== instrument reconciliation ===");
    println!("{reconciliation}");
    if reconciliation.is_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Run one workload under a deterministic fault plan with both
/// instruments attached, reconcile them, and (with `--report`) measure
/// the fault-sensitivity table: a clean baseline plus one injected run
/// per fault class present in the plan.
fn cmd_inject(args: &[String]) -> ExitCode {
    use upc_monitor::{Command, HistogramBoard};
    use vax_fault::{FaultClass, FaultEngine, FaultPlan};
    use vax_trace::Tracer;

    let instructions: u64 = opt(args, "--instructions")
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let warmup: u64 = opt(args, "--warmup")
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let workload = opt(args, "--workload").unwrap_or("timesharing-light");
    let Some(kind) = parse_kind(workload) else {
        eprintln!("unknown workload '{workload}'; try `vax780 list`");
        return ExitCode::FAILURE;
    };

    let plan = if let Some(path) = opt(args, "--fault-plan") {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("vax780 inject: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match FaultPlan::parse(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("vax780 inject: cannot parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if let Some(list) = opt(args, "--faults") {
        let seed: u64 = match opt(args, "--seed").map(str::parse).transpose() {
            Ok(s) => s.unwrap_or(780),
            Err(_) => {
                eprintln!("--seed wants an integer");
                return ExitCode::FAILURE;
            }
        };
        let mut classes = Vec::new();
        for name in list.split(',') {
            let Some(class) = FaultClass::parse(name.trim()) else {
                eprintln!(
                    "unknown fault class '{}' (want one of: {})",
                    name.trim(),
                    FaultClass::ALL.map(FaultClass::name).join(", ")
                );
                return ExitCode::FAILURE;
            };
            classes.push(class);
        }
        // 3 faults per class, scattered over the first chunk of the
        // measured region (CPI > 3, so `3 * instructions` cycles have
        // always elapsed before measurement ends).
        FaultPlan::seeded(&classes, seed, 3, instructions.saturating_mul(3))
    } else {
        eprintln!("inject requires --fault-plan FILE or --faults CLASS[,CLASS...]");
        return ExitCode::FAILURE;
    };
    if plan.is_empty() {
        eprintln!("vax780 inject: the fault plan schedules nothing");
        return ExitCode::FAILURE;
    }

    let mut machine = match vax_workloads::try_build_machine(&profile(kind)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("vax780 inject: {e}");
            return ExitCode::FAILURE;
        }
    };
    let hw_base = *machine.cpu.mem().counters();
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    let mut tracer = Tracer::with_capacity(vax_trace::DEFAULT_CAPACITY);

    eprintln!(
        "injecting {} fault(s) into {workload}: {warmup} warmup + {instructions} measured \
         instructions ...",
        plan.faults.len()
    );
    {
        let mut tee = (&mut board, &mut tracer);
        if let Err(e) = machine.run_phase("warmup", warmup, &mut tee) {
            eprintln!("machine stopped during warmup: {e:?}");
            return ExitCode::FAILURE;
        }
        // Arm at the measurement boundary: `@cycle` offsets count from
        // the first measured cycle, exactly as `Experiment::fault_plan`.
        machine
            .cpu
            .mem_mut()
            .set_fault_hook(Box::new(FaultEngine::new(&plan)));
        let now = machine.cpu.now();
        machine.cpu.mem_mut().arm_fault_hook(now);
        if let Err(e) = machine.run_phase("measure", instructions, &mut tee) {
            eprintln!("machine stopped during measure: {e:?}");
            return ExitCode::FAILURE;
        }
    }
    board.execute(Command::Stop);

    let fired = machine.cpu.mem().faults_fired();
    println!("=== injected faults ===");
    if fired.is_empty() {
        println!("(no scheduled fault matured inside the measured window)");
    }
    for f in &fired {
        println!("fired {} @ cycle {}", f.class, f.at_cycle);
    }
    println!();

    let histogram = board.snapshot();
    let hw = machine.cpu.mem().counters().delta_since(&hw_base);
    let reconciliation = vax_analysis::reconcile::reconcile(
        &tracer,
        &histogram,
        &hw,
        machine.cpu.pending_ib_tb_miss(),
    );
    println!("=== instrument reconciliation ===");
    println!("{reconciliation}");
    if !reconciliation.is_ok() {
        return ExitCode::FAILURE;
    }

    if flag(args, "--report") {
        eprintln!("measuring clean baseline + one run per fault class ...");
        let experiment = |p: Option<FaultPlan>| {
            let mut e = Experiment::new(kind)
                .warmup(warmup)
                .instructions(instructions);
            if let Some(p) = p {
                e = e.fault_plan(p);
            }
            e.run().analysis()
        };
        let baseline = experiment(None);
        let mut injected = Vec::new();
        for class in FaultClass::ALL {
            let subset: Vec<_> = plan
                .faults
                .iter()
                .copied()
                .filter(|f| f.class == class)
                .collect();
            if subset.is_empty() {
                continue;
            }
            injected.push((class, experiment(Some(FaultPlan { faults: subset }))));
        }
        let sensitivity = vax_analysis::FaultSensitivity::new(&baseline, &injected);
        println!("=== fault sensitivity ===");
        println!("{sensitivity}");
    }
    ExitCode::SUCCESS
}

/// Benchmark the simulator: the selected interpreter tiers (default
/// naive, fast, and block) over all five workloads, with bit-identity
/// verification of every instrument. Nonzero exit on any divergence —
/// speed is only reported once the tiers are proven to be the same
/// machine.
fn cmd_bench(args: &[String]) -> ExitCode {
    let mut spec = vax_perf::BenchSpec::default();
    let tier_args = opt_all(args, "--tier");
    if !tier_args.is_empty() {
        let mut tiers = vax_perf::TierSet::empty();
        for s in tier_args {
            match vax_perf::Tier::parse(s) {
                Some(tier) => tiers.insert(tier),
                None => {
                    eprintln!("--tier wants naive, fast, or block, got '{s}'");
                    return ExitCode::FAILURE;
                }
            }
        }
        spec.tiers = tiers;
    }
    if let Some(s) = opt(args, "--instructions") {
        match s.parse() {
            Ok(n) => spec.timing_instructions = n,
            Err(_) => {
                eprintln!("--instructions wants a positive integer, got '{s}'");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(s) = opt(args, "--trace-instructions") {
        match s.parse() {
            Ok(n) => spec.trace_instructions = n,
            Err(_) => {
                eprintln!("--trace-instructions wants a positive integer, got '{s}'");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(s) = opt(args, "--warmup") {
        match s.parse() {
            Ok(n) => spec.warmup = n,
            Err(_) => {
                eprintln!("--warmup wants a non-negative integer, got '{s}'");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(s) = opt(args, "--repeat") {
        match s.parse() {
            Ok(n) if n >= 1 => spec.repeat = n,
            _ => {
                eprintln!("--repeat wants a positive integer, got '{s}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let tier_list: Vec<&str> = spec.tiers.iter().map(|t| t.name()).collect();
    eprintln!(
        "benchmarking: 5 workloads x {} timed (best of {}) + {} traced instructions, tiers: {} ...",
        spec.timing_instructions,
        spec.repeat,
        spec.trace_instructions,
        tier_list.join(" vs ")
    );
    let report = vax_perf::run_bench_with_progress(&spec, |line| eprintln!("  {line}"));
    println!(
        "=== simulator benchmark ({} tiers) ===",
        tier_list.join(" vs ")
    );
    print!("{}", report.render_table());
    if let Some(path) = opt(args, "--json") {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("report written to {path}");
    }
    if report.is_equivalent() {
        println!("equivalence: OK (histograms, counters, and trace streams bit-identical)");
        ExitCode::SUCCESS
    } else {
        println!("equivalence: FAILED");
        for d in &report.divergences {
            println!("  divergence: {d}");
        }
        ExitCode::FAILURE
    }
}

/// `vax780 probe`: measurement-driven self-characterization. Runs the
/// full coverage campaign (or a `--pair` subset), infers per-opcode and
/// per-mode issue tables from calibrated histogram deltas, and refutes
/// or confirms the static model. Nonzero exit when any error-severity
/// disagreement survives the allowlist and `--deny` promotion.
fn cmd_probe(args: &[String]) -> ExitCode {
    use vax_lint::Rule;
    use vax_probe::{run_probe, PairKey, ProbeConfig};

    let deny: Vec<String> = opt_all(args, "--deny")
        .into_iter()
        .map(str::to_string)
        .collect();
    for d in &deny {
        if d != "all" && Rule::parse(d).is_none() {
            eprintln!("vax780 probe: unknown rule '{d}' for --deny (or 'all')");
            return ExitCode::FAILURE;
        }
    }

    let mut config = ProbeConfig::default();
    for (name, slot) in [
        ("--unroll", &mut config.unroll),
        ("--iters", &mut config.iters),
    ] {
        if let Some(s) = opt(args, name) {
            match s.parse() {
                Ok(n) => *slot = n,
                Err(_) => {
                    eprintln!("{name} wants a positive integer, got '{s}'");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let pair_args = opt_all(args, "--pair");
    if !pair_args.is_empty() {
        let mut filter = std::collections::BTreeSet::new();
        for text in pair_args {
            let Some(pair) = PairKey::parse(text) else {
                eprintln!("vax780 probe: bad pair '{text}' (want <mnemonic>:<class-key|none>)");
                return ExitCode::FAILURE;
            };
            filter.insert(pair);
        }
        config.filter = Some(filter);
    }
    if let Some(path) = opt(args, "--allowlist") {
        match std::fs::read_to_string(path) {
            Ok(text) => config.allow_text = text,
            Err(e) => {
                eprintln!("vax780 probe: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match &config.filter {
        Some(filter) => eprintln!("probing {} pair(s) ...", filter.len()),
        None => {
            eprintln!("probing full coverage (every opcode x mode pair, plus mode references) ...")
        }
    }
    let mut outcome = match run_probe(&config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("vax780 probe: {e}");
            return ExitCode::FAILURE;
        }
    };

    let host = vax_trace::HostStamp::collect();
    outcome.tables.stamp("cpu-model", &host.cpu_model);
    outcome.tables.stamp("rustc", &host.rustc);
    outcome.tables.stamp("git-rev", &host.git_rev);
    outcome.tables.stamp("profile", &host.profile);
    outcome.tables.stamp("opt-level", &host.opt_level);

    let clean = outcome.tables.pairs.values().filter(|&&ok| ok).count();
    eprintln!(
        "probed {} pair(s): {clean} clean, {} op row(s), {} mode row(s)",
        outcome.tables.pairs.len(),
        outcome.tables.ops.len(),
        outcome.tables.modes.len()
    );

    if let Some(path) = opt(args, "--out") {
        if let Err(e) = std::fs::write(path, outcome.tables.to_text()) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("inferred tables written to {path}");
    }
    let cs = ControlStore::build();
    for (path, text, what) in [
        opt(args, "--samples").map(|p| (p, outcome.agg.to_jsonl(&cs), "samples")),
        opt(args, "--folded").map(|p| (p, outcome.agg.to_folded(&cs), "folded samples")),
    ]
    .into_iter()
    .flatten()
    {
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("failed to write {what} to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("{what} written to {path}");
    }

    outcome.report.apply_deny(&deny);
    if flag(args, "--jsonl") {
        print!("{}", outcome.report.render_jsonl());
    } else {
        print!("{}", outcome.report.render_text());
    }
    if outcome.report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_report(args: &[String]) -> ExitCode {
    let Some(path) = opt(args, "--histogram") else {
        eprintln!("report requires --histogram FILE");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (hist, pairs) = match upc_monitor::codec::from_text_with_counters(&text) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let counters = vax_mem::HwCounters::from_pairs(pairs.iter().map(|(n, v)| (n.as_str(), *v)));
    let cs = ControlStore::build();
    let mut analysis = Analysis::new(&hist, &cs, &counters);
    if let Some(hint_text) = opt(args, "--instructions-hint") {
        let Ok(hint) = hint_text.parse::<u64>() else {
            eprintln!("--instructions-hint wants a positive integer, got '{hint_text}'");
            return ExitCode::FAILURE;
        };
        if hint == 0 {
            eprintln!("--instructions-hint wants a positive integer, got '0'");
            return ExitCode::FAILURE;
        }
        // Validate the hint against the histogram's own execute-entry
        // count: a hint that disagrees wildly means the caller is
        // re-analysing the wrong histogram.
        let derived = analysis.instructions();
        let deviation = (hint.abs_diff(derived)) as f64 / derived.max(1) as f64;
        if derived > 0 && deviation > 0.05 {
            eprintln!(
                "--instructions-hint {hint} disagrees with the histogram's \
                 execute-entry count {derived} by {:.1}% (>5%); refusing",
                100.0 * deviation
            );
            return ExitCode::FAILURE;
        }
        eprintln!("instruction count overridden: {derived} (histogram) -> {hint} (hint)");
        analysis = analysis.with_instructions(hint);
    }
    print_analysis(&analysis);
    if let Some(path) = opt(args, "--json") {
        let t8 = vax_analysis::tables::Table8::from_analysis(&analysis);
        let json = format!(
            "{{\n  \"host\": {},\n  \"instructions\": {},\n  \"cycles\": {},\n  \
             \"cpi\": {},\n  \"table8\": {}\n}}\n",
            vax_trace::HostStamp::collect().to_json(),
            analysis.instructions(),
            analysis.total_cycles(),
            analysis.cpi(),
            t8.to_json()
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("JSON report written to {path}");
    }
    ExitCode::SUCCESS
}

fn cmd_disasm(args: &[String]) -> ExitCode {
    let workload = opt(args, "--workload").unwrap_or("timesharing-light");
    let Some(kind) = parse_kind(workload) else {
        eprintln!("unknown workload '{workload}'; try `vax780 list`");
        return ExitCode::FAILURE;
    };
    let lines: usize = opt(args, "--lines")
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let function: usize = opt(args, "--function")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    // Regenerate the first process's program exactly as the session does.
    let params = profile(kind);
    let plans = match vax_workloads::plan_processes(&params) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("vax780 disasm: {e}");
            return ExitCode::FAILURE;
        }
    };
    let plan = &plans[0];
    let image = &plan.image;

    let start_va = if function == 0 {
        plan.entry
    } else if let Some(&f) = plan.functions.get(function - 1) {
        f
    } else {
        eprintln!("function index out of range (1..={})", plan.functions.len());
        return ExitCode::FAILURE;
    };
    let offset = (start_va - image.base) as usize;
    // Functions start with an entry-mask word, not an opcode.
    let skip = if function > 0 { 2 } else { 0 };
    println!(
        "; {} process 0, {} @ {start_va:#010x}",
        kind.name(),
        if function == 0 {
            "dispatcher".to_string()
        } else {
            format!("function {function}")
        }
    );
    if function > 0 {
        let mask = u16::from_le_bytes([image.bytes[offset], image.bytes[offset + 1]]);
        println!("{start_va:#010x}\t.entry mask={mask:#06x}");
    }
    for (pc, _, text) in
        vax_arch::disasm::disassemble(&image.bytes[offset + skip..], start_va + skip as u32)
            .into_iter()
            .take(lines)
    {
        println!("{pc:#010x}\t{text}");
    }
    ExitCode::SUCCESS
}

/// `vax780 lint`: run the static analyzers. The table audits always
/// run; `--profile`/`--all-profiles` additionally generate and lint
/// workload images, `--image` lints a serialized image file, and
/// `--effects` adds the block-tier effect audit. `--list-rules` prints
/// the rule catalog (id, default severity, one-line doc) and exits.
/// Exit status is nonzero when any error-severity finding remains
/// after `--deny` promotion.
fn cmd_lint(args: &[String]) -> ExitCode {
    use vax_lint::{ImageModel, Rule};

    if flag(args, "--list-rules") {
        for rule in Rule::ALL {
            if flag(args, "--jsonl") {
                println!(
                    "{{\"rule\": \"{}\", \"severity\": \"{}\", \"doc\": \"{}\"}}",
                    rule.id(),
                    rule.default_severity().label(),
                    rule.doc()
                );
            } else {
                println!(
                    "{:<22} {:<8} {}",
                    rule.id(),
                    rule.default_severity().label(),
                    rule.doc()
                );
            }
        }
        return ExitCode::SUCCESS;
    }

    let deny: Vec<String> = opt_all(args, "--deny")
        .into_iter()
        .map(str::to_string)
        .collect();
    for d in &deny {
        if d != "all" && Rule::parse(d).is_none() {
            eprintln!("vax780 lint: unknown rule '{d}' for --deny (or 'all')");
            return ExitCode::FAILURE;
        }
    }

    let mut report = vax_lint::lint_tables();
    if flag(args, "--effects") {
        report.merge(vax_lint::lint_effects(&ControlStore::build()));
    }

    if let Some(path) = opt(args, "--image") {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("vax780 lint: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let model = match ImageModel::parse(&text) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("vax780 lint: {path} is not a lint image: {e}");
                return ExitCode::FAILURE;
            }
        };
        report.merge(vax_lint::lint_image_model(&model, None));
    }

    let mut kinds: Vec<WorkloadKind> = Vec::new();
    if flag(args, "--all-profiles") {
        kinds.extend(WorkloadKind::ALL);
    } else if let Some(name) = opt(args, "--profile") {
        match parse_kind(name) {
            Some(kind) => kinds.push(kind),
            None => {
                eprintln!("unknown workload '{name}'; try `vax780 list`");
                return ExitCode::FAILURE;
            }
        }
    }
    for kind in &kinds {
        let params = profile(*kind);
        match vax_lint::lint_profile(&params) {
            Ok(r) => report.merge(r),
            Err(e) => {
                eprintln!("vax780 lint: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = opt(args, "--emit-image") {
        let kind = kinds
            .first()
            .copied()
            .unwrap_or(WorkloadKind::TimesharingLight);
        let params = profile(kind);
        let plans = match vax_workloads::plan_processes(&params) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("vax780 lint: {e}");
                return ExitCode::FAILURE;
            }
        };
        let model = ImageModel::from_process(params.name, &plans[0]);
        if let Err(e) = std::fs::write(path, model.render()) {
            eprintln!("vax780 lint: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path} (process 0 of {})", params.name);
    }

    report.apply_deny(&deny);
    if flag(args, "--jsonl") {
        print!("{}", report.render_jsonl());
    } else {
        print!("{}", report.render_text());
    }
    if report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `vax780 verify`: audit the block tier's safety claims and statically
/// verify workload images by abstract interpretation. Always runs the
/// derived effect audit; then per profile: decode, SMC-freedom and
/// stack-depth verification, and the static run-length prediction
/// reconciled against the block statistics of a real run on the block
/// tier (skipped under `--static-only`). Exit status is nonzero when
/// any error-severity finding remains after `--deny` promotion.
fn cmd_verify(args: &[String]) -> ExitCode {
    use vax_lint::Rule;

    let deny: Vec<String> = opt_all(args, "--deny")
        .into_iter()
        .map(str::to_string)
        .collect();
    for d in &deny {
        if d != "all" && Rule::parse(d).is_none() {
            eprintln!("vax780 verify: unknown rule '{d}' for --deny (or 'all')");
            return ExitCode::FAILURE;
        }
    }

    let mut kinds: Vec<WorkloadKind> = Vec::new();
    if flag(args, "--all-profiles") {
        kinds.extend(WorkloadKind::ALL);
    } else if let Some(name) = opt(args, "--profile") {
        match parse_kind(name) {
            Some(kind) => kinds.push(kind),
            None => {
                eprintln!("unknown workload '{name}'; try `vax780 list`");
                return ExitCode::FAILURE;
            }
        }
    }
    if kinds.is_empty() {
        eprintln!("vax780 verify: need --profile NAME or --all-profiles");
        return ExitCode::FAILURE;
    }
    let mut instructions: u64 = 200_000;
    if let Some(s) = opt(args, "--instructions") {
        match s.parse() {
            Ok(n) if n > 0 => instructions = n,
            _ => {
                eprintln!("--instructions wants a positive integer, got '{s}'");
                return ExitCode::FAILURE;
            }
        }
    }

    // The classifiers the image verification leans on (block-safe /
    // resume-safe) must themselves be sound, so the effect audit
    // always runs first.
    let mut report = vax_lint::lint_effects(&ControlStore::build());

    for kind in kinds {
        let params = profile(kind);
        let (profile_report, pred) = match vax_lint::verify_profile(&params) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("vax780 verify: {e}");
                return ExitCode::FAILURE;
            }
        };
        report.merge(profile_report);
        eprintln!(
            "{}: static prediction: {} blocks, mean run {:.2}, max {}, coverage {:.0}%",
            params.name,
            pred.blocks(),
            pred.mean_run_len(),
            pred.max_run_len(),
            pred.coverage() * 100.0
        );
        if flag(args, "--static-only") {
            continue;
        }
        let mut machine = vax_workloads::build_machine_with_config(
            &params,
            CpuConfig::default(), // the default config is the block tier
            vax_mem::MemConfig::default(),
        );
        let mut sink = upc_monitor::NullSink;
        if let Err(e) = machine.run_instructions(instructions, &mut sink) {
            eprintln!("vax780 verify: dynamic run of {} failed: {e}", params.name);
            return ExitCode::FAILURE;
        }
        let stats = machine.cpu.block_stats();
        eprintln!(
            "{}: dynamic run ({instructions} insns): {} block entries, mean run {:.2}, {} replayed",
            params.name,
            stats.hits,
            stats.mean_run_len(),
            stats.replayed
        );
        report.merge(vax_lint::reconcile_run_lengths(
            params.name,
            &pred,
            &stats,
            vax_lint::RUN_LENGTH_TOLERANCE,
        ));
    }

    report.apply_deny(&deny);
    if flag(args, "--jsonl") {
        print!("{}", report.render_jsonl());
    } else {
        print!("{}", report.render_text());
    }
    if report.errors() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
