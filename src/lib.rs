//! Umbrella crate for the VAX-11/780 characterization reproduction.
//!
//! Re-exports the workspace crates under one roof and hosts the runnable
//! examples and cross-crate integration tests. See the README for the
//! architecture overview and `DESIGN.md` for the experiment index.

#![forbid(unsafe_code)]

pub use upc_monitor as monitor;
pub use vax780_core as study;
pub use vax_analysis as analysis;
pub use vax_arch as arch;
pub use vax_cpu as cpu;
pub use vax_lint as lint;
pub use vax_mem as mem;
pub use vax_ucode as ucode;
pub use vax_workloads as workloads;
