//! The wire protocol: one request line per connection.
//!
//! The server listens on a Unix socket (default) or a TCP address.
//! A client connects, writes one request line, and reads the reply:
//!
//! | request          | reply                                        |
//! |------------------|----------------------------------------------|
//! | `enqueue [client=<name>] <spec>` | `ok <id>` or `reject <reason>` |
//! | `status`         | `ok …` summary, `job …` lines, `end`         |
//! | `results`        | one JSON line per settled job, then `end`    |
//! | `metrics`        | `ok …` summary, `worker <json>` lines, `end` |
//! | `drain`          | all results streamed in id order as jobs     |
//! |                  | settle, then `end`; the server then exits    |
//! | `compact`        | `ok …` — fold settled records into the       |
//! |                  | journal's snapshot segment now               |
//! | `claim`          | `job <id> <spec>`, `idle`, or `gone`; the    |
//! |                  | worker then sends `result <id>` + blob or    |
//! |                  | `fail <id> <message>` on the same connection |
//! | `shutdown`       | `ok` — stop accepting, abandon pending work  |
//!
//! Everything is UTF-8 lines; multi-line replies are terminated by a
//! bare `end`, so clients never need length framing. `claim` is the
//! one request that holds its connection open: the attempt runs on the
//! worker's machine while the server waits, and a dropped connection
//! counts as a retryable failed attempt.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Where the server listens / the client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7800`.
    Tcp(String),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

impl Endpoint {
    /// Parse `--socket PATH` / `--tcp ADDR` style values: a string with
    /// a `:` and no `/` before it is TCP, anything else is a path.
    pub fn parse(s: &str) -> Endpoint {
        if let Some(addr) = s.strip_prefix("tcp:") {
            return Endpoint::Tcp(addr.to_string());
        }
        if let Some(path) = s.strip_prefix("unix:") {
            return Endpoint::Unix(PathBuf::from(path));
        }
        Endpoint::Unix(PathBuf::from(s))
    }

    /// Bind a listener, removing a stale Unix socket file first.
    ///
    /// # Errors
    ///
    /// The underlying bind error.
    pub fn bind(&self) -> io::Result<Listener> {
        match self {
            Endpoint::Unix(path) => {
                // A previous server that was SIGKILLed leaves its
                // socket file behind; binding over it would fail even
                // though nobody is listening.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Unix(listener))
            }
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Tcp(listener))
            }
        }
    }

    /// Connect, retrying for up to `patience` (covers the race between
    /// starting a server in the background and the first client).
    ///
    /// # Errors
    ///
    /// The last connection error once patience runs out.
    pub fn connect(&self, patience: Duration) -> io::Result<Conn> {
        let deadline = Instant::now() + patience;
        loop {
            let attempt = match self {
                Endpoint::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
                Endpoint::Tcp(addr) => TcpStream::connect(addr).map(Conn::Tcp),
            };
            match attempt {
                Ok(conn) => return Ok(conn),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }
}

/// A bound, non-blocking listener.
#[derive(Debug)]
pub enum Listener {
    /// Unix-domain socket.
    Unix(UnixListener),
    /// TCP socket.
    Tcp(TcpListener),
}

impl Listener {
    /// Accept one connection if one is ready (non-blocking).
    ///
    /// # Errors
    ///
    /// Accept errors other than `WouldBlock` (which yields `Ok(None)`).
    pub fn accept(&self) -> io::Result<Option<Conn>> {
        let conn = match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        };
        match conn {
            Ok(conn) => {
                conn.set_blocking()?;
                Ok(Some(conn))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// One accepted or dialed connection.
#[derive(Debug)]
pub enum Conn {
    /// Unix-domain stream.
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Conn {
    fn set_blocking(&self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_nonblocking(false),
            Conn::Tcp(s) => s.set_nonblocking(false),
        }
    }

    /// Bound how long reads may block (`None` = forever).
    ///
    /// # Errors
    ///
    /// The underlying `set_read_timeout` error.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(timeout),
            Conn::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Split into a buffered reader plus a writable clone.
    ///
    /// # Errors
    ///
    /// If the underlying socket cannot be duplicated.
    pub fn split(self) -> io::Result<(BufReader<Conn>, Conn)> {
        let writer = match &self {
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
        };
        Ok((BufReader::new(self), writer))
    }
}

impl io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// A one-request client.
#[derive(Debug)]
pub struct Client {
    endpoint: Endpoint,
    patience: Duration,
}

impl Client {
    /// A client for the given endpoint, retrying connects for up to
    /// `patience`.
    pub fn new(endpoint: Endpoint, patience: Duration) -> Client {
        Client { endpoint, patience }
    }

    fn send(&self, request: &str) -> io::Result<BufReader<Conn>> {
        let conn = self.endpoint.connect(self.patience)?;
        let (reader, mut writer) = conn.split()?;
        writeln!(writer, "{request}")?;
        writer.flush()?;
        Ok(reader)
    }

    /// Send a request expecting a single reply line.
    ///
    /// # Errors
    ///
    /// I/O failure, or an empty reply (server died mid-request).
    pub fn request_line(&self, request: &str) -> io::Result<String> {
        let mut reader = self.send(request)?;
        let mut line = String::new();
        reader.read_line(&mut line)?;
        if line.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection without replying",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Send a request and stream every reply line up to (not
    /// including) the `end` terminator into `out`. Returns the number
    /// of lines streamed.
    ///
    /// # Errors
    ///
    /// I/O failure, or EOF before `end`.
    pub fn request_stream(&self, request: &str, out: &mut dyn Write) -> io::Result<usize> {
        let mut reader = self.send(request)?;
        let mut lines = 0usize;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("connection closed before `end` ({lines} line(s) streamed)"),
                ));
            }
            if line.trim_end() == "end" {
                return Ok(lines);
            }
            out.write_all(line.as_bytes())?;
            lines += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_forms() {
        assert_eq!(
            Endpoint::parse("/tmp/x.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Endpoint::parse("unix:/tmp/y.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/y.sock"))
        );
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7800"),
            Endpoint::Tcp("127.0.0.1:7800".to_string())
        );
        assert_eq!(
            format!("{}", Endpoint::parse("tcp:1.2.3.4:5")),
            "tcp:1.2.3.4:5"
        );
    }

    #[test]
    fn unix_round_trip_one_request() {
        let dir = std::env::temp_dir().join("vax-wire-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let endpoint = Endpoint::Unix(dir.join("s.sock"));
        let listener = endpoint.bind().unwrap();
        let server_endpoint = endpoint.clone();
        let server = std::thread::spawn(move || {
            let _ = &server_endpoint;
            loop {
                if let Some(conn) = listener.accept().unwrap() {
                    let (mut reader, mut writer) = conn.split().unwrap();
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    assert_eq!(line.trim_end(), "status");
                    writeln!(writer, "ok pending 0").unwrap();
                    writeln!(writer, "end").unwrap();
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let client = Client::new(endpoint, Duration::from_secs(2));
        let mut out = Vec::new();
        let lines = client.request_stream("status", &mut out).unwrap();
        assert_eq!(lines, 1);
        assert_eq!(String::from_utf8(out).unwrap(), "ok pending 0\n");
        server.join().unwrap();
    }

    #[test]
    fn stale_unix_socket_is_replaced() {
        let dir = std::env::temp_dir().join("vax-wire-stale");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let endpoint = Endpoint::Unix(dir.join("s.sock"));
        // First bind creates the file; dropping the listener leaves it.
        drop(endpoint.bind().unwrap());
        // Second bind must succeed over the stale file.
        endpoint.bind().unwrap();
    }
}
