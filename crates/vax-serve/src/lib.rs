//! Crash-safe, backpressured campaign serving.
//!
//! The paper's measurements were campaigns: many workload ×
//! configuration points, each an independent simulation. This crate
//! turns the batch campaign into a *service* that survives its own
//! death:
//!
//! - [`spec::JobSpec`] — one request (workload × CPU config × memory
//!   config × fault plan × seed) on one strict `key=value` line;
//! - [`journal::Journal`] — the persistent queue: every lifecycle
//!   transition (`enqueue`/`start`/`complete`/`fail`) is one appended,
//!   flushed record in the `vax-queue-journal v2` codec; settled jobs
//!   compact into a snapshot segment behind an offset index, so replay
//!   and result streaming are O(unsettled) in memory and the live tail
//!   stays small no matter how long the queue's history grows;
//! - [`queue`] — executors: in-process threads or `job-worker` OS
//!   processes, with per-attempt timeouts;
//! - [`wire`] — the line protocol (Unix socket or TCP) and client;
//! - [`server`] — the worker pool with bounded-capacity backpressure,
//!   per-client quotas, bounded retry with deterministic backoff,
//!   `drain` streaming, and remote `claim` workers over TCP.
//!
//! The durability contract, end to end: `kill -9` the server at any
//! instant, restart it on the same journal, and the merged results are
//! bit-identical to an uninterrupted run — completed jobs replay from
//! disk, unsettled jobs re-run, and `Experiment::run`'s determinism
//! makes the re-runs indistinguishable from first runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod queue;
pub mod server;
pub mod spec;
pub mod wire;

pub use journal::{valid_client_name, JobId, JobState, Journal, JournalError};
pub use queue::{Executor, InProcessExecutor, ProcessExecutor};
pub use server::{run_server, ServeConfig, ServeError, ServerReport};
pub use spec::{JobSpec, Tier};
pub use wire::{Client, Endpoint};
