//! The persistent job-queue journal.
//!
//! `vax-queue-journal v1` extends the `vax-campaign-checkpoint v1`
//! idea from *completed work* to the *whole queue*: an append-only
//! file of job-lifecycle records —
//!
//! ```text
//! vax-queue-journal v1
//! enqueue <id> <spec line>
//! start <id> attempt <k>
//! complete <id> instructions <N> cycles <C>
//! <upc-monitor codec body>
//! end
//! fail <id> attempts <k> message <escaped text>
//! ```
//!
//! Every state transition is one appended record, flushed before the
//! transition takes effect, so a `kill -9` at any instant leaves at
//! most a *prefix* of the final record on disk. [`Journal::open`]
//! replays the records into per-job state and applies the same
//! torn-tail policy as the checkpoint codec: a partial trailing append
//! is dropped with a warning (and the file truncated back to the last
//! good byte), while damage anywhere else — including a fully
//! terminated record that fails to parse — is a hard error. A
//! restarted server therefore re-runs exactly the jobs without a
//! `complete`/`fail` record: nothing is lost, nothing runs twice.

use crate::spec::JobSpec;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use upc_monitor::codec;
use vax780_core::MeasuredWorkload;

const HEADER: &str = "vax-queue-journal v1";

/// Monotonic job identifier, assigned at enqueue time.
pub type JobId = u64;

/// Why the journal could not be loaded or extended.
#[derive(Debug)]
#[non_exhaustive]
pub enum JournalError {
    /// The file could not be read or written.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file's contents did not parse.
    Corrupt {
        /// The journal path.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, source } => {
                write!(f, "queue journal {}: {source}", path.display())
            }
            JournalError::Corrupt { path, detail } => {
                write!(f, "queue journal {} is corrupt: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// How a settled job ended.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The measurement completed; the full result is recorded.
    Done(MeasuredWorkload),
    /// Every attempt failed; the job is quarantined.
    Failed {
        /// Attempts consumed before giving up.
        attempts: u32,
        /// The last failure message.
        message: String,
    },
}

/// Replayed state of one job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job's identifier.
    pub id: JobId,
    /// What to run.
    pub spec: JobSpec,
    /// `start` records seen (attempts begun, across all server lives).
    pub starts: u32,
    /// Final outcome, if the job has settled.
    pub outcome: Option<JobOutcome>,
}

impl JobRecord {
    /// One deterministic JSON result line, if the job has settled.
    ///
    /// The line derives only from the spec and the simulation outputs
    /// (never wall time or scheduling), so a killed-and-resumed
    /// parallel queue renders bit-identical lines to an uninterrupted
    /// serial run. The `digest` is FNV-1a 64 over the full
    /// histogram+counters codec text.
    pub fn result_json(&self) -> Option<String> {
        match self.outcome.as_ref()? {
            JobOutcome::Done(m) => {
                let cpi = if m.instructions > 0 {
                    m.cycles as f64 / m.instructions as f64
                } else {
                    0.0
                };
                let body = codec::to_text_with_counters(&m.histogram, &m.counters.to_pairs());
                Some(format!(
                    "{{\"job\":{},\"spec\":\"{}\",\"workload\":\"{}\",\"instructions\":{},\
                     \"cycles\":{},\"cpi\":{cpi:.6},\"machine_checks\":{},\
                     \"digest\":\"{:016x}\"}}",
                    self.id,
                    json_escape(&self.spec.render()),
                    self.spec.workload.name(),
                    m.instructions,
                    m.cycles,
                    m.counters.machine_checks,
                    fnv64(&body),
                ))
            }
            JobOutcome::Failed { attempts, message } => Some(format!(
                "{{\"job\":{},\"spec\":\"{}\",\"failed\":true,\"attempts\":{attempts},\
                 \"message\":\"{}\"}}",
                self.id,
                json_escape(&self.spec.render()),
                json_escape(message),
            )),
        }
    }
}

/// FNV-1a 64-bit digest (stable, dependency-free).
pub fn fnv64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Escape a failure message onto one journal line.
fn escape_message(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

fn unescape_message(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// A loaded (or freshly created) queue journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    jobs: BTreeMap<JobId, JobRecord>,
    warnings: Vec<String>,
}

impl Journal {
    /// Open `path`, creating it with just the header if missing, or
    /// replaying its records if present. A torn trailing append is
    /// dropped with a warning and the file truncated back to the last
    /// good byte.
    ///
    /// One writer at a time: the journal has no cross-process lock, so
    /// a server and an offline `enqueue` must not extend the same file
    /// concurrently.
    ///
    /// # Errors
    ///
    /// [`JournalError`] on I/O failure or mid-file corruption.
    pub fn open(path: &Path) -> Result<Journal, JournalError> {
        let io_err = |source| JournalError::Io {
            path: path.to_path_buf(),
            source,
        };
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let (journal, torn_at) = Journal::parse(path, &text)?;
                if let Some(good) = torn_at {
                    std::fs::write(path, &text[..good]).map_err(io_err)?;
                }
                Ok(journal)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                std::fs::write(path, format!("{HEADER}\n")).map_err(io_err)?;
                Ok(Journal {
                    path: path.to_path_buf(),
                    jobs: BTreeMap::new(),
                    warnings: Vec::new(),
                })
            }
            Err(e) => Err(io_err(e)),
        }
    }

    fn parse(path: &Path, text: &str) -> Result<(Journal, Option<usize>), JournalError> {
        let corrupt = |detail: String| JournalError::Corrupt {
            path: path.to_path_buf(),
            detail,
        };
        // Manual line walk with byte offsets: `(line, terminated)`.
        // A final line without its newline is an incomplete append.
        let take_line = |pos: &mut usize| -> Option<(&str, bool)> {
            if *pos >= text.len() {
                return None;
            }
            match text[*pos..].find('\n') {
                Some(i) => {
                    let line = &text[*pos..*pos + i];
                    *pos += i + 1;
                    Some((line, true))
                }
                None => {
                    let line = &text[*pos..];
                    *pos = text.len();
                    Some((line, false))
                }
            }
        };
        let mut pos = 0usize;
        match take_line(&mut pos) {
            Some((l, true)) if l.trim() == HEADER => {}
            _ => return Err(corrupt(format!("missing `{HEADER}` header"))),
        }

        // Same torn-vs-corrupt rule as the checkpoint codec: appends
        // are sequential, so a torn write leaves a prefix of ONE
        // record. If any fully terminated record-start (or `end`) line
        // follows the failure point, the damage is not a truncation
        // and we refuse to guess.
        let is_record_start = |t: &str| {
            t == "end"
                || t.starts_with("enqueue ")
                || t.starts_with("start ")
                || t.starts_with("complete ")
                || t.starts_with("fail ")
        };
        let tail_is_torn = |record_start: usize| -> bool {
            let mut p = record_start;
            let mut first = true;
            while let Some((line, terminated)) = take_line(&mut p) {
                if !first && terminated && is_record_start(line.trim()) {
                    return false;
                }
                first = false;
            }
            true
        };

        let mut jobs: BTreeMap<JobId, JobRecord> = BTreeMap::new();
        let mut good = pos;
        let mut torn: Option<(usize, String)> = None;
        'records: loop {
            let record_start = pos;
            let (raw, terminated) = match take_line(&mut pos) {
                None => break,
                Some(x) => x,
            };
            let trimmed = raw.trim();
            if trimmed.is_empty() && terminated {
                good = pos;
                continue;
            }
            let fail = |detail: String| -> Result<Option<(usize, String)>, JournalError> {
                if tail_is_torn(record_start) {
                    Ok(Some((record_start, detail)))
                } else {
                    Err(corrupt(detail))
                }
            };
            if !terminated {
                torn = fail(format!("incomplete trailing line `{trimmed}`"))?;
                break;
            }
            let mut words = trimmed.splitn(3, ' ');
            let keyword = words.next().unwrap_or("");
            let id: Option<JobId> = words.next().and_then(|w| w.parse().ok());
            let rest = words.next().unwrap_or("");
            match (keyword, id) {
                ("enqueue", Some(id)) => {
                    let spec = match JobSpec::parse(rest) {
                        Ok(s) => s,
                        Err(e) => {
                            torn = fail(format!("enqueue {id}: {e}"))?;
                            break;
                        }
                    };
                    if jobs.contains_key(&id) {
                        return Err(corrupt(format!("duplicate enqueue for job {id}")));
                    }
                    jobs.insert(
                        id,
                        JobRecord {
                            id,
                            spec,
                            starts: 0,
                            outcome: None,
                        },
                    );
                }
                ("start", Some(id)) => {
                    let attempt: Option<u32> =
                        match rest.split_ascii_whitespace().collect::<Vec<_>>().as_slice() {
                            ["attempt", k] => k.parse().ok(),
                            _ => None,
                        };
                    let Some(attempt) = attempt else {
                        torn = fail(format!("bad start record `{trimmed}`"))?;
                        break;
                    };
                    let Some(job) = jobs.get_mut(&id) else {
                        return Err(corrupt(format!("start for unknown job {id}")));
                    };
                    if job.outcome.is_some() {
                        return Err(corrupt(format!("start for settled job {id}")));
                    }
                    job.starts = job.starts.max(attempt);
                }
                ("fail", Some(id)) => {
                    let parsed = rest
                        .strip_prefix("attempts ")
                        .and_then(|r| r.split_once(" message "))
                        .and_then(|(k, msg)| {
                            k.parse::<u32>().ok().map(|k| (k, unescape_message(msg)))
                        });
                    let Some((attempts, message)) = parsed else {
                        torn = fail(format!("bad fail record `{trimmed}`"))?;
                        break;
                    };
                    let Some(job) = jobs.get_mut(&id) else {
                        return Err(corrupt(format!("fail for unknown job {id}")));
                    };
                    if job.outcome.is_some() {
                        return Err(corrupt(format!("fail for settled job {id}")));
                    }
                    job.outcome = Some(JobOutcome::Failed { attempts, message });
                }
                ("complete", Some(id)) => {
                    let lens: Option<(u64, u64)> =
                        match rest.split_ascii_whitespace().collect::<Vec<_>>().as_slice() {
                            ["instructions", i, "cycles", c] => i.parse().ok().zip(c.parse().ok()),
                            _ => None,
                        };
                    let Some((instructions, cycles)) = lens else {
                        torn = fail(format!("bad complete record `{trimmed}`"))?;
                        break;
                    };
                    let mut body = String::new();
                    let mut closed = false;
                    while let Some((l, terminated)) = take_line(&mut pos) {
                        if l.trim() == "end" && terminated {
                            closed = true;
                            break;
                        }
                        if !terminated {
                            break;
                        }
                        body.push_str(l);
                        body.push('\n');
                    }
                    if !closed {
                        torn = fail(format!("complete {id} has no `end` line"))?;
                        break 'records;
                    }
                    // Fully terminated section: anything wrong inside
                    // is real corruption, not a torn append.
                    let (histogram, counter_pairs) = codec::from_text_with_counters(&body)
                        .map_err(|e| corrupt(format!("complete {id}: {e}")))?;
                    let counters = vax_mem::HwCounters::from_pairs(
                        counter_pairs.iter().map(|(n, v)| (n.as_str(), *v)),
                    );
                    let Some(job) = jobs.get_mut(&id) else {
                        return Err(corrupt(format!("complete for unknown job {id}")));
                    };
                    if job.outcome.is_some() {
                        return Err(corrupt(format!("complete for settled job {id}")));
                    }
                    job.outcome = Some(JobOutcome::Done(MeasuredWorkload {
                        name: job.spec.workload.name(),
                        histogram,
                        counters,
                        instructions,
                        cycles,
                    }));
                }
                _ => {
                    torn = fail(format!("unparseable record `{trimmed}`"))?;
                    break;
                }
            }
            good = pos;
        }
        let mut warnings = Vec::new();
        let torn_at = torn.map(|(at, detail)| {
            warnings.push(format!(
                "dropped torn trailing record ({} byte(s) after the last complete \
                 record): {detail}; the transition will be replayed",
                text.len() - at
            ));
            good
        });
        Ok((
            Journal {
                path: path.to_path_buf(),
                jobs,
                warnings,
            },
            torn_at,
        ))
    }

    /// Warnings produced while opening (torn trailing record dropped).
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// All jobs, id order.
    pub fn jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.values()
    }

    /// One job's replayed state.
    pub fn get(&self, id: JobId) -> Option<&JobRecord> {
        self.jobs.get(&id)
    }

    /// Ids of jobs with no settled outcome, id order — exactly the work
    /// a restarted server must (re-)run.
    pub fn pending(&self) -> Vec<JobId> {
        self.jobs
            .values()
            .filter(|j| j.outcome.is_none())
            .map(|j| j.id)
            .collect()
    }

    /// `(unsettled, done, failed)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut pending = 0;
        let mut done = 0;
        let mut failed = 0;
        for job in self.jobs.values() {
            match &job.outcome {
                None => pending += 1,
                Some(JobOutcome::Done(_)) => done += 1,
                Some(JobOutcome::Failed { .. }) => failed += 1,
            }
        }
        (pending, done, failed)
    }

    fn append(&self, record: &str) -> Result<(), JournalError> {
        let io_err = |source| JournalError::Io {
            path: self.path.clone(),
            source,
        };
        let mut file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(io_err)?;
        file.write_all(record.as_bytes()).map_err(io_err)?;
        file.flush().map_err(io_err)?;
        Ok(())
    }

    /// Append an `enqueue` record and return the new job's id.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the append fails.
    pub fn append_enqueue(&mut self, spec: &JobSpec) -> Result<JobId, JournalError> {
        let id = self.jobs.keys().next_back().map_or(1, |last| last + 1);
        self.append(&format!("enqueue {id} {}\n", spec.render()))?;
        self.jobs.insert(
            id,
            JobRecord {
                id,
                spec: spec.clone(),
                starts: 0,
                outcome: None,
            },
        );
        Ok(id)
    }

    /// Append a `start` record for an attempt on a pending job.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the append fails.
    pub fn append_start(&mut self, id: JobId, attempt: u32) -> Result<(), JournalError> {
        self.append(&format!("start {id} attempt {attempt}\n"))?;
        if let Some(job) = self.jobs.get_mut(&id) {
            job.starts = job.starts.max(attempt);
        }
        Ok(())
    }

    /// Append a `complete` record with the full measurement.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the append fails.
    pub fn append_complete(
        &mut self,
        id: JobId,
        result: &MeasuredWorkload,
    ) -> Result<(), JournalError> {
        let mut section = format!(
            "complete {id} instructions {} cycles {}\n",
            result.instructions, result.cycles
        );
        section.push_str(&codec::to_text_with_counters(
            &result.histogram,
            &result.counters.to_pairs(),
        ));
        section.push_str("end\n");
        self.append(&section)?;
        if let Some(job) = self.jobs.get_mut(&id) {
            job.outcome = Some(JobOutcome::Done(result.clone()));
        }
        Ok(())
    }

    /// Append a `fail` record quarantining the job.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the append fails.
    pub fn append_fail(
        &mut self,
        id: JobId,
        attempts: u32,
        message: &str,
    ) -> Result<(), JournalError> {
        self.append(&format!(
            "fail {id} attempts {attempts} message {}\n",
            escape_message(message)
        ))?;
        if let Some(job) = self.jobs.get_mut(&id) {
            job.outcome = Some(JobOutcome::Failed {
                attempts,
                message: message.to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upc_monitor::Histogram;
    use vax_mem::HwCounters;
    use vax_ucode::MicroAddr;
    use vax_workloads::WorkloadKind;

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(kind: WorkloadKind) -> MeasuredWorkload {
        let mut h = Histogram::new();
        h.bump_issue(MicroAddr::new(0x22));
        h.bump_stall(MicroAddr::new(0x22), 2);
        let mut c = HwCounters::new();
        c.sbi_reads = 3;
        MeasuredWorkload {
            name: kind.name(),
            histogram: h,
            counters: c,
            instructions: 500,
            cycles: 2100,
        }
    }

    #[test]
    fn journal_round_trips_the_queue() {
        let dir = tempdir("vax-journal-roundtrip");
        let path = dir.join("queue.journal");
        let mut j = Journal::open(&path).unwrap();
        let spec_a = JobSpec::new(WorkloadKind::TimesharingLight);
        let mut spec_b = JobSpec::new(WorkloadKind::SciEng);
        spec_b.seed = Some(9);
        let a = j.append_enqueue(&spec_a).unwrap();
        let b = j.append_enqueue(&spec_b).unwrap();
        assert_eq!((a, b), (1, 2));
        j.append_start(a, 1).unwrap();
        j.append_complete(a, &sample(WorkloadKind::TimesharingLight))
            .unwrap();
        j.append_start(b, 1).unwrap();
        j.append_fail(b, 4, "worker panicked:\nboom").unwrap();

        let back = Journal::open(&path).unwrap();
        assert!(back.warnings().is_empty());
        assert_eq!(back.pending(), Vec::<JobId>::new());
        assert_eq!(back.counts(), (0, 1, 1));
        let ra = back.get(a).unwrap();
        assert_eq!(ra.spec, spec_a);
        assert_eq!(ra.starts, 1);
        match ra.outcome.as_ref().unwrap() {
            JobOutcome::Done(m) => {
                assert_eq!(m.cycles, 2100);
                assert_eq!(m.counters.sbi_reads, 3);
            }
            other => panic!("{other:?}"),
        }
        match back.get(b).unwrap().outcome.as_ref().unwrap() {
            JobOutcome::Failed { attempts, message } => {
                assert_eq!(*attempts, 4);
                assert_eq!(message, "worker panicked:\nboom");
            }
            other => panic!("{other:?}"),
        }
        // A settled job renders a result line; ids keep growing.
        assert!(ra.result_json().unwrap().contains("\"job\":1"));
        let mut back = back;
        assert_eq!(back.append_enqueue(&spec_a).unwrap(), 3);
        assert_eq!(back.pending(), vec![3]);
    }

    #[test]
    fn torn_tail_is_dropped_at_every_byte_offset() {
        let dir = tempdir("vax-journal-torn");
        let path = dir.join("queue.journal");
        let mut j = Journal::open(&path).unwrap();
        let spec = JobSpec::new(WorkloadKind::Commercial);
        j.append_enqueue(&spec).unwrap();
        j.append_start(1, 1).unwrap();
        let good_text = std::fs::read_to_string(&path).unwrap();
        let good_len = good_text.len();
        j.append_complete(1, &sample(WorkloadKind::Commercial))
            .unwrap();
        let full_text = std::fs::read_to_string(&path).unwrap();

        for cut in good_len..full_text.len() {
            std::fs::write(&path, &full_text[..cut]).unwrap();
            let j = Journal::open(&path).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            assert_eq!(j.pending(), vec![1], "cut at {cut}");
            if cut == good_len {
                assert!(j.warnings().is_empty(), "clean cut at {cut}");
            } else {
                assert_eq!(j.warnings().len(), 1, "cut at {cut}");
                assert_eq!(std::fs::read_to_string(&path).unwrap(), good_text);
            }
        }
        // Untouched file: settled, no warnings.
        std::fs::write(&path, &full_text).unwrap();
        let j = Journal::open(&path).unwrap();
        assert!(j.warnings().is_empty());
        assert_eq!(j.counts(), (0, 1, 0));
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let dir = tempdir("vax-journal-corrupt");
        let path = dir.join("queue.journal");
        for bad in [
            "nope\n",
            "vax-queue-journal v1\nstart 7 attempt 1\n",
            "vax-queue-journal v1\ncomplete 7 instructions 1 cycles 2\nupc-histogram v1\nend\n",
            "vax-queue-journal v1\nenqueue 1 workload=sci-eng instructions=10 warmup=1\n\
             enqueue 1 workload=sci-eng instructions=10 warmup=1\n",
            "vax-queue-journal v1\ngarbage\nenqueue 1 workload=sci-eng instructions=10 warmup=1\n",
        ] {
            std::fs::write(&path, bad).unwrap();
            let err = Journal::open(&path).unwrap_err();
            assert!(
                matches!(err, JournalError::Corrupt { .. }),
                "{bad:?}: {err}"
            );
        }
        // A terminated complete section with a bad codec body is real
        // corruption even at the tail.
        std::fs::write(
            &path,
            "vax-queue-journal v1\nenqueue 1 workload=sci-eng instructions=10 warmup=1\n\
             complete 1 instructions 1 cycles 2\nnot a histogram\nend\n",
        )
        .unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn result_lines_are_deterministic() {
        let record = JobRecord {
            id: 5,
            spec: JobSpec::new(WorkloadKind::Educational),
            starts: 1,
            outcome: Some(JobOutcome::Done(sample(WorkloadKind::Educational))),
        };
        let a = record.result_json().unwrap();
        let b = record.result_json().unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"cpi\":4.200000"), "{a}");
        assert!(a.contains("\"digest\":\""), "{a}");
    }
}
