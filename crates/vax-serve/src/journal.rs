//! The persistent job-queue journal, `vax-queue-journal v2`.
//!
//! Version 2 splits the queue across **two segments** so the journal
//! stays sublinear in its own history:
//!
//! - the **tail** (`<path>`) is the append-only live segment, one
//!   flushed record per lifecycle transition, exactly as in v1:
//!
//!   ```text
//!   vax-queue-journal v2 generation <G> next <N>
//!   enqueue <id> [client=<name>] <spec line>
//!   start <id> attempt <k>
//!   complete <id> instructions <N> cycles <C>
//!   <upc-monitor codec body>
//!   end
//!   fail <id> attempts <k> message <escaped text>
//!   ```
//!
//! - the **snapshot** (`<path>.snap`) holds compacted settled jobs in
//!   final form behind an offset index, so neither replay nor result
//!   streaming ever needs to read their bodies into memory:
//!
//!   ```text
//!   vax-queue-snapshot v2 generation <G> jobs <N>
//!   index
//!   entry <id> <rel-offset> <len> done|failed
//!   ...
//!   end
//!   job <id> <spec line>
//!   complete <id> instructions <N> cycles <C>
//!   <upc-monitor codec body>
//!   end
//!   ...
//!   ```
//!
//! [`Journal::compact`] migrates every settled job from the tail into
//! a fresh snapshot and rewrites the tail with only the unsettled
//! records. Compaction is crash-safe by write-new-then-rename: both
//! replacement files are fully written and synced to temporaries,
//! then the snapshot is renamed into place *before* the tail. A
//! `kill -9` at any byte offset therefore leaves one of three states —
//! old pair, new snapshot + old tail, or new pair — and
//! [`Journal::open`] replays each to the identical queue: a tail whose
//! generation lags the snapshot is the pre-compaction tail, so its
//! records for jobs the snapshot already settled are skipped as the
//! expected overlap rather than corruption.
//!
//! Replay is **O(unsettled)** in memory: the tail is consumed through
//! a buffered line reader one record at a time (with the v1 torn-tail
//! policy — a partial trailing append is dropped and truncated, damage
//! anywhere else is a hard [`JournalError::Corrupt`]), settled jobs
//! collapse to fixed-size offset-table entries, and only unsettled
//! jobs keep their parsed spec in memory. Result lines for `results`/
//! `drain` are re-derived by seeking to the recorded offsets, so a
//! fully settled million-job queue streams without ever materializing
//! the settled set.
//!
//! A `vax-queue-journal v1` file (no snapshot, no generation) is
//! recognized and **upgraded on open**: it replays under v1 rules and
//! is immediately compacted into the v2 pair. Result lines are
//! byte-identical across the upgrade because the record bodies are
//! preserved verbatim and the digest is computed over the same bytes.

use crate::spec::JobSpec;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use upc_monitor::codec;
use vax780_core::MeasuredWorkload;

const HEADER_V1: &str = "vax-queue-journal v1";
const HEADER_V2: &str = "vax-queue-journal v2";
const SNAP_HEADER: &str = "vax-queue-snapshot v2";

/// Monotonic job identifier, assigned at enqueue time.
pub type JobId = u64;

/// Why the journal could not be loaded or extended.
#[derive(Debug)]
#[non_exhaustive]
pub enum JournalError {
    /// The file could not be read or written.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file's contents did not parse.
    Corrupt {
        /// The journal path.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, source } => {
                write!(f, "queue journal {}: {source}", path.display())
            }
            JournalError::Corrupt { path, detail } => {
                write!(f, "queue journal {} is corrupt: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Replayed state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// No settled outcome yet; the job must (re-)run.
    Pending,
    /// A `complete` record exists.
    Done,
    /// A `fail` record exists; the job is quarantined.
    Failed,
}

impl JobState {
    /// The state name as printed by `status`.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// An unsettled job: the only kind whose spec stays in memory.
#[derive(Debug, Clone)]
pub struct PendingJob {
    /// What to run.
    pub spec: JobSpec,
    /// Client that enqueued the job (empty = anonymous).
    pub client: String,
    /// `start` records seen (attempts begun, across all server lives).
    pub starts: u32,
    /// Byte offset of the `enqueue` record in the tail.
    enqueue_at: u64,
    /// Byte length of the `enqueue` record (newline included).
    enqueue_len: u32,
}

/// Which segment a settled record lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Snapshot,
    Tail,
}

/// One settled job, reduced to an offset-table entry. The record
/// bodies stay on disk; this is all the memory a settled job costs.
#[derive(Debug, Clone, Copy)]
struct SettledRef {
    seg: Segment,
    /// Tail: offset/length of the `enqueue` record carrying the spec.
    /// Snapshot: unused (the record's own `job` line carries it).
    spec_at: u64,
    spec_len: u32,
    /// Offset of the settle record (`complete`/`fail` in the tail, the
    /// whole `job ...` record in the snapshot).
    at: u64,
    len: u64,
    kind: JobState,
}

/// FNV-1a 64-bit digest (stable, dependency-free).
pub fn fnv64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Escape a failure message onto one journal line.
fn escape_message(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

fn unescape_message(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Is `name` usable as a per-client identity on an `enqueue` record?
/// One token, so it survives the one-line journal and wire codecs.
pub fn valid_client_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-' | b'@'))
}

/// The deterministic JSON result line for one settled job. Field
/// order and formatting are pinned: they are the bytes the kill -9
/// idempotence proof diffs.
fn render_done(
    id: JobId,
    spec_render: &str,
    workload: &str,
    instructions: u64,
    cycles: u64,
    machine_checks: u64,
    digest: u64,
) -> String {
    let cpi = if instructions > 0 {
        cycles as f64 / instructions as f64
    } else {
        0.0
    };
    format!(
        "{{\"job\":{id},\"spec\":\"{}\",\"workload\":\"{workload}\",\"instructions\":{instructions},\
         \"cycles\":{cycles},\"cpi\":{cpi:.6},\"machine_checks\":{machine_checks},\
         \"digest\":\"{digest:016x}\"}}",
        json_escape(spec_render),
    )
}

fn render_failed(id: JobId, spec_render: &str, attempts: u32, message: &str) -> String {
    format!(
        "{{\"job\":{id},\"spec\":\"{}\",\"failed\":true,\"attempts\":{attempts},\
         \"message\":\"{}\"}}",
        json_escape(spec_render),
        json_escape(message),
    )
}

/// Buffered line reader that tracks byte offsets and whether each line
/// was newline-terminated — the streaming replacement for the v1
/// whole-file `read_to_string` walk. Invalid UTF-8 is surfaced as a
/// lossy line so the caller's torn-vs-corrupt logic decides its fate.
struct LineReader<R> {
    inner: R,
    pos: u64,
    buf: Vec<u8>,
}

impl<R: BufRead> LineReader<R> {
    fn new(inner: R) -> LineReader<R> {
        LineReader {
            inner,
            pos: 0,
            buf: Vec::new(),
        }
    }

    /// `(start_offset, line_without_newline, terminated)`, or `None`
    /// at EOF.
    fn next_line(&mut self) -> std::io::Result<Option<(u64, String, bool)>> {
        self.buf.clear();
        let start = self.pos;
        let n = self.inner.read_until(b'\n', &mut self.buf)?;
        if n == 0 {
            return Ok(None);
        }
        self.pos += n as u64;
        let terminated = self.buf.last() == Some(&b'\n');
        if terminated {
            self.buf.pop();
        }
        Ok(Some((
            start,
            String::from_utf8_lossy(&self.buf).into_owned(),
            terminated,
        )))
    }
}

fn snap_path_for(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".snap");
    PathBuf::from(os)
}

fn is_record_start(t: &str) -> bool {
    t == "end"
        || t.starts_with("enqueue ")
        || t.starts_with("start ")
        || t.starts_with("complete ")
        || t.starts_with("fail ")
}

/// Read `len` bytes at `at` from an open file.
fn read_span(file: &mut File, at: u64, len: u64) -> std::io::Result<Vec<u8>> {
    file.seek(SeekFrom::Start(at))?;
    let mut buf = vec![0u8; len as usize];
    file.read_exact(&mut buf)?;
    Ok(buf)
}

/// What one settled record streams back as, before JSON rendering.
enum StreamedOutcome {
    Done {
        instructions: u64,
        cycles: u64,
        machine_checks: u64,
        digest: u64,
    },
    Failed {
        attempts: u32,
        message: String,
    },
}

/// A loaded (or freshly created) queue journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    snap_path: PathBuf,
    generation: u64,
    next_id: JobId,
    tail_len: u64,
    pending: BTreeMap<JobId, PendingJob>,
    settled: BTreeMap<JobId, SettledRef>,
    done: usize,
    failed: usize,
    settled_in_tail: usize,
    clients: BTreeMap<String, usize>,
    warnings: Vec<String>,
}

impl Journal {
    /// Open `path`, creating the v2 pair if missing, replaying it if
    /// present, or upgrading a v1 journal in place. A torn trailing
    /// tail append is dropped with a warning and the tail truncated
    /// back to the last good byte.
    ///
    /// One writer at a time: the journal has no cross-process lock, so
    /// a server and an offline `enqueue` must not extend the same file
    /// concurrently.
    ///
    /// # Errors
    ///
    /// [`JournalError`] on I/O failure or mid-file corruption.
    pub fn open(path: &Path) -> Result<Journal, JournalError> {
        let mut journal = Journal {
            path: path.to_path_buf(),
            snap_path: snap_path_for(path),
            generation: 0,
            next_id: 1,
            tail_len: 0,
            pending: BTreeMap::new(),
            settled: BTreeMap::new(),
            done: 0,
            failed: 0,
            settled_in_tail: 0,
            clients: BTreeMap::new(),
            warnings: Vec::new(),
        };
        let snap_generation = match File::open(&journal.snap_path) {
            Ok(file) => Some(journal.load_snapshot(file)?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(source) => {
                return Err(JournalError::Io {
                    path: journal.snap_path.clone(),
                    source,
                })
            }
        };
        let upgrade = match File::open(path) {
            Ok(file) => journal.replay_tail(file, snap_generation)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                journal.generation = snap_generation.unwrap_or(0);
                journal.next_id = journal.max_settled_id() + 1;
                journal.write_fresh_tail()?;
                false
            }
            Err(source) => {
                return Err(JournalError::Io {
                    path: path.to_path_buf(),
                    source,
                })
            }
        };
        if upgrade {
            journal.compact()?;
            journal
                .warnings
                .push("upgraded v1 journal to the v2 segment scheme".to_string());
        }
        Ok(journal)
    }

    fn io_err(&self, source: std::io::Error) -> JournalError {
        JournalError::Io {
            path: self.path.clone(),
            source,
        }
    }

    fn corrupt(&self, detail: String) -> JournalError {
        JournalError::Corrupt {
            path: self.path.clone(),
            detail,
        }
    }

    fn snap_corrupt(&self, detail: String) -> JournalError {
        JournalError::Corrupt {
            path: self.snap_path.clone(),
            detail,
        }
    }

    fn max_settled_id(&self) -> JobId {
        self.settled.keys().next_back().copied().unwrap_or(0)
    }

    /// Load the snapshot segment: header plus offset index only — the
    /// record bodies are never read at open. Snapshots are written
    /// atomically (rename), so any damage is a hard error, never a
    /// torn tail.
    fn load_snapshot(&mut self, file: File) -> Result<u64, JournalError> {
        let file_len = file
            .metadata()
            .map_err(|e| JournalError::Io {
                path: self.snap_path.clone(),
                source: e,
            })?
            .len();
        let mut reader = LineReader::new(BufReader::new(file));
        let mut next = || {
            reader.next_line().map_err(|e| JournalError::Io {
                path: self.snap_path.clone(),
                source: e,
            })
        };
        let (generation, jobs): (u64, usize) = match next()? {
            Some((_, line, true)) => {
                let words: Vec<&str> = line.split_ascii_whitespace().collect();
                match words.as_slice() {
                    ["vax-queue-snapshot", "v2", "generation", g, "jobs", n] => g
                        .parse()
                        .ok()
                        .zip(n.parse().ok())
                        .ok_or_else(|| self.snap_corrupt(format!("bad header `{line}`")))?,
                    _ => {
                        return Err(self.snap_corrupt(format!(
                            "missing `{SNAP_HEADER}` header (got `{line}`)"
                        )))
                    }
                }
            }
            _ => return Err(self.snap_corrupt(format!("missing `{SNAP_HEADER}` header"))),
        };
        match next()? {
            Some((_, line, true)) if line.trim() == "index" => {}
            other => {
                return Err(self.snap_corrupt(format!("missing `index` section (got {other:?})")))
            }
        }
        let mut entries: Vec<(JobId, u64, u64, JobState)> = Vec::with_capacity(jobs);
        loop {
            match next()? {
                Some((_, line, true)) if line.trim() == "end" => break,
                Some((_, line, true)) => {
                    let words: Vec<&str> = line.split_ascii_whitespace().collect();
                    let parsed = match words.as_slice() {
                        ["entry", id, rel, len, kind] => {
                            let kind = match *kind {
                                "done" => Some(JobState::Done),
                                "failed" => Some(JobState::Failed),
                                _ => None,
                            };
                            id.parse().ok().zip(rel.parse().ok()).zip(
                                len.parse()
                                    .ok()
                                    .zip(kind)
                                    .map(|(l, k): (u64, JobState)| (l, k)),
                            )
                        }
                        _ => None,
                    };
                    let Some(((id, rel), (len, kind))) = parsed else {
                        return Err(self.snap_corrupt(format!("bad index entry `{line}`")));
                    };
                    if let Some(&(last, ..)) = entries.last() {
                        if id <= last {
                            return Err(
                                self.snap_corrupt(format!("index not strictly increasing at {id}"))
                            );
                        }
                    }
                    entries.push((id, rel, len, kind));
                }
                _ => return Err(self.snap_corrupt("index has no `end` line".to_string())),
            }
        }
        if entries.len() != jobs {
            return Err(self.snap_corrupt(format!(
                "header claims {jobs} job(s) but the index holds {}",
                entries.len()
            )));
        }
        let base = reader.pos;
        for (id, rel, len, kind) in entries {
            let at = base + rel;
            if at + len > file_len {
                return Err(self.snap_corrupt(format!(
                    "index entry for job {id} points past the end of the file"
                )));
            }
            match kind {
                JobState::Done => self.done += 1,
                JobState::Failed => self.failed += 1,
                JobState::Pending => unreachable!(),
            }
            self.settled.insert(
                id,
                SettledRef {
                    seg: Segment::Snapshot,
                    spec_at: at,
                    spec_len: 0,
                    at,
                    len,
                    kind,
                },
            );
        }
        Ok(generation)
    }

    /// Replay the tail through a buffered line reader — O(one record)
    /// memory — applying the v1 torn-vs-corrupt policy and, when the
    /// tail's generation lags the snapshot's (the mid-compaction crash
    /// window), skipping records for jobs the snapshot already
    /// settled. Returns whether the file was a v1 journal needing
    /// upgrade.
    fn replay_tail(
        &mut self,
        file: File,
        snap_generation: Option<u64>,
    ) -> Result<bool, JournalError> {
        let mut reader = LineReader::new(BufReader::new(file));
        let io = |this: &Journal, e| this.io_err(e);

        // Header: v1 (upgrade), or v2 with generation + next-id.
        let (version, mut header_next) = match reader.next_line().map_err(|e| io(self, e))? {
            Some((_, line, true)) if line.trim() == HEADER_V1 => (1u32, 1),
            Some((_, line, true)) => {
                let words: Vec<&str> = line.split_ascii_whitespace().collect();
                match words.as_slice() {
                    ["vax-queue-journal", "v2", "generation", g, "next", n] => {
                        let parsed: Option<(u64, JobId)> = g.parse().ok().zip(n.parse().ok());
                        let Some((generation, next)) = parsed else {
                            return Err(self.corrupt(format!("bad header `{line}`")));
                        };
                        self.generation = generation;
                        (2, next)
                    }
                    _ => {
                        return Err(
                            self.corrupt(format!("missing `{HEADER_V2}` header (got `{line}`)"))
                        )
                    }
                }
            }
            _ => return Err(self.corrupt(format!("missing `{HEADER_V2}` header"))),
        };
        if header_next == 0 {
            header_next = 1;
        }

        // Reconcile the tail against the snapshot. A lagging tail is
        // the expected state after a kill between the two compaction
        // renames: its records for snapshot-settled jobs are replayed
        // as no-ops.
        let stale_tail = match snap_generation {
            Some(snap_gen) => {
                if self.generation > snap_gen {
                    return Err(self.corrupt(format!(
                        "tail generation {} is newer than snapshot generation {snap_gen}",
                        self.generation
                    )));
                }
                let stale = self.generation < snap_gen;
                self.generation = snap_gen;
                stale
            }
            None => {
                if self.generation > 0 {
                    return Err(self.corrupt(format!(
                        "tail generation {} but the snapshot segment {} is missing",
                        self.generation,
                        self.snap_path.display()
                    )));
                }
                false
            }
        };

        // Torn-vs-corrupt, as in v1: appends are sequential, so a torn
        // write leaves a prefix of ONE record. If any fully terminated
        // record-start line exists after the failure point, the damage
        // is not a truncation and we refuse to guess.
        let mut good = reader.pos;
        let mut torn: Option<(u64, String)> = None;
        'records: loop {
            let (record_start, raw, terminated) =
                match reader.next_line().map_err(|e| io(self, e))? {
                    None => break,
                    Some(x) => x,
                };
            let trimmed = raw.trim().to_string();
            if trimmed.is_empty() && terminated {
                good = reader.pos;
                continue;
            }
            // Resolve a record-level failure: torn if nothing
            // record-shaped follows (`saw_more` covers lines already
            // consumed by this record), corrupt otherwise.
            macro_rules! fail {
                ($saw_more:expr, $detail:expr) => {{
                    let detail: String = $detail;
                    let mut saw = $saw_more;
                    while let Some((_, line, term)) = reader.next_line().map_err(|e| io(self, e))? {
                        if term && is_record_start(line.trim()) {
                            saw = true;
                        }
                    }
                    if saw {
                        return Err(self.corrupt(detail));
                    }
                    torn = Some((record_start, detail));
                    break 'records;
                }};
            }
            if !terminated {
                fail!(false, format!("incomplete trailing line `{trimmed}`"));
            }
            let mut words = trimmed.splitn(3, ' ');
            let keyword = words.next().unwrap_or("").to_string();
            let id: Option<JobId> = words.next().and_then(|w| w.parse().ok());
            let rest = words.next().unwrap_or("").to_string();
            match (keyword.as_str(), id) {
                ("enqueue", Some(id)) => {
                    let (client, spec_line) = match rest.split_once(' ') {
                        Some((first, tail_rest)) if first.starts_with("client=") => {
                            let name = &first["client=".len()..];
                            if !valid_client_name(name) {
                                fail!(false, format!("enqueue {id}: bad client name `{name}`"));
                            }
                            (name.to_string(), tail_rest)
                        }
                        _ => (String::new(), rest.as_str()),
                    };
                    let spec = match JobSpec::parse(spec_line) {
                        Ok(s) => s,
                        Err(e) => fail!(false, format!("enqueue {id}: {e}")),
                    };
                    if stale_tail && self.settled.contains_key(&id) {
                        // Pre-compaction tail: the snapshot already
                        // holds this job in settled form.
                        good = reader.pos;
                        self.next_id = self.next_id.max(id + 1);
                        continue;
                    }
                    if self.pending.contains_key(&id) || self.settled.contains_key(&id) {
                        return Err(self.corrupt(format!("duplicate enqueue for job {id}")));
                    }
                    *self.clients.entry(client.clone()).or_insert(0) += 1;
                    self.pending.insert(
                        id,
                        PendingJob {
                            spec,
                            client,
                            starts: 0,
                            enqueue_at: record_start,
                            enqueue_len: (reader.pos - record_start) as u32,
                        },
                    );
                    self.next_id = self.next_id.max(id + 1);
                }
                ("start", Some(id)) => {
                    let attempt: Option<u32> =
                        match rest.split_ascii_whitespace().collect::<Vec<_>>().as_slice() {
                            ["attempt", k] => k.parse().ok(),
                            _ => None,
                        };
                    let Some(attempt) = attempt else {
                        fail!(false, format!("bad start record `{trimmed}`"));
                    };
                    if stale_tail && self.settled.contains_key(&id) {
                        good = reader.pos;
                        continue;
                    }
                    if self.settled.contains_key(&id) {
                        return Err(self.corrupt(format!("start for settled job {id}")));
                    }
                    let Some(job) = self.pending.get_mut(&id) else {
                        return Err(self.corrupt(format!("start for unknown job {id}")));
                    };
                    job.starts = job.starts.max(attempt);
                }
                ("fail", Some(id)) => {
                    let parsed = rest
                        .strip_prefix("attempts ")
                        .and_then(|r| r.split_once(" message "))
                        .and_then(|(k, _msg)| k.parse::<u32>().ok());
                    if parsed.is_none() {
                        fail!(false, format!("bad fail record `{trimmed}`"));
                    }
                    if stale_tail && self.settled.contains_key(&id) {
                        good = reader.pos;
                        continue;
                    }
                    self.settle_from_tail(
                        id,
                        record_start,
                        reader.pos - record_start,
                        JobState::Failed,
                    )?;
                }
                ("complete", Some(id)) => {
                    let lens: Option<(u64, u64)> =
                        match rest.split_ascii_whitespace().collect::<Vec<_>>().as_slice() {
                            ["instructions", i, "cycles", c] => i.parse().ok().zip(c.parse().ok()),
                            _ => None,
                        };
                    if lens.is_none() {
                        fail!(false, format!("bad complete record `{trimmed}`"));
                    }
                    let mut body = String::new();
                    let mut closed = false;
                    let mut saw_more = false;
                    while let Some((_, l, term)) = reader.next_line().map_err(|e| io(self, e))? {
                        if l.trim() == "end" && term {
                            closed = true;
                            break;
                        }
                        if !term {
                            break;
                        }
                        if is_record_start(l.trim()) {
                            saw_more = true;
                        }
                        body.push_str(&l);
                        body.push('\n');
                    }
                    if !closed {
                        fail!(saw_more, format!("complete {id} has no `end` line"));
                    }
                    // Fully terminated section: anything wrong inside
                    // is real corruption, not a torn append. Parse to
                    // validate, then discard — only offsets are kept.
                    codec::from_text_with_counters(&body)
                        .map_err(|e| self.corrupt(format!("complete {id}: {e}")))?;
                    if stale_tail && self.settled.contains_key(&id) {
                        good = reader.pos;
                        continue;
                    }
                    self.settle_from_tail(
                        id,
                        record_start,
                        reader.pos - record_start,
                        JobState::Done,
                    )?;
                }
                _ => {
                    fail!(false, format!("unparseable record `{trimmed}`"));
                }
            }
            good = reader.pos;
        }
        self.next_id = self.next_id.max(header_next).max(self.max_settled_id() + 1);
        let end = reader.pos;
        self.tail_len = good;
        if let Some((at, detail)) = torn {
            self.warnings.push(format!(
                "dropped torn trailing record ({} byte(s) after the last complete \
                 record): {detail}; the transition will be replayed",
                end - at
            ));
            let file = OpenOptions::new()
                .write(true)
                .open(&self.path)
                .map_err(|e| self.io_err(e))?;
            file.set_len(good).map_err(|e| self.io_err(e))?;
        }
        Ok(version == 1)
    }

    /// Move a pending job to the settled offset table during replay.
    fn settle_from_tail(
        &mut self,
        id: JobId,
        at: u64,
        len: u64,
        kind: JobState,
    ) -> Result<(), JournalError> {
        if self.settled.contains_key(&id) {
            return Err(self.corrupt(format!("{} for settled job {id}", kind.name())));
        }
        let Some(job) = self.pending.remove(&id) else {
            return Err(self.corrupt(format!("{} for unknown job {id}", kind.name())));
        };
        self.client_settled(&job.client);
        match kind {
            JobState::Done => self.done += 1,
            JobState::Failed => self.failed += 1,
            JobState::Pending => unreachable!(),
        }
        self.settled_in_tail += 1;
        self.settled.insert(
            id,
            SettledRef {
                seg: Segment::Tail,
                spec_at: job.enqueue_at,
                spec_len: job.enqueue_len,
                at,
                len,
                kind,
            },
        );
        Ok(())
    }

    fn client_settled(&mut self, client: &str) {
        if let Some(count) = self.clients.get_mut(client) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                self.clients.remove(client);
            }
        }
    }

    fn tail_header(&self) -> String {
        format!(
            "{HEADER_V2} generation {} next {}\n",
            self.generation, self.next_id
        )
    }

    fn write_fresh_tail(&mut self) -> Result<(), JournalError> {
        let header = self.tail_header();
        std::fs::write(&self.path, &header).map_err(|e| self.io_err(e))?;
        self.tail_len = header.len() as u64;
        Ok(())
    }

    /// Warnings produced while opening (torn trailing record dropped,
    /// v1 upgrade performed).
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// The journal's tail path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The snapshot segment's path.
    pub fn snapshot_path(&self) -> &Path {
        &self.snap_path
    }

    /// The compaction generation (0 until the first compaction).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Settled jobs whose records still live in the tail — the work a
    /// compaction would migrate.
    pub fn settled_in_tail(&self) -> usize {
        self.settled_in_tail
    }

    /// The highest job id ever assigned (0 if none).
    pub fn last_id(&self) -> JobId {
        self.next_id - 1
    }

    /// One job's replayed state.
    pub fn state(&self, id: JobId) -> Option<JobState> {
        if self.pending.contains_key(&id) {
            Some(JobState::Pending)
        } else {
            self.settled.get(&id).map(|r| r.kind)
        }
    }

    /// Every job in id order, as `(id, state)` — an iterator, not a
    /// materialized list, so a million-job status walk stays flat.
    pub fn states(&self) -> impl Iterator<Item = (JobId, JobState)> + '_ {
        let mut pending = self.pending.iter().peekable();
        let mut settled = self.settled.iter().peekable();
        std::iter::from_fn(move || match (pending.peek(), settled.peek()) {
            (Some((&p, _)), Some((&s, _))) if p < s => {
                pending.next();
                Some((p, JobState::Pending))
            }
            (Some(_), Some((&s, r))) => {
                let kind = r.kind;
                settled.next();
                Some((s, kind))
            }
            (Some((&p, _)), None) => {
                pending.next();
                Some((p, JobState::Pending))
            }
            (None, Some((&s, r))) => {
                let kind = r.kind;
                settled.next();
                Some((s, kind))
            }
            (None, None) => None,
        })
    }

    /// An unsettled job's spec and start count, for claiming.
    pub fn pending_job(&self, id: JobId) -> Option<(&JobSpec, u32)> {
        self.pending.get(&id).map(|j| (&j.spec, j.starts))
    }

    /// Ids of jobs with no settled outcome, id order — exactly the work
    /// a restarted server must (re-)run.
    pub fn pending(&self) -> Vec<JobId> {
        self.pending.keys().copied().collect()
    }

    /// `(unsettled, done, failed)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.pending.len(), self.done, self.failed)
    }

    /// Unsettled jobs enqueued by `client` (empty = anonymous), the
    /// quantity per-client quotas bound.
    pub fn unsettled_for(&self, client: &str) -> usize {
        self.clients.get(client).copied().unwrap_or(0)
    }

    fn append(&mut self, record: &str) -> Result<(), JournalError> {
        let mut file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| self.io_err(e))?;
        file.write_all(record.as_bytes())
            .map_err(|e| self.io_err(e))?;
        file.flush().map_err(|e| self.io_err(e))?;
        self.tail_len += record.len() as u64;
        Ok(())
    }

    /// Append an `enqueue` record and return the new job's id.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the append fails.
    pub fn append_enqueue(&mut self, spec: &JobSpec) -> Result<JobId, JournalError> {
        self.append_enqueue_for("", spec)
    }

    /// Append an `enqueue` record attributed to `client` (empty =
    /// anonymous) and return the new job's id.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the append fails, [`JournalError::Corrupt`]
    /// if the client name cannot ride the one-line codec.
    pub fn append_enqueue_for(
        &mut self,
        client: &str,
        spec: &JobSpec,
    ) -> Result<JobId, JournalError> {
        if !client.is_empty() && !valid_client_name(client) {
            return Err(self.corrupt(format!("bad client name `{client}`")));
        }
        let id = self.next_id;
        let record = if client.is_empty() {
            format!("enqueue {id} {}\n", spec.render())
        } else {
            format!("enqueue {id} client={client} {}\n", spec.render())
        };
        let enqueue_at = self.tail_len;
        self.append(&record)?;
        self.next_id = id + 1;
        *self.clients.entry(client.to_string()).or_insert(0) += 1;
        self.pending.insert(
            id,
            PendingJob {
                spec: spec.clone(),
                client: client.to_string(),
                starts: 0,
                enqueue_at,
                enqueue_len: record.len() as u32,
            },
        );
        Ok(id)
    }

    /// Append a `start` record for an attempt on a pending job.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the append fails.
    pub fn append_start(&mut self, id: JobId, attempt: u32) -> Result<(), JournalError> {
        self.append(&format!("start {id} attempt {attempt}\n"))?;
        if let Some(job) = self.pending.get_mut(&id) {
            job.starts = job.starts.max(attempt);
        }
        Ok(())
    }

    /// Append a `complete` record with the full measurement.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the append fails.
    pub fn append_complete(
        &mut self,
        id: JobId,
        result: &MeasuredWorkload,
    ) -> Result<(), JournalError> {
        let mut section = format!(
            "complete {id} instructions {} cycles {}\n",
            result.instructions, result.cycles
        );
        section.push_str(&codec::to_text_with_counters(
            &result.histogram,
            &result.counters.to_pairs(),
        ));
        section.push_str("end\n");
        let at = self.tail_len;
        self.append(&section)?;
        self.settle_append(id, at, section.len() as u64, JobState::Done);
        Ok(())
    }

    /// Append a `fail` record quarantining the job.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the append fails.
    pub fn append_fail(
        &mut self,
        id: JobId,
        attempts: u32,
        message: &str,
    ) -> Result<(), JournalError> {
        let record = format!(
            "fail {id} attempts {attempts} message {}\n",
            escape_message(message)
        );
        let at = self.tail_len;
        self.append(&record)?;
        self.settle_append(id, at, record.len() as u64, JobState::Failed);
        Ok(())
    }

    fn settle_append(&mut self, id: JobId, at: u64, len: u64, kind: JobState) {
        let Some(job) = self.pending.remove(&id) else {
            return;
        };
        self.client_settled(&job.client);
        match kind {
            JobState::Done => self.done += 1,
            JobState::Failed => self.failed += 1,
            JobState::Pending => unreachable!(),
        }
        self.settled_in_tail += 1;
        self.settled.insert(
            id,
            SettledRef {
                seg: Segment::Tail,
                spec_at: job.enqueue_at,
                spec_len: job.enqueue_len,
                at,
                len,
                kind,
            },
        );
    }

    /// Migrate every settled job into a fresh snapshot segment and
    /// rewrite the tail with only the unsettled records, bumping the
    /// generation. Crash-safe: both replacement files are fully
    /// written and synced before the snapshot, then the tail, are
    /// renamed into place — a kill at any byte offset replays to the
    /// identical queue state.
    ///
    /// # Errors
    ///
    /// [`JournalError`] on I/O failure or an unreadable settled record.
    pub fn compact(&mut self) -> Result<(), JournalError> {
        let new_generation = self.generation + 1;
        let snap_tmp = {
            let mut os = self.snap_path.as_os_str().to_os_string();
            os.push(".tmp");
            PathBuf::from(os)
        };
        let tail_tmp = {
            let mut os = self.path.as_os_str().to_os_string();
            os.push(".tmp");
            PathBuf::from(os)
        };
        let records_tmp = {
            let mut os = self.snap_path.as_os_str().to_os_string();
            os.push(".records.tmp");
            PathBuf::from(os)
        };
        let snap_io = |e| JournalError::Io {
            path: self.snap_path.clone(),
            source: e,
        };

        // 1. Stream every settled record into the records scratch
        // file, collecting the offset index. Records already in the
        // snapshot copy verbatim; tail records are re-keyed to the
        // snapshot's `job` form.
        let mut entries: Vec<(JobId, u64, u64, JobState)> = Vec::with_capacity(self.settled.len());
        let mut records = BufWriter::new(File::create(&records_tmp).map_err(snap_io)?);
        let mut snap_read: Option<File> = None;
        let mut tail_read: Option<File> = None;
        let mut rel = 0u64;
        for (&id, r) in &self.settled {
            let bytes = match r.seg {
                Segment::Snapshot => {
                    let file = match &mut snap_read {
                        Some(f) => f,
                        None => {
                            snap_read = Some(File::open(&self.snap_path).map_err(snap_io)?);
                            snap_read.as_mut().unwrap()
                        }
                    };
                    read_span(file, r.at, r.len).map_err(snap_io)?
                }
                Segment::Tail => {
                    let file = match &mut tail_read {
                        Some(f) => f,
                        None => {
                            tail_read = Some(File::open(&self.path).map_err(|e| self.io_err(e))?);
                            tail_read.as_mut().unwrap()
                        }
                    };
                    let enqueue = read_span(file, r.spec_at, u64::from(r.spec_len))
                        .map_err(|e| self.io_err(e))?;
                    let spec_line = self.spec_from_enqueue(&enqueue, id)?;
                    let settle = read_span(file, r.at, r.len).map_err(|e| self.io_err(e))?;
                    let mut record = format!("job {id} {spec_line}\n").into_bytes();
                    record.extend_from_slice(&settle);
                    record
                }
            };
            let len = bytes.len() as u64;
            records.write_all(&bytes).map_err(snap_io)?;
            entries.push((id, rel, len, r.kind));
            rel += len;
        }
        records.flush().map_err(snap_io)?;
        drop(records);

        // 2. Assemble the snapshot: header, index, then the records
        // streamed in after it. Synced before rename.
        let mut base = 0u64;
        {
            let mut snap = BufWriter::new(File::create(&snap_tmp).map_err(snap_io)?);
            let header = format!(
                "{SNAP_HEADER} generation {new_generation} jobs {}\nindex\n",
                entries.len()
            );
            snap.write_all(header.as_bytes()).map_err(snap_io)?;
            base += header.len() as u64;
            for &(id, rel, len, kind) in &entries {
                let line = format!("entry {id} {rel} {len} {}\n", kind.name());
                snap.write_all(line.as_bytes()).map_err(snap_io)?;
                base += line.len() as u64;
            }
            snap.write_all(b"end\n").map_err(snap_io)?;
            base += 4;
            let mut records = File::open(&records_tmp).map_err(snap_io)?;
            std::io::copy(&mut records, &mut snap).map_err(snap_io)?;
            let snap = snap.into_inner().map_err(|e| snap_io(e.into_error()))?;
            snap.sync_all().map_err(snap_io)?;
        }

        // 3. The replacement tail: header with the preserved next-id,
        // then the unsettled records (enqueue + highest start seen).
        let mut pending_offsets: BTreeMap<JobId, (u64, u32)> = BTreeMap::new();
        let mut new_tail_len;
        {
            let mut tail = BufWriter::new(File::create(&tail_tmp).map_err(|e| self.io_err(e))?);
            let header = format!(
                "{HEADER_V2} generation {new_generation} next {}\n",
                self.next_id
            );
            tail.write_all(header.as_bytes())
                .map_err(|e| self.io_err(e))?;
            new_tail_len = header.len() as u64;
            for (&id, job) in &self.pending {
                let record = if job.client.is_empty() {
                    format!("enqueue {id} {}\n", job.spec.render())
                } else {
                    format!("enqueue {id} client={} {}\n", job.client, job.spec.render())
                };
                tail.write_all(record.as_bytes())
                    .map_err(|e| self.io_err(e))?;
                pending_offsets.insert(id, (new_tail_len, record.len() as u32));
                new_tail_len += record.len() as u64;
                if job.starts > 0 {
                    let start = format!("start {id} attempt {}\n", job.starts);
                    tail.write_all(start.as_bytes())
                        .map_err(|e| self.io_err(e))?;
                    new_tail_len += start.len() as u64;
                }
            }
            let tail = tail.into_inner().map_err(|e| self.io_err(e.into_error()))?;
            tail.sync_all().map_err(|e| self.io_err(e))?;
        }

        // 4. Publish: snapshot first, then tail. A kill between the
        // renames leaves the new snapshot with the old tail, which
        // replay reconciles by generation.
        std::fs::rename(&snap_tmp, &self.snap_path).map_err(snap_io)?;
        std::fs::rename(&tail_tmp, &self.path).map_err(|e| self.io_err(e))?;
        let _ = std::fs::remove_file(&records_tmp);

        // 5. Swing the in-memory offset table to the new files.
        self.generation = new_generation;
        self.tail_len = new_tail_len;
        self.settled_in_tail = 0;
        for (id, rel, len, _) in entries {
            if let Some(r) = self.settled.get_mut(&id) {
                r.seg = Segment::Snapshot;
                r.at = base + rel;
                r.spec_at = base + rel;
                r.spec_len = 0;
                r.len = len;
            }
        }
        for (id, (at, len)) in pending_offsets {
            if let Some(job) = self.pending.get_mut(&id) {
                job.enqueue_at = at;
                job.enqueue_len = len;
            }
        }
        Ok(())
    }

    /// Extract the canonical spec line from a raw `enqueue` record.
    fn spec_from_enqueue(&self, bytes: &[u8], id: JobId) -> Result<String, JournalError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| self.corrupt(format!("enqueue record for job {id} is not UTF-8")))?;
        let line = text.trim_end_matches('\n');
        let rest = line
            .strip_prefix(&format!("enqueue {id} "))
            .ok_or_else(|| self.corrupt(format!("bad enqueue record for job {id}: `{line}`")))?;
        let spec = match rest.split_once(' ') {
            Some((first, tail)) if first.starts_with("client=") => tail,
            _ => rest,
        };
        Ok(spec.to_string())
    }

    /// The canonical one-line spec text for any job, read back from
    /// the segment that holds it (settled specs live only on disk).
    ///
    /// # Errors
    ///
    /// [`JournalError`] if the record cannot be read back.
    pub fn spec_line(&self, id: JobId) -> Result<Option<String>, JournalError> {
        if let Some(job) = self.pending.get(&id) {
            return Ok(Some(job.spec.render()));
        }
        let Some(r) = self.settled.get(&id) else {
            return Ok(None);
        };
        Ok(Some(self.read_settled(id, *r)?.0))
    }

    /// Read a settled record back from disk: `(spec line, outcome)`.
    fn read_settled(
        &self,
        id: JobId,
        r: SettledRef,
    ) -> Result<(String, StreamedOutcome), JournalError> {
        let mut files = SegmentFiles::default();
        self.read_settled_with(&mut files, id, r)
    }

    fn read_settled_with(
        &self,
        files: &mut SegmentFiles,
        id: JobId,
        r: SettledRef,
    ) -> Result<(String, StreamedOutcome), JournalError> {
        match r.seg {
            Segment::Snapshot => {
                let file = files.snapshot(&self.snap_path)?;
                let bytes = read_span(file, r.at, r.len).map_err(|e| JournalError::Io {
                    path: self.snap_path.clone(),
                    source: e,
                })?;
                let text = String::from_utf8(bytes)
                    .map_err(|_| self.snap_corrupt(format!("record for job {id} is not UTF-8")))?;
                let (head, settle) = text
                    .split_once('\n')
                    .ok_or_else(|| self.snap_corrupt(format!("truncated record for job {id}")))?;
                let spec = head
                    .strip_prefix(&format!("job {id} "))
                    .ok_or_else(|| {
                        self.snap_corrupt(format!("bad record head for job {id}: `{head}`"))
                    })?
                    .to_string();
                let outcome = self.parse_settle(id, settle)?;
                Ok((spec, outcome))
            }
            Segment::Tail => {
                let file = files.tail(&self.path)?;
                let enqueue = read_span(file, r.spec_at, u64::from(r.spec_len))
                    .map_err(|e| self.io_err(e))?;
                let spec = self.spec_from_enqueue(&enqueue, id)?;
                let bytes = read_span(file, r.at, r.len).map_err(|e| self.io_err(e))?;
                let text = String::from_utf8(bytes).map_err(|_| {
                    self.corrupt(format!("settle record for job {id} is not UTF-8"))
                })?;
                let outcome = self.parse_settle(id, &text)?;
                Ok((spec, outcome))
            }
        }
    }

    /// Parse a raw settle record (`complete` section or `fail` line)
    /// into the streamed outcome. The digest is computed over the raw
    /// body bytes — exactly the bytes `append_complete` wrote, so it
    /// is bit-identical to the digest of the original measurement.
    fn parse_settle(&self, id: JobId, text: &str) -> Result<StreamedOutcome, JournalError> {
        let (head, rest) = text.split_once('\n').map_or((text, ""), |(h, r)| (h, r));
        if let Some(complete) = head.strip_prefix(&format!("complete {id} ")) {
            let lens: Option<(u64, u64)> = match complete
                .split_ascii_whitespace()
                .collect::<Vec<_>>()
                .as_slice()
            {
                ["instructions", i, "cycles", c] => i.parse().ok().zip(c.parse().ok()),
                _ => None,
            };
            let Some((instructions, cycles)) = lens else {
                return Err(self.corrupt(format!("bad complete record for job {id}: `{head}`")));
            };
            let body = rest
                .strip_suffix("end\n")
                .ok_or_else(|| self.corrupt(format!("complete {id} has no `end` line")))?;
            let machine_checks = body
                .lines()
                .find_map(|l| l.trim().strip_prefix("counter machine_checks "))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            Ok(StreamedOutcome::Done {
                instructions,
                cycles,
                machine_checks,
                digest: fnv64(body),
            })
        } else if let Some(fail) = head.strip_prefix(&format!("fail {id} attempts ")) {
            let parsed = fail
                .split_once(" message ")
                .and_then(|(k, msg)| k.parse::<u32>().ok().map(|k| (k, unescape_message(msg))));
            let Some((attempts, message)) = parsed else {
                return Err(self.corrupt(format!("bad fail record for job {id}: `{head}`")));
            };
            Ok(StreamedOutcome::Failed { attempts, message })
        } else {
            Err(self.corrupt(format!("unrecognized settle record for job {id}: `{head}`")))
        }
    }

    /// One settled job's deterministic JSON result line, re-derived
    /// from the on-disk record (`None` if the job is unsettled or
    /// unknown). The line depends only on the spec and the simulation
    /// outputs, so a killed-and-resumed parallel queue renders
    /// bit-identical lines to an uninterrupted serial run. The
    /// `digest` is FNV-1a 64 over the full histogram+counters codec
    /// text.
    ///
    /// # Errors
    ///
    /// [`JournalError`] if the record cannot be read back.
    pub fn result_line(&self, id: JobId) -> Result<Option<String>, JournalError> {
        let Some(r) = self.settled.get(&id) else {
            return Ok(None);
        };
        let (spec_line, outcome) = self.read_settled(id, *r)?;
        Ok(Some(self.render_result(id, &spec_line, outcome)?))
    }

    fn render_result(
        &self,
        id: JobId,
        spec_line: &str,
        outcome: StreamedOutcome,
    ) -> Result<String, JournalError> {
        let spec = JobSpec::parse(spec_line)
            .map_err(|e| self.corrupt(format!("spec for job {id}: {e}")))?;
        Ok(match outcome {
            StreamedOutcome::Done {
                instructions,
                cycles,
                machine_checks,
                digest,
            } => render_done(
                id,
                &spec.render(),
                spec.workload.name(),
                instructions,
                cycles,
                machine_checks,
                digest,
            ),
            StreamedOutcome::Failed { attempts, message } => {
                render_failed(id, &spec.render(), attempts, &message)
            }
        })
    }

    /// Stream every settled job's result line into `out`, id order,
    /// one seek-and-read per record — memory stays bounded by one
    /// record regardless of how many jobs have settled. Returns the
    /// number of lines written.
    ///
    /// # Errors
    ///
    /// [`JournalError`] on a read failure, or an `Io` wrapping the
    /// write error if `out` fails.
    pub fn stream_results(&self, out: &mut dyn Write) -> Result<usize, JournalError> {
        let mut files = SegmentFiles::default();
        let mut lines = 0usize;
        for (&id, r) in &self.settled {
            let (spec_line, outcome) = self.read_settled_with(&mut files, id, *r)?;
            let line = self.render_result(id, &spec_line, outcome)?;
            writeln!(out, "{line}").map_err(|e| self.io_err(e))?;
            lines += 1;
        }
        Ok(lines)
    }
}

/// Lazily opened read handles, one per segment, shared across a
/// streaming pass.
#[derive(Default)]
struct SegmentFiles {
    snapshot: Option<File>,
    tail: Option<File>,
}

impl SegmentFiles {
    fn snapshot(&mut self, path: &Path) -> Result<&mut File, JournalError> {
        if self.snapshot.is_none() {
            self.snapshot = Some(File::open(path).map_err(|source| JournalError::Io {
                path: path.to_path_buf(),
                source,
            })?);
        }
        Ok(self.snapshot.as_mut().unwrap())
    }

    fn tail(&mut self, path: &Path) -> Result<&mut File, JournalError> {
        if self.tail.is_none() {
            self.tail = Some(File::open(path).map_err(|source| JournalError::Io {
                path: path.to_path_buf(),
                source,
            })?);
        }
        Ok(self.tail.as_mut().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upc_monitor::Histogram;
    use vax_mem::HwCounters;
    use vax_ucode::MicroAddr;
    use vax_workloads::WorkloadKind;

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(kind: WorkloadKind) -> MeasuredWorkload {
        let mut h = Histogram::new();
        h.bump_issue(MicroAddr::new(0x22));
        h.bump_stall(MicroAddr::new(0x22), 2);
        let mut c = HwCounters::new();
        c.sbi_reads = 3;
        MeasuredWorkload {
            name: kind.name(),
            histogram: h,
            counters: c,
            instructions: 500,
            cycles: 2100,
        }
    }

    fn all_results(j: &Journal) -> String {
        let mut out = Vec::new();
        j.stream_results(&mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn journal_round_trips_the_queue() {
        let dir = tempdir("vax-journal-roundtrip");
        let path = dir.join("queue.journal");
        let mut j = Journal::open(&path).unwrap();
        let spec_a = JobSpec::new(WorkloadKind::TimesharingLight);
        let mut spec_b = JobSpec::new(WorkloadKind::SciEng);
        spec_b.seed = Some(9);
        let a = j.append_enqueue(&spec_a).unwrap();
        let b = j.append_enqueue_for("alice", &spec_b).unwrap();
        assert_eq!((a, b), (1, 2));
        assert_eq!(j.unsettled_for("alice"), 1);
        j.append_start(a, 1).unwrap();
        j.append_complete(a, &sample(WorkloadKind::TimesharingLight))
            .unwrap();
        j.append_start(b, 1).unwrap();
        j.append_fail(b, 4, "worker panicked:\nboom").unwrap();
        assert_eq!(j.unsettled_for("alice"), 0);
        let live = all_results(&j);

        let back = Journal::open(&path).unwrap();
        assert!(back.warnings().is_empty());
        assert_eq!(back.pending(), Vec::<JobId>::new());
        assert_eq!(back.counts(), (0, 1, 1));
        assert_eq!(back.state(a), Some(JobState::Done));
        assert_eq!(back.state(b), Some(JobState::Failed));
        // Result lines replay bit-identical from the offset index.
        assert_eq!(all_results(&back), live);
        let ra = back.result_line(a).unwrap().unwrap();
        assert!(ra.contains("\"job\":1"), "{ra}");
        assert!(ra.contains("\"cycles\":2100"), "{ra}");
        let rb = back.result_line(b).unwrap().unwrap();
        assert!(rb.contains("\"attempts\":4"), "{rb}");
        assert!(rb.contains("worker panicked:\\nboom"), "{rb}");
        // Ids keep growing; settled specs read back from disk.
        assert_eq!(back.spec_line(b).unwrap().unwrap(), spec_b.render());
        let mut back = back;
        assert_eq!(back.append_enqueue(&spec_a).unwrap(), 3);
        assert_eq!(back.pending(), vec![3]);
    }

    #[test]
    fn torn_tail_is_dropped_at_every_byte_offset() {
        let dir = tempdir("vax-journal-torn");
        let path = dir.join("queue.journal");
        let mut j = Journal::open(&path).unwrap();
        let spec = JobSpec::new(WorkloadKind::Commercial);
        j.append_enqueue(&spec).unwrap();
        j.append_start(1, 1).unwrap();
        let good_text = std::fs::read_to_string(&path).unwrap();
        let good_len = good_text.len();
        j.append_complete(1, &sample(WorkloadKind::Commercial))
            .unwrap();
        let full_text = std::fs::read_to_string(&path).unwrap();

        for cut in good_len..full_text.len() {
            std::fs::write(&path, &full_text[..cut]).unwrap();
            let j = Journal::open(&path).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            assert_eq!(j.pending(), vec![1], "cut at {cut}");
            if cut == good_len {
                assert!(j.warnings().is_empty(), "clean cut at {cut}");
            } else {
                assert_eq!(j.warnings().len(), 1, "cut at {cut}");
                assert_eq!(std::fs::read_to_string(&path).unwrap(), good_text);
            }
        }
        // Untouched file: settled, no warnings.
        std::fs::write(&path, &full_text).unwrap();
        let j = Journal::open(&path).unwrap();
        assert!(j.warnings().is_empty());
        assert_eq!(j.counts(), (0, 1, 0));
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let dir = tempdir("vax-journal-corrupt");
        let path = dir.join("queue.journal");
        for bad in [
            "nope\n",
            "vax-queue-journal v2 generation 0 next 1\nstart 7 attempt 1\n",
            "vax-queue-journal v2 generation 0 next 1\n\
             complete 7 instructions 1 cycles 2\nupc-histogram v1\nend\n",
            "vax-queue-journal v2 generation 0 next 1\n\
             enqueue 1 workload=sci-eng instructions=10 warmup=1\n\
             enqueue 1 workload=sci-eng instructions=10 warmup=1\n",
            "vax-queue-journal v2 generation 0 next 1\ngarbage\n\
             enqueue 1 workload=sci-eng instructions=10 warmup=1\n",
            // v1 journals replay under the same rules before upgrade.
            "vax-queue-journal v1\nstart 7 attempt 1\n",
            // A generation with no snapshot segment to back it.
            "vax-queue-journal v2 generation 3 next 1\n",
        ] {
            std::fs::write(&path, bad).unwrap();
            let _ = std::fs::remove_file(snap_path_for(&path));
            let err = Journal::open(&path).unwrap_err();
            assert!(
                matches!(err, JournalError::Corrupt { .. }),
                "{bad:?}: {err}"
            );
        }
        // A terminated complete section with a bad codec body is real
        // corruption even at the tail.
        std::fs::write(
            &path,
            "vax-queue-journal v2 generation 0 next 1\n\
             enqueue 1 workload=sci-eng instructions=10 warmup=1\n\
             complete 1 instructions 1 cycles 2\nnot a histogram\nend\n",
        )
        .unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { .. }), "{err}");
        // A damaged snapshot is always a hard error: snapshots are
        // written atomically, so torn-tail forgiveness never applies.
        std::fs::write(&path, "vax-queue-journal v2 generation 1 next 1\n").unwrap();
        std::fs::write(
            snap_path_for(&path),
            "vax-queue-snapshot v2 generation 1 jobs 1\n",
        )
        .unwrap();
        let err = Journal::open(&path).unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn result_lines_are_deterministic() {
        let dir = tempdir("vax-journal-deterministic");
        let path = dir.join("queue.journal");
        let mut j = Journal::open(&path).unwrap();
        let id = j
            .append_enqueue(&JobSpec::new(WorkloadKind::Educational))
            .unwrap();
        j.append_start(id, 1).unwrap();
        j.append_complete(id, &sample(WorkloadKind::Educational))
            .unwrap();
        let a = j.result_line(id).unwrap().unwrap();
        let b = j.result_line(id).unwrap().unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"cpi\":4.200000"), "{a}");
        assert!(a.contains("\"digest\":\""), "{a}");
    }

    #[test]
    fn compaction_migrates_settled_jobs_and_preserves_results() {
        let dir = tempdir("vax-journal-compact");
        let path = dir.join("queue.journal");
        let mut j = Journal::open(&path).unwrap();
        let mut spec = JobSpec::new(WorkloadKind::SciEng);
        for seed in 1..=5 {
            spec.seed = Some(seed);
            j.append_enqueue_for(if seed % 2 == 0 { "even" } else { "" }, &spec)
                .unwrap();
        }
        // Settle 1..=3; 4 pending with a start; 5 untouched.
        for id in 1..=3u64 {
            j.append_start(id, 1).unwrap();
        }
        j.append_complete(1, &sample(WorkloadKind::SciEng)).unwrap();
        j.append_fail(2, 2, "boom").unwrap();
        j.append_complete(3, &sample(WorkloadKind::SciEng)).unwrap();
        j.append_start(4, 1).unwrap();
        let before = all_results(&j);
        let tail_before = std::fs::metadata(&path).unwrap().len();
        assert_eq!(j.settled_in_tail(), 3);

        j.compact().unwrap();
        assert_eq!(j.generation(), 1);
        assert_eq!(j.settled_in_tail(), 0);
        // The tail shed the settled history.
        let tail_after = std::fs::metadata(&path).unwrap().len();
        assert!(tail_after < tail_before, "{tail_after} !< {tail_before}");
        // Results identical through the live journal and a reopen.
        assert_eq!(all_results(&j), before);
        let back = Journal::open(&path).unwrap();
        assert_eq!(all_results(&back), before);
        assert_eq!(back.counts(), (2, 2, 1));
        assert_eq!(back.unsettled_for("even"), 1);
        let (_, starts) = back.pending_job(4).unwrap();
        assert_eq!(starts, 1, "start count must survive compaction");
        // A second compaction (snapshot -> snapshot copy) still holds.
        let mut back = back;
        back.append_start(4, 2).unwrap();
        back.append_complete(4, &sample(WorkloadKind::SciEng))
            .unwrap();
        back.compact().unwrap();
        assert_eq!(back.generation(), 2);
        let reread = Journal::open(&path).unwrap();
        assert_eq!(reread.counts(), (1, 3, 1));
        assert!(all_results(&reread).starts_with(&before[..before.len() - 1]));
    }

    #[test]
    fn id_watermark_survives_a_fully_settled_compaction() {
        let dir = tempdir("vax-journal-watermark");
        let path = dir.join("queue.journal");
        let mut j = Journal::open(&path).unwrap();
        let spec = JobSpec::new(WorkloadKind::Commercial);
        for _ in 0..3 {
            let id = j.append_enqueue(&spec).unwrap();
            j.append_start(id, 1).unwrap();
            j.append_fail(id, 1, "x").unwrap();
        }
        j.compact().unwrap();
        // Compact again: now the snapshot holds everything and the
        // tail is empty of records. The `next` watermark in the tail
        // header must stop id reuse.
        j.compact().unwrap();
        let mut back = Journal::open(&path).unwrap();
        assert_eq!(back.append_enqueue(&spec).unwrap(), 4);
    }

    #[test]
    fn v1_journal_upgrades_on_open_with_identical_results() {
        let dir = tempdir("vax-journal-upgrade");
        let path = dir.join("queue.journal");
        // Build a v2 journal to borrow its record bytes, then rewrite
        // the header to v1 (the record grammar is unchanged).
        let mut j = Journal::open(&path).unwrap();
        let spec = JobSpec::new(WorkloadKind::TimesharingHeavy);
        j.append_enqueue(&spec).unwrap();
        j.append_start(1, 1).unwrap();
        j.append_complete(1, &sample(WorkloadKind::TimesharingHeavy))
            .unwrap();
        j.append_enqueue(&spec).unwrap();
        let v2_results = all_results(&j);
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        let (header, records) = text.split_once('\n').unwrap();
        assert!(header.starts_with(HEADER_V2), "{header}");
        std::fs::write(&path, format!("{HEADER_V1}\n{records}")).unwrap();
        let _ = std::fs::remove_file(snap_path_for(&path));

        let j = Journal::open(&path).unwrap();
        assert!(
            j.warnings().iter().any(|w| w.contains("upgraded")),
            "{:?}",
            j.warnings()
        );
        // Upgrade compacts: the on-disk pair is now v2.
        assert_eq!(j.generation(), 1);
        assert!(snap_path_for(&path).exists());
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .starts_with(HEADER_V2));
        assert_eq!(all_results(&j), v2_results);
        assert_eq!(j.counts(), (1, 1, 0));
        // And the upgraded pair reopens cleanly.
        let back = Journal::open(&path).unwrap();
        assert!(back.warnings().is_empty());
        assert_eq!(all_results(&back), v2_results);
    }

    #[test]
    fn stale_tail_after_mid_compaction_crash_is_reconciled() {
        let dir = tempdir("vax-journal-stale-tail");
        let path = dir.join("queue.journal");
        let mut j = Journal::open(&path).unwrap();
        let spec = JobSpec::new(WorkloadKind::Educational);
        j.append_enqueue(&spec).unwrap();
        j.append_enqueue(&spec).unwrap();
        j.append_start(1, 1).unwrap();
        j.append_complete(1, &sample(WorkloadKind::Educational))
            .unwrap();
        let old_tail = std::fs::read(&path).unwrap();
        let before = all_results(&j);
        j.compact().unwrap();
        drop(j);
        // Simulate dying between the two renames: new snapshot on
        // disk, pre-compaction tail restored.
        std::fs::write(&path, &old_tail).unwrap();
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.counts(), (1, 1, 0));
        assert_eq!(all_results(&j), before);
        // The settled job's tail records were skipped as stale, not
        // double-applied; the pending job survived.
        assert_eq!(j.pending(), vec![2]);
    }
}
