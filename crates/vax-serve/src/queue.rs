//! Job execution: how one [`JobSpec`] becomes one measurement.
//!
//! The server shards work two ways. [`InProcessExecutor`] runs the
//! experiment on the calling worker thread (cheap, shares the
//! process); [`ProcessExecutor`] spawns a `vax780 job-worker` child
//! per attempt, piping the spec in on stdin and reading a
//! `vax-job-result v1` blob back from stdout — crash isolation and
//! multi-process sharding for the price of a fork. Both honour a
//! per-job timeout; both return the same bit-deterministic
//! [`MeasuredWorkload`], because both run the same `Experiment::run`.

use crate::spec::JobSpec;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};
use upc_monitor::codec;
use vax780_core::MeasuredWorkload;

const BLOB_HEADER: &str = "vax-job-result v1";

/// Why one execution attempt failed.
#[derive(Debug, Clone)]
pub enum ExecError {
    /// The simulation panicked (or the worker process died).
    Failed(String),
    /// The attempt exceeded its deadline and was abandoned/killed.
    Timeout(Duration),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Failed(msg) => write!(f, "{msg}"),
            ExecError::Timeout(limit) => {
                write!(f, "timed out after {:.1}s", limit.as_secs_f64())
            }
        }
    }
}

/// Runs one attempt of one job.
pub trait Executor: Send + Sync {
    /// Run the spec to completion, or fail/time out.
    ///
    /// # Errors
    ///
    /// [`ExecError`] on panic, worker death, or deadline overrun.
    fn run(&self, spec: &JobSpec, timeout: Option<Duration>)
        -> Result<MeasuredWorkload, ExecError>;
}

/// Render a measurement as the `vax-job-result v1` blob a job-worker
/// process writes to stdout.
pub fn render_result_blob(m: &MeasuredWorkload) -> String {
    let mut out = format!(
        "{BLOB_HEADER}\nresult instructions {} cycles {}\n",
        m.instructions, m.cycles
    );
    out.push_str(&codec::to_text_with_counters(
        &m.histogram,
        &m.counters.to_pairs(),
    ));
    out.push_str("end\n");
    out
}

/// Parse a `vax-job-result v1` blob back into a measurement. `name`
/// restores the workload label (the blob itself carries only numbers).
///
/// # Errors
///
/// A description of the first malformed line.
pub fn parse_result_blob(text: &str, name: &'static str) -> Result<MeasuredWorkload, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(l) if l.trim() == BLOB_HEADER => {}
        other => return Err(format!("missing `{BLOB_HEADER}` header (got {other:?})")),
    }
    let head = lines.next().unwrap_or("");
    let (instructions, cycles) = match head.split_ascii_whitespace().collect::<Vec<_>>().as_slice()
    {
        ["result", "instructions", i, "cycles", c] => i
            .parse::<u64>()
            .ok()
            .zip(c.parse::<u64>().ok())
            .ok_or_else(|| format!("bad result line `{head}`"))?,
        _ => return Err(format!("bad result line `{head}`")),
    };
    let mut body = String::new();
    let mut closed = false;
    for l in lines {
        if l.trim() == "end" {
            closed = true;
            break;
        }
        body.push_str(l);
        body.push('\n');
    }
    if !closed {
        return Err("result blob has no `end` line".to_string());
    }
    let (histogram, counter_pairs) =
        codec::from_text_with_counters(&body).map_err(|e| e.to_string())?;
    let counters =
        vax_mem::HwCounters::from_pairs(counter_pairs.iter().map(|(n, v)| (n.as_str(), *v)));
    Ok(MeasuredWorkload {
        name,
        histogram,
        counters,
        instructions,
        cycles,
    })
}

/// Run the job on the calling process, one thread per attempt.
#[derive(Debug, Default)]
pub struct InProcessExecutor;

impl Executor for InProcessExecutor {
    fn run(
        &self,
        spec: &JobSpec,
        timeout: Option<Duration>,
    ) -> Result<MeasuredWorkload, ExecError> {
        let run_guarded = |spec: &JobSpec| -> Result<MeasuredWorkload, ExecError> {
            let exp = spec.experiment();
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| exp.run()))
                .map_err(|p| ExecError::Failed(panic_message(&p)))
        };
        let Some(limit) = timeout else {
            return run_guarded(spec);
        };
        // Run on a helper thread so the attempt can be abandoned at the
        // deadline. The thread is detached on timeout: the simulation
        // cannot be interrupted, but its result is discarded and the
        // worker slot freed. (Process sharding gives a true kill.)
        let (tx, rx) = std::sync::mpsc::channel();
        let spec = spec.clone();
        std::thread::spawn(move || {
            let _ = tx.send(run_guarded(&spec));
        });
        match rx.recv_timeout(limit) {
            Ok(result) => result,
            Err(_) => Err(ExecError::Timeout(limit)),
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("job panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("job panicked: {s}")
    } else {
        "job panicked".to_string()
    }
}

/// Run each attempt in a fresh worker OS process (`<exe> job-worker`).
#[derive(Debug, Clone)]
pub struct ProcessExecutor {
    /// The server binary; the child is `exe job-worker`.
    pub exe: PathBuf,
}

impl Executor for ProcessExecutor {
    fn run(
        &self,
        spec: &JobSpec,
        timeout: Option<Duration>,
    ) -> Result<MeasuredWorkload, ExecError> {
        let mut child = Command::new(&self.exe)
            .arg("job-worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| ExecError::Failed(format!("spawn {}: {e}", self.exe.display())))?;
        // Write the spec and close stdin so the child sees EOF.
        if let Some(mut stdin) = child.stdin.take() {
            let _ = writeln!(stdin, "{}", spec.render());
        }
        // Drain stdout/stderr on threads: a full pipe would deadlock a
        // child that blocks writing while we block waiting.
        let drain = |mut pipe: Option<Box<dyn Read + Send>>| {
            std::thread::spawn(move || {
                let mut buf = String::new();
                if let Some(pipe) = pipe.as_mut() {
                    let _ = pipe.read_to_string(&mut buf);
                }
                buf
            })
        };
        let stdout = drain(child.stdout.take().map(|p| Box::new(p) as _));
        let stderr = drain(child.stderr.take().map(|p| Box::new(p) as _));
        let deadline = timeout.map(|t| Instant::now() + t);
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) => {
                    if let Some(deadline) = deadline {
                        if Instant::now() >= deadline {
                            // The child may exit cleanly between the
                            // deadline check and the kill landing. The
                            // reaped status is the truth: a success
                            // here means a complete result blob is
                            // already in the stdout pipe, so honour it
                            // instead of discarding a finished job as
                            // a timeout.
                            match kill_and_reap(&mut child) {
                                Some(status) if status.success() => break status,
                                _ => return Err(ExecError::Timeout(timeout.unwrap_or_default())),
                            }
                        }
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(ExecError::Failed(format!("wait: {e}")));
                }
            }
        };
        let out = stdout.join().unwrap_or_default();
        let err = stderr.join().unwrap_or_default();
        if !status.success() {
            let detail = err.trim();
            return Err(ExecError::Failed(if detail.is_empty() {
                format!("worker exited with {status}")
            } else {
                format!("worker exited with {status}: {detail}")
            }));
        }
        parse_result_blob(&out, self.spec_name(spec))
            .map_err(|e| ExecError::Failed(format!("worker result: {e}")))
    }
}

impl ProcessExecutor {
    fn spec_name(&self, spec: &JobSpec) -> &'static str {
        spec.workload.name()
    }
}

/// Kill a child and reap its true exit status. Returns `None` only if
/// the wait itself fails. A child that exited on its own before the
/// kill landed reports its real (possibly successful) status — the
/// caller decides whether that beats the timeout.
fn kill_and_reap(child: &mut std::process::Child) -> Option<std::process::ExitStatus> {
    let _ = child.kill();
    child.wait().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_workloads::WorkloadKind;

    #[test]
    fn blob_round_trips() {
        let mut spec = JobSpec::new(WorkloadKind::TimesharingLight);
        spec.instructions = 2_000;
        spec.warmup = 500;
        let m = InProcessExecutor.run(&spec, None).expect("runs");
        let blob = render_result_blob(&m);
        let back = parse_result_blob(&blob, m.name).expect("parses");
        assert_eq!(back.instructions, m.instructions);
        assert_eq!(back.cycles, m.cycles);
        assert_eq!(back.histogram, m.histogram);
        assert_eq!(back.counters, m.counters);
    }

    #[test]
    fn blob_parse_rejects_damage() {
        for bad in [
            "",
            "wrong header\n",
            "vax-job-result v1\nresult instructions x cycles 2\nend\n",
            "vax-job-result v1\nresult instructions 1 cycles 2\nupc-histogram v1\n",
        ] {
            assert!(parse_result_blob(bad, "x").is_err(), "{bad:?}");
        }
    }

    /// Bug-sweep pin: `ProcessExecutor`'s deadline check races the
    /// child's own exit. `kill_and_reap` must report the child's true
    /// status — for an already-exited child the kill is a no-op and
    /// the successful status (with the result blob already in the
    /// pipe) wins over the timeout verdict.
    #[test]
    fn kill_and_reap_reports_a_clean_exit_that_beat_the_kill() {
        let mut child = std::process::Command::new("true")
            .spawn()
            .expect("spawn true");
        // Let the child finish (unreaped) before the kill is sent: the
        // SIGKILL lands on a zombie and changes nothing.
        std::thread::sleep(Duration::from_millis(50));
        let status = kill_and_reap(&mut child).expect("reap");
        assert!(status.success(), "{status}");
        // And a child that was genuinely still running reports the
        // kill, not success.
        let mut child = std::process::Command::new("sleep")
            .arg("30")
            .spawn()
            .expect("spawn sleep");
        let status = kill_and_reap(&mut child).expect("reap");
        assert!(!status.success(), "{status}");
    }

    #[test]
    fn in_process_timeout_abandons_the_attempt() {
        let mut spec = JobSpec::new(WorkloadKind::TimesharingHeavy);
        spec.instructions = 50_000_000;
        spec.warmup = 0;
        let err = InProcessExecutor
            .run(&spec, Some(Duration::from_millis(20)))
            .expect_err("cannot finish in 20ms");
        assert!(matches!(err, ExecError::Timeout(_)), "{err}");
    }
}
