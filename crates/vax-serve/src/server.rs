//! The campaign server: a worker pool over the journal-backed queue.
//!
//! One [`Shared`] state — journal, in-memory queue, running set —
//! behind a mutex/condvar pair. Worker threads claim job ids, append
//! `start`/`complete`/`fail` transitions (each flushed before the
//! in-memory state advances), and run attempts outside the lock.
//! Connection handlers mutate the same state: `enqueue` applies
//! backpressure against a fixed capacity of unsettled jobs, `drain`
//! streams every result in id order as it settles and then stops the
//! server. Because every transition is journaled first, a `kill -9`
//! at any instant loses nothing: the next `serve` replays the journal
//! and re-runs exactly the unsettled jobs.

use crate::journal::{JobId, JobOutcome, Journal, JournalError};
use crate::queue::Executor;
use crate::spec::JobSpec;
use crate::wire::{Conn, Endpoint};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use vax780_core::{CampaignMetrics, RetryPolicy};
use vax_trace::SelfMetrics;

/// Server parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The queue journal path.
    pub journal: PathBuf,
    /// Worker threads (each runs one job attempt at a time).
    pub workers: usize,
    /// Maximum unsettled (queued + running) jobs before `enqueue`
    /// requests are rejected with a reason.
    pub capacity: usize,
    /// Retry policy for failing jobs.
    pub retry: RetryPolicy,
    /// Per-attempt deadline (None = unbounded).
    pub timeout: Option<Duration>,
    /// Finish the replayed queue and exit instead of waiting for
    /// clients (offline drain mode).
    pub drain_on_start: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            journal: PathBuf::from("queue.journal"),
            workers: 2,
            capacity: 256,
            retry: RetryPolicy::default(),
            timeout: None,
            drain_on_start: false,
        }
    }
}

/// Why the server stopped (beyond a requested shutdown).
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The journal could not be opened or replayed.
    Journal(JournalError),
    /// The listening socket could not be bound.
    Bind {
        /// The endpoint that failed.
        endpoint: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A journal append failed mid-run; the server stopped rather than
    /// run work it could not make durable.
    Fatal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Journal(e) => write!(f, "{e}"),
            ServeError::Bind { endpoint, source } => {
                write!(f, "bind {endpoint}: {source}")
            }
            ServeError::Fatal(msg) => write!(f, "fatal: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<JournalError> for ServeError {
    fn from(e: JournalError) -> ServeError {
        ServeError::Journal(e)
    }
}

/// What a finished server run settled.
#[derive(Debug)]
pub struct ServerReport {
    /// Jobs with a `complete` record.
    pub done: usize,
    /// Jobs with a `fail` record.
    pub failed: usize,
    /// Deterministic JSON result lines for every settled job, id order.
    pub results: Vec<String>,
    /// Per-worker self-metrics.
    pub metrics: CampaignMetrics,
}

struct State {
    journal: Journal,
    queue: VecDeque<JobId>,
    running: BTreeSet<JobId>,
    draining: bool,
    shutdown: bool,
    fatal: Option<String>,
    worker_metrics: Vec<SelfMetrics>,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    capacity: usize,
    retry: RetryPolicy,
    timeout: Option<Duration>,
    started: Instant,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a fatal journal failure and stop the server.
    fn fail_fatal(&self, st: &mut State, msg: String) {
        eprintln!("vax780 serve: {msg}");
        st.fatal.get_or_insert(msg);
        st.shutdown = true;
        self.cv.notify_all();
    }
}

/// Run a server over `config.journal`, optionally listening on
/// `endpoint`. Blocks until the server shuts down (a `drain` or
/// `shutdown` request, or — in `drain_on_start` mode — the queue
/// settling).
///
/// # Errors
///
/// [`ServeError`] on journal/bind failure at startup or a journal
/// append failure mid-run.
pub fn run_server(
    config: &ServeConfig,
    endpoint: Option<&Endpoint>,
    executor: Arc<dyn Executor>,
) -> Result<ServerReport, ServeError> {
    let journal = Journal::open(&config.journal)?;
    for w in journal.warnings() {
        eprintln!(
            "vax780 serve: queue journal {}: {w}",
            config.journal.display()
        );
    }
    let queue: VecDeque<JobId> = journal.pending().into();
    let workers = config.workers.max(1);
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            journal,
            queue,
            running: BTreeSet::new(),
            draining: config.drain_on_start,
            shutdown: false,
            fatal: None,
            worker_metrics: vec![SelfMetrics::new(); workers],
        }),
        cv: Condvar::new(),
        capacity: config.capacity.max(1),
        retry: config.retry,
        timeout: config.timeout,
        started: Instant::now(),
    });

    let listener = match endpoint {
        Some(endpoint) => Some(endpoint.bind().map_err(|source| ServeError::Bind {
            endpoint: endpoint.to_string(),
            source,
        })?),
        None => None,
    };

    let worker_handles: Vec<_> = (0..workers)
        .map(|index| {
            let shared = Arc::clone(&shared);
            let executor = Arc::clone(&executor);
            std::thread::spawn(move || worker_loop(&shared, executor.as_ref(), index))
        })
        .collect();
    let listener_handle = listener.map(|listener| {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || loop {
            if shared.lock().shutdown {
                break;
            }
            match listener.accept() {
                Ok(Some(conn)) => {
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || handle_conn(&shared, conn));
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        })
    });

    // Supervisor: wait for a shutdown, or for a draining queue to
    // settle completely.
    {
        let mut st = shared.lock();
        loop {
            if st.shutdown {
                break;
            }
            if st.draining && st.queue.is_empty() && st.running.is_empty() {
                st.shutdown = true;
                shared.cv.notify_all();
                break;
            }
            st = shared
                .cv
                .wait_timeout(st, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }
    for handle in worker_handles {
        let _ = handle.join();
    }
    if let Some(handle) = listener_handle {
        let _ = handle.join();
    }
    if let Some(Endpoint::Unix(path)) = endpoint {
        let _ = std::fs::remove_file(path);
    }

    let st = shared.lock();
    if let Some(fatal) = &st.fatal {
        return Err(ServeError::Fatal(fatal.clone()));
    }
    let (_, done, failed) = st.journal.counts();
    Ok(ServerReport {
        done,
        failed,
        results: st.journal.jobs().filter_map(|j| j.result_json()).collect(),
        metrics: CampaignMetrics {
            workers: st.worker_metrics.clone(),
            wall: shared.started.elapsed(),
        },
    })
}

fn worker_loop(shared: &Shared, executor: &dyn Executor, index: usize) {
    let mut metrics = SelfMetrics::new();
    let mut cum_cycles = 0u64;
    let mut cum_instructions = 0u64;
    loop {
        // Claim the next job id, or exit on shutdown.
        let (id, spec, prior_starts) = {
            let mut st = shared.lock();
            loop {
                if st.shutdown {
                    st.worker_metrics[index] = metrics;
                    return;
                }
                if let Some(id) = st.queue.pop_front() {
                    let Some((spec, starts)) =
                        st.journal.get(id).map(|j| (j.spec.clone(), j.starts))
                    else {
                        continue;
                    };
                    st.running.insert(id);
                    break (id, spec, starts);
                }
                st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };

        let max_attempts = shared.retry.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            {
                let mut st = shared.lock();
                if let Err(e) = st.journal.append_start(id, prior_starts + attempt) {
                    shared.fail_fatal(&mut st, e.to_string());
                    st.worker_metrics[index] = metrics;
                    return;
                }
            }
            metrics.begin_phase(&format!("job-{id}"), cum_cycles, cum_instructions);
            let outcome = executor.run(&spec, shared.timeout);
            match outcome {
                Ok(m) => {
                    cum_cycles += m.cycles;
                    cum_instructions += m.instructions;
                    metrics.end_phase(cum_cycles, cum_instructions);
                    let mut st = shared.lock();
                    if let Err(e) = st.journal.append_complete(id, &m) {
                        shared.fail_fatal(&mut st, e.to_string());
                        st.worker_metrics[index] = metrics;
                        return;
                    }
                    st.running.remove(&id);
                    st.worker_metrics[index] = metrics.clone();
                    shared.cv.notify_all();
                    break;
                }
                Err(e) => {
                    metrics.end_phase(cum_cycles, cum_instructions);
                    if attempt < max_attempts {
                        // Deterministic linear backoff, as in the
                        // checkpointed campaign's quarantine path.
                        std::thread::sleep(shared.retry.backoff * attempt);
                        continue;
                    }
                    let message = format!("attempt {attempt}/{max_attempts}: {e}");
                    let mut st = shared.lock();
                    if let Err(e) = st.journal.append_fail(id, attempt, &message) {
                        shared.fail_fatal(&mut st, e.to_string());
                        st.worker_metrics[index] = metrics;
                        return;
                    }
                    st.running.remove(&id);
                    st.worker_metrics[index] = metrics.clone();
                    shared.cv.notify_all();
                    break;
                }
            }
        }
    }
}

fn handle_conn(shared: &Shared, conn: Conn) {
    let Ok((mut reader, mut writer)) = conn.split() else {
        return;
    };
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let request = line.trim();
    let (verb, rest) = match request.split_once(' ') {
        Some((v, r)) => (v, r.trim()),
        None => (request, ""),
    };
    let _ = match verb {
        "enqueue" => {
            let reply = handle_enqueue(shared, rest);
            writeln!(writer, "{reply}")
        }
        "status" => handle_status(shared, &mut writer),
        "results" => handle_results(shared, &mut writer),
        "metrics" => handle_metrics(shared, &mut writer),
        "drain" => handle_drain(shared, &mut writer),
        "shutdown" => {
            let mut st = shared.lock();
            st.shutdown = true;
            shared.cv.notify_all();
            drop(st);
            writeln!(writer, "ok")
        }
        _ => writeln!(
            writer,
            "reject unknown request {verb:?} (expected enqueue, status, results, metrics, \
             drain, or shutdown)"
        ),
    };
    let _ = writer.flush();
}

/// Enqueue with backpressure: parse strictly, validate, and admit only
/// while the unsettled count is below capacity.
fn handle_enqueue(shared: &Shared, spec_line: &str) -> String {
    let spec = match JobSpec::parse(spec_line) {
        Ok(spec) => spec,
        Err(e) => return format!("reject bad spec: {e}"),
    };
    if let Err(e) = spec.validate() {
        return format!("reject bad spec: {e}");
    }
    let mut st = shared.lock();
    if st.shutdown || st.draining {
        return "reject server is draining; enqueue to a fresh queue".to_string();
    }
    let unsettled = st.queue.len() + st.running.len();
    if unsettled >= shared.capacity {
        return format!(
            "reject queue full: {unsettled} unsettled job(s) at capacity {}; retry after \
             some settle",
            shared.capacity
        );
    }
    match st.journal.append_enqueue(&spec) {
        Ok(id) => {
            st.queue.push_back(id);
            shared.cv.notify_all();
            format!("ok {id}")
        }
        Err(e) => format!("reject {e}"),
    }
}

fn handle_status(shared: &Shared, writer: &mut dyn Write) -> std::io::Result<()> {
    let st = shared.lock();
    let (_, done, failed) = st.journal.counts();
    writeln!(
        writer,
        "ok capacity {} pending {} running {} done {done} failed {failed} draining {}",
        shared.capacity,
        st.queue.len(),
        st.running.len(),
        u8::from(st.draining),
    )?;
    for job in st.journal.jobs() {
        let state = match (&job.outcome, st.running.contains(&job.id)) {
            (Some(JobOutcome::Done(_)), _) => "done",
            (Some(JobOutcome::Failed { .. }), _) => "failed",
            (None, true) => "running",
            (None, false) => "pending",
        };
        writeln!(writer, "job {} {state} {}", job.id, job.spec.render())?;
    }
    writeln!(writer, "end")
}

fn handle_results(shared: &Shared, writer: &mut dyn Write) -> std::io::Result<()> {
    let st = shared.lock();
    for line in st.journal.jobs().filter_map(|j| j.result_json()) {
        writeln!(writer, "{line}")?;
    }
    writeln!(writer, "end")
}

fn handle_metrics(shared: &Shared, writer: &mut dyn Write) -> std::io::Result<()> {
    let st = shared.lock();
    let (_, done, failed) = st.journal.counts();
    let metrics = CampaignMetrics {
        workers: st.worker_metrics.clone(),
        wall: shared.started.elapsed(),
    };
    writeln!(
        writer,
        "ok wall_us {} speedup {:.2} aggregate_mips {:.3} done {done} failed {failed}",
        metrics.wall.as_micros(),
        metrics.speedup(),
        metrics.aggregate_mips(),
    )?;
    for worker in &metrics.workers {
        writeln!(writer, "worker {}", worker.to_json())?;
    }
    writeln!(writer, "end")
}

/// Stream every job's result in id order as it settles, then stop the
/// server. New enqueues are rejected from the moment draining starts,
/// so the id snapshot taken here is complete.
fn handle_drain(shared: &Shared, writer: &mut dyn Write) -> std::io::Result<()> {
    let ids: Vec<JobId> = {
        let mut st = shared.lock();
        st.draining = true;
        shared.cv.notify_all();
        st.journal.jobs().map(|j| j.id).collect()
    };
    for id in ids {
        let line = {
            let mut st = shared.lock();
            loop {
                match st.journal.get(id).and_then(|j| j.result_json()) {
                    Some(line) => break Some(line),
                    None if st.shutdown => break None,
                    None => st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner()),
                }
            }
        };
        match line {
            Some(line) => {
                writeln!(writer, "{line}")?;
                writer.flush()?;
            }
            // Fatal shutdown mid-drain: stop streaming, terminate the
            // reply so the client is not left hanging.
            None => break,
        }
    }
    writeln!(writer, "end")?;
    let mut st = shared.lock();
    st.shutdown = true;
    shared.cv.notify_all();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{ExecError, InProcessExecutor};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use vax780_core::MeasuredWorkload;
    use vax_workloads::WorkloadKind;

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn quick_spec(kind: WorkloadKind, seed: u64) -> JobSpec {
        let mut spec = JobSpec::new(kind);
        spec.instructions = 2_000;
        spec.warmup = 500;
        spec.seed = Some(seed);
        spec
    }

    /// Counts executor invocations per job spec; optionally fails some.
    struct CountingExecutor {
        runs: AtomicUsize,
        fail_seeds: Vec<u64>,
    }

    impl Executor for CountingExecutor {
        fn run(
            &self,
            spec: &JobSpec,
            _timeout: Option<Duration>,
        ) -> Result<MeasuredWorkload, ExecError> {
            self.runs.fetch_add(1, Ordering::SeqCst);
            if spec.seed.is_some_and(|s| self.fail_seeds.contains(&s)) {
                return Err(ExecError::Failed("synthetic failure".to_string()));
            }
            InProcessExecutor.run(spec, None)
        }
    }

    #[test]
    fn offline_drain_settles_the_queue_and_reports() {
        let dir = tempdir("vax-serve-offline");
        let journal_path = dir.join("queue.journal");
        {
            let mut j = Journal::open(&journal_path).unwrap();
            for seed in 1..=3 {
                j.append_enqueue(&quick_spec(WorkloadKind::TimesharingLight, seed))
                    .unwrap();
            }
        }
        let config = ServeConfig {
            journal: journal_path.clone(),
            workers: 2,
            retry: RetryPolicy::from_retries(0, 0),
            drain_on_start: true,
            ..ServeConfig::default()
        };
        let report = run_server(&config, None, Arc::new(InProcessExecutor)).unwrap();
        assert_eq!(report.done, 3);
        assert_eq!(report.failed, 0);
        assert_eq!(report.results.len(), 3);
        // The journal now holds the settled queue.
        let j = Journal::open(&journal_path).unwrap();
        assert_eq!(j.counts(), (0, 3, 0));
        // A second drain replays without re-running anything.
        let again = run_server(&config, None, Arc::new(InProcessExecutor)).unwrap();
        assert_eq!(again.results, report.results);
    }

    #[test]
    fn resumed_queue_never_reruns_settled_jobs() {
        let dir = tempdir("vax-serve-resume");
        let journal_path = dir.join("queue.journal");
        {
            let mut j = Journal::open(&journal_path).unwrap();
            for seed in 1..=4 {
                j.append_enqueue(&quick_spec(WorkloadKind::Educational, seed))
                    .unwrap();
            }
            // Jobs 1 and 3 already settled in a previous server life.
            let m = InProcessExecutor
                .run(&quick_spec(WorkloadKind::Educational, 1), None)
                .unwrap();
            j.append_start(1, 1).unwrap();
            j.append_complete(1, &m).unwrap();
            j.append_start(3, 1).unwrap();
            j.append_fail(3, 1, "poisoned").unwrap();
        }
        let executor = Arc::new(CountingExecutor {
            runs: AtomicUsize::new(0),
            fail_seeds: Vec::new(),
        });
        let config = ServeConfig {
            journal: journal_path,
            workers: 2,
            retry: RetryPolicy::from_retries(0, 0),
            drain_on_start: true,
            ..ServeConfig::default()
        };
        let report = run_server(&config, None, executor.clone()).unwrap();
        // Only jobs 2 and 4 ran; 1 and 3 were replayed from the journal.
        assert_eq!(executor.runs.load(Ordering::SeqCst), 2);
        assert_eq!(report.done, 3);
        assert_eq!(report.failed, 1);
    }

    #[test]
    fn retries_exhaust_into_one_fail_record() {
        let dir = tempdir("vax-serve-retry");
        let journal_path = dir.join("queue.journal");
        {
            let mut j = Journal::open(&journal_path).unwrap();
            j.append_enqueue(&quick_spec(WorkloadKind::SciEng, 7))
                .unwrap();
            j.append_enqueue(&quick_spec(WorkloadKind::SciEng, 8))
                .unwrap();
        }
        let executor = Arc::new(CountingExecutor {
            runs: AtomicUsize::new(0),
            fail_seeds: vec![7],
        });
        let config = ServeConfig {
            journal: journal_path.clone(),
            workers: 2,
            retry: RetryPolicy::from_retries(2, 0),
            drain_on_start: true,
            ..ServeConfig::default()
        };
        let report = run_server(&config, None, executor.clone()).unwrap();
        assert_eq!(report.done, 1);
        assert_eq!(report.failed, 1);
        // Job 7: 3 attempts; job 8: 1 attempt.
        assert_eq!(executor.runs.load(Ordering::SeqCst), 4);
        let j = Journal::open(&journal_path).unwrap();
        let failed = j.jobs().find(|job| job.spec.seed == Some(7)).unwrap();
        assert_eq!(failed.starts, 3);
        match failed.outcome.as_ref().unwrap() {
            JobOutcome::Failed { attempts, message } => {
                assert_eq!(*attempts, 3);
                assert!(message.contains("synthetic failure"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn backpressure_rejects_beyond_capacity() {
        let dir = tempdir("vax-serve-backpressure");
        let journal_path = dir.join("queue.journal");
        let journal = Journal::open(&journal_path).unwrap();
        let shared = Shared {
            state: Mutex::new(State {
                journal,
                queue: VecDeque::new(),
                running: BTreeSet::new(),
                draining: false,
                shutdown: false,
                fatal: None,
                worker_metrics: Vec::new(),
            }),
            cv: Condvar::new(),
            capacity: 2,
            retry: RetryPolicy::default(),
            timeout: None,
            started: Instant::now(),
        };
        let spec_line = quick_spec(WorkloadKind::Commercial, 1).render();
        assert_eq!(handle_enqueue(&shared, &spec_line), "ok 1");
        assert_eq!(handle_enqueue(&shared, &spec_line), "ok 2");
        let reject = handle_enqueue(&shared, &spec_line);
        assert!(reject.starts_with("reject queue full"), "{reject}");
        assert!(reject.contains("capacity 2"), "{reject}");
        // Bad specs are rejected with the parse error.
        let reject = handle_enqueue(&shared, "workload=warp-drive");
        assert!(reject.starts_with("reject bad spec"), "{reject}");
        // Draining servers admit nothing.
        shared.lock().draining = true;
        let reject = handle_enqueue(&shared, &spec_line);
        assert!(reject.contains("draining"), "{reject}");
    }
}
