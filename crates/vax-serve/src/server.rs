//! The campaign server: a worker pool over the journal-backed queue.
//!
//! One [`Shared`] state — journal, in-memory queue, running set —
//! behind a mutex/condvar pair. Worker threads claim job ids, append
//! `start`/`complete`/`fail` transitions (each flushed before the
//! in-memory state advances), and run attempts outside the lock.
//! Connection handlers mutate the same state: `enqueue` applies
//! backpressure against a fixed capacity of unsettled jobs (plus an
//! optional per-client quota), `claim` hands a job to a remote worker
//! and records its returned `vax-job-result v1` blob, and `drain`
//! streams every result in id order as it settles and then stops the
//! server. Because every transition is journaled first, a `kill -9`
//! at any instant loses nothing: the next `serve` replays the journal
//! and re-runs exactly the unsettled jobs.
//!
//! Results are never held in memory: `results`/`drain` stream each
//! line straight from the journal's offset index, and every
//! `compact_every` settlements the journal folds its settled tail into
//! the snapshot segment so the live file stays O(unsettled).

use crate::journal::{valid_client_name, JobId, JobState, Journal, JournalError};
use crate::queue::{parse_result_blob, Executor};
use crate::spec::JobSpec;
use crate::wire::{Conn, Endpoint};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use vax780_core::{CampaignMetrics, RetryPolicy};
use vax_trace::SelfMetrics;

/// Server parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The queue journal path.
    pub journal: PathBuf,
    /// Worker threads (each runs one job attempt at a time). `0` is
    /// allowed when listening: all execution then comes from remote
    /// `claim` workers.
    pub workers: usize,
    /// Maximum unsettled (queued + running) jobs before `enqueue`
    /// requests are rejected with a reason.
    pub capacity: usize,
    /// Maximum unsettled jobs per client identity (the `client=` token
    /// on `enqueue`), layered under the global capacity. `None` = no
    /// per-client bound.
    pub client_quota: Option<usize>,
    /// Compact the journal after this many settlements land in the
    /// tail segment (0 = never compact automatically).
    pub compact_every: usize,
    /// Retry policy for failing jobs.
    pub retry: RetryPolicy,
    /// Per-attempt deadline (None = unbounded).
    pub timeout: Option<Duration>,
    /// Finish the replayed queue and exit instead of waiting for
    /// clients (offline drain mode).
    pub drain_on_start: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            journal: PathBuf::from("queue.journal"),
            workers: 2,
            capacity: 256,
            client_quota: None,
            compact_every: 10_000,
            retry: RetryPolicy::default(),
            timeout: None,
            drain_on_start: false,
        }
    }
}

/// Why the server stopped (beyond a requested shutdown).
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The journal could not be opened or replayed.
    Journal(JournalError),
    /// The listening socket could not be bound.
    Bind {
        /// The endpoint that failed.
        endpoint: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A journal append failed mid-run; the server stopped rather than
    /// run work it could not make durable.
    Fatal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Journal(e) => write!(f, "{e}"),
            ServeError::Bind { endpoint, source } => {
                write!(f, "bind {endpoint}: {source}")
            }
            ServeError::Fatal(msg) => write!(f, "fatal: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<JournalError> for ServeError {
    fn from(e: JournalError) -> ServeError {
        ServeError::Journal(e)
    }
}

/// What a finished server run settled. Result lines are not collected
/// here — they stream from the journal on request, so a million-job
/// campaign's report stays a few words. Reopen the journal and
/// [`Journal::stream_results`] to render them.
#[derive(Debug)]
pub struct ServerReport {
    /// Jobs with a `complete` record.
    pub done: usize,
    /// Jobs with a `fail` record.
    pub failed: usize,
    /// Per-worker self-metrics.
    pub metrics: CampaignMetrics,
}

struct State {
    journal: Journal,
    queue: VecDeque<JobId>,
    running: BTreeSet<JobId>,
    draining: bool,
    shutdown: bool,
    fatal: Option<String>,
    worker_metrics: Vec<SelfMetrics>,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    capacity: usize,
    client_quota: Option<usize>,
    compact_every: usize,
    retry: RetryPolicy,
    timeout: Option<Duration>,
    started: Instant,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a fatal journal failure and stop the server.
    fn fail_fatal(&self, st: &mut State, msg: String) {
        eprintln!("vax780 serve: {msg}");
        st.fatal.get_or_insert(msg);
        st.shutdown = true;
        self.cv.notify_all();
    }

    /// Fold the settled tail into the snapshot once it is heavy enough.
    /// Best-effort: a failed compaction leaves the journal exactly as
    /// it was (write-new-then-rename), so the server keeps running.
    fn maybe_compact(&self, st: &mut State) {
        if self.compact_every > 0 && st.journal.settled_in_tail() >= self.compact_every {
            if let Err(e) = st.journal.compact() {
                eprintln!("vax780 serve: compaction failed (continuing uncompacted): {e}");
            }
        }
    }
}

/// Run a server over `config.journal`, optionally listening on
/// `endpoint`. Blocks until the server shuts down (a `drain` or
/// `shutdown` request, or — in `drain_on_start` mode — the queue
/// settling).
///
/// # Errors
///
/// [`ServeError`] on journal/bind failure at startup or a journal
/// append failure mid-run.
pub fn run_server(
    config: &ServeConfig,
    endpoint: Option<&Endpoint>,
    executor: Arc<dyn Executor>,
) -> Result<ServerReport, ServeError> {
    let journal = Journal::open(&config.journal)?;
    for w in journal.warnings() {
        eprintln!(
            "vax780 serve: queue journal {}: {w}",
            config.journal.display()
        );
    }
    let queue: VecDeque<JobId> = journal.pending().into();
    // Zero local workers is meaningful only when remote workers can
    // claim over a socket; an offline drain with no workers would hang.
    let workers = if config.workers == 0 && endpoint.is_some() && !config.drain_on_start {
        0
    } else {
        config.workers.max(1)
    };
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            journal,
            queue,
            running: BTreeSet::new(),
            draining: config.drain_on_start,
            shutdown: false,
            fatal: None,
            worker_metrics: vec![SelfMetrics::new(); workers],
        }),
        cv: Condvar::new(),
        capacity: config.capacity.max(1),
        client_quota: config.client_quota,
        compact_every: config.compact_every,
        retry: config.retry,
        timeout: config.timeout,
        started: Instant::now(),
    });

    let listener = match endpoint {
        Some(endpoint) => Some(endpoint.bind().map_err(|source| ServeError::Bind {
            endpoint: endpoint.to_string(),
            source,
        })?),
        None => None,
    };

    let worker_handles: Vec<_> = (0..workers)
        .map(|index| {
            let shared = Arc::clone(&shared);
            let executor = Arc::clone(&executor);
            std::thread::spawn(move || worker_loop(&shared, executor.as_ref(), index))
        })
        .collect();
    let listener_handle = listener.map(|listener| {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || loop {
            if shared.lock().shutdown {
                break;
            }
            match listener.accept() {
                Ok(Some(conn)) => {
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || handle_conn(&shared, conn));
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        })
    });

    // Supervisor: wait for a shutdown, or for a draining queue to
    // settle completely.
    {
        let mut st = shared.lock();
        loop {
            if st.shutdown {
                break;
            }
            if st.draining && st.queue.is_empty() && st.running.is_empty() {
                st.shutdown = true;
                shared.cv.notify_all();
                break;
            }
            st = shared
                .cv
                .wait_timeout(st, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }
    for handle in worker_handles {
        let _ = handle.join();
    }
    if let Some(handle) = listener_handle {
        let _ = handle.join();
    }
    if let Some(Endpoint::Unix(path)) = endpoint {
        let _ = std::fs::remove_file(path);
    }

    let st = shared.lock();
    if let Some(fatal) = &st.fatal {
        return Err(ServeError::Fatal(fatal.clone()));
    }
    let (_, done, failed) = st.journal.counts();
    Ok(ServerReport {
        done,
        failed,
        metrics: CampaignMetrics {
            workers: st.worker_metrics.clone(),
            wall: shared.started.elapsed(),
        },
    })
}

fn worker_loop(shared: &Shared, executor: &dyn Executor, index: usize) {
    let mut metrics = SelfMetrics::new();
    let mut cum_cycles = 0u64;
    let mut cum_instructions = 0u64;
    loop {
        // Claim the next job id, or exit on shutdown.
        let (id, spec, prior_starts) = {
            let mut st = shared.lock();
            loop {
                if st.shutdown {
                    st.worker_metrics[index] = metrics;
                    return;
                }
                if let Some(id) = st.queue.pop_front() {
                    let Some((spec, starts)) =
                        st.journal.pending_job(id).map(|(s, k)| (s.clone(), k))
                    else {
                        continue;
                    };
                    st.running.insert(id);
                    break (id, spec, starts);
                }
                st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };

        let max_attempts = shared.retry.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            {
                let mut st = shared.lock();
                if let Err(e) = st.journal.append_start(id, prior_starts + attempt) {
                    shared.fail_fatal(&mut st, e.to_string());
                    st.worker_metrics[index] = metrics;
                    return;
                }
            }
            metrics.begin_phase(&format!("job-{id}"), cum_cycles, cum_instructions);
            let outcome = executor.run(&spec, shared.timeout);
            match outcome {
                Ok(m) => {
                    cum_cycles += m.cycles;
                    cum_instructions += m.instructions;
                    metrics.end_phase(cum_cycles, cum_instructions);
                    let mut st = shared.lock();
                    if let Err(e) = st.journal.append_complete(id, &m) {
                        shared.fail_fatal(&mut st, e.to_string());
                        st.worker_metrics[index] = metrics;
                        return;
                    }
                    st.running.remove(&id);
                    st.worker_metrics[index] = metrics.clone();
                    shared.maybe_compact(&mut st);
                    shared.cv.notify_all();
                    break;
                }
                Err(e) => {
                    metrics.end_phase(cum_cycles, cum_instructions);
                    if attempt < max_attempts {
                        // Shutdown may have arrived while the attempt
                        // ran: abandon the claim instead of sleeping
                        // through the backoff. No `fail` record is
                        // written — the journal still holds the job
                        // pending, so a restart re-runs it.
                        {
                            let mut st = shared.lock();
                            if st.shutdown {
                                st.running.remove(&id);
                                st.worker_metrics[index] = metrics;
                                return;
                            }
                        }
                        // Deterministic linear backoff, as in the
                        // checkpointed campaign's quarantine path.
                        std::thread::sleep(shared.retry.backoff * attempt);
                        continue;
                    }
                    let message = format!("attempt {attempt}/{max_attempts}: {e}");
                    let mut st = shared.lock();
                    if let Err(e) = st.journal.append_fail(id, attempt, &message) {
                        shared.fail_fatal(&mut st, e.to_string());
                        st.worker_metrics[index] = metrics;
                        return;
                    }
                    st.running.remove(&id);
                    st.worker_metrics[index] = metrics.clone();
                    shared.maybe_compact(&mut st);
                    shared.cv.notify_all();
                    break;
                }
            }
        }
    }
}

fn handle_conn(shared: &Shared, conn: Conn) {
    let Ok((mut reader, mut writer)) = conn.split() else {
        return;
    };
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let request = line.trim();
    let (verb, rest) = match request.split_once(' ') {
        Some((v, r)) => (v, r.trim()),
        None => (request, ""),
    };
    let _ = match verb {
        "enqueue" => {
            let reply = handle_enqueue(shared, rest);
            writeln!(writer, "{reply}")
        }
        "status" => handle_status(shared, &mut writer),
        "results" => handle_results(shared, &mut writer),
        "metrics" => handle_metrics(shared, &mut writer),
        "drain" => handle_drain(shared, &mut writer),
        "claim" => handle_claim(shared, &mut reader, &mut writer),
        "compact" => {
            let reply = {
                let mut st = shared.lock();
                let before = st.journal.settled_in_tail();
                match st.journal.compact() {
                    Ok(()) => format!(
                        "ok compacted {before} settled record(s) into generation {}",
                        st.journal.generation()
                    ),
                    Err(e) => format!("reject {e}"),
                }
            };
            writeln!(writer, "{reply}")
        }
        "shutdown" => {
            let mut st = shared.lock();
            st.shutdown = true;
            shared.cv.notify_all();
            drop(st);
            writeln!(writer, "ok")
        }
        _ => writeln!(
            writer,
            "reject unknown request {verb:?} (expected enqueue, status, results, metrics, \
             drain, claim, compact, or shutdown)"
        ),
    };
    let _ = writer.flush();
}

/// Enqueue with backpressure: parse strictly, validate, and admit only
/// while the unsettled count is below capacity — and, when a
/// per-client quota is configured, below the quota for the `client=`
/// identity leading the spec line.
fn handle_enqueue(shared: &Shared, request: &str) -> String {
    let (client, spec_line) = match request.split_once(' ') {
        Some((first, rest)) if first.starts_with("client=") => {
            let name = &first["client=".len()..];
            if !valid_client_name(name) {
                return format!(
                    "reject bad client name `{name}` (one token of [A-Za-z0-9._@-], at most \
                     64 bytes)"
                );
            }
            (name, rest.trim())
        }
        _ => ("", request),
    };
    let spec = match JobSpec::parse(spec_line) {
        Ok(spec) => spec,
        Err(e) => return format!("reject bad spec: {e}"),
    };
    if let Err(e) = spec.validate() {
        return format!("reject bad spec: {e}");
    }
    let mut st = shared.lock();
    if st.shutdown || st.draining {
        return "reject server is draining; enqueue to a fresh queue".to_string();
    }
    let unsettled = st.queue.len() + st.running.len();
    if unsettled >= shared.capacity {
        return format!(
            "reject queue full: {unsettled} unsettled job(s) at capacity {}; retry after \
             some settle",
            shared.capacity
        );
    }
    if let Some(quota) = shared.client_quota {
        let held = st.journal.unsettled_for(client);
        if held >= quota {
            let who = if client.is_empty() {
                "anonymous client".to_string()
            } else {
                format!("client {client}")
            };
            return format!(
                "reject quota exceeded: {who} holds {held} unsettled job(s) at quota \
                 {quota}; retry after some settle"
            );
        }
    }
    match st.journal.append_enqueue_for(client, &spec) {
        Ok(id) => {
            st.queue.push_back(id);
            shared.cv.notify_all();
            format!("ok {id}")
        }
        Err(e) => format!("reject {e}"),
    }
}

fn handle_status(shared: &Shared, writer: &mut dyn Write) -> std::io::Result<()> {
    let st = shared.lock();
    let (_, done, failed) = st.journal.counts();
    writeln!(
        writer,
        "ok capacity {} pending {} running {} done {done} failed {failed} draining {}",
        shared.capacity,
        st.queue.len(),
        st.running.len(),
        u8::from(st.draining),
    )?;
    for (id, state) in st.journal.states() {
        let name = match state {
            JobState::Pending if st.running.contains(&id) => "running",
            state => state.name(),
        };
        let spec = st
            .journal
            .spec_line(id)
            .map_err(|e| std::io::Error::other(e.to_string()))?
            .unwrap_or_default();
        writeln!(writer, "job {id} {name} {spec}")?;
    }
    writeln!(writer, "end")
}

fn handle_results(shared: &Shared, writer: &mut dyn Write) -> std::io::Result<()> {
    let st = shared.lock();
    st.journal
        .stream_results(writer)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    writeln!(writer, "end")
}

fn handle_metrics(shared: &Shared, writer: &mut dyn Write) -> std::io::Result<()> {
    let st = shared.lock();
    let (_, done, failed) = st.journal.counts();
    let metrics = CampaignMetrics {
        workers: st.worker_metrics.clone(),
        wall: shared.started.elapsed(),
    };
    writeln!(
        writer,
        "ok wall_us {} speedup {:.2} aggregate_mips {:.3} done {done} failed {failed}",
        metrics.wall.as_micros(),
        metrics.speedup(),
        metrics.aggregate_mips(),
    )?;
    for worker in &metrics.workers {
        writeln!(writer, "worker {}", worker.to_json())?;
    }
    writeln!(writer, "end")
}

/// Stream every job's result in id order as it settles, then stop the
/// server. New enqueues are rejected from the moment draining starts,
/// so the id range snapshotted here is complete. Each line is read
/// back from the journal's offset index one at a time — the drain
/// never holds more than one result in memory.
fn handle_drain(shared: &Shared, writer: &mut dyn Write) -> std::io::Result<()> {
    let last = {
        let mut st = shared.lock();
        st.draining = true;
        shared.cv.notify_all();
        st.journal.last_id()
    };
    'ids: for id in 1..=last {
        let line = {
            let mut st = shared.lock();
            loop {
                match st.journal.state(id) {
                    // Ids can have gaps only if the journal predates
                    // this server; skip silently.
                    None => continue 'ids,
                    Some(JobState::Pending) if st.shutdown => break None,
                    Some(JobState::Pending) => {
                        st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    Some(_) => {
                        break st
                            .journal
                            .result_line(id)
                            .map_err(|e| std::io::Error::other(e.to_string()))?
                    }
                }
            }
        };
        match line {
            Some(line) => {
                writeln!(writer, "{line}")?;
                writer.flush()?;
            }
            // Fatal shutdown mid-drain: stop streaming, terminate the
            // reply so the client is not left hanging.
            None => break,
        }
    }
    writeln!(writer, "end")?;
    let mut st = shared.lock();
    st.shutdown = true;
    shared.cv.notify_all();
    Ok(())
}

/// Hand one job to a remote worker and record what it sends back.
///
/// The connection stays open for the duration of the attempt: the
/// server replies `job <id> <spec>` and then reads either
/// `result <id>` followed by a `vax-job-result v1` blob, or
/// `fail <id> <message>`. A dropped connection, a read timeout (the
/// per-attempt deadline applied to the socket), or an unparseable blob
/// all count as one failed, *retryable* attempt — the job returns to
/// the queue until the retry policy exhausts, exactly as if a local
/// worker's attempt had failed.
fn handle_claim(
    shared: &Shared,
    reader: &mut BufReader<Conn>,
    writer: &mut Conn,
) -> std::io::Result<()> {
    let max_attempts = shared.retry.max_attempts.max(1);
    let (id, spec, attempt) = {
        let mut st = shared.lock();
        if st.shutdown {
            return writeln!(writer, "gone");
        }
        let Some(id) = st.queue.pop_front() else {
            // `drain` only finishes once running jobs settle, so tell a
            // draining server's workers to leave rather than idle.
            return if st.draining {
                writeln!(writer, "gone")
            } else {
                writeln!(writer, "idle")
            };
        };
        let Some((spec, starts)) = st.journal.pending_job(id).map(|(s, k)| (s.clone(), k)) else {
            return writeln!(writer, "idle");
        };
        let attempt = starts + 1;
        if let Err(e) = st.journal.append_start(id, attempt) {
            st.queue.push_front(id);
            shared.fail_fatal(&mut st, e.to_string());
            return writeln!(writer, "gone");
        }
        st.running.insert(id);
        (id, spec, attempt)
    };
    writeln!(writer, "job {id} {}", spec.render())?;
    writer.flush()?;

    // The attempt runs on the worker's machine; bound how long we hold
    // the claim by applying the per-attempt deadline to the socket.
    let _ = reader.get_ref().set_read_timeout(shared.timeout);
    let outcome = read_claim_outcome(reader, id, &spec);
    let mut st = shared.lock();
    match outcome {
        Ok(ClaimOutcome::Done(m)) => {
            if let Err(e) = st.journal.append_complete(id, &m) {
                shared.fail_fatal(&mut st, e.to_string());
                return Ok(());
            }
            st.running.remove(&id);
            shared.maybe_compact(&mut st);
            shared.cv.notify_all();
            drop(st);
            writeln!(writer, "ok")
        }
        Ok(ClaimOutcome::Failed(_)) | Err(_) => {
            let detail = match &outcome {
                Ok(ClaimOutcome::Failed(msg)) if msg.is_empty() => {
                    "worker reported failure".to_string()
                }
                Ok(ClaimOutcome::Failed(msg)) => msg.clone(),
                Err(e) => format!("worker connection lost: {e}"),
                Ok(ClaimOutcome::Done(_)) => unreachable!(),
            };
            st.running.remove(&id);
            if attempt >= max_attempts {
                let message = format!("attempt {attempt}/{max_attempts}: {detail}");
                if let Err(e) = st.journal.append_fail(id, attempt, &message) {
                    shared.fail_fatal(&mut st, e.to_string());
                    return Ok(());
                }
                shared.maybe_compact(&mut st);
            } else {
                // Retryable: back onto the queue for any worker,
                // local or remote.
                st.queue.push_back(id);
            }
            shared.cv.notify_all();
            drop(st);
            writeln!(writer, "ok")
        }
    }
}

/// What a remote worker sent back for one claim.
enum ClaimOutcome {
    /// A parsed `vax-job-result v1` blob.
    Done(vax780_core::MeasuredWorkload),
    /// A `fail <id> <message>` report.
    Failed(String),
}

/// Read the worker's half of a claim; `Err` means connection
/// loss/timeout/garbage (a retryable attempt, like a local failure).
fn read_claim_outcome(
    reader: &mut BufReader<Conn>,
    id: JobId,
    spec: &JobSpec,
) -> std::io::Result<ClaimOutcome> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(bad("connection closed before a result".to_string()));
    }
    let head = line.trim();
    if head == format!("result {id}") {
        let mut blob = String::new();
        loop {
            let mut l = String::new();
            if reader.read_line(&mut l)? == 0 {
                return Err(bad("connection closed mid-blob".to_string()));
            }
            let done = l.trim_end() == "end";
            blob.push_str(&l);
            if done {
                break;
            }
        }
        let m = parse_result_blob(&blob, spec.workload.name()).map_err(bad)?;
        Ok(ClaimOutcome::Done(m))
    } else if let Some(rest) = head
        .strip_prefix(&format!("fail {id}"))
        .filter(|r| r.is_empty() || r.starts_with(' '))
    {
        Ok(ClaimOutcome::Failed(rest.trim().to_string()))
    } else {
        Err(bad(format!("unexpected worker reply `{head}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{ExecError, InProcessExecutor};
    use std::path::Path;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use vax780_core::MeasuredWorkload;
    use vax_workloads::WorkloadKind;

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn quick_spec(kind: WorkloadKind, seed: u64) -> JobSpec {
        let mut spec = JobSpec::new(kind);
        spec.instructions = 2_000;
        spec.warmup = 500;
        spec.seed = Some(seed);
        spec
    }

    fn results_of(path: &Path) -> Vec<String> {
        let j = Journal::open(path).unwrap();
        let mut out = Vec::new();
        j.stream_results(&mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    /// Counts executor invocations per job spec; optionally fails some.
    struct CountingExecutor {
        runs: AtomicUsize,
        fail_seeds: Vec<u64>,
    }

    impl Executor for CountingExecutor {
        fn run(
            &self,
            spec: &JobSpec,
            _timeout: Option<Duration>,
        ) -> Result<MeasuredWorkload, ExecError> {
            self.runs.fetch_add(1, Ordering::SeqCst);
            if spec.seed.is_some_and(|s| self.fail_seeds.contains(&s)) {
                return Err(ExecError::Failed("synthetic failure".to_string()));
            }
            InProcessExecutor.run(spec, None)
        }
    }

    fn test_shared(journal: Journal, capacity: usize, client_quota: Option<usize>) -> Shared {
        Shared {
            state: Mutex::new(State {
                journal,
                queue: VecDeque::new(),
                running: BTreeSet::new(),
                draining: false,
                shutdown: false,
                fatal: None,
                worker_metrics: Vec::new(),
            }),
            cv: Condvar::new(),
            capacity,
            client_quota,
            compact_every: 0,
            retry: RetryPolicy::default(),
            timeout: None,
            started: Instant::now(),
        }
    }

    #[test]
    fn offline_drain_settles_the_queue_and_reports() {
        let dir = tempdir("vax-serve-offline");
        let journal_path = dir.join("queue.journal");
        {
            let mut j = Journal::open(&journal_path).unwrap();
            for seed in 1..=3 {
                j.append_enqueue(&quick_spec(WorkloadKind::TimesharingLight, seed))
                    .unwrap();
            }
        }
        let config = ServeConfig {
            journal: journal_path.clone(),
            workers: 2,
            retry: RetryPolicy::from_retries(0, 0),
            drain_on_start: true,
            ..ServeConfig::default()
        };
        let report = run_server(&config, None, Arc::new(InProcessExecutor)).unwrap();
        assert_eq!(report.done, 3);
        assert_eq!(report.failed, 0);
        let results = results_of(&journal_path);
        assert_eq!(results.len(), 3);
        // The journal now holds the settled queue.
        let j = Journal::open(&journal_path).unwrap();
        assert_eq!(j.counts(), (0, 3, 0));
        // A second drain replays without re-running anything.
        run_server(&config, None, Arc::new(InProcessExecutor)).unwrap();
        assert_eq!(results_of(&journal_path), results);
    }

    #[test]
    fn resumed_queue_never_reruns_settled_jobs() {
        let dir = tempdir("vax-serve-resume");
        let journal_path = dir.join("queue.journal");
        {
            let mut j = Journal::open(&journal_path).unwrap();
            for seed in 1..=4 {
                j.append_enqueue(&quick_spec(WorkloadKind::Educational, seed))
                    .unwrap();
            }
            // Jobs 1 and 3 already settled in a previous server life.
            let m = InProcessExecutor
                .run(&quick_spec(WorkloadKind::Educational, 1), None)
                .unwrap();
            j.append_start(1, 1).unwrap();
            j.append_complete(1, &m).unwrap();
            j.append_start(3, 1).unwrap();
            j.append_fail(3, 1, "poisoned").unwrap();
        }
        let executor = Arc::new(CountingExecutor {
            runs: AtomicUsize::new(0),
            fail_seeds: Vec::new(),
        });
        let config = ServeConfig {
            journal: journal_path,
            workers: 2,
            retry: RetryPolicy::from_retries(0, 0),
            drain_on_start: true,
            ..ServeConfig::default()
        };
        let report = run_server(&config, None, executor.clone()).unwrap();
        // Only jobs 2 and 4 ran; 1 and 3 were replayed from the journal.
        assert_eq!(executor.runs.load(Ordering::SeqCst), 2);
        assert_eq!(report.done, 3);
        assert_eq!(report.failed, 1);
    }

    #[test]
    fn retries_exhaust_into_one_fail_record() {
        let dir = tempdir("vax-serve-retry");
        let journal_path = dir.join("queue.journal");
        {
            let mut j = Journal::open(&journal_path).unwrap();
            j.append_enqueue(&quick_spec(WorkloadKind::SciEng, 7))
                .unwrap();
            j.append_enqueue(&quick_spec(WorkloadKind::SciEng, 8))
                .unwrap();
        }
        let executor = Arc::new(CountingExecutor {
            runs: AtomicUsize::new(0),
            fail_seeds: vec![7],
        });
        let config = ServeConfig {
            journal: journal_path.clone(),
            workers: 2,
            retry: RetryPolicy::from_retries(2, 0),
            drain_on_start: true,
            ..ServeConfig::default()
        };
        let report = run_server(&config, None, executor.clone()).unwrap();
        assert_eq!(report.done, 1);
        assert_eq!(report.failed, 1);
        // Job 7: 3 attempts; job 8: 1 attempt.
        assert_eq!(executor.runs.load(Ordering::SeqCst), 4);
        let j = Journal::open(&journal_path).unwrap();
        let failed_id = j
            .states()
            .find(|&(_, s)| s == JobState::Failed)
            .map(|(id, _)| id)
            .unwrap();
        let line = j.result_line(failed_id).unwrap().unwrap();
        assert!(line.contains("\"attempts\":3"), "{line}");
        assert!(line.contains("synthetic failure"), "{line}");
    }

    #[test]
    fn backpressure_rejects_beyond_capacity() {
        let dir = tempdir("vax-serve-backpressure");
        let journal_path = dir.join("queue.journal");
        let journal = Journal::open(&journal_path).unwrap();
        let shared = test_shared(journal, 2, None);
        let spec_line = quick_spec(WorkloadKind::Commercial, 1).render();
        assert_eq!(handle_enqueue(&shared, &spec_line), "ok 1");
        assert_eq!(handle_enqueue(&shared, &spec_line), "ok 2");
        let reject = handle_enqueue(&shared, &spec_line);
        assert!(reject.starts_with("reject queue full"), "{reject}");
        assert!(reject.contains("capacity 2"), "{reject}");
        // Bad specs are rejected with the parse error.
        let reject = handle_enqueue(&shared, "workload=warp-drive");
        assert!(reject.starts_with("reject bad spec"), "{reject}");
        // Draining servers admit nothing.
        shared.lock().draining = true;
        let reject = handle_enqueue(&shared, &spec_line);
        assert!(reject.contains("draining"), "{reject}");
    }

    #[test]
    fn client_quota_rejects_with_a_reason() {
        let dir = tempdir("vax-serve-quota");
        let journal_path = dir.join("queue.journal");
        let journal = Journal::open(&journal_path).unwrap();
        let shared = test_shared(journal, 100, Some(2));
        let spec_line = quick_spec(WorkloadKind::Commercial, 1).render();
        // Alice fills her quota; Bob and anonymous still get in.
        assert_eq!(
            handle_enqueue(&shared, &format!("client=alice {spec_line}")),
            "ok 1"
        );
        assert_eq!(
            handle_enqueue(&shared, &format!("client=alice {spec_line}")),
            "ok 2"
        );
        let reject = handle_enqueue(&shared, &format!("client=alice {spec_line}"));
        assert!(reject.starts_with("reject quota exceeded"), "{reject}");
        assert!(reject.contains("client alice"), "{reject}");
        assert!(reject.contains("quota 2"), "{reject}");
        assert_eq!(
            handle_enqueue(&shared, &format!("client=bob {spec_line}")),
            "ok 3"
        );
        assert_eq!(handle_enqueue(&shared, &spec_line), "ok 4");
        // Settling one of Alice's jobs frees her quota.
        {
            let mut st = shared.lock();
            st.journal.append_start(1, 1).unwrap();
            st.journal.append_fail(1, 1, "give up").unwrap();
        }
        assert_eq!(
            handle_enqueue(&shared, &format!("client=alice {spec_line}")),
            "ok 5"
        );
        // Bad client names are rejected before the journal sees them.
        let reject = handle_enqueue(&shared, &format!("client=a b {spec_line}"));
        assert!(reject.starts_with("reject bad client name") || reject.contains("bad spec"));
        let reject = handle_enqueue(&shared, &format!("client= {spec_line}"));
        assert!(reject.starts_with("reject bad client name"), "{reject}");
    }

    /// Bug-sweep pin: `shutdown` arriving while a worker holds a claim
    /// must neither hang the server nor write a `fail` record — the
    /// claim is abandoned and the job replays as pending on restart.
    #[test]
    fn shutdown_mid_claim_abandons_without_a_fail_record() {
        let dir = tempdir("vax-serve-shutdown-claim");
        let journal_path = dir.join("queue.journal");
        {
            let mut j = Journal::open(&journal_path).unwrap();
            j.append_enqueue(&quick_spec(WorkloadKind::SciEng, 1))
                .unwrap();
        }
        // Always fails, generous retry budget with real backoff: the
        // worker would sit in backoff sleeps for ~100s if shutdown did
        // not cut the retry loop short.
        struct FailingExecutor(AtomicUsize);
        impl Executor for FailingExecutor {
            fn run(
                &self,
                _spec: &JobSpec,
                _timeout: Option<Duration>,
            ) -> Result<MeasuredWorkload, ExecError> {
                self.0.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(50));
                Err(ExecError::Failed("always fails".to_string()))
            }
        }
        let executor = Arc::new(FailingExecutor(AtomicUsize::new(0)));
        let config = ServeConfig {
            journal: journal_path.clone(),
            workers: 1,
            retry: RetryPolicy::from_retries(1000, 100),
            drain_on_start: false,
            ..ServeConfig::default()
        };
        let exec = executor.clone();
        let path = journal_path.clone();
        let handle = std::thread::spawn(move || {
            let dir = path.parent().unwrap().to_path_buf();
            let endpoint = Endpoint::Unix(dir.join("s.sock"));
            run_server(&config, Some(&endpoint), exec)
        });
        // Let the first attempt start, then ask for shutdown.
        while executor.0.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        let client =
            crate::wire::Client::new(Endpoint::Unix(dir.join("s.sock")), Duration::from_secs(5));
        client.request_line("shutdown").unwrap();
        let report = handle.join().unwrap().unwrap();
        // No fail record was written; the job is still pending.
        assert_eq!((report.done, report.failed), (0, 0));
        let j = Journal::open(&journal_path).unwrap();
        assert_eq!(j.counts(), (1, 0, 0));
        assert_eq!(j.state(1), Some(JobState::Pending));
    }

    /// Bug-sweep pin: a condvar wakeup with an already-drained queue
    /// (drain snapshotting ids while workers race) must terminate —
    /// the drain of an all-settled queue returns immediately and
    /// spurious wakeups re-check the predicate rather than popping.
    #[test]
    fn drain_of_settled_queue_terminates() {
        let dir = tempdir("vax-serve-drain-empty");
        let journal_path = dir.join("queue.journal");
        {
            let mut j = Journal::open(&journal_path).unwrap();
            let spec = quick_spec(WorkloadKind::TimesharingLight, 1);
            let id = j.append_enqueue(&spec).unwrap();
            let m = InProcessExecutor.run(&spec, None).unwrap();
            j.append_start(id, 1).unwrap();
            j.append_complete(id, &m).unwrap();
        }
        let journal = Journal::open(&journal_path).unwrap();
        let shared = test_shared(journal, 10, None);
        let mut out = Vec::new();
        handle_drain(&shared, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 2, "{text}");
        assert!(text.ends_with("end\n"), "{text}");
        assert!(shared.lock().shutdown);
    }

    #[test]
    fn auto_compaction_triggers_and_preserves_results() {
        let dir = tempdir("vax-serve-autocompact");
        let journal_path = dir.join("queue.journal");
        {
            let mut j = Journal::open(&journal_path).unwrap();
            for seed in 1..=4 {
                j.append_enqueue(&quick_spec(WorkloadKind::TimesharingLight, seed))
                    .unwrap();
            }
        }
        let config = ServeConfig {
            journal: journal_path.clone(),
            workers: 2,
            compact_every: 2,
            retry: RetryPolicy::from_retries(0, 0),
            drain_on_start: true,
            ..ServeConfig::default()
        };
        run_server(&config, None, Arc::new(InProcessExecutor)).unwrap();
        let j = Journal::open(&journal_path).unwrap();
        assert_eq!(j.counts(), (0, 4, 0));
        assert!(j.generation() >= 1, "compaction never ran");
        // Reference: the same queue drained without compaction.
        let ref_path = dir.join("ref.journal");
        {
            let mut j = Journal::open(&ref_path).unwrap();
            for seed in 1..=4 {
                j.append_enqueue(&quick_spec(WorkloadKind::TimesharingLight, seed))
                    .unwrap();
            }
        }
        let ref_config = ServeConfig {
            journal: ref_path.clone(),
            compact_every: 0,
            workers: 1,
            retry: RetryPolicy::from_retries(0, 0),
            drain_on_start: true,
            ..ServeConfig::default()
        };
        run_server(&ref_config, None, Arc::new(InProcessExecutor)).unwrap();
        assert_eq!(results_of(&journal_path), results_of(&ref_path));
    }
}
