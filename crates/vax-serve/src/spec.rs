//! The job specification: one simulation request on one line.
//!
//! A [`JobSpec`] names everything a worker needs to reproduce a
//! measurement bit-for-bit: workload, instruction budget, CPU/memory
//! configuration overrides, fault plan, and seed. It renders to a
//! single `key=value` line — the payload of the journal's `enqueue`
//! record and of the wire protocol's `enqueue` request — and parsing
//! is strict: unknown or duplicate keys are errors, so a typo is a
//! reject at enqueue time, not a silently-default simulation.

use vax780_core::Experiment;
use vax_cpu::CpuConfig;
use vax_fault::{FaultClass, FaultPlan};
use vax_mem::MemConfig;
use vax_workloads::{profile, WorkloadKind};

/// Which execution loop the job's CPU model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tier {
    /// Reference interpreter (`CpuConfig::naive_loop`).
    Naive,
    /// Predecoded fast loop (`CpuConfig::fast_loop`).
    Fast,
    /// Block-compiled tier (the default `CpuConfig`).
    #[default]
    Block,
}

impl Tier {
    /// Canonical name, as used in `tier=` fields.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Naive => "naive",
            Tier::Fast => "fast",
            Tier::Block => "block",
        }
    }

    /// Parse a tier name.
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "naive" => Some(Tier::Naive),
            "fast" => Some(Tier::Fast),
            "block" => Some(Tier::Block),
            _ => None,
        }
    }
}

/// One simulation request: workload × configuration × fault plan × seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Which of the paper's workloads to build.
    pub workload: WorkloadKind,
    /// Measured instruction count.
    pub instructions: u64,
    /// Warm-up instruction count.
    pub warmup: u64,
    /// Override the profile's RNG seed (None = the profile default).
    pub seed: Option<u64>,
    /// Execution tier for the CPU model.
    pub tier: Tier,
    /// Model the decode/execute overlap optimisation.
    pub decode_overlap: bool,
    /// Override cache size in KiB.
    pub cache_kb: Option<u32>,
    /// Override cache associativity.
    pub cache_ways: Option<u32>,
    /// Override translation-buffer entry count.
    pub tb_entries: Option<u32>,
    /// Override write-buffer depth.
    pub write_buffer: Option<u32>,
    /// Fault classes to inject (empty = fault-free run).
    pub faults: Vec<FaultClass>,
    /// Seed for the scattered fault plan.
    pub fault_seed: u64,
    /// Faults injected per class.
    pub fault_count: u32,
    /// Cycle window the faults are scattered over (None = 3× the
    /// instruction budget, a loose whole-run window).
    pub fault_window: Option<u64>,
}

impl JobSpec {
    /// A plain, fault-free job on one workload with short test-friendly
    /// lengths.
    pub fn new(workload: WorkloadKind) -> JobSpec {
        JobSpec {
            workload,
            instructions: 20_000,
            warmup: 5_000,
            seed: None,
            tier: Tier::Block,
            decode_overlap: false,
            cache_kb: None,
            cache_ways: None,
            tb_entries: None,
            write_buffer: None,
            faults: Vec::new(),
            fault_seed: 0x780,
            fault_count: 2,
            fault_window: None,
        }
    }

    /// Render to the canonical one-line `key=value` form. Fields at
    /// their defaults are omitted, so `render` ∘ `parse` is the
    /// identity on canonical lines.
    pub fn render(&self) -> String {
        let mut out = format!(
            "workload={} instructions={} warmup={}",
            self.workload.name(),
            self.instructions,
            self.warmup
        );
        if let Some(seed) = self.seed {
            out.push_str(&format!(" seed={seed}"));
        }
        if self.tier != Tier::Block {
            out.push_str(&format!(" tier={}", self.tier.name()));
        }
        if self.decode_overlap {
            out.push_str(" decode-overlap=1");
        }
        if let Some(kb) = self.cache_kb {
            out.push_str(&format!(" cache-kb={kb}"));
        }
        if let Some(ways) = self.cache_ways {
            out.push_str(&format!(" cache-ways={ways}"));
        }
        if let Some(entries) = self.tb_entries {
            out.push_str(&format!(" tb-entries={entries}"));
        }
        if let Some(depth) = self.write_buffer {
            out.push_str(&format!(" write-buffer={depth}"));
        }
        if !self.faults.is_empty() {
            let names: Vec<&str> = self.faults.iter().map(|c| c.name()).collect();
            out.push_str(&format!(
                " faults={} fault-seed={} fault-count={}",
                names.join("+"),
                self.fault_seed,
                self.fault_count
            ));
            if let Some(window) = self.fault_window {
                out.push_str(&format!(" fault-window={window}"));
            }
        }
        out
    }

    /// Parse a one-line spec. Strict: every token must be a known
    /// `key=value`, keys may not repeat, and `workload=` is required.
    pub fn parse(line: &str) -> Result<JobSpec, String> {
        let mut workload = None;
        let mut spec = JobSpec::new(WorkloadKind::TimesharingLight);
        let mut seen: Vec<&str> = Vec::new();
        for token in line.split_whitespace() {
            let Some((key, value)) = token.split_once('=') else {
                return Err(format!("malformed token {token:?}: expected key=value"));
            };
            if seen.contains(&key) {
                return Err(format!("duplicate key {key:?}"));
            }
            let number = |what: &str| -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("{key}: expected {what}, got {value:?}"))
            };
            let small = |what: &str| -> Result<u32, String> {
                value
                    .parse::<u32>()
                    .map_err(|_| format!("{key}: expected {what}, got {value:?}"))
            };
            match key {
                "workload" => {
                    workload = Some(WorkloadKind::parse(value).ok_or_else(|| {
                        format!(
                            "workload: unknown workload {value:?} (expected one of {})",
                            WorkloadKind::ALL.map(WorkloadKind::name).join(", ")
                        )
                    })?);
                }
                "instructions" => spec.instructions = number("an instruction count")?,
                "warmup" => spec.warmup = number("an instruction count")?,
                "seed" => spec.seed = Some(number("a seed")?),
                "tier" => {
                    spec.tier = Tier::parse(value).ok_or_else(|| {
                        format!("tier: unknown tier {value:?} (expected naive, fast, or block)")
                    })?;
                }
                "decode-overlap" => {
                    spec.decode_overlap = match value {
                        "1" => true,
                        "0" => false,
                        _ => return Err(format!("decode-overlap: expected 0 or 1, got {value:?}")),
                    };
                }
                "cache-kb" => spec.cache_kb = Some(small("a size in KiB")?),
                "cache-ways" => spec.cache_ways = Some(small("a way count")?),
                "tb-entries" => spec.tb_entries = Some(small("an entry count")?),
                "write-buffer" => spec.write_buffer = Some(small("a depth")?),
                "faults" => {
                    for name in value.split('+') {
                        let class = FaultClass::parse(name).ok_or_else(|| {
                            format!(
                                "faults: unknown fault class {name:?} (expected one of {})",
                                FaultClass::ALL.map(FaultClass::name).join(", ")
                            )
                        })?;
                        spec.faults.push(class);
                    }
                }
                "fault-seed" => spec.fault_seed = number("a seed")?,
                "fault-count" => spec.fault_count = small("a count")?,
                "fault-window" => spec.fault_window = Some(number("a cycle count")?),
                _ => return Err(format!("unknown key {key:?}")),
            }
            seen.push(key);
        }
        let Some(workload) = workload else {
            return Err("missing required key workload=".to_string());
        };
        spec.workload = workload;
        if spec.instructions == 0 {
            return Err("instructions: must be at least 1".to_string());
        }
        Ok(spec)
    }

    /// Cheap structural validation beyond what [`parse`](JobSpec::parse)
    /// enforces: the memory-geometry overrides must describe a buildable
    /// cache/TB, so an impossible job is rejected at enqueue time
    /// instead of panicking in a worker.
    pub fn validate(&self) -> Result<(), String> {
        let mem = self.mem_config();
        // Mirror MemConfig::validate's asserts, reported as errors.
        let c = mem.cache;
        let cache_ok = c.size_bytes.is_power_of_two()
            && c.ways >= 1
            && c.ways
                .checked_mul(c.block_bytes)
                .is_some_and(|set| c.size_bytes >= set && (c.size_bytes / set).is_power_of_two());
        if !cache_ok {
            return Err(format!(
                "cache geometry {} bytes / {} way(s) is not buildable",
                c.size_bytes, c.ways
            ));
        }
        let tb = mem.tb;
        let halves = if tb.split { 2 } else { 1 };
        let tb_ok = tb.entries.is_power_of_two()
            && tb.ways >= 1
            && tb
                .ways
                .checked_mul(halves)
                .is_some_and(|d| tb.entries / d >= 1 && (tb.entries / d).is_power_of_two());
        if !tb_ok {
            return Err(format!(
                "tb geometry {} entries is not buildable",
                tb.entries
            ));
        }
        if mem.write_buffer_entries == 0 {
            return Err("write-buffer: must be at least 1".to_string());
        }
        Ok(())
    }

    /// The CPU configuration this spec asks for.
    pub fn cpu_config(&self) -> CpuConfig {
        let mut cpu = match self.tier {
            Tier::Naive => CpuConfig::naive_loop(),
            Tier::Fast => CpuConfig::fast_loop(),
            Tier::Block => CpuConfig::default(),
        };
        cpu.decode_overlap = self.decode_overlap;
        cpu
    }

    /// The memory configuration this spec asks for.
    pub fn mem_config(&self) -> MemConfig {
        let mut mem = MemConfig::default();
        if let Some(kb) = self.cache_kb {
            mem.cache.size_bytes = kb.saturating_mul(1024);
        }
        if let Some(ways) = self.cache_ways {
            mem.cache.ways = ways;
        }
        if let Some(entries) = self.tb_entries {
            mem.tb.entries = entries;
        }
        if let Some(depth) = self.write_buffer {
            mem.write_buffer_entries = depth;
        }
        mem
    }

    /// The fault plan this spec asks for (None for fault-free jobs).
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        if self.faults.is_empty() {
            return None;
        }
        let window = self
            .fault_window
            .unwrap_or(self.instructions.saturating_mul(3));
        Some(FaultPlan::seeded(
            &self.faults,
            self.fault_seed,
            self.fault_count,
            window,
        ))
    }

    /// Build the runnable experiment. `Experiment::run` is
    /// bit-deterministic in the spec, which is what makes journal
    /// replay and the kill-and-resume guarantee possible.
    pub fn experiment(&self) -> Experiment {
        let mut params = profile(self.workload);
        if let Some(seed) = self.seed {
            params.seed = seed;
        }
        let mut exp = Experiment::with_params(params)
            .instructions(self.instructions)
            .warmup(self.warmup)
            .cpu_config(self.cpu_config())
            .mem_config(self.mem_config());
        if let Some(plan) = self.fault_plan() {
            exp = exp.fault_plan(plan);
        }
        exp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let mut spec = JobSpec::new(WorkloadKind::SciEng);
        spec.instructions = 4_000;
        spec.warmup = 1_000;
        spec.seed = Some(42);
        spec.tier = Tier::Fast;
        spec.decode_overlap = true;
        spec.cache_kb = Some(4);
        spec.tb_entries = Some(64);
        spec.faults = vec![FaultClass::CacheParity, FaultClass::SbiTimeout];
        spec.fault_window = Some(50_000);
        let line = spec.render();
        let back = JobSpec::parse(&line).expect("canonical line parses");
        assert_eq!(back, spec);
        assert_eq!(back.render(), line);
    }

    #[test]
    fn minimal_line_parses_with_defaults() {
        let spec = JobSpec::parse("workload=commercial instructions=8000 warmup=2000")
            .expect("minimal line");
        assert_eq!(spec.workload, WorkloadKind::Commercial);
        assert_eq!(spec.tier, Tier::Block);
        assert!(spec.faults.is_empty());
        assert!(spec.fault_plan().is_none());
    }

    #[test]
    fn strict_parse_rejects_bad_lines() {
        for (line, needle) in [
            ("instructions=100", "workload"),
            ("workload=nope", "unknown workload"),
            ("workload=sci-eng bogus=1", "unknown key"),
            ("workload=sci-eng instructions=abc", "instructions"),
            ("workload=sci-eng workload=commercial", "duplicate"),
            ("workload=sci-eng notakv", "key=value"),
            ("workload=sci-eng faults=warp-core", "fault class"),
            ("workload=sci-eng instructions=0", "at least 1"),
            ("workload=sci-eng tier=turbo", "tier"),
        ] {
            let err = JobSpec::parse(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn validate_rejects_impossible_geometry() {
        let mut spec = JobSpec::new(WorkloadKind::Educational);
        assert!(spec.validate().is_ok());
        spec.cache_kb = Some(3);
        assert!(spec.validate().is_err());
        spec.cache_kb = None;
        spec.write_buffer = Some(0);
        assert!(spec.validate().is_err());
    }

    #[test]
    fn fault_plan_is_deterministic_in_the_spec() {
        let mut spec = JobSpec::new(WorkloadKind::TimesharingLight);
        spec.faults = vec![FaultClass::TbCorrupt];
        let a = spec.fault_plan().expect("plan").render();
        let b = spec.fault_plan().expect("plan").render();
        assert_eq!(a, b);
    }
}
