//! Journal idempotence: a resumed queue never re-runs a settled job,
//! and the merged results are bit-identical to an uninterrupted run.
//!
//! The executor here is synthetic (deterministic results derived from
//! the seed, no simulation) so the property hammers the *queue* logic:
//! replay, claim, retry accounting, and result rendering — across
//! random interruption points and worker counts.

use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use upc_monitor::Histogram;
use vax780_core::{MeasuredWorkload, RetryPolicy};
use vax_mem::HwCounters;
use vax_serve::queue::ExecError;
use vax_serve::{run_server, Executor, JobSpec, Journal, ServeConfig};
use vax_ucode::MicroAddr;
use vax_workloads::WorkloadKind;

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn tempdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vax-serve-idem-{}-{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec_for(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(WorkloadKind::ALL[(seed as usize) % WorkloadKind::ALL.len()]);
    spec.instructions = 1_000;
    spec.warmup = 100;
    spec.seed = Some(seed);
    spec
}

/// The deterministic result the synthetic executor produces for a seed.
fn synth(seed: u64) -> MeasuredWorkload {
    let mut h = Histogram::new();
    h.bump_issue(MicroAddr::new((seed as u16) % 1024));
    h.bump_stall(MicroAddr::new((seed as u16) % 1024), (seed % 7) as u32);
    let mut c = HwCounters::new();
    c.sbi_reads = seed * 3;
    MeasuredWorkload {
        name: spec_for(seed).workload.name(),
        histogram: h,
        counters: c,
        instructions: 1_000,
        cycles: 4_000 + seed,
    }
}

fn fail_message(seed: u64) -> String {
    format!("synthetic failure for seed {seed}")
}

/// Counts runs per seed; fails seeds in `fail_seeds`, synthesizes
/// results for the rest.
struct CountingExecutor {
    runs: Mutex<HashMap<u64, u32>>,
    fail_seeds: Vec<u64>,
}

impl Executor for CountingExecutor {
    fn run(
        &self,
        spec: &JobSpec,
        _timeout: Option<Duration>,
    ) -> Result<MeasuredWorkload, ExecError> {
        let seed = spec.seed.expect("test specs carry a seed");
        *self.runs.lock().unwrap().entry(seed).or_insert(0) += 1;
        if self.fail_seeds.contains(&seed) {
            return Err(ExecError::Failed(fail_message(seed)));
        }
        Ok(synth(seed))
    }
}

fn drain_config(journal: PathBuf, workers: usize) -> ServeConfig {
    ServeConfig {
        journal,
        workers,
        retry: RetryPolicy::from_retries(0, 0),
        drain_on_start: true,
        ..ServeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Settle a random subset of the queue "before the crash", resume,
    /// and check: settled jobs run zero times, unsettled jobs exactly
    /// once, and the merged result lines are byte-identical to an
    /// uninterrupted run of the same queue — whether or not the
    /// interrupted journal was compacted into v2 segments before the
    /// resume or after it.
    #[test]
    fn resumed_queue_is_idempotent_and_bit_identical(
        n in 1usize..6,
        settled_mask in 0u32..32,
        fail_mask in 0u32..32,
        dangling_start in any::<bool>(),
        workers in 1usize..4,
        compact_before in any::<bool>(),
        compact_after in any::<bool>(),
    ) {
        let dir = tempdir();
        let interrupted = dir.join("interrupted.journal");
        let reference = dir.join("reference.journal");
        let seeds: Vec<u64> = (1..=n as u64).collect();
        let fail_seeds: Vec<u64> = seeds
            .iter()
            .copied()
            .filter(|s| fail_mask & (1 << (s - 1)) != 0)
            .collect();

        // Both journals get the same enqueues.
        let mut settled: Vec<u64> = Vec::new();
        {
            let mut j = Journal::open(&interrupted).unwrap();
            let mut r = Journal::open(&reference).unwrap();
            for &seed in &seeds {
                let spec = spec_for(seed);
                let id = j.append_enqueue(&spec).unwrap();
                r.append_enqueue(&spec).unwrap();
                // "Before the crash": settle the masked subset with
                // exactly the records a server would have written.
                if settled_mask & (1 << (seed - 1)) != 0 {
                    j.append_start(id, 1).unwrap();
                    if fail_seeds.contains(&seed) {
                        j.append_fail(id, 1, &format!("attempt 1/1: {}", fail_message(seed)))
                            .unwrap();
                    } else {
                        j.append_complete(id, &synth(seed)).unwrap();
                    }
                    settled.push(seed);
                } else if dangling_start {
                    // Killed mid-attempt: a start record with no
                    // outcome must not stop the re-run.
                    j.append_start(id, 1).unwrap();
                }
            }
        }

        // Optionally fold the pre-crash settled records into a v2
        // snapshot segment: the resume must behave identically whether
        // its history lives in the tail or behind the snapshot index.
        if compact_before {
            Journal::open(&interrupted).unwrap().compact().unwrap();
        }

        // Resume the interrupted queue.
        let exec = Arc::new(CountingExecutor {
            runs: Mutex::new(HashMap::new()),
            fail_seeds: fail_seeds.clone(),
        });
        let report =
            run_server(&drain_config(interrupted.clone(), workers), None, exec.clone()).unwrap();
        let runs = exec.runs.lock().unwrap().clone();
        for &seed in &seeds {
            let expected = u32::from(!settled.contains(&seed));
            prop_assert_eq!(
                runs.get(&seed).copied().unwrap_or(0),
                expected,
                "seed {} (settled: {:?})", seed, &settled
            );
        }

        // Uninterrupted reference run: bit-identical merged results.
        let ref_exec = Arc::new(CountingExecutor {
            runs: Mutex::new(HashMap::new()),
            fail_seeds,
        });
        let ref_report =
            run_server(&drain_config(reference.clone(), workers), None, ref_exec).unwrap();
        prop_assert_eq!(report.done + report.failed, n);
        prop_assert_eq!(report.done, ref_report.done);
        prop_assert_eq!(report.failed, ref_report.failed);

        // And one more compaction after everything settled must not
        // change a byte of what the journal streams back.
        if compact_after {
            Journal::open(&interrupted).unwrap().compact().unwrap();
        }
        let streamed = |path: &PathBuf| {
            let journal = Journal::open(path).unwrap();
            let mut out = Vec::new();
            let lines = journal.stream_results(&mut out).unwrap();
            (lines, String::from_utf8(out).unwrap())
        };
        let (lines, merged) = streamed(&interrupted);
        let (ref_lines, ref_merged) = streamed(&reference);
        prop_assert_eq!(lines, n);
        prop_assert_eq!(ref_lines, n);
        prop_assert_eq!(merged, ref_merged);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
