//! Compaction crash-safety and streaming regressions.
//!
//! Compaction replaces two files by write-new-then-rename. A `kill -9`
//! can land at any byte of the new snapshot, between the two renames,
//! or after both — and every one of those on-disk states must replay
//! to the same queue and, once settled, merge into byte-identical
//! results. The 10k-job test pins the streaming paths: `drain` and
//! `results` go to the wire one record at a time, and their bytes
//! never change across a compaction.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use upc_monitor::Histogram;
use vax780_core::{MeasuredWorkload, RetryPolicy};
use vax_mem::HwCounters;
use vax_serve::wire::Client;
use vax_serve::{run_server, Endpoint, InProcessExecutor, JobSpec, JobState, Journal, ServeConfig};
use vax_ucode::MicroAddr;
use vax_workloads::WorkloadKind;

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "{tag}-{}-{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec_for(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(WorkloadKind::ALL[(seed as usize) % WorkloadKind::ALL.len()]);
    spec.instructions = 1_000;
    spec.warmup = 100;
    spec.seed = Some(seed);
    spec
}

/// Deterministic synthetic measurement for a seed (no simulation — the
/// tests here exercise the journal, not the machine model).
fn synth(seed: u64) -> MeasuredWorkload {
    let mut h = Histogram::new();
    h.bump_issue(MicroAddr::new((seed as u16) % 1024));
    h.bump_stall(MicroAddr::new((seed as u16) % 1024), (seed % 7) as u32);
    let mut c = HwCounters::new();
    c.sbi_reads = seed * 3;
    MeasuredWorkload {
        name: spec_for(seed).workload.name(),
        histogram: h,
        counters: c,
        instructions: 1_000,
        cycles: 4_000 + seed,
    }
}

/// Everything an on-disk state replays to, in comparable form: the
/// per-job states, the counts, and the merged result stream.
type Observed = (Vec<(u64, &'static str)>, (usize, usize, usize), String);

fn observe(path: &Path) -> Observed {
    let journal = Journal::open(path).unwrap();
    let states: Vec<(u64, &'static str)> = journal
        .states()
        .map(|(id, state)| (id, state.name()))
        .collect();
    let mut out = Vec::new();
    journal.stream_results(&mut out).unwrap();
    (states, journal.counts(), String::from_utf8(out).unwrap())
}

/// Seed a journal with a mixed history: four settled jobs (one of
/// them failed), one pending job abandoned mid-attempt, one untouched.
fn seed_journal(path: &Path) {
    let mut j = Journal::open(path).unwrap();
    for seed in 1u64..=6 {
        let id = j.append_enqueue(&spec_for(seed)).unwrap();
        match seed {
            3 => {
                j.append_start(id, 1).unwrap();
                j.append_fail(id, 1, "attempt 1/1: synthetic failure")
                    .unwrap();
            }
            1 | 2 | 4 => {
                j.append_start(id, 1).unwrap();
                j.append_complete(id, &synth(seed)).unwrap();
            }
            5 => j.append_start(id, 1).unwrap(), // dangling attempt
            _ => {}
        }
    }
}

/// Settle whatever is still pending, the way a resumed server would.
fn settle_rest(path: &Path) {
    let mut j = Journal::open(path).unwrap();
    for id in j.pending() {
        let (spec, starts) = j.pending_job(id).map(|(s, n)| (s.clone(), n)).unwrap();
        let seed = spec.seed.unwrap();
        j.append_start(id, starts + 1).unwrap();
        j.append_complete(id, &synth(seed)).unwrap();
    }
}

/// Kill -9 mid-compaction, at every byte offset of the new snapshot
/// and at both rename boundaries: each surviving on-disk state opens
/// to the identical queue, and settling the remainder from any of
/// them merges byte-identical results.
#[test]
fn mid_compaction_crash_at_every_byte_offset_merges_bit_identical() {
    let dir = tempdir("vax-serve-compact-crash");

    // The pre-compaction journal and what it replays to.
    let original = dir.join("original.journal");
    seed_journal(&original);
    let tail_bytes = std::fs::read(&original).unwrap();
    let reference = observe(&original);

    // A completed compaction of the same history: the target state.
    let full = dir.join("full.journal");
    std::fs::write(&full, &tail_bytes).unwrap();
    Journal::open(&full).unwrap().compact().unwrap();
    let snap_bytes = std::fs::read(dir.join("full.journal.snap")).unwrap();
    let new_tail_bytes = std::fs::read(&full).unwrap();
    assert_eq!(observe(&full), reference, "compaction changed the queue");

    // And the fully-settled end state all crash survivors must reach.
    let settled = dir.join("settled.journal");
    std::fs::write(&settled, &tail_bytes).unwrap();
    settle_rest(&settled);
    let final_reference = observe(&settled);
    assert_eq!(final_reference.1, (0, 5, 1));

    let crash = dir.join("crash.journal");
    let crash_snap = dir.join("crash.journal.snap");
    let crash_snap_tmp = dir.join("crash.journal.snap.tmp");
    let reset = || {
        for p in [&crash, &crash_snap, &crash_snap_tmp] {
            let _ = std::fs::remove_file(p);
        }
    };

    // Family A — killed while writing the new snapshot: the tmp file
    // holds any prefix, nothing was renamed. The journal is untouched.
    for cut in 0..=snap_bytes.len() {
        reset();
        std::fs::write(&crash, &tail_bytes).unwrap();
        std::fs::write(&crash_snap_tmp, &snap_bytes[..cut]).unwrap();
        assert_eq!(observe(&crash), reference, "snap.tmp cut at byte {cut}");
        // Re-running the interrupted compaction lands the real thing.
        Journal::open(&crash).unwrap().compact().unwrap();
        assert_eq!(
            std::fs::read(&crash_snap).unwrap(),
            snap_bytes,
            "recompacted snapshot differs (tmp cut at byte {cut})"
        );
        assert_eq!(std::fs::read(&crash).unwrap(), new_tail_bytes);
        assert_eq!(observe(&crash), reference);
    }

    // Family B — killed between the renames: new snapshot in place,
    // the tail still the old generation. Its settled records are
    // reconciled as no-ops against the snapshot.
    reset();
    std::fs::write(&crash, &tail_bytes).unwrap();
    std::fs::write(&crash_snap, &snap_bytes).unwrap();
    assert_eq!(observe(&crash), reference, "stale-tail window");
    settle_rest(&crash);
    assert_eq!(observe(&crash), final_reference, "stale-tail settle");

    // Family C — killed after both renames: the compacted state.
    reset();
    std::fs::write(&crash, &new_tail_bytes).unwrap();
    std::fs::write(&crash_snap, &snap_bytes).unwrap();
    assert_eq!(observe(&crash), reference, "post-rename state");
    settle_rest(&crash);
    assert_eq!(observe(&crash), final_reference, "post-rename settle");

    // And settling straight from a family-A survivor matches too.
    reset();
    std::fs::write(&crash, &tail_bytes).unwrap();
    std::fs::write(&crash_snap_tmp, &snap_bytes[..snap_bytes.len() / 2]).unwrap();
    settle_rest(&crash);
    assert_eq!(observe(&crash), final_reference, "mid-write settle");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A compaction is idempotent at the byte level: compacting an
/// already-compacted journal only bumps the generation, and the
/// streamed results never change.
#[test]
fn repeated_compaction_is_stable() {
    let dir = tempdir("vax-serve-compact-stable");
    let path = dir.join("q.journal");
    seed_journal(&path);
    let reference = observe(&path);
    for round in 1..=3u64 {
        let mut j = Journal::open(&path).unwrap();
        j.compact().unwrap();
        assert_eq!(j.generation(), round);
        assert_eq!(j.settled_in_tail(), 0);
        drop(j);
        assert_eq!(observe(&path), reference, "round {round}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// 10,000 settled jobs: `results` streaming off the journal, the
/// server's `drain` streaming over a socket, and both again after a
/// compaction, are all byte-identical — and none of them ever holds
/// the result set in memory.
#[test]
fn ten_thousand_job_drain_streams_byte_identical_across_compaction() {
    const N: u64 = 10_000;
    let dir = tempdir("vax-serve-compact-10k");
    let path = dir.join("big.journal");
    {
        let mut j = Journal::open(&path).unwrap();
        for seed in 1..=N {
            let id = j.append_enqueue(&spec_for(seed)).unwrap();
            j.append_start(id, 1).unwrap();
            if seed % 97 == 0 {
                j.append_fail(id, 1, "attempt 1/1: synthetic failure")
                    .unwrap();
            } else {
                j.append_complete(id, &synth(seed)).unwrap();
            }
        }
    }

    let stream = |path: &Path| {
        let journal = Journal::open(path).unwrap();
        let mut out = Vec::new();
        let lines = journal.stream_results(&mut out).unwrap();
        (lines, out)
    };
    let (lines, reference) = stream(&path);
    assert_eq!(lines as u64, N);

    // A draining server must put the same bytes on the wire. All jobs
    // are settled, so the drain is pure streaming.
    let socket = Endpoint::Unix(dir.join("s.sock"));
    let config = ServeConfig {
        journal: path.clone(),
        workers: 1,
        retry: RetryPolicy::from_retries(0, 0),
        drain_on_start: false,
        ..ServeConfig::default()
    };
    let server = {
        let config = config.clone();
        let socket = socket.clone();
        std::thread::spawn(move || run_server(&config, Some(&socket), Arc::new(InProcessExecutor)))
    };
    let client = Client::new(socket.clone(), Duration::from_secs(10));
    let mut wire_bytes = Vec::new();
    let streamed = client.request_stream("drain", &mut wire_bytes).unwrap();
    server.join().unwrap().unwrap();
    assert_eq!(streamed as u64, N);
    assert_eq!(
        wire_bytes, reference,
        "drain bytes differ from results bytes"
    );

    // Compaction folds all 10k results behind the snapshot index; the
    // streams must not move by a byte.
    Journal::open(&path).unwrap().compact().unwrap();
    let (lines, compacted) = stream(&path);
    assert_eq!(lines as u64, N);
    assert_eq!(compacted, reference, "results changed across compaction");

    // The journal still knows every job without rescanning: spot-check
    // states across the range.
    let journal = Journal::open(&path).unwrap();
    assert_eq!(journal.counts().0, 0);
    for id in [1u64, 97, 500, 9_999, 10_000] {
        let expected = if id % 97 == 0 {
            JobState::Failed
        } else {
            JobState::Done
        };
        assert_eq!(journal.state(id), Some(expected), "job {id}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
