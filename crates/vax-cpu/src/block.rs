//! The block-compiled execution tier: verify straight-line runs of
//! predecoded instructions once, then replay them back-to-back.
//!
//! The predecode cache (PR 5) removed the per-instruction *parse*; what
//! remains of the per-instruction host cost is everything `Cpu::step`
//! and `Machine::step` wrap around the replay — the fault poll, the
//! interrupt arbitration, the external-event pump, and the step
//! dispatch itself. This tier amortizes all of it: a *block* is a run
//! of consecutive predecoded instructions starting at a PC, none of
//! which can redirect execution or perturb interrupt state — except
//! optionally the last, a resume-safe *terminator* (a plain branch,
//! call, or jump), flattened so that short loop bodies still form
//! blocks. On entry, `Cpu::step_budgeted` replays run after run in a
//! tight loop, re-checking only the things that can legitimately change
//! mid-run: the instruction budget, the external-event horizon, and the
//! predecode generation.
//!
//! Every µinstruction of every instruction in the block is still issued
//! one at a time through the same replay machinery the predecode tier
//! uses (`eval_predecoded`, `exec::execute`, the IB byte-skip paths),
//! so histograms, hardware counters, and trace streams are bit-identical
//! to the naive loop **by construction** — the tier changes how the host
//! reaches each instruction, never what the instruction does. Blocks
//! therefore run under any sink, tracers included.
//!
//! # Representation: a block is a length, not a list
//!
//! A compiled block stores **no instruction entries at all**. Its
//! entire representation is one flag bit and a six-bit instruction
//! count packed into the spare byte of the head's predecode *tag* —
//! the cache line the dispatch lookup already loads. The replay walks
//! the run by doing exactly what the fast loop would do for each
//! instruction — predecode lookup, replay the cached parse — minus the
//! per-step fault poll, interrupt arbitration, and safety
//! reclassification that the one-time verification already proved are
//! no-ops for the next `count` instructions.
//!
//! That "store nothing" shape is the product of measurement, and the
//! losing designs are worth recording. (1) Copying the ~160-byte
//! cached parses into block entries doubled the data-cache working set
//! and ran *slower* than the fast loop. (2) Keeping an independent
//! two-way block cache plus a hashed non-head filter added two random
//! host-cache probes per dispatch — slower again. (3) Recording
//! `(PC, predecode slot)` pairs in a slot-parallel sidecar table was
//! the subtlest failure: the per-replay load of a cold 80-byte block
//! record from a multi-megabyte array cost more than the handful of
//! hot predecode-lookup cycles it saved, reliably ~4% under the fast
//! loop. The simulator spends hundreds of host cycles *executing* each
//! instruction, so the only dispatch scheme that wins is one that adds
//! **zero** memory traffic beyond what the fast loop already touches.
//!
//! # Entry and exit guards
//!
//! A block is entered only when the per-instruction step would have
//! done nothing between its instructions:
//!
//! * no fault hook is installed (an armed hook polls at every
//!   instruction boundary and must observe every µPC — the fast loop's
//!   per-cycle fallback handles that; blocks simply stand down);
//! * no interrupt is pending (checked by the step prologue) and none
//!   can *become* pending mid-run: the CPU's event horizon — maintained
//!   by `Machine::pump` as the earliest cycle any external source can
//!   fire — bounds the run, and the instructions themselves cannot
//!   touch IPL/SISR (MTPR is excluded);
//! * the remaining instruction budget covers at least two instructions
//!   (a budget of one is exactly a per-instruction step);
//! * the predecode generation still matches between instructions, so
//!   self-modifying code that overwrites a later instruction of the
//!   *current* block forces an exit and a re-parse, exactly where the
//!   naive loop would have seen the new bytes.
//!
//! # Invalidation
//!
//! The block state rides entirely on the head's predecode tag, so it
//! can never outlive the parse it describes: any insert that changes
//! the slot's identity clears the flags, a generation bump (the
//! 64-byte-block bitmap in vax-mem bumps it on any write into
//! predecoded bytes) makes the head lookup itself miss, and a context
//! switch hides the head behind its space tag exactly as it hides the
//! parse. *Interior* instructions of a block need no invalidation
//! hooks at all — the replay re-looks each one up at the current
//! generation, so an evicted or stale interior parse simply ends the
//! replay early and reroutes to the parse path, which consumes the
//! same bytes.

use crate::predecode::{PdOp, PredecodedInst};
use vax_arch::{Opcode, SpecModeClass};

/// Maximum instructions per block. Long enough to cover the
/// straight-line stretches the code generator emits between branches
/// (terminator included) — and in practice runs are bounded anyway by
/// the external-event horizon, which lands every dozen-odd
/// instructions. A longer run simply continues as a second block at
/// the continuation PC. Must fit the six count bits in the tag flags
/// byte (≤ 63).
///
/// Public so the static run-length predictor in vax-lint can chunk its
/// predicted straight-line runs exactly the way `build_block` does.
pub const BLOCK_MAX: usize = 12;

/// The tier's *claim*: may the block tier keep executing in the same
/// `step_budgeted` call after this instruction retires on the
/// per-instruction path? Only instructions that cannot perturb the
/// interrupt state the entry guards froze: anything touching
/// IPL/SISR/PSL or the address space (MTPR, REI, CHMx, LDPCTX/SVPCTX,
/// HALT, BPT) forces a return to the arbitration loop. Plain PC movers
/// (branches, calls, RSB, JMP, case dispatch) are fine — they redirect
/// execution without making an interrupt deliverable, so the skipped
/// fault poll and arbitration re-check are still provable no-ops.
///
/// This list is hand-maintained; it is audited exhaustively against
/// the derived footprints ([`vax_ucode::effect::derived_resume_safe`])
/// by [`crate::effect::audit_claims`], the tests below, and
/// `vax780 lint --effects`.
pub fn claimed_resume_safe(op: Opcode) -> bool {
    !matches!(
        op,
        Opcode::Halt
            | Opcode::Bpt
            | Opcode::Mtpr
            | Opcode::Ldpctx
            | Opcode::Svpctx
            | Opcode::Rei
            | Opcode::Chmk
            | Opcode::Chme
            | Opcode::Chms
            | Opcode::Chmu
    )
}

/// The tier's opcode-level claim: may a parse of this opcode be
/// flattened into a block? Anything that can redirect execution or
/// perturb the interrupt/address-space state the entry guards rely on
/// stays on the per-instruction path. Audited like
/// [`claimed_resume_safe`]; a specific parse is additionally screened
/// by [`block_safe`].
pub fn claimed_block_safe(op: Opcode) -> bool {
    if op.is_pc_changing() {
        return false; // branches, calls, CHMx, REI, case dispatch
    }
    !matches!(
        op,
        Opcode::Halt | Opcode::Bpt | Opcode::Mtpr | Opcode::Ldpctx | Opcode::Svpctx
    ) // halts, traps, IPL/SISR/space side effects
}

/// May this cached parse be flattened into a block? The opcode-level
/// claim, plus the parse-level screen: a register-mode PC operand
/// (e.g. `MOVL R0, PC`) redirects execution without a branch class,
/// so it is excluded statically per parse.
pub(crate) fn block_safe(inst: &PredecodedInst) -> bool {
    if !claimed_block_safe(inst.opcode) {
        return false;
    }
    for i in 0..usize::from(inst.nops) {
        if let PdOp::Spec(dec) = inst.ops[i] {
            if dec.class == SpecModeClass::Register && dec.reg.is_pc() {
                return false;
            }
        }
    }
    true
}

/// Host-side block-tier statistics (diagnostics: no simulated meaning).
/// There is deliberately no miss counter: a "miss" is any dispatch that
/// replays a single instruction instead of a block, and counting those
/// would put a read-modify-write in the middle of the tier's *fallback*
/// hot path. Single-instruction dispatches are simply the retired
/// count minus `replayed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Dispatches that entered a compiled block.
    pub hits: u64,
    /// Blocks verified (their head tags flagged with a count).
    pub builds: u64,
    /// Instructions retired from inside blocks.
    pub replayed: u64,
    /// Histogram of replay run lengths: `run_hist[n]` counts block
    /// dispatches that retired exactly `n` instructions (`n ≥ 1`; a
    /// replay can retire fewer than the block's verified count when
    /// the budget or the event horizon truncates it, or when an
    /// interior parse went stale). This is the dynamic counterpart the
    /// static run-length predictor in vax-lint reconciles against.
    pub run_hist: [u64; BLOCK_MAX + 1],
}

impl BlockStats {
    /// Mean instructions retired per block dispatch (`replayed/hits`),
    /// or 0.0 when no block was ever entered.
    pub fn mean_run_len(&self) -> f64 {
        if self.hits == 0 {
            0.0
        } else {
            self.replayed as f64 / self.hits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specifier::SpecDecode;
    use vax_arch::{AccessType, DataType, Reg};
    use vax_ucode::{effect, ControlStore};

    #[test]
    fn block_max_fits_the_tag_count_bits() {
        assert!((2..=0x3F).contains(&BLOCK_MAX));
    }

    /// The exhaustive audit, direction 1: no opcode the derivation
    /// proves unsafe may be claimed safe — over *every* opcode, both
    /// classifiers. (The spot-check lists this test replaced could
    /// silently drift from the tables; a predicate over the tables
    /// cannot.)
    #[test]
    fn no_derived_unsafe_opcode_is_claimed_safe() {
        let cs = ControlStore::build();
        for &op in Opcode::ALL {
            if !effect::derived_resume_safe(op, &cs) {
                assert!(!claimed_resume_safe(op), "{op:?} must end the run");
            }
            if !effect::derived_block_safe(op, &cs) {
                assert!(!claimed_block_safe(op), "{op:?} must not enter a block");
            }
        }
    }

    /// The exhaustive audit, direction 2: no opcode the derivation
    /// proves safe may be claimed unsafe — claiming too little is not
    /// unsound, but it forgoes block coverage, and any gap between the
    /// hand lists and the derived footprints should be deliberate.
    /// Today the lists agree exactly, so this is an equality.
    #[test]
    fn no_derived_safe_opcode_forgoes_coverage() {
        let cs = ControlStore::build();
        for &op in Opcode::ALL {
            assert_eq!(
                claimed_resume_safe(op),
                effect::derived_resume_safe(op, &cs),
                "{op:?} resume claim diverges from the derived footprint"
            );
            assert_eq!(
                claimed_block_safe(op),
                effect::derived_block_safe(op, &cs),
                "{op:?} block claim diverges from the derived footprint"
            );
        }
    }

    /// The audit entry point the lint pass uses must find nothing on
    /// the shipped classifiers.
    #[test]
    fn shipped_claims_audit_clean() {
        let cs = ControlStore::build();
        assert!(crate::effect::audit_claims(&cs).is_empty());
    }

    /// And a deliberately misclassified claim must be caught.
    #[test]
    fn misclassified_claim_is_caught() {
        let cs = ControlStore::build();
        // Claim MTPR (an interrupt-state writer) is resume-safe.
        let findings = crate::effect::audit_claims_with(&cs, claimed_block_safe, |op| {
            op == Opcode::Mtpr || claimed_resume_safe(op)
        });
        assert!(findings
            .iter()
            .any(|f| f.op == Opcode::Mtpr && f.kind == crate::effect::AuditKind::ResumeUnsound));
    }

    fn pc_register_spec(access: AccessType) -> SpecDecode {
        SpecDecode {
            ext: 0,
            ext_bytes: 0,
            class: SpecModeClass::Register,
            reg: Reg::Pc,
            index_reg: None,
            mode_byte: 0x5F,
            dtype: DataType::Long,
            access,
        }
    }

    /// Parse-level screen, exhaustively: for every opcode whose opcode
    /// -level claim is safe, a parse with a register-mode PC operand in
    /// any position must still be rejected, and a PC-free parse must be
    /// accepted (the parse screen adds exactly the PC check, nothing
    /// else).
    #[test]
    fn pc_register_operand_rejected_in_every_position() {
        for &op in Opcode::ALL {
            let plain = PredecodedInst::new(op);
            assert_eq!(block_safe(&plain), claimed_block_safe(op), "{op:?}");
            if !claimed_block_safe(op) {
                continue;
            }
            for pos in 0..op.operands().len() {
                let mut inst = PredecodedInst::new(op);
                for (i, t) in op.operands().iter().enumerate() {
                    inst.push(if i == pos {
                        PdOp::Spec(pc_register_spec(t.access()))
                    } else {
                        PdOp::Branch { disp: 0, bytes: 0 }
                    });
                }
                assert!(!block_safe(&inst), "{op:?} with PC operand at {pos}");
            }
        }
    }
}
