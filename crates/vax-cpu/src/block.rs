//! The block-compiled execution tier: verify straight-line runs of
//! predecoded instructions once, then replay them back-to-back.
//!
//! The predecode cache (PR 5) removed the per-instruction *parse*; what
//! remains of the per-instruction host cost is everything `Cpu::step`
//! and `Machine::step` wrap around the replay — the fault poll, the
//! interrupt arbitration, the external-event pump, and the step
//! dispatch itself. This tier amortizes all of it: a *block* is a run
//! of consecutive predecoded instructions starting at a PC, none of
//! which can redirect execution or perturb interrupt state — except
//! optionally the last, a resume-safe *terminator* (a plain branch,
//! call, or jump), flattened so that short loop bodies still form
//! blocks. On entry, `Cpu::step_budgeted` replays run after run in a
//! tight loop, re-checking only the things that can legitimately change
//! mid-run: the instruction budget, the external-event horizon, and the
//! predecode generation.
//!
//! Every µinstruction of every instruction in the block is still issued
//! one at a time through the same replay machinery the predecode tier
//! uses (`eval_predecoded`, `exec::execute`, the IB byte-skip paths),
//! so histograms, hardware counters, and trace streams are bit-identical
//! to the naive loop **by construction** — the tier changes how the host
//! reaches each instruction, never what the instruction does. Blocks
//! therefore run under any sink, tracers included.
//!
//! # Representation: a block is a length, not a list
//!
//! A compiled block stores **no instruction entries at all**. Its
//! entire representation is one flag bit and a six-bit instruction
//! count packed into the spare byte of the head's predecode *tag* —
//! the cache line the dispatch lookup already loads. The replay walks
//! the run by doing exactly what the fast loop would do for each
//! instruction — predecode lookup, replay the cached parse — minus the
//! per-step fault poll, interrupt arbitration, and safety
//! reclassification that the one-time verification already proved are
//! no-ops for the next `count` instructions.
//!
//! That "store nothing" shape is the product of measurement, and the
//! losing designs are worth recording. (1) Copying the ~160-byte
//! cached parses into block entries doubled the data-cache working set
//! and ran *slower* than the fast loop. (2) Keeping an independent
//! two-way block cache plus a hashed non-head filter added two random
//! host-cache probes per dispatch — slower again. (3) Recording
//! `(PC, predecode slot)` pairs in a slot-parallel sidecar table was
//! the subtlest failure: the per-replay load of a cold 80-byte block
//! record from a multi-megabyte array cost more than the handful of
//! hot predecode-lookup cycles it saved, reliably ~4% under the fast
//! loop. The simulator spends hundreds of host cycles *executing* each
//! instruction, so the only dispatch scheme that wins is one that adds
//! **zero** memory traffic beyond what the fast loop already touches.
//!
//! # Entry and exit guards
//!
//! A block is entered only when the per-instruction step would have
//! done nothing between its instructions:
//!
//! * no fault hook is installed (an armed hook polls at every
//!   instruction boundary and must observe every µPC — the fast loop's
//!   per-cycle fallback handles that; blocks simply stand down);
//! * no interrupt is pending (checked by the step prologue) and none
//!   can *become* pending mid-run: the CPU's event horizon — maintained
//!   by `Machine::pump` as the earliest cycle any external source can
//!   fire — bounds the run, and the instructions themselves cannot
//!   touch IPL/SISR (MTPR is excluded);
//! * the remaining instruction budget covers at least two instructions
//!   (a budget of one is exactly a per-instruction step);
//! * the predecode generation still matches between instructions, so
//!   self-modifying code that overwrites a later instruction of the
//!   *current* block forces an exit and a re-parse, exactly where the
//!   naive loop would have seen the new bytes.
//!
//! # Invalidation
//!
//! The block state rides entirely on the head's predecode tag, so it
//! can never outlive the parse it describes: any insert that changes
//! the slot's identity clears the flags, a generation bump (the
//! 64-byte-block bitmap in vax-mem bumps it on any write into
//! predecoded bytes) makes the head lookup itself miss, and a context
//! switch hides the head behind its space tag exactly as it hides the
//! parse. *Interior* instructions of a block need no invalidation
//! hooks at all — the replay re-looks each one up at the current
//! generation, so an evicted or stale interior parse simply ends the
//! replay early and reroutes to the parse path, which consumes the
//! same bytes.

use crate::predecode::{PdOp, PredecodedInst};
use vax_arch::{Opcode, SpecModeClass};

/// Maximum instructions per block. Long enough to cover the
/// straight-line stretches the code generator emits between branches
/// (terminator included) — and in practice runs are bounded anyway by
/// the external-event horizon, which lands every dozen-odd
/// instructions. A longer run simply continues as a second block at
/// the continuation PC. Must fit the six count bits in the tag flags
/// byte (≤ 63).
pub(crate) const BLOCK_MAX: usize = 12;

/// May the block tier keep executing in the same `step_budgeted` call
/// after this instruction retires on the per-instruction path? Only
/// instructions that cannot perturb the interrupt state the entry
/// guards froze: anything touching IPL/SISR/PSL or the address space
/// (MTPR, REI, CHMx, LDPCTX/SVPCTX, HALT, BPT) forces a return to the
/// arbitration loop. Plain PC movers (branches, calls, RSB, JMP, case
/// dispatch) are fine — they redirect execution without making an
/// interrupt deliverable, so the skipped fault poll and arbitration
/// re-check are still provable no-ops.
pub(crate) fn resume_safe(op: Opcode) -> bool {
    !matches!(
        op,
        Opcode::Halt
            | Opcode::Bpt
            | Opcode::Mtpr
            | Opcode::Ldpctx
            | Opcode::Svpctx
            | Opcode::Rei
            | Opcode::Chmk
            | Opcode::Chme
            | Opcode::Chms
            | Opcode::Chmu
    )
}

/// May this cached parse be flattened into a block? Anything that can
/// redirect execution or perturb the interrupt/address-space state the
/// entry guards rely on stays on the per-instruction path.
pub(crate) fn block_safe(inst: &PredecodedInst) -> bool {
    let op = inst.opcode;
    if op.is_pc_changing() {
        return false; // branches, calls, CHMx, REI, case dispatch
    }
    if matches!(
        op,
        Opcode::Halt | Opcode::Bpt | Opcode::Mtpr | Opcode::Ldpctx | Opcode::Svpctx
    ) {
        return false; // halts, traps, IPL/SISR/space side effects
    }
    // A register-mode PC operand (e.g. `MOVL R0, PC`) redirects
    // execution without a branch class; exclude it statically.
    for i in 0..usize::from(inst.nops) {
        if let PdOp::Spec(dec) = inst.ops[i] {
            if dec.class == SpecModeClass::Register && dec.reg.is_pc() {
                return false;
            }
        }
    }
    true
}

/// Host-side block-tier statistics (diagnostics: no simulated meaning).
/// There is deliberately no miss counter: a "miss" is any dispatch that
/// replays a single instruction instead of a block, and counting those
/// would put a read-modify-write in the middle of the tier's *fallback*
/// hot path. Single-instruction dispatches are simply the retired
/// count minus `replayed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Dispatches that entered a compiled block.
    pub hits: u64,
    /// Blocks verified (their head tags flagged with a count).
    pub builds: u64,
    /// Instructions retired from inside blocks.
    pub replayed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_max_fits_the_tag_count_bits() {
        assert!((2..=0x3F).contains(&BLOCK_MAX));
    }

    #[test]
    fn resume_safety_excludes_interrupt_perturbers() {
        for op in [
            Opcode::Brb,
            Opcode::Beql,
            Opcode::Rsb,
            Opcode::Jmp,
            Opcode::Movl,
        ] {
            assert!(resume_safe(op), "{op:?} cannot perturb interrupt state");
        }
        for op in [
            Opcode::Halt,
            Opcode::Bpt,
            Opcode::Mtpr,
            Opcode::Ldpctx,
            Opcode::Svpctx,
            Opcode::Rei,
            Opcode::Chmk,
            Opcode::Chme,
            Opcode::Chms,
            Opcode::Chmu,
        ] {
            assert!(!resume_safe(op), "{op:?} must end the run");
        }
    }

    #[test]
    fn block_safety_excludes_redirectors() {
        assert!(block_safe(&PredecodedInst::new(Opcode::Movl)));
        assert!(block_safe(&PredecodedInst::new(Opcode::Mfpr)));
        for op in [
            Opcode::Brb,
            Opcode::Beql,
            Opcode::Rsb,
            Opcode::Rei,
            Opcode::Chmk,
            Opcode::Halt,
            Opcode::Bpt,
            Opcode::Mtpr,
            Opcode::Ldpctx,
            Opcode::Svpctx,
        ] {
            assert!(!block_safe(&PredecodedInst::new(op)), "{op:?} in a block");
        }
    }
}
