//! Internal processor registers reachable via `MTPR`/`MFPR`.

/// The processor-register codes this model implements (a subset of the
//  architectural set, matching what the workloads' kernel uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IprReg {
    /// Kernel stack pointer.
    Ksp,
    /// User stack pointer.
    Usp,
    /// Interrupt stack pointer.
    Isp,
    /// Process control block base (physical address).
    Pcbb,
    /// System control block base (physical address).
    Scbb,
    /// Interrupt priority level.
    Ipl,
    /// Software interrupt request (write-only: posts a level).
    Sirr,
    /// Software interrupt summary (pending-level bitmask).
    Sisr,
}

impl IprReg {
    /// Decode an architectural register code.
    pub fn from_code(code: u32) -> Option<IprReg> {
        Some(match code {
            0 => IprReg::Ksp,
            3 => IprReg::Usp,
            4 => IprReg::Isp,
            16 => IprReg::Pcbb,
            17 => IprReg::Scbb,
            18 => IprReg::Ipl,
            20 => IprReg::Sirr,
            21 => IprReg::Sisr,
            _ => return None,
        })
    }

    /// The architectural register code.
    pub fn code(self) -> u32 {
        match self {
            IprReg::Ksp => 0,
            IprReg::Usp => 3,
            IprReg::Isp => 4,
            IprReg::Pcbb => 16,
            IprReg::Scbb => 17,
            IprReg::Ipl => 18,
            IprReg::Sirr => 20,
            IprReg::Sisr => 21,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for r in [
            IprReg::Ksp,
            IprReg::Usp,
            IprReg::Isp,
            IprReg::Pcbb,
            IprReg::Scbb,
            IprReg::Ipl,
            IprReg::Sirr,
            IprReg::Sisr,
        ] {
            assert_eq!(IprReg::from_code(r.code()), Some(r));
        }
        assert_eq!(IprReg::from_code(99), None);
    }
}
