//! Test/example harness: build a small runnable machine in a few lines.
//!
//! Used by this crate's own tests, the workload crate's tests, and the
//! `quickstart` example. Production machine images are built by
//! `vax-workloads`; this harness wires the minimum — one process, an SCB
//! whose vectors point at a trivial `REI` stub, and a kernel stack.

use crate::{Cpu, CpuConfig};
use vax_arch::CodeImage;
use vax_mem::{
    load_virtual, AddressSpace, MapBuilder, MemConfig, MemorySubsystem, SystemMap, PAGE_BYTES,
};

/// A minimal single-process machine.
#[derive(Debug)]
pub struct SimpleMachine {
    /// The CPU, ready to run at the code image's base address.
    pub cpu: Cpu,
    /// The process address space.
    pub space: AddressSpace,
    /// The system map.
    pub system: SystemMap,
}

impl SimpleMachine {
    /// Build a machine whose process space contains `image` (in P0) and a
    /// resident stack (in P1), with the SCB and kernel stack in system
    /// space. Execution starts in kernel mode at the image base.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit the default process layout
    /// (1 MB of P0).
    pub fn with_code(image: &CodeImage) -> SimpleMachine {
        SimpleMachine::with_code_and_config(image, CpuConfig::default())
    }

    /// As [`SimpleMachine::with_code`] with an explicit CPU configuration.
    ///
    /// # Panics
    ///
    /// As [`SimpleMachine::with_code`].
    pub fn with_code_and_config(image: &CodeImage, config: CpuConfig) -> SimpleMachine {
        let mut mem = MemorySubsystem::new(MemConfig::default());
        let mut mb = MapBuilder::new(mem.phys(), 8192);
        // System space: SCB page is NOT in system VA — the SCB is read
        // physically. Map a kernel region for stacks and handler stubs.
        let kernel_va = mb.map_system(mem.phys_mut(), 64);
        // One process: 1 MB of P0, 16 KB of P1 stack.
        let p0_pages = (1 << 20) / PAGE_BYTES;
        let p1_pages = 32;
        let space = mb.create_process(mem.phys_mut(), p0_pages, p1_pages);
        let system = mb.system_map();
        mem.set_system_map(system);
        mem.switch_address_space(space);

        assert!(
            image.end() <= p0_pages * PAGE_BYTES,
            "code image exceeds the 1 MB process layout"
        );
        load_virtual(mem.phys_mut(), &system, &space, image.base, &image.bytes);

        // SCB at a fixed physical page past the page tables; every vector
        // points at a REI stub in kernel space so stray faults/interrupts
        // resolve visibly rather than wedging.
        let scb_frame = mb.alloc_frames(1);
        let scb_pa = scb_frame * PAGE_BYTES;
        let stub_va = kernel_va; // first kernel page: REI stub
        for v in 0..(PAGE_BYTES / 4) {
            mem.phys_mut().write_u32(scb_pa + v * 4, stub_va);
        }
        // The stub: REI (pops PC/PSL pushed by the event).
        let stub_pa =
            vax_mem::resolve_va(mem.phys(), &system, &space, stub_va).expect("kernel page mapped");
        mem.phys_mut()
            .write_u8(stub_pa, vax_arch::Opcode::Rei.to_byte());

        let mut cpu = Cpu::new(mem, config, image.base);
        cpu.set_scbb(scb_pa);
        // Kernel stack: top of the second kernel page.
        let ksp = kernel_va + 2 * PAGE_BYTES;
        cpu.regs_mut().set_sp(ksp);
        // Interrupt stack: top of the fourth kernel page.
        let on_is = crate::Psl {
            interrupt_stack: true,
            ..crate::Psl::kernel_boot()
        };
        cpu.regs_mut()
            .set_banked_sp(&on_is, kernel_va + 4 * PAGE_BYTES);
        // User stack: top of P1.
        let user = crate::Psl::default();
        cpu.regs_mut().set_banked_sp(&user, space.stack_top());
        SimpleMachine { cpu, space, system }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upc_monitor::NullSink;
    use vax_arch::{Assembler, Opcode, Operand, Reg};

    #[test]
    fn machine_runs_a_trivial_program() {
        let mut asm = Assembler::new(0x200);
        asm.inst(Opcode::Movl, &[Operand::Literal(5), Operand::Reg(Reg::R0)])
            .unwrap();
        asm.inst(Opcode::Addl2, &[Operand::Literal(3), Operand::Reg(Reg::R0)])
            .unwrap();
        asm.inst(Opcode::Halt, &[]).unwrap();
        let image = asm.finish().unwrap();
        let mut m = SimpleMachine::with_code(&image);
        let mut sink = NullSink;
        let err = m.cpu.run(100, &mut sink).unwrap_err();
        assert!(matches!(err, crate::CpuError::Halted { .. }));
        assert_eq!(m.cpu.regs().get(Reg::R0), 8);
    }
}
