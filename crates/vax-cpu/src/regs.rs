//! The general register file, with per-mode stack pointer banking.

use crate::{Mode, Psl};
use vax_arch::Reg;

/// The sixteen general registers plus the banked stack pointers
/// (KSP/USP/ISP); the architectural `SP` is whichever bank the current
/// PSL selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegFile {
    r: [u32; 16],
    ksp: u32,
    usp: u32,
    isp: u32,
}

impl RegFile {
    /// All zeros.
    pub fn new() -> RegFile {
        RegFile {
            r: [0; 16],
            ksp: 0,
            usp: 0,
            isp: 0,
        }
    }

    /// Read a register.
    #[inline]
    pub fn get(&self, reg: Reg) -> u32 {
        self.r[reg.number() as usize]
    }

    /// Write a register.
    #[inline]
    pub fn set(&mut self, reg: Reg, value: u32) {
        self.r[reg.number() as usize] = value;
    }

    /// The PC.
    #[inline]
    pub fn pc(&self) -> u32 {
        self.get(Reg::Pc)
    }

    /// Set the PC.
    #[inline]
    pub fn set_pc(&mut self, pc: u32) {
        self.set(Reg::Pc, pc);
    }

    /// The SP (current bank).
    #[inline]
    pub fn sp(&self) -> u32 {
        self.get(Reg::Sp)
    }

    /// Set the SP (current bank).
    #[inline]
    pub fn set_sp(&mut self, sp: u32) {
        self.set(Reg::Sp, sp);
    }

    /// Save the live SP into the bank selected by `old`, then load the
    /// bank selected by `new` — the microcode's stack switch.
    pub fn switch_stack(&mut self, old: &Psl, new: &Psl) {
        *self.bank_mut(old) = self.sp();
        let sp = *self.bank_mut(new);
        self.set_sp(sp);
    }

    fn bank_mut(&mut self, psl: &Psl) -> &mut u32 {
        if psl.interrupt_stack {
            &mut self.isp
        } else {
            match psl.mode {
                Mode::Kernel => &mut self.ksp,
                Mode::User => &mut self.usp,
            }
        }
    }

    /// Directly set a banked stack pointer (machine setup / MTPR).
    pub fn set_banked_sp(&mut self, psl: &Psl, value: u32) {
        *self.bank_mut(psl) = value;
    }

    /// Read a banked stack pointer (MFPR / context save).
    pub fn banked_sp(&mut self, psl: &Psl) -> u32 {
        *self.bank_mut(psl)
    }
}

impl Default for RegFile {
    fn default() -> Self {
        RegFile::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let mut r = RegFile::new();
        r.set(Reg::R5, 42);
        assert_eq!(r.get(Reg::R5), 42);
        r.set_pc(0x200);
        assert_eq!(r.pc(), 0x200);
    }

    #[test]
    fn stack_banking_preserves_per_mode_sps() {
        let mut r = RegFile::new();
        let kernel = Psl::kernel_boot();
        let user = Psl {
            mode: Mode::User,
            ipl: 0,
            ..Psl::default()
        };
        r.set_sp(0x8000_1000); // live SP while in kernel
        r.switch_stack(&kernel, &user);
        assert_eq!(r.sp(), 0, "fresh user SP bank");
        r.set_sp(0x4000_0800);
        r.switch_stack(&user, &kernel);
        assert_eq!(r.sp(), 0x8000_1000, "kernel SP restored");
        r.switch_stack(&kernel, &user);
        assert_eq!(r.sp(), 0x4000_0800, "user SP restored");
    }

    #[test]
    fn interrupt_stack_is_its_own_bank() {
        let mut r = RegFile::new();
        let kernel = Psl::kernel_boot();
        let on_is = Psl {
            interrupt_stack: true,
            ..Psl::kernel_boot()
        };
        r.set_banked_sp(&on_is, 0x8800_0000);
        r.set_sp(0x8000_2000);
        r.switch_stack(&kernel, &on_is);
        assert_eq!(r.sp(), 0x8800_0000);
    }
}
