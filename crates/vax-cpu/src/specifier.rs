//! Specifier microroutines: decode an operand specifier from the IB and
//! evaluate it — address calculation, operand fetch, autoincrement side
//! effects — charging cycles to the SPEC1 / SPEC2-6 rows (paper §3.2:
//! "all access to scalar data, and to the addresses of non-scalar data,
//! are done by specifier microcode").

use crate::cpu::Cpu;
use crate::fault::Fault;
use crate::ffloat;
use crate::operand::{Loc, Operand};
use upc_monitor::CycleSink;
use vax_arch::{AccessType, DataType, OperandTemplate, Reg, SpecModeClass};
use vax_mem::Width;
use vax_ucode::{SpecPosition, StallPoint};

/// An evaluated operand with the metadata the execute phase needs to
/// charge its write-back to the right specifier routine.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EvalOp {
    /// The operand value/location.
    pub op: Operand,
    /// SPEC1 or SPEC2-6.
    pub pos: SpecPosition,
    /// Table 4 mode class (for the write-back µaddress).
    pub class: SpecModeClass,
    /// The operand's data type.
    pub dtype: DataType,
}

impl EvalOp {
    /// 32-bit view of the operand value.
    #[inline]
    pub fn u32(&self) -> u32 {
        self.op.value as u32
    }

    /// 64-bit view of the operand value.
    #[inline]
    pub fn u64(&self) -> u64 {
        self.op.value
    }

    /// The memory address of an address-access operand.
    #[inline]
    pub fn addr(&self) -> u32 {
        self.op.addr()
    }
}

/// Fixed-capacity operand list (VAX instructions have at most six
/// specifiers); avoids per-instruction allocation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EvalOps {
    items: [EvalOp; 6],
    len: usize,
}

impl EvalOps {
    pub(crate) fn new() -> EvalOps {
        let dummy = EvalOp {
            op: Operand::value(0),
            pos: SpecPosition::First,
            class: SpecModeClass::Register,
            dtype: DataType::Long,
        };
        EvalOps {
            items: [dummy; 6],
            len: 0,
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, op: EvalOp) {
        debug_assert!(self.len < 6, "more than six specifiers");
        self.items[self.len] = op;
        self.len += 1;
    }
}

impl std::ops::Deref for EvalOps {
    type Target = [EvalOp];

    #[inline]
    fn deref(&self) -> &[EvalOp] {
        &self.items[..self.len]
    }
}

/// Natural reference width of a data type (quads are two longwords).
pub(crate) fn width_of(dtype: DataType) -> Width {
    match dtype {
        DataType::Byte => Width::Byte,
        DataType::Word => Width::Word,
        DataType::Long | DataType::FFloat | DataType::Quad | DataType::DFloat => Width::Long,
    }
}

fn is_quad(dtype: DataType) -> bool {
    matches!(dtype, DataType::Quad | DataType::DFloat)
}

/// Expand a 6-bit short literal per the operand data type. For floating
/// types the literal encodes `(8 + frac) / 16 × 2^exp` (VAX Architecture
/// Reference Manual).
pub(crate) fn expand_literal(lit: u8, dtype: DataType) -> u64 {
    debug_assert!(lit < 64);
    match dtype {
        DataType::FFloat => {
            let frac = u64::from(lit & 7);
            let exp = i32::from(lit >> 3);
            let value = ((8 + frac) as f64 / 16.0) * f64::powi(2.0, exp);
            u64::from(ffloat::f_encode(value))
        }
        DataType::DFloat => {
            let frac = u64::from(lit & 7);
            let exp = i32::from(lit >> 3);
            let value = ((8 + frac) as f64 / 16.0) * f64::powi(2.0, exp);
            ffloat::d_encode(value)
        }
        _ => u64::from(lit),
    }
}

fn read_reg_value(cpu: &Cpu, reg: Reg, dtype: DataType) -> u64 {
    if is_quad(dtype) {
        let lo = cpu.regs.get(reg);
        let hi = cpu.regs.get(Reg::from_number((reg.number() + 1) & 0xF));
        u64::from(lo) | (u64::from(hi) << 32)
    } else {
        u64::from(cpu.regs.get(reg))
    }
}

/// The parsed (but not yet evaluated) form of one operand specifier:
/// everything the I-stream said, with the extension bytes already
/// assembled. This is what the predecode cache stores per operand — on
/// replay, [`eval_predecoded`] consumes the same I-stream bytes and
/// issues the same microinstructions without re-parsing them.
///
/// Evaluation state (register contents, memory, PC) is deliberately
/// *not* captured: [`eval_decoded`] re-reads all of it on every
/// execution, which is what makes the replay path behave identically.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpecDecode {
    /// Pre-assembled extension: the expanded short literal, the
    /// immediate data, the sign-extended displacement (as `u32 as u64`),
    /// or the absolute address. 0 for extension-less modes.
    pub ext: u64,
    /// How many I-stream bytes the extension occupied (0, 1, 2, 4, 8).
    pub ext_bytes: u8,
    /// Table 4 mode class.
    pub class: SpecModeClass,
    /// The base register named by the mode byte.
    pub reg: Reg,
    /// The index register, when an index prefix byte was present.
    pub index_reg: Option<Reg>,
    /// The raw mode byte (fault payloads quote it).
    pub mode_byte: u8,
    /// The operand's data type (from the opcode's operand template).
    pub dtype: DataType,
    /// The operand's access type (from the opcode's operand template).
    pub access: AccessType,
}

#[inline]
fn pos_of(index: usize) -> SpecPosition {
    if index == 0 {
        SpecPosition::First
    } else {
        SpecPosition::Rest
    }
}

#[inline]
fn point_of(index: usize) -> StallPoint {
    if index == 0 {
        StallPoint::Spec1
    } else {
        StallPoint::Spec2to6
    }
}

/// Evaluate the `index`-th operand specifier of the current instruction
/// by parsing it from the IB. Returns the evaluated operand plus its
/// [`SpecDecode`] so the caller can predecode-cache the parse.
pub(crate) fn eval_specifier<S: CycleSink>(
    cpu: &mut Cpu,
    index: usize,
    template: OperandTemplate,
    sink: &mut S,
) -> Result<(EvalOp, SpecDecode), Fault> {
    let pos = pos_of(index);
    let point = point_of(index);
    let access = template.access();
    let dtype = template.data_type();

    let mut mode_byte = cpu.ib_take_byte(point, sink)?;
    let mut index_reg = None;
    if mode_byte >> 4 == 4 {
        index_reg = Some(Reg::from_number(mode_byte & 0x0F));
        cpu.micro_compute(cpu.cs.spec_index(pos), sink);
        mode_byte = cpu.ib_take_byte(point, sink)?;
    }
    let reg = Reg::from_number(mode_byte & 0x0F);
    let class = classify(mode_byte, reg);
    cpu.micro_compute(cpu.cs.spec_entry(pos, class), sink);

    // Consume and assemble the extension. Every mode that has one takes
    // its bytes here — immediately after the entry cycle — so the replay
    // path can skip the same bytes at the same point.
    let (ext, ext_bytes): (u64, u8) = match class {
        SpecModeClass::ShortLiteral => (expand_literal(mode_byte & 0x3F, dtype), 0),
        SpecModeClass::Immediate => {
            let n = dtype.size_bytes();
            let mut data = 0u64;
            for i in 0..n {
                data |= u64::from(cpu.ib_take_byte(point, sink)?) << (8 * i);
            }
            (data, n as u8)
        }
        SpecModeClass::Displacement | SpecModeClass::DisplacementDeferred => match mode_byte >> 4 {
            0xA | 0xB => (
                u64::from(cpu.ib_take_byte(point, sink)? as i8 as i32 as u32),
                1,
            ),
            0xC | 0xD => (
                u64::from(cpu.ib_take_u16(point, sink)? as i16 as i32 as u32),
                2,
            ),
            _ => (u64::from(cpu.ib_take_u32(point, sink)?), 4),
        },
        SpecModeClass::Absolute => (u64::from(cpu.ib_take_u32(point, sink)?), 4),
        _ => (0, 0),
    };
    let dec = SpecDecode {
        ext,
        ext_bytes,
        class,
        reg,
        index_reg,
        mode_byte,
        dtype,
        access,
    };
    let eop = eval_decoded(cpu, pos, &dec, sink)?;
    Ok((eop, dec))
}

/// Replay a predecoded specifier: consume the same I-stream bytes (so IB
/// starvation and I-stream TB misses land on the same cycles) and issue
/// the same microinstructions as [`eval_specifier`], then evaluate via
/// the shared [`eval_decoded`].
pub(crate) fn eval_predecoded<S: CycleSink>(
    cpu: &mut Cpu,
    index: usize,
    dec: &SpecDecode,
    sink: &mut S,
) -> Result<EvalOp, Fault> {
    let pos = pos_of(index);
    let point = point_of(index);
    cpu.ib_skip_bytes(1, point, sink)?; // mode byte
    if dec.index_reg.is_some() {
        cpu.micro_compute(cpu.cs.spec_index(pos), sink);
        cpu.ib_skip_bytes(1, point, sink)?; // second mode byte
    }
    cpu.micro_compute(cpu.cs.spec_entry(pos, dec.class), sink);
    if dec.ext_bytes > 0 {
        cpu.ib_skip_bytes(usize::from(dec.ext_bytes), point, sink)?;
    }
    eval_decoded(cpu, pos, dec, sink)
}

/// Evaluate a parsed specifier: address calculation, operand fetch,
/// autoincrement side effects. Shared by the parse path and the replay
/// path — all machine-visible work after extension consumption lives
/// here, which is what makes the two paths structurally identical.
fn eval_decoded<S: CycleSink>(
    cpu: &mut Cpu,
    pos: SpecPosition,
    dec: &SpecDecode,
    sink: &mut S,
) -> Result<EvalOp, Fault> {
    let class = dec.class;
    let dtype = dec.dtype;
    let access = dec.access;
    let reg = dec.reg;
    let op = match class {
        // Extension value already assembled (literal expansion included).
        SpecModeClass::ShortLiteral | SpecModeClass::Immediate => Operand::value(dec.ext),
        SpecModeClass::Register => {
            let value = if access.reads_value() {
                read_reg_value(cpu, reg, dtype)
            } else {
                0
            };
            Operand::reg(reg, value)
        }
        _ => {
            let addr = match class {
                SpecModeClass::RegisterDeferred => cpu.regs.get(reg),
                SpecModeClass::AutoIncrement => {
                    let addr = cpu.regs.get(reg);
                    cpu.regs.set(reg, addr.wrapping_add(dtype.size_bytes()));
                    addr
                }
                SpecModeClass::AutoDecrement => {
                    let addr = cpu.regs.get(reg).wrapping_sub(dtype.size_bytes());
                    cpu.regs.set(reg, addr);
                    addr
                }
                SpecModeClass::AutoIncDeferred => {
                    let ptr = cpu.regs.get(reg);
                    cpu.regs.set(reg, ptr.wrapping_add(4));
                    cpu.micro_compute(cpu.cs.spec_compute(pos, class), sink);
                    cpu.read_data(cpu.cs.spec_read(pos, class), ptr, Width::Long, sink)?
                }
                SpecModeClass::Displacement | SpecModeClass::DisplacementDeferred => {
                    // Byte displacements take the fast path (address add
                    // folded into the entry cycle); wider extensions cost
                    // an extra cycle. Base register read after the
                    // extension, so PC-relative modes see the updated PC.
                    let wide = dec.ext_bytes != 1;
                    if wide || class == SpecModeClass::DisplacementDeferred {
                        cpu.micro_compute(cpu.cs.spec_compute(pos, class), sink);
                    }
                    let base = cpu.regs.get(reg).wrapping_add(dec.ext as u32);
                    if class == SpecModeClass::DisplacementDeferred {
                        cpu.read_data(cpu.cs.spec_read(pos, class), base, Width::Long, sink)?
                    } else {
                        base
                    }
                }
                SpecModeClass::Absolute => dec.ext as u32,
                _ => unreachable!("value modes handled above"),
            };
            let addr = if let Some(rx) = dec.index_reg {
                cpu.micro_compute(cpu.cs.spec_compute(pos, class), sink);
                addr.wrapping_add(cpu.regs.get(rx).wrapping_mul(dtype.size_bytes()))
            } else {
                addr
            };
            // Operand fetch, if the access requires it.
            if access.reads_value() {
                let read_addr = cpu.cs.spec_read(pos, class);
                let value = if is_quad(dtype) {
                    cpu.read_data_u64(read_addr, addr, sink)?
                } else {
                    u64::from(cpu.read_data(read_addr, addr, width_of(dtype), sink)?)
                };
                Operand::mem(addr, value)
            } else {
                Operand::mem(addr, 0)
            }
        }
    };
    // Address-access operands must name memory; register is allowed only
    // for variable bit fields. (The assembler enforces this; decoding raw
    // bytes could violate it, which a real VAX faults on.)
    if access == AccessType::Address && !matches!(op.loc, Loc::Mem(_)) {
        return Err(Fault::ReservedInstruction {
            opcode: dec.mode_byte,
        });
    }
    Ok(EvalOp {
        op,
        pos,
        class,
        dtype,
    })
}

/// Store an instruction result to a write/modify operand, charging the
/// store to the operand's specifier routine (the paper attributes operand
/// writes to specifier processing, §3.2).
pub(crate) fn store_operand<S: CycleSink>(
    cpu: &mut Cpu,
    eop: &EvalOp,
    value: u64,
    sink: &mut S,
) -> Result<(), Fault> {
    match eop.op.loc {
        Loc::Reg(r) => {
            cpu.micro_compute(cpu.cs.spec_compute(eop.pos, eop.class), sink);
            if is_quad(eop.dtype) {
                cpu.regs.set(r, value as u32);
                cpu.regs.set(
                    Reg::from_number((r.number() + 1) & 0xF),
                    (value >> 32) as u32,
                );
            } else {
                // Sub-longword register writes merge into the low bits.
                let old = cpu.regs.get(r);
                let merged = match eop.dtype {
                    DataType::Byte => (old & !0xFF) | (value as u32 & 0xFF),
                    DataType::Word => (old & !0xFFFF) | (value as u32 & 0xFFFF),
                    _ => value as u32,
                };
                cpu.regs.set(r, merged);
            }
            Ok(())
        }
        Loc::Mem(va) => {
            let write_addr = cpu.cs.spec_write(eop.pos, eop.class);
            if is_quad(eop.dtype) {
                cpu.write_data_u64(write_addr, va, value, sink)
            } else {
                cpu.write_data(write_addr, va, width_of(eop.dtype), value as u32, sink)
            }
        }
        Loc::Value => unreachable!("assembler rejects literal destinations"),
    }
}

fn classify(mode_byte: u8, reg: Reg) -> SpecModeClass {
    match mode_byte >> 4 {
        0..=3 => SpecModeClass::ShortLiteral,
        5 => SpecModeClass::Register,
        6 => SpecModeClass::RegisterDeferred,
        7 => SpecModeClass::AutoDecrement,
        8 => {
            if reg.is_pc() {
                SpecModeClass::Immediate
            } else {
                SpecModeClass::AutoIncrement
            }
        }
        9 => {
            if reg.is_pc() {
                SpecModeClass::Absolute
            } else {
                SpecModeClass::AutoIncDeferred
            }
        }
        0xA | 0xC | 0xE => SpecModeClass::Displacement,
        0xB | 0xD | 0xF => SpecModeClass::DisplacementDeferred,
        _ => unreachable!("index prefix consumed by caller"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_expansion_integer() {
        assert_eq!(expand_literal(42, DataType::Long), 42);
        assert_eq!(expand_literal(63, DataType::Byte), 63);
    }

    #[test]
    fn literal_expansion_float() {
        // Literal 0 encodes 0.5; literal 63 encodes 120.
        let half = expand_literal(0, DataType::FFloat) as u32;
        assert!((ffloat::f_decode(half) - 0.5).abs() < 1e-9);
        let top = expand_literal(63, DataType::FFloat) as u32;
        assert!((ffloat::f_decode(top) - 120.0).abs() < 1e-9);
    }

    #[test]
    fn classify_pc_special_cases() {
        assert_eq!(classify(0x8F, Reg::Pc), SpecModeClass::Immediate);
        assert_eq!(classify(0x9F, Reg::Pc), SpecModeClass::Absolute);
        assert_eq!(classify(0x85, Reg::R5), SpecModeClass::AutoIncrement);
        assert_eq!(classify(0x95, Reg::R5), SpecModeClass::AutoIncDeferred);
        assert_eq!(classify(0xA3, Reg::R3), SpecModeClass::Displacement);
        assert_eq!(classify(0xB3, Reg::R3), SpecModeClass::DisplacementDeferred);
    }

    #[test]
    fn eval_ops_capacity() {
        let mut ops = EvalOps::new();
        for _ in 0..6 {
            ops.push(EvalOp {
                op: Operand::value(1),
                pos: SpecPosition::Rest,
                class: SpecModeClass::Register,
                dtype: DataType::Long,
            });
        }
        assert_eq!(ops.len(), 6);
    }
}
