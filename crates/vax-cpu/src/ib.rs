//! The 8-byte instruction buffer and its prefetcher.
//!
//! "The 8-byte IB makes a cache reference whenever one or more bytes are
//! empty. When the requested longword arrives — possibly much later, if
//! there was a cache miss — the IB accepts as many bytes as it has room
//! for then. Thus the IB can make repeated references (as many as four) to
//! the same longword" (paper §4.1). This module reproduces exactly that
//! behaviour, which is what yields the ≈2.2 IB references and ≈1.7 bytes
//! per reference of the paper.

use vax_mem::{MemorySubsystem, Stream};

/// Maximum IB capacity in bytes.
const IB_BYTES: usize = 8;

#[derive(Debug, Clone, Copy)]
struct PendingFill {
    data: u32,
    ready_at: u64,
    /// VA of the first byte the IB wants out of this longword.
    va: u32,
}

/// The instruction buffer.
#[derive(Debug, Clone)]
pub struct InstructionBuffer {
    /// FIFO of fetched bytes, packed little-endian: the next byte to
    /// consume is the low byte, byte `i` of the queue is bits
    /// `8i..8i+8`. One shift consumes (or accepts) any number of bytes.
    buf: u64,
    len: usize,
    /// VA of the next byte to *fetch* (not the next to consume).
    fetch_va: u32,
    pending: Option<PendingFill>,
    /// An I-stream translation missed; the EBOX services it when it
    /// starves (paper §2.1: the flag is recognised when the decode finds
    /// insufficient bytes).
    tb_miss_va: Option<u32>,
    /// Host-side translation shortcut: the last page the prefetcher
    /// translated and its frame base, valid while the TB generation is
    /// unchanged (any TB mutation could have evicted the entry). A
    /// shortcut hit counts as a TB hit — it *is* one: with the
    /// generation unchanged the real lookup would find the same entry.
    tpage: u32,
    tframe: u32,
    tgen: u64,
    /// Use the host-side shortcuts ([`CpuConfig::host_shortcuts`]): the
    /// cheap tick gate and the same-page translation shortcut. `false`
    /// runs the straight-line reference body every cycle.
    ///
    /// [`CpuConfig::host_shortcuts`]: crate::CpuConfig::host_shortcuts
    shortcuts: bool,
}

impl InstructionBuffer {
    /// An empty IB that will fetch from `pc`.
    pub fn new(pc: u32, shortcuts: bool) -> InstructionBuffer {
        InstructionBuffer {
            buf: 0,
            len: 0,
            fetch_va: pc,
            pending: None,
            tb_miss_va: None,
            tpage: 0,
            tframe: 0,
            tgen: 0,
            shortcuts,
        }
    }

    /// Bytes currently available for decode (diagnostics and tests).
    #[allow(dead_code)]
    #[inline]
    pub fn available(&self) -> usize {
        self.len
    }

    /// The pending I-stream TB miss, if any.
    #[inline]
    pub fn tb_miss(&self) -> Option<u32> {
        self.tb_miss_va
    }

    /// Clear the I-stream TB miss flag (after the EBOX services it).
    pub fn clear_tb_miss(&mut self) {
        self.tb_miss_va = None;
    }

    /// When the in-flight fill completes, if any. While `now` is before
    /// this time a [`tick`] is a guaranteed no-op.
    ///
    /// [`tick`]: InstructionBuffer::tick
    #[inline]
    pub fn pending_ready_at(&self) -> Option<u64> {
        self.pending.map(|f| f.ready_at)
    }

    /// True when, with no fill in flight, ticks are no-ops until the
    /// EBOX consumes bytes or services the TB miss: the IB is full, or
    /// an I-stream TB miss is waiting.
    #[inline]
    pub fn quiescent(&self) -> bool {
        debug_assert!(self.pending.is_none());
        self.tb_miss_va.is_some() || self.len >= IB_BYTES
    }

    /// Discard everything and refetch from `pc` (taken branch / REI /
    /// context switch). The in-flight fill, if any, is dropped — its bus
    /// occupancy already happened, as on the real machine.
    pub fn flush(&mut self, pc: u32) {
        self.buf = 0;
        self.len = 0;
        self.fetch_va = pc;
        self.pending = None;
        self.tb_miss_va = None;
    }

    /// Consume one byte.
    #[inline]
    pub fn take_byte(&mut self) -> Option<u8> {
        if self.len == 0 {
            return None;
        }
        let b = self.buf as u8;
        self.buf >>= 8;
        self.len -= 1;
        Some(b)
    }

    /// Discard up to `n` buffered bytes in one step, returning how many
    /// were consumed. Timing-equivalent to that many [`take_byte`]
    /// calls: consuming an available byte costs no cycles, so only the
    /// count left when the buffer runs dry is observable.
    ///
    /// [`take_byte`]: InstructionBuffer::take_byte
    #[inline]
    pub fn skip_bytes(&mut self, n: usize) -> usize {
        let k = n.min(self.len);
        // k == 8 would shift by the full width; `buf = 0` is the intent.
        self.buf = if k < IB_BYTES { self.buf >> (8 * k) } else { 0 };
        self.len -= k;
        k
    }

    /// Append `take` bytes of `data` (starting at byte `offset`) behind
    /// the buffered ones.
    #[inline]
    fn push_bytes(&mut self, data: u32, offset: usize, take: usize) {
        debug_assert!((1..=4).contains(&take) && self.len + take <= IB_BYTES && offset + take <= 4);
        let chunk = (u64::from(data) >> (8 * offset)) & ((1u64 << (8 * take)) - 1);
        self.buf |= chunk << (8 * self.len);
        self.len += take;
    }

    /// One prefetcher cycle at time `now`. `port_free` is false when the
    /// EBOX is using the cache this cycle (the EBOX has priority).
    ///
    /// Returns `Some(miss)` when a cache reference was issued this cycle
    /// (so the caller can attribute the I-stream cache/SBI activity to
    /// its observers), `None` otherwise.
    ///
    /// This wrapper is the cheap inline gate: most cycles the prefetcher
    /// has nothing to do (a fill is in flight but not ready, or the IB is
    /// full), and those ticks return without touching the slow body.
    #[inline]
    pub fn tick(&mut self, mem: &mut MemorySubsystem, now: u64, port_free: bool) -> Option<bool> {
        if !self.shortcuts {
            return self.tick_work(mem, now, port_free);
        }
        match self.pending {
            Some(fill) if fill.ready_at > now => None,
            Some(_) => self.tick_work(mem, now, port_free),
            None => {
                if self.tb_miss_va.is_some() || self.len >= IB_BYTES || !port_free {
                    None
                } else {
                    self.tick_work(mem, now, port_free)
                }
            }
        }
    }

    /// The prefetcher cycle proper; only reached when [`tick`] decided
    /// there is real work (a ready fill to accept and/or a reference to
    /// issue).
    ///
    /// [`tick`]: InstructionBuffer::tick
    fn tick_work(&mut self, mem: &mut MemorySubsystem, now: u64, port_free: bool) -> Option<bool> {
        // Accept a completed fill first.
        if let Some(fill) = self.pending {
            if fill.ready_at <= now {
                self.pending = None;
                let offset = (fill.va & 3) as usize;
                let avail = 4 - offset;
                let room = IB_BYTES - self.len;
                let take = avail.min(room);
                self.push_bytes(fill.data, offset, take);
                self.fetch_va = fill.va.wrapping_add(take as u32);
                mem.note_ib_bytes(take as u32);
            }
        }
        // Issue a new reference if there is room, no fill in flight, no
        // unserviced TB miss, and the cache port is free.
        if self.pending.is_none() && self.tb_miss_va.is_none() && self.len < IB_BYTES && port_free {
            // Same-page shortcut: while the TB generation is unchanged,
            // the last translation's entry is still resident, so a real
            // lookup would hit with the same frame. Count the hit and
            // skip the set scan.
            let page = self.fetch_va & !(vax_mem::PAGE_BYTES - 1);
            let pa = if self.shortcuts && self.tgen == mem.tb_generation() && self.tpage == page {
                mem.counters_mut().tb_hits += 1;
                self.tframe + (self.fetch_va & (vax_mem::PAGE_BYTES - 1))
            } else {
                match mem.translate(self.fetch_va, Stream::IFetch) {
                    Ok(pa) => {
                        self.tpage = page;
                        self.tframe = pa - (self.fetch_va & (vax_mem::PAGE_BYTES - 1));
                        self.tgen = mem.tb_generation();
                        pa
                    }
                    Err(_) => {
                        self.tb_miss_va = Some(self.fetch_va);
                        return None;
                    }
                }
            };
            let outcome = mem.ifetch(pa & !3, now);
            self.pending = Some(PendingFill {
                data: outcome.data,
                ready_at: outcome.ready_at,
                va: self.fetch_va,
            });
            return Some(outcome.miss);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vax_mem::{load_virtual, MapBuilder, MemConfig, SystemMap};

    fn machine_with_code(code: &[u8]) -> (MemorySubsystem, u32) {
        let mut mem = MemorySubsystem::new(MemConfig::default());
        let mut mb = MapBuilder::new(mem.phys(), 4096);
        mb.map_system(mem.phys_mut(), 16);
        let space = mb.create_process(mem.phys_mut(), 32, 4);
        let sys: SystemMap = mb.system_map();
        mem.set_system_map(sys);
        mem.switch_address_space(space);
        load_virtual(mem.phys_mut(), &sys, &space, 0x200, code);
        (mem, 0x200)
    }

    #[test]
    fn fills_and_delivers_bytes_in_order() {
        let code: Vec<u8> = (1..=16).collect();
        let (mut mem, pc) = machine_with_code(&code);
        mem.tb_fill(pc, 0).unwrap();
        let mut ib = InstructionBuffer::new(pc, true);
        let mut now = 10;
        let mut got = Vec::new();
        while got.len() < 8 && now < 200 {
            let _ = ib.tick(&mut mem, now, true);
            if let Some(b) = ib.take_byte() {
                got.push(b);
            }
            now += 1;
        }
        assert_eq!(got, (1..=8).collect::<Vec<u8>>());
    }

    #[test]
    fn sets_tb_miss_flag_instead_of_fetching() {
        let code = [0u8; 4];
        let (mut mem, pc) = machine_with_code(&code);
        // No tb_fill: the first reference misses.
        let mut ib = InstructionBuffer::new(pc, true);
        let _ = ib.tick(&mut mem, 0, true);
        assert_eq!(ib.tb_miss(), Some(pc));
        assert_eq!(ib.available(), 0);
        // Service it; fetching resumes.
        mem.tb_fill(pc, 0).unwrap();
        ib.clear_tb_miss();
        let mut now = 20;
        while ib.available() == 0 && now < 100 {
            let _ = ib.tick(&mut mem, now, true);
            now += 1;
        }
        assert!(ib.available() > 0);
    }

    #[test]
    fn flush_discards_and_refetches() {
        let code: Vec<u8> = (1..=32).collect();
        let (mut mem, pc) = machine_with_code(&code);
        mem.tb_fill(pc, 0).unwrap();
        let mut ib = InstructionBuffer::new(pc, true);
        for now in 10..40 {
            let _ = ib.tick(&mut mem, now, true);
        }
        assert!(ib.available() > 0);
        ib.flush(pc + 16);
        assert_eq!(ib.available(), 0);
        let mut now = 50;
        while ib.available() == 0 && now < 150 {
            let _ = ib.tick(&mut mem, now, true);
            now += 1;
        }
        assert_eq!(ib.take_byte(), Some(17), "refetched from the new PC");
    }

    #[test]
    fn respects_port_busy() {
        let code = [0xAAu8; 8];
        let (mut mem, pc) = machine_with_code(&code);
        mem.tb_fill(pc, 0).unwrap();
        let mut ib = InstructionBuffer::new(pc, true);
        let _ = ib.tick(&mut mem, 0, false);
        assert_eq!(mem.counters().ib_requests, 0, "no request while port busy");
        let _ = ib.tick(&mut mem, 1, true);
        assert_eq!(mem.counters().ib_requests, 1);
    }

    #[test]
    fn repeated_references_to_same_longword_when_full() {
        // Fill the IB to 8 bytes, drain 1, and watch the next request
        // re-reference the longword at the partially-consumed position.
        let code: Vec<u8> = (1..=24).collect();
        let (mut mem, pc) = machine_with_code(&code);
        mem.tb_fill(pc, 0).unwrap();
        let mut ib = InstructionBuffer::new(pc, true);
        let mut now = 0;
        while ib.available() < 8 {
            let _ = ib.tick(&mut mem, now, true);
            now += 1;
            assert!(now < 100);
        }
        let reqs_full = mem.counters().ib_requests;
        // Full: ticks issue no new requests.
        let _ = ib.tick(&mut mem, now, true);
        assert_eq!(mem.counters().ib_requests, reqs_full);
        // One byte of room: a new request goes out even though the target
        // longword was already referenced (partial acceptance).
        ib.take_byte();
        let _ = ib.tick(&mut mem, now + 1, true);
        assert_eq!(mem.counters().ib_requests, reqs_full + 1);
    }
}
