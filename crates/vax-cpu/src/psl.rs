//! Processor status longword: condition codes, IPL, access mode.

use std::fmt;

/// Processor access mode. The model implements the two modes the
/// characterization workloads exercise (VMS uses all four, but the
/// kernel/user distinction carries all the TB/stack-switching behaviour
/// that matters here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Kernel mode.
    Kernel,
    /// User mode.
    #[default]
    User,
}

/// The processor status longword (the portion this model uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Psl {
    /// Negative condition code.
    pub n: bool,
    /// Zero condition code.
    pub z: bool,
    /// Overflow condition code.
    pub v: bool,
    /// Carry condition code.
    pub c: bool,
    /// Interrupt priority level, 0–31.
    pub ipl: u8,
    /// Current access mode.
    pub mode: Mode,
    /// Executing on the interrupt stack?
    pub interrupt_stack: bool,
}

impl Psl {
    /// Kernel-mode reset state (IPL 31, as at bootstrap).
    pub fn kernel_boot() -> Psl {
        Psl {
            ipl: 31,
            mode: Mode::Kernel,
            ..Psl::default()
        }
    }

    /// Pack into the architectural longword layout (CC in bits 3:0, IPL in
    /// bits 20:16, current mode in bits 25:24, IS in bit 26).
    pub fn to_u32(self) -> u32 {
        let mut w = 0u32;
        if self.c {
            w |= 1;
        }
        if self.v {
            w |= 2;
        }
        if self.z {
            w |= 4;
        }
        if self.n {
            w |= 8;
        }
        w |= u32::from(self.ipl & 0x1F) << 16;
        w |= match self.mode {
            Mode::Kernel => 0,
            Mode::User => 3,
        } << 24;
        if self.interrupt_stack {
            w |= 1 << 26;
        }
        w
    }

    /// Unpack from the architectural longword layout.
    pub fn from_u32(w: u32) -> Psl {
        Psl {
            c: w & 1 != 0,
            v: w & 2 != 0,
            z: w & 4 != 0,
            n: w & 8 != 0,
            ipl: ((w >> 16) & 0x1F) as u8,
            mode: if (w >> 24) & 3 == 0 {
                Mode::Kernel
            } else {
                Mode::User
            },
            interrupt_stack: w & (1 << 26) != 0,
        }
    }

    /// Set N and Z from a signed 32-bit result; clears V (move-style
    /// condition codes leave C alone).
    pub fn set_nz_long(&mut self, value: u32) {
        self.n = (value as i32) < 0;
        self.z = value == 0;
        self.v = false;
    }
}

impl fmt::Display for Psl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}{}{}{} ipl={} {:?}{}]",
            if self.n { 'N' } else { '-' },
            if self.z { 'Z' } else { '-' },
            if self.v { 'V' } else { '-' },
            if self.c { 'C' } else { '-' },
            self.ipl,
            self.mode,
            if self.interrupt_stack { " IS" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_longword() {
        let p = Psl {
            n: true,
            z: false,
            v: true,
            c: true,
            ipl: 22,
            mode: Mode::User,
            interrupt_stack: false,
        };
        assert_eq!(Psl::from_u32(p.to_u32()), p);
        let k = Psl::kernel_boot();
        assert_eq!(Psl::from_u32(k.to_u32()), k);
    }

    #[test]
    fn nz_helper() {
        let mut p = Psl::default();
        p.set_nz_long(0);
        assert!(p.z && !p.n);
        p.set_nz_long(0x8000_0000);
        assert!(p.n && !p.z);
    }
}
