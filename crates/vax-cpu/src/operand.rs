//! Evaluated operands: what the specifier microroutines hand the execute
//! phase.

use vax_arch::Reg;

/// Where an operand lives after specifier evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// A general register (or register pair for quad operands).
    Reg(Reg),
    /// Memory at a virtual address.
    Mem(u32),
    /// A short literal or immediate: value only, no location.
    Value,
}

/// One evaluated operand.
///
/// Read/modify operands carry the fetched `value`; write/address operands
/// carry the destination in `loc` (the address already computed, so the
/// store is a pure write µop later).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operand {
    /// Location for stores / address operands.
    pub loc: Loc,
    /// Fetched value (zero-extended to 64 bits), for read/modify operands.
    pub value: u64,
}

impl Operand {
    /// A pure value operand (literal/immediate).
    pub fn value(value: u64) -> Operand {
        Operand {
            loc: Loc::Value,
            value,
        }
    }

    /// A register operand carrying `value`.
    pub fn reg(reg: Reg, value: u64) -> Operand {
        Operand {
            loc: Loc::Reg(reg),
            value,
        }
    }

    /// A memory operand at `va` carrying `value`.
    pub fn mem(va: u32, value: u64) -> Operand {
        Operand {
            loc: Loc::Mem(va),
            value,
        }
    }

    /// The memory address, for address-access operands.
    ///
    /// # Panics
    ///
    /// Panics if the operand is not in memory (the assembler's template
    /// validation makes this unreachable for well-formed code).
    pub fn addr(&self) -> u32 {
        match self.loc {
            Loc::Mem(va) => va,
            other => panic!("address of non-memory operand {other:?}"),
        }
    }

    /// 32-bit view of the value (convenience mirror of `EvalOp::u32`).
    #[allow(dead_code)]
    #[inline]
    pub fn u32(&self) -> u32 {
        self.value as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = Operand::value(7);
        assert_eq!(v.u32(), 7);
        let m = Operand::mem(0x1000, 9);
        assert_eq!(m.addr(), 0x1000);
        let r = Operand::reg(Reg::R3, 1);
        assert_eq!(r.loc, Loc::Reg(Reg::R3));
    }

    #[test]
    #[should_panic(expected = "non-memory")]
    fn addr_of_value_panics() {
        let _ = Operand::value(0).addr();
    }
}
