//! Hardware interrupt requests.

/// A pending hardware interrupt: a device asserting a request at `ipl`
/// with an SCB `vector` (byte offset into the system control block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupt {
    /// Request IPL (device levels are 20–23 on the 11/780; the interval
    /// timer requests at 24).
    pub ipl: u8,
    /// SCB vector offset (longword-aligned byte offset).
    pub vector: u16,
}

/// Pending-request pool with highest-IPL-first delivery.
#[derive(Debug, Clone, Default)]
pub struct InterruptLines {
    pending: Vec<Interrupt>,
}

impl InterruptLines {
    /// No requests pending.
    pub fn new() -> InterruptLines {
        InterruptLines::default()
    }

    /// Assert a request.
    pub fn post(&mut self, int: Interrupt) {
        self.pending.push(int);
    }

    /// Highest pending IPL, if any request is outstanding.
    pub fn max_ipl(&self) -> Option<u8> {
        self.pending.iter().map(|i| i.ipl).max()
    }

    /// Remove and return the highest-IPL request above `threshold`.
    pub fn acknowledge_above(&mut self, threshold: u8) -> Option<Interrupt> {
        let (idx, _) = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, i)| i.ipl > threshold)
            .max_by_key(|(_, i)| i.ipl)?;
        Some(self.pending.swap_remove(idx))
    }

    /// Number of outstanding requests (diagnostics and tests).
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Any requests outstanding? (diagnostics and tests)
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_highest_ipl_first() {
        let mut lines = InterruptLines::new();
        lines.post(Interrupt {
            ipl: 20,
            vector: 0x100,
        });
        lines.post(Interrupt {
            ipl: 24,
            vector: 0xC0,
        });
        lines.post(Interrupt {
            ipl: 21,
            vector: 0x104,
        });
        assert_eq!(lines.max_ipl(), Some(24));
        let first = lines.acknowledge_above(0).unwrap();
        assert_eq!(first.ipl, 24);
        let second = lines.acknowledge_above(0).unwrap();
        assert_eq!(second.ipl, 21);
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn threshold_masks_requests() {
        let mut lines = InterruptLines::new();
        lines.post(Interrupt {
            ipl: 20,
            vector: 0x100,
        });
        assert!(lines.acknowledge_above(20).is_none());
        assert!(lines.acknowledge_above(19).is_some());
    }
}
