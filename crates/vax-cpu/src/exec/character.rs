//! CHARACTER group: string instructions.
//!
//! Loop timing follows the 780 microcode structure: a setup block, then a
//! per-longword loop of read / spacing-computes / write. The spacing
//! computes model the paper's observation that "instructions that do many
//! writes, such as character-string moves, are sometimes microprogrammed
//! to reduce write stalls by writing only in every sixth cycle" (§4.3).

use super::computes;
use crate::cpu::Cpu;
use crate::fault::Fault;
use crate::specifier::EvalOps;
use upc_monitor::CycleSink;
use vax_arch::{Opcode, Reg};
use vax_mem::Width;

const SETUP_CYCLES: u32 = 12;

pub(super) fn exec<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    ops: &EvalOps,
    sink: &mut S,
) -> Result<(), Fault> {
    use Opcode::*;
    computes(cpu, op, SETUP_CYCLES, sink);
    match op {
        Movc3 => {
            let len = ops[0].u32() & 0xFFFF;
            let src = ops[1].addr();
            let dst = ops[2].addr();
            move_bytes(cpu, op, src, dst, len, None, len, sink)?;
            finish_move(cpu, src, dst, len);
        }
        Movc5 => {
            let srclen = ops[0].u32() & 0xFFFF;
            let src = ops[1].addr();
            let fill = ops[2].u32() as u8;
            let dstlen = ops[3].u32() & 0xFFFF;
            let dst = ops[4].addr();
            move_bytes(
                cpu,
                op,
                src,
                dst,
                srclen.min(dstlen),
                Some(fill),
                dstlen,
                sink,
            )?;
            // Condition codes compare the source and destination lengths.
            let diff = srclen.wrapping_sub(dstlen);
            cpu.psl.z = srclen == dstlen;
            cpu.psl.n = (diff as i32) < 0;
            cpu.psl.c = dstlen > srclen;
            cpu.psl.v = false;
            finish_move(cpu, src, dst, srclen.min(dstlen));
            cpu.regs.set(Reg::R0, srclen.saturating_sub(dstlen));
        }
        Cmpc3 => {
            let len = ops[0].u32() & 0xFFFF;
            let s1 = ops[1].addr();
            let s2 = ops[2].addr();
            let (done, a, b) = compare_bytes(cpu, op, s1, s2, len, len, sink)?;
            let rem = len - done;
            super::sub_cc(cpu, u32::from(a), u32::from(b), vax_arch::DataType::Byte);
            cpu.regs.set(Reg::R0, rem);
            cpu.regs.set(Reg::R1, s1.wrapping_add(done));
            cpu.regs.set(Reg::R2, rem);
            cpu.regs.set(Reg::R3, s2.wrapping_add(done));
        }
        Cmpc5 => {
            let len1 = ops[0].u32() & 0xFFFF;
            let s1 = ops[1].addr();
            let _fill = ops[2].u32() as u8;
            let len2 = ops[3].u32() & 0xFFFF;
            let s2 = ops[4].addr();
            let n = len1.min(len2);
            let (done, a, b) = compare_bytes(cpu, op, s1, s2, n, n, sink)?;
            if done == n && len1 != len2 {
                // Fill comparison for the tail; modelled as equal-length
                // in the workloads, so just set cc from the lengths.
                super::sub_cc(cpu, len1, len2, vax_arch::DataType::Word);
            } else {
                super::sub_cc(cpu, u32::from(a), u32::from(b), vax_arch::DataType::Byte);
            }
            cpu.regs.set(Reg::R0, len1 - done.min(len1));
            cpu.regs.set(Reg::R1, s1.wrapping_add(done));
            cpu.regs.set(Reg::R2, len2 - done.min(len2));
            cpu.regs.set(Reg::R3, s2.wrapping_add(done));
        }
        Locc | Skpc => {
            let target = ops[0].u32() as u8;
            let len = ops[1].u32() & 0xFFFF;
            let addr = ops[2].addr();
            let mut found = None;
            for i in 0..len {
                let b = read_string_byte(cpu, op, addr.wrapping_add(i), i, sink)?;
                let hit = if op == Locc { b == target } else { b != target };
                if hit {
                    found = Some(i);
                    break;
                }
            }
            let (rem, pos) = match found {
                Some(i) => (len - i, addr.wrapping_add(i)),
                None => (0, addr.wrapping_add(len)),
            };
            cpu.psl.z = rem == 0;
            cpu.psl.n = false;
            cpu.psl.v = false;
            cpu.psl.c = false;
            cpu.regs.set(Reg::R0, rem);
            cpu.regs.set(Reg::R1, pos);
        }
        Scanc | Spanc => {
            let len = ops[0].u32() & 0xFFFF;
            let addr = ops[1].addr();
            let table = ops[2].addr();
            let mask = ops[3].u32() as u8;
            let mut found = None;
            for i in 0..len {
                let b = read_string_byte(cpu, op, addr.wrapping_add(i), i, sink)?;
                let t = cpu.read_data(
                    cpu.cs.exec_read(op),
                    table.wrapping_add(u32::from(b)),
                    Width::Byte,
                    sink,
                )? as u8;
                computes(cpu, op, 1, sink);
                let hit = if op == Scanc {
                    t & mask != 0
                } else {
                    t & mask == 0
                };
                if hit {
                    found = Some(i);
                    break;
                }
            }
            let (rem, pos) = match found {
                Some(i) => (len - i, addr.wrapping_add(i)),
                None => (0, addr.wrapping_add(len)),
            };
            cpu.psl.z = rem == 0;
            cpu.psl.n = false;
            cpu.psl.v = false;
            cpu.psl.c = false;
            cpu.regs.set(Reg::R0, rem);
            cpu.regs.set(Reg::R1, pos);
            cpu.regs.set(Reg::R3, table);
        }
        other => unreachable!("{other} is not a CHARACTER opcode"),
    }
    Ok(())
}

/// Copy `copy_len` bytes from `src` to `dst` (forward), then fill the
/// remainder up to `total_len` with `fill` if given. Charges the
/// microcode's per-longword loop: read, spacing computes, write.
#[allow(clippy::too_many_arguments)] // mirrors the microroutine's inputs
fn move_bytes<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    src: u32,
    dst: u32,
    copy_len: u32,
    fill: Option<u8>,
    total_len: u32,
    sink: &mut S,
) -> Result<(), Fault> {
    let spacing = cpu.config.char_loop_spacing;
    let u_read = cpu.cs.exec_read(op);
    let u_write = cpu.cs.exec_write(op);
    let mut i = 0;
    while i < copy_len {
        let chunk = (copy_len - i).min(4 - ((src.wrapping_add(i)) & 3)).min(4);
        let (width, bytes) = chunk_width(chunk);
        let v = cpu.read_data(u_read, src.wrapping_add(i), width, sink)?;
        computes(cpu, op, spacing, sink);
        write_chunk(cpu, u_write, dst.wrapping_add(i), v, bytes, sink)?;
        computes(cpu, op, 1, sink);
        i += bytes;
    }
    if let Some(f) = fill {
        let pattern = u32::from_le_bytes([f; 4]);
        let mut i = copy_len;
        while i < total_len {
            let chunk = (total_len - i).min(4);
            let (_, bytes) = chunk_width(chunk);
            computes(cpu, op, spacing, sink);
            write_chunk(cpu, u_write, dst.wrapping_add(i), pattern, bytes, sink)?;
            i += bytes;
        }
    }
    Ok(())
}

/// Post-move architectural register state (MOVC3 definition).
fn finish_move(cpu: &mut Cpu, src: u32, dst: u32, len: u32) {
    cpu.regs.set(Reg::R0, 0);
    cpu.regs.set(Reg::R1, src.wrapping_add(len));
    cpu.regs.set(Reg::R2, 0);
    cpu.regs.set(Reg::R3, dst.wrapping_add(len));
    cpu.regs.set(Reg::R4, 0);
    cpu.regs.set(Reg::R5, 0);
    cpu.psl.z = true;
    cpu.psl.n = false;
    cpu.psl.v = false;
    cpu.psl.c = false;
}

/// Compare up to `n` bytes; returns (bytes-equal, first-unequal-a,
/// first-unequal-b). Charges one read per longword per string.
fn compare_bytes<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    s1: u32,
    s2: u32,
    n: u32,
    _len_for_cycles: u32,
    sink: &mut S,
) -> Result<(u32, u8, u8), Fault> {
    for i in 0..n {
        let a = read_string_byte(cpu, op, s1.wrapping_add(i), i, sink)?;
        let b = read_string_byte(cpu, op, s2.wrapping_add(i), i, sink)?;
        if a != b {
            return Ok((i, a, b));
        }
    }
    Ok((n, 0, 0))
}

/// Read one string byte, charging a longword read when crossing into a new
/// longword (the microcode buffers the current longword) plus one loop
/// compute per longword.
fn read_string_byte<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    va: u32,
    index: u32,
    sink: &mut S,
) -> Result<u8, Fault> {
    if index == 0 || va & 3 == 0 {
        let lw = cpu.read_data(cpu.cs.exec_read(op), va & !3, Width::Long, sink)?;
        computes(cpu, op, 1, sink);
        Ok((lw >> ((va & 3) * 8)) as u8)
    } else {
        // Same longword as the previous byte: already buffered; re-read
        // memory for the value without charging a new reference.
        let pa = cpu.translate_data(va, sink)?;
        let b = cpu.mem.phys().read_u8(pa);
        Ok(b)
    }
}

fn chunk_width(chunk: u32) -> (Width, u32) {
    match chunk {
        4 => (Width::Long, 4),
        2 | 3 => (Width::Word, 2),
        _ => (Width::Byte, 1),
    }
}

fn write_chunk<S: CycleSink>(
    cpu: &mut Cpu,
    u_write: vax_ucode::MicroAddr,
    va: u32,
    value: u32,
    bytes: u32,
    sink: &mut S,
) -> Result<(), Fault> {
    let (width, _) = chunk_width(bytes);
    cpu.write_data(u_write, va, width, value, sink)
}
