//! The execute phase: per-opcode microroutines with real architectural
//! semantics.
//!
//! Every handler begins at the opcode's execute-routine entry (already
//! issued by [`execute`]) and charges additional cycles to the opcode's
//! compute/read/write control-store slots. Result stores to instruction
//! destinations go through the *specifier* write path
//! ([`crate::specifier::store_operand`]), because the paper attributes
//! operand writes to specifier processing (§3.2); stack pushes, string
//! stores and other non-operand references stay in the execute row.

mod callret;
mod character;
mod decimal;
mod field;
mod float;
mod simple;
mod system;

use crate::cpu::{Cpu, ExecStop};
use crate::fault::Fault;
use crate::specifier::{EvalOp, EvalOps};
use upc_monitor::CycleSink;
use vax_arch::{BranchClass, DataType, Opcode};
use vax_mem::Width;

/// Run the execute microroutine for `op`.
pub(crate) fn execute<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    ops: &EvalOps,
    disp: Option<i32>,
    sink: &mut S,
) -> Result<(), ExecStop> {
    cpu.micro_compute(cpu.cs.exec_entry(op), sink);
    use vax_arch::OpcodeGroup as G;
    match op.group() {
        G::Simple => simple::exec(cpu, op, ops, disp, sink).map_err(ExecStop::from),
        G::Field => field::exec(cpu, op, ops, disp, sink).map_err(ExecStop::from),
        G::Float => float::exec(cpu, op, ops, sink).map_err(ExecStop::from),
        G::CallRet => callret::exec(cpu, op, ops, sink).map_err(ExecStop::from),
        G::System => system::exec(cpu, op, ops, sink),
        G::Character => character::exec(cpu, op, ops, sink).map_err(ExecStop::from),
        G::Decimal => decimal::exec(cpu, op, ops, sink).map_err(ExecStop::from),
    }
}

// ----- shared helpers --------------------------------------------------------

/// Charge `n` compute cycles to the opcode's execute body (batched into
/// one sink call when the sink type permits coalescing).
pub(crate) fn computes<S: CycleSink>(cpu: &mut Cpu, op: Opcode, n: u32, sink: &mut S) {
    cpu.micro_compute_run(cpu.cs.exec_compute(op), n, sink);
}

/// The branch target for a displacement branch: displacement is relative
/// to the updated PC (past the displacement field). The target
/// calculation and IB redirect share one cycle — the branch-taken
/// microinstruction, which the control store places in the B-Disp row for
/// displacement branches (§5: that cycle is spent only when taken).
pub(crate) fn disp_target<S: CycleSink>(cpu: &mut Cpu, disp: i32, sink: &mut S) -> u32 {
    let _ = sink;
    cpu.regs.pc().wrapping_add(disp as u32)
}

/// Take a branch: the IB-redirect cycle (charged to the class's
/// branch-taken µaddress, the Table 2 numerator), PC update, IB flush.
pub(crate) fn take_branch<S: CycleSink>(
    cpu: &mut Cpu,
    class: BranchClass,
    target: u32,
    sink: &mut S,
) {
    cpu.micro_compute(cpu.cs.branch_taken(class), sink);
    cpu.regs.set_pc(target);
    cpu.flush_ib(target, sink);
}

/// Push a longword (stack write in the execute row).
pub(crate) fn push_long<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    value: u32,
    sink: &mut S,
) -> Result<(), Fault> {
    let sp = cpu.regs.sp().wrapping_sub(4);
    cpu.regs.set_sp(sp);
    cpu.write_data(cpu.cs.exec_write(op), sp, Width::Long, value, sink)
}

/// Pop a longword (stack read in the execute row).
pub(crate) fn pop_long<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    sink: &mut S,
) -> Result<u32, Fault> {
    let sp = cpu.regs.sp();
    let v = cpu.read_data(cpu.cs.exec_read(op), sp, Width::Long, sink)?;
    cpu.regs.set_sp(sp.wrapping_add(4));
    Ok(v)
}

// ----- condition-code arithmetic ---------------------------------------------

/// All-ones mask of a data type's width (integer types).
pub(crate) fn mask_of(dtype: DataType) -> u32 {
    match dtype {
        DataType::Byte => 0xFF,
        DataType::Word => 0xFFFF,
        _ => 0xFFFF_FFFF,
    }
}

/// Sign bit of a data type's width.
pub(crate) fn sign_of(dtype: DataType) -> u32 {
    match dtype {
        DataType::Byte => 0x80,
        DataType::Word => 0x8000,
        _ => 0x8000_0000,
    }
}

/// Set N and Z from `res` at `dtype` width; clears V, preserves C
/// (move-style condition codes).
pub(crate) fn set_nz<S: CycleSink>(cpu: &mut Cpu, res: u32, dtype: DataType, _sink: &mut S) {
    let res = res & mask_of(dtype);
    cpu.psl.n = res & sign_of(dtype) != 0;
    cpu.psl.z = res == 0;
    cpu.psl.v = false;
}

/// `a + b + cin` with full NZVC at `dtype` width.
pub(crate) fn add_cc(cpu: &mut Cpu, a: u32, b: u32, cin: u32, dtype: DataType) -> u32 {
    let mask = mask_of(dtype);
    let sign = sign_of(dtype);
    let (a, b) = (a & mask, b & mask);
    let wide = u64::from(a) + u64::from(b) + u64::from(cin);
    let res = (wide as u32) & mask;
    cpu.psl.n = res & sign != 0;
    cpu.psl.z = res == 0;
    cpu.psl.v = (a ^ res) & (b ^ res) & sign != 0;
    cpu.psl.c = wide > u64::from(mask);
    res
}

/// `a - b` with full NZVC at `dtype` width (C = borrow).
pub(crate) fn sub_cc(cpu: &mut Cpu, a: u32, b: u32, dtype: DataType) -> u32 {
    let mask = mask_of(dtype);
    let sign = sign_of(dtype);
    let (a, b) = (a & mask, b & mask);
    let res = a.wrapping_sub(b) & mask;
    cpu.psl.n = res & sign != 0;
    cpu.psl.z = res == 0;
    cpu.psl.v = (a ^ b) & (a ^ res) & sign != 0;
    cpu.psl.c = b > a;
    res
}

/// Sign-extend a value of `dtype` width to 32 bits.
pub(crate) fn sext(value: u32, dtype: DataType) -> i32 {
    match dtype {
        DataType::Byte => value as u8 as i8 as i32,
        DataType::Word => value as u16 as i16 as i32,
        _ => value as i32,
    }
}

/// Convenience: store through the specifier write path.
pub(crate) fn store<S: CycleSink>(
    cpu: &mut Cpu,
    eop: &EvalOp,
    value: u64,
    sink: &mut S,
) -> Result<(), Fault> {
    crate::specifier::store_operand(cpu, eop, value, sink)
}
