//! SYSTEM group: privileged operations, change-mode system service
//! requests, context switching, queue manipulation, protection probes.

use super::{computes, take_branch};
use crate::cpu::{scb, Cpu, ExecStop};
use crate::fault::Fault;
use crate::ipr::IprReg;
use crate::psl::{Mode, Psl};
use crate::specifier::EvalOps;
use upc_monitor::{CycleSink, MachineEvent};
use vax_arch::{BranchClass, Opcode, Reg};
use vax_mem::{AddressSpace, Width};

/// PCB field offsets (physical layout used by SVPCTX/LDPCTX).
#[allow(dead_code)]
pub(crate) mod pcb {
    /// Kernel stack pointer.
    pub const KSP: u32 = 0;
    /// User stack pointer.
    pub const USP: u32 = 4;
    /// `R0` … `R11` at `GPR + 4 * n`.
    pub const GPR: u32 = 8;
    /// Argument pointer.
    pub const AP: u32 = 56;
    /// Frame pointer.
    pub const FP: u32 = 60;
    /// P0 base register.
    pub const P0BR: u32 = 72;
    /// P0 length register.
    pub const P0LR: u32 = 76;
    /// P1 base register.
    pub const P1BR: u32 = 80;
    /// P1 length register.
    pub const P1LR: u32 = 84;
    /// Total PCB size in bytes (offsets 64/68 reserved, matching the
    /// architectural PCB's PC/PSL slots, which this model leaves on the
    /// kernel stack as the real SVPCTX does).
    pub const SIZE: u32 = 88;
}

pub(super) fn exec<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    ops: &EvalOps,
    sink: &mut S,
) -> Result<(), ExecStop> {
    use Opcode::*;
    match op {
        Nop => {}
        Halt => {
            if cpu.psl.mode == Mode::Kernel {
                return Err(ExecStop::Halt);
            }
            return Err(ExecStop::Fault(Fault::Privileged));
        }
        Bpt => {
            return Err(ExecStop::Fault(Fault::ReservedInstruction {
                opcode: op.to_byte(),
            }));
        }
        Chmk | Chme | Chms | Chmu => {
            chmx(cpu, op, ops[0].u32() as u16, sink)?;
        }
        Rei => {
            rei(cpu, op, sink)?;
        }
        Svpctx => {
            require_kernel(cpu)?;
            svpctx(cpu, op, sink);
        }
        Ldpctx => {
            require_kernel(cpu)?;
            ldpctx(cpu, op, sink);
        }
        Mtpr => {
            require_kernel(cpu)?;
            mtpr(cpu, op, ops, sink)?;
        }
        Mfpr => {
            require_kernel(cpu)?;
            computes(cpu, op, 2, sink);
            let value = match IprReg::from_code(ops[0].u32()) {
                Some(IprReg::Pcbb) => cpu.pcbb,
                Some(IprReg::Scbb) => cpu.scbb,
                Some(IprReg::Ipl) => u32::from(cpu.psl.ipl),
                Some(IprReg::Sisr) => u32::from(cpu.sisr),
                Some(IprReg::Ksp) => banked(cpu, Mode::Kernel, false),
                Some(IprReg::Usp) => banked(cpu, Mode::User, false),
                Some(IprReg::Isp) => banked(cpu, Mode::Kernel, true),
                Some(IprReg::Sirr) | None => 0,
            };
            super::store(cpu, &ops[1], u64::from(value), sink).map_err(ExecStop::Fault)?;
        }
        Prober | Probew => {
            computes(cpu, op, 4, sink);
            let base = ops[2].addr();
            let accessible = cpu.mem.probe_va(base);
            // Z set when the access would fault.
            cpu.psl.z = !accessible;
            cpu.psl.n = false;
            cpu.psl.v = false;
            cpu.psl.c = false;
        }
        Insque => {
            insque(cpu, op, ops, sink).map_err(ExecStop::Fault)?;
        }
        Remque => {
            remque(cpu, op, ops, sink).map_err(ExecStop::Fault)?;
        }
        other => unreachable!("{other} is not a SYSTEM opcode"),
    }
    Ok(())
}

fn require_kernel(cpu: &Cpu) -> Result<(), ExecStop> {
    if cpu.psl.mode == Mode::Kernel {
        Ok(())
    } else {
        Err(ExecStop::Fault(Fault::Privileged))
    }
}

fn banked(cpu: &mut Cpu, mode: Mode, interrupt_stack: bool) -> u32 {
    let psl = Psl {
        mode,
        interrupt_stack,
        ..cpu.psl
    };
    cpu.regs.banked_sp(&psl)
}

/// `CHMx`: push PSL, PC and the service code on the kernel stack, raise
/// mode, vector through the SCB. The service routine pops the code and
/// returns with `REI`.
fn chmx<S: CycleSink>(cpu: &mut Cpu, op: Opcode, code: u16, sink: &mut S) -> Result<(), ExecStop> {
    computes(cpu, op, 7, sink);
    let old_psl = cpu.psl;
    let mut new_psl = cpu.psl;
    new_psl.mode = Mode::Kernel;
    cpu.regs.switch_stack(&old_psl, &new_psl);
    cpu.psl = new_psl;
    let u_write = cpu.cs.exec_write(op);
    let sp = cpu.regs.sp().wrapping_sub(12);
    cpu.regs.set_sp(sp);
    cpu.write_data(u_write, sp + 8, Width::Long, old_psl.to_u32(), sink)
        .map_err(ExecStop::Fault)?;
    computes(cpu, op, 3, sink);
    cpu.write_data(u_write, sp + 4, Width::Long, cpu.regs.pc(), sink)
        .map_err(ExecStop::Fault)?;
    computes(cpu, op, 3, sink);
    cpu.write_data(u_write, sp, Width::Long, u32::from(code), sink)
        .map_err(ExecStop::Fault)?;
    let vector = match op {
        Opcode::Chmk => scb::CHMK,
        Opcode::Chme => scb::CHME,
        Opcode::Chms => scb::CHMS,
        _ => scb::CHMU,
    };
    let handler = cpu.micro_read_phys(cpu.cs.exec_read(op), cpu.scbb + u32::from(vector), sink);
    take_branch(cpu, BranchClass::SystemBranch, handler, sink);
    Ok(())
}

/// `REI`: pop PC and PSL, validate, resume. Dropping IPL lets pending
/// software interrupts deliver before the next instruction.
fn rei<S: CycleSink>(cpu: &mut Cpu, op: Opcode, sink: &mut S) -> Result<(), ExecStop> {
    computes(cpu, op, 6, sink);
    let u_read = cpu.cs.exec_read(op);
    let sp = cpu.regs.sp();
    let pc = cpu
        .read_data(u_read, sp, Width::Long, sink)
        .map_err(ExecStop::Fault)?;
    let psl_word = cpu
        .read_data(u_read, sp + 4, Width::Long, sink)
        .map_err(ExecStop::Fault)?;
    cpu.regs.set_sp(sp + 8);
    computes(cpu, op, 3, sink);
    let old_psl = cpu.psl;
    let new_psl = Psl::from_u32(psl_word);
    cpu.regs.switch_stack(&old_psl, &new_psl);
    cpu.psl = new_psl;
    take_branch(cpu, BranchClass::SystemBranch, pc, sink);
    Ok(())
}

/// `SVPCTX`: save the current process context into the PCB (physical
/// writes interleaved with address-update cycles), then continue on the
/// interrupt stack. As on the real VAX, PC and PSL are *not* saved — the
/// rescheduling interrupt left them on the process's kernel stack, and
/// the saved KSP points at that frame.
fn svpctx<S: CycleSink>(cpu: &mut Cpu, op: Opcode, sink: &mut S) {
    computes(cpu, op, 4, sink);
    let base = cpu.pcbb;
    let u_write = cpu.cs.exec_write(op);
    // Bank the live SP first.
    let psl = cpu.psl;
    cpu.regs.set_banked_sp(&psl, cpu.regs.sp());
    let ksp = banked(cpu, Mode::Kernel, false);
    let usp = banked(cpu, Mode::User, false);
    cpu.micro_write_phys(u_write, base + pcb::KSP, ksp, sink);
    computes(cpu, op, 1, sink);
    cpu.micro_write_phys(u_write, base + pcb::USP, usp, sink);
    computes(cpu, op, 1, sink);
    for n in 0..12u32 {
        let v = cpu.regs.get(Reg::from_number(n as u8));
        cpu.micro_write_phys(u_write, base + pcb::GPR + 4 * n, v, sink);
        computes(cpu, op, 1, sink);
    }
    cpu.micro_write_phys(u_write, base + pcb::AP, cpu.regs.get(Reg::Ap), sink);
    computes(cpu, op, 1, sink);
    cpu.micro_write_phys(u_write, base + pcb::FP, cpu.regs.get(Reg::Fp), sink);
    computes(cpu, op, 1, sink);
    // Continue on the interrupt stack.
    let old = cpu.psl;
    let on_is = Psl {
        mode: Mode::Kernel,
        interrupt_stack: true,
        ..cpu.psl
    };
    cpu.regs.switch_stack(&old, &on_is);
    cpu.psl = on_is;
}

/// `LDPCTX`: load the context addressed by `PCBB`, install the new
/// address space (flushing the process half of the TB), and switch to the
/// new process's kernel stack — whose top holds the PC/PSL frame a
/// following `REI` resumes from.
fn ldpctx<S: CycleSink>(cpu: &mut Cpu, op: Opcode, sink: &mut S) {
    computes(cpu, op, 4, sink);
    let base = cpu.pcbb;
    let u_read = cpu.cs.exec_read(op);
    let ksp = cpu.micro_read_phys(u_read, base + pcb::KSP, sink);
    let usp = cpu.micro_read_phys(u_read, base + pcb::USP, sink);
    for n in 0..12u32 {
        let v = cpu.micro_read_phys(u_read, base + pcb::GPR + 4 * n, sink);
        cpu.regs.set(Reg::from_number(n as u8), v);
        if n % 3 == 0 {
            computes(cpu, op, 1, sink);
        }
    }
    let ap = cpu.micro_read_phys(u_read, base + pcb::AP, sink);
    let fp = cpu.micro_read_phys(u_read, base + pcb::FP, sink);
    let p0br = cpu.micro_read_phys(u_read, base + pcb::P0BR, sink);
    let p0lr = cpu.micro_read_phys(u_read, base + pcb::P0LR, sink);
    let p1br = cpu.micro_read_phys(u_read, base + pcb::P1BR, sink);
    let p1lr = cpu.micro_read_phys(u_read, base + pcb::P1LR, sink);
    computes(cpu, op, 4, sink);
    cpu.regs.set(Reg::Ap, ap);
    cpu.regs.set(Reg::Fp, fp);
    // Install the new address space: flushes the process TB half.
    cpu.mem.switch_address_space(AddressSpace {
        p0br,
        p0lr,
        p1br,
        p1lr,
    });
    sink.trace_event(MachineEvent::ContextSwitch { new_space: p0br });
    // Install the stack banks, then continue in kernel mode on the new
    // process's kernel stack.
    let kernel = Psl {
        mode: Mode::Kernel,
        interrupt_stack: false,
        ..cpu.psl
    };
    let user = Psl {
        mode: Mode::User,
        interrupt_stack: false,
        ..cpu.psl
    };
    cpu.regs.set_banked_sp(&user, usp);
    let old = cpu.psl;
    cpu.regs.switch_stack(&old, &kernel);
    // The loaded KSP wins even if we were already on the kernel stack
    // (boot-time LDPCTX).
    cpu.regs.set_sp(ksp);
    cpu.psl = kernel;
    computes(cpu, op, 1, sink);
}

/// `MTPR src, procreg`.
fn mtpr<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    ops: &EvalOps,
    sink: &mut S,
) -> Result<(), ExecStop> {
    computes(cpu, op, 2, sink);
    let value = ops[0].u32();
    match IprReg::from_code(ops[1].u32()) {
        Some(IprReg::Pcbb) => cpu.pcbb = value,
        Some(IprReg::Scbb) => cpu.scbb = value,
        Some(IprReg::Ipl) => cpu.psl.ipl = (value & 0x1F) as u8,
        Some(IprReg::Sirr) => {
            // Posting a software interrupt request: the tagged
            // microinstruction gives Table 7 its numerator.
            cpu.micro_compute(cpu.cs.soft_int_request(), sink);
            if (1..=15).contains(&value) {
                cpu.sisr |= 1 << value;
            }
        }
        Some(IprReg::Sisr) => cpu.sisr = (value & 0xFFFE) as u16,
        Some(IprReg::Ksp) => {
            let psl = Psl {
                mode: Mode::Kernel,
                interrupt_stack: false,
                ..cpu.psl
            };
            set_bank_or_live(cpu, psl, value);
        }
        Some(IprReg::Usp) => {
            let psl = Psl {
                mode: Mode::User,
                interrupt_stack: false,
                ..cpu.psl
            };
            set_bank_or_live(cpu, psl, value);
        }
        Some(IprReg::Isp) => {
            let psl = Psl {
                mode: Mode::Kernel,
                interrupt_stack: true,
                ..cpu.psl
            };
            set_bank_or_live(cpu, psl, value);
        }
        None => {
            // Unimplemented processor register: ignored, as the model's
            // kernel never touches others.
        }
    }
    Ok(())
}

/// Writing the SP bank that is currently live must update the live SP.
fn set_bank_or_live(cpu: &mut Cpu, target: Psl, value: u32) {
    let live = cpu.psl;
    if live.mode == target.mode && live.interrupt_stack == target.interrupt_stack {
        cpu.regs.set_sp(value);
    } else {
        cpu.regs.set_banked_sp(&target, value);
    }
}

/// `INSQUE entry, pred`: insert into a doubly-linked absolute queue.
fn insque<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    ops: &EvalOps,
    sink: &mut S,
) -> Result<(), Fault> {
    computes(cpu, op, 3, sink);
    let entry = ops[0].addr();
    let pred = ops[1].addr();
    let u_read = cpu.cs.exec_read(op);
    let u_write = cpu.cs.exec_write(op);
    let succ = cpu.read_data(u_read, pred, Width::Long, sink)?;
    computes(cpu, op, 2, sink);
    cpu.write_data(u_write, entry, Width::Long, succ, sink)?;
    computes(cpu, op, 3, sink);
    cpu.write_data(u_write, entry + 4, Width::Long, pred, sink)?;
    computes(cpu, op, 3, sink);
    cpu.write_data(u_write, pred, Width::Long, entry, sink)?;
    computes(cpu, op, 3, sink);
    cpu.write_data(u_write, succ + 4, Width::Long, entry, sink)?;
    // Z when the queue was empty before insertion.
    cpu.psl.z = succ == pred;
    cpu.psl.n = false;
    cpu.psl.v = false;
    cpu.psl.c = false;
    Ok(())
}

/// `REMQUE entry, addr`: remove from a doubly-linked absolute queue.
fn remque<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    ops: &EvalOps,
    sink: &mut S,
) -> Result<(), Fault> {
    computes(cpu, op, 3, sink);
    let entry = ops[0].addr();
    let u_read = cpu.cs.exec_read(op);
    let u_write = cpu.cs.exec_write(op);
    let succ = cpu.read_data(u_read, entry, Width::Long, sink)?;
    let pred = cpu.read_data(u_read, entry + 4, Width::Long, sink)?;
    computes(cpu, op, 2, sink);
    cpu.write_data(u_write, pred, Width::Long, succ, sink)?;
    computes(cpu, op, 3, sink);
    cpu.write_data(u_write, succ + 4, Width::Long, pred, sink)?;
    super::store(cpu, &ops[1], u64::from(entry), sink)?;
    // Z when the queue is now empty.
    cpu.psl.z = succ == pred;
    cpu.psl.n = false;
    cpu.psl.v = false;
    cpu.psl.c = false;
    Ok(())
}
