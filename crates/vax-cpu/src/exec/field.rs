//! FIELD group: variable bit fields and bit branches.

use super::{computes, disp_target, set_nz, sub_cc, take_branch};
use crate::cpu::Cpu;
use crate::fault::Fault;
use crate::operand::Loc;
use crate::specifier::{EvalOp, EvalOps};
use upc_monitor::CycleSink;
use vax_arch::{BranchClass, DataType, Opcode, Reg};
use vax_mem::Width;

pub(super) fn exec<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    ops: &EvalOps,
    disp: Option<i32>,
    sink: &mut S,
) -> Result<(), Fault> {
    use Opcode::*;
    match op {
        Extv | Extzv => {
            computes(cpu, op, 6, sink);
            let pos = ops[0].u32() as i32;
            let size = ops[1].u32() & 0x3F;
            let raw = read_field(cpu, op, pos, size, &ops[2], sink)?;
            let value = if op == Extv && size > 0 && size < 32 {
                // Sign-extend from the field's top bit.
                let shift = 32 - size;
                ((raw << shift) as i32 >> shift) as u32
            } else {
                raw
            };
            set_nz(cpu, value, DataType::Long, sink);
            super::store(cpu, &ops[3], u64::from(value), sink)?;
        }
        Insv => {
            computes(cpu, op, 6, sink);
            let src = ops[0].u32();
            let pos = ops[1].u32() as i32;
            let size = ops[2].u32() & 0x3F;
            write_field(cpu, op, pos, size, &ops[3], src, sink)?;
        }
        Ffs | Ffc => {
            computes(cpu, op, 7, sink);
            let start = ops[0].u32() as i32;
            let size = ops[1].u32() & 0x3F;
            let raw = read_field(cpu, op, start, size, &ops[2], sink)?;
            let want_set = op == Ffs;
            let mut found = None;
            for i in 0..size {
                let bit = (raw >> i) & 1;
                if (bit == 1) == want_set {
                    found = Some(i);
                    break;
                }
            }
            let (z, result) = match found {
                Some(i) => (false, start.wrapping_add(i as i32) as u32),
                None => (true, start.wrapping_add(size as i32) as u32),
            };
            cpu.psl.z = z;
            cpu.psl.n = false;
            cpu.psl.v = false;
            cpu.psl.c = false;
            super::store(cpu, &ops[3], u64::from(result), sink)?;
        }
        Cmpv | Cmpzv => {
            computes(cpu, op, 6, sink);
            let pos = ops[0].u32() as i32;
            let size = ops[1].u32() & 0x3F;
            let raw = read_field(cpu, op, pos, size, &ops[2], sink)?;
            let field = if op == Cmpv && size > 0 && size < 32 {
                let shift = 32 - size;
                ((raw << shift) as i32 >> shift) as u32
            } else {
                raw
            };
            sub_cc(cpu, field, ops[3].u32(), DataType::Long);
        }
        Bbs | Bbc | Bbss | Bbcs | Bbsc | Bbcc | Bbssi | Bbcci => {
            computes(cpu, op, 2, sink);
            let pos = ops[0].u32() as i32;
            let bit = read_field(cpu, op, pos, 1, &ops[1], sink)? & 1;
            // The set/clear variants update the bit after testing.
            let new_bit = match op {
                Bbss | Bbcs | Bbssi => Some(1u32),
                Bbsc | Bbcc | Bbcci => Some(0u32),
                _ => None,
            };
            if let Some(nb) = new_bit {
                if nb != bit {
                    write_field(cpu, op, pos, 1, &ops[1], nb, sink)?;
                } else {
                    computes(cpu, op, 1, sink);
                }
            }
            let branch_on_set = matches!(op, Bbs | Bbss | Bbsc | Bbssi);
            if (bit == 1) == branch_on_set {
                let t = disp_target(cpu, disp.expect("displacement decoded"), sink);
                take_branch(cpu, BranchClass::BitBranch, t, sink);
            }
        }
        other => unreachable!("{other} is not a FIELD opcode"),
    }
    Ok(())
}

/// Read a bit field of `size` bits at bit position `pos` relative to a
/// register or byte-addressed base.
fn read_field<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    pos: i32,
    size: u32,
    base: &EvalOp,
    sink: &mut S,
) -> Result<u32, Fault> {
    if size == 0 {
        return Ok(0);
    }
    debug_assert!(size <= 32);
    match base.op.loc {
        Loc::Reg(r) => {
            // Register field: pos must be 0–31 architecturally; a second
            // register supplies bits 32–63.
            let lo = cpu.regs.get(r);
            let hi = cpu.regs.get(Reg::from_number((r.number() + 1) & 0xF));
            let both = u64::from(lo) | (u64::from(hi) << 32);
            let pos = (pos & 31) as u32;
            Ok(extract64(both, pos, size))
        }
        Loc::Mem(va) => {
            let byte = va.wrapping_add((pos >> 3) as u32);
            let bit = (pos & 7) as u32;
            let lw0 = cpu.read_data(cpu.cs.exec_read(op), byte & !3, Width::Long, sink)?;
            let off_bits = (byte & 3) * 8 + bit;
            if off_bits + size <= 32 {
                Ok(extract64(u64::from(lw0), off_bits, size))
            } else {
                let lw1 =
                    cpu.read_data(cpu.cs.exec_read(op), (byte & !3) + 4, Width::Long, sink)?;
                let both = u64::from(lw0) | (u64::from(lw1) << 32);
                Ok(extract64(both, off_bits, size))
            }
        }
        Loc::Value => Ok(0),
    }
}

/// Write a bit field (read-modify-write for memory bases).
fn write_field<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    pos: i32,
    size: u32,
    base: &EvalOp,
    value: u32,
    sink: &mut S,
) -> Result<(), Fault> {
    if size == 0 {
        return Ok(());
    }
    let mask: u64 = if size >= 32 {
        0xFFFF_FFFF
    } else {
        (1u64 << size) - 1
    };
    match base.op.loc {
        Loc::Reg(r) => {
            let pos = (pos & 31) as u32;
            let lo = u64::from(cpu.regs.get(r));
            let hi = u64::from(cpu.regs.get(Reg::from_number((r.number() + 1) & 0xF)));
            let mut both = lo | (hi << 32);
            both = (both & !(mask << pos)) | ((u64::from(value) & mask) << pos);
            cpu.regs.set(r, both as u32);
            if pos + size > 32 {
                cpu.regs.set(
                    Reg::from_number((r.number() + 1) & 0xF),
                    (both >> 32) as u32,
                );
            }
            Ok(())
        }
        Loc::Mem(va) => {
            let byte = va.wrapping_add((pos >> 3) as u32);
            let bit = (pos & 7) as u32;
            let base_lw = byte & !3;
            let off_bits = (byte & 3) * 8 + bit;
            let lw0 = cpu.read_data(cpu.cs.exec_read(op), base_lw, Width::Long, sink)?;
            if off_bits + size <= 32 {
                let mut w = u64::from(lw0);
                w = (w & !(mask << off_bits)) | ((u64::from(value) & mask) << off_bits);
                cpu.write_data(cpu.cs.exec_write(op), base_lw, Width::Long, w as u32, sink)
            } else {
                let lw1 = cpu.read_data(cpu.cs.exec_read(op), base_lw + 4, Width::Long, sink)?;
                let mut both = u64::from(lw0) | (u64::from(lw1) << 32);
                both = (both & !(mask << off_bits)) | ((u64::from(value) & mask) << off_bits);
                cpu.write_data(
                    cpu.cs.exec_write(op),
                    base_lw,
                    Width::Long,
                    both as u32,
                    sink,
                )?;
                cpu.write_data(
                    cpu.cs.exec_write(op),
                    base_lw + 4,
                    Width::Long,
                    (both >> 32) as u32,
                    sink,
                )
            }
        }
        Loc::Value => Ok(()),
    }
}

fn extract64(src: u64, pos: u32, size: u32) -> u32 {
    debug_assert!((1..=32).contains(&size));
    let mask: u64 = if size >= 64 {
        u64::MAX
    } else {
        (1u64 << size) - 1
    };
    ((src >> pos) & mask) as u32
}

#[cfg(test)]
mod tests {
    use super::extract64;

    #[test]
    fn extract_basic() {
        assert_eq!(extract64(0b1011_0100, 2, 4), 0b1101);
        assert_eq!(extract64(u64::MAX, 30, 32), 0xFFFF_FFFF);
        assert_eq!(extract64(1 << 40, 40, 1), 1);
    }
}
