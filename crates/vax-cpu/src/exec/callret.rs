//! CALL/RET group: procedure linkage ("involving considerable state saving
//! and restoring on the stack", §3.1) and multi-register push/pop.
//!
//! The stack frame built by `CALLS`/`CALLG` (from low to high addresses at
//! return time):
//!
//! ```text
//!   FP -> [ condition handler (0)     ]
//!         [ mask | calls-flag (bit 13)]
//!         [ saved AP                  ]
//!         [ saved FP                  ]
//!         [ return PC                 ]
//!         [ saved Rn ... (mask order) ]
//!         [ argument count (CALLS)    ]
//!         [ arguments ...             ]
//! ```

use super::{computes, push_long, take_branch};
use crate::cpu::Cpu;
use crate::fault::Fault;
use crate::specifier::EvalOps;
use upc_monitor::CycleSink;
use vax_arch::{BranchClass, Opcode, Reg};
use vax_mem::Width;

const CALLS_FLAG: u32 = 1 << 13;

pub(super) fn exec<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    ops: &EvalOps,
    sink: &mut S,
) -> Result<(), Fault> {
    use Opcode::*;
    match op {
        Calls => {
            let numarg = ops[0].u32() & 0xFF;
            let dst = ops[1].addr();
            computes(cpu, op, 2, sink);
            // Push the argument count; AP will point here.
            push_long(cpu, op, numarg, sink)?;
            let arg_base = cpu.regs.sp();
            call_common(cpu, op, dst, arg_base, true, sink)
        }
        Callg => {
            let arg_base = ops[0].addr();
            let dst = ops[1].addr();
            computes(cpu, op, 2, sink);
            call_common(cpu, op, dst, arg_base, false, sink)
        }
        Ret => {
            computes(cpu, op, 8, sink);
            // Discard down to the frame, then read it back.
            let fp = cpu.regs.get(Reg::Fp);
            let u_read = cpu.cs.exec_read(op);
            let _handler = cpu.read_data(u_read, fp, Width::Long, sink)?;
            let maskword = cpu.read_data(u_read, fp + 4, Width::Long, sink)?;
            let saved_ap = cpu.read_data(u_read, fp + 8, Width::Long, sink)?;
            let saved_fp = cpu.read_data(u_read, fp + 12, Width::Long, sink)?;
            let return_pc = cpu.read_data(u_read, fp + 16, Width::Long, sink)?;
            let mut sp = fp + 20;
            let mask = maskword & 0x0FFF;
            computes(cpu, op, 2, sink);
            // Registers were pushed high-to-low, so they pop low-to-high,
            // with a register-scan cycle per pop.
            for n in 0..12 {
                if mask & (1 << n) != 0 {
                    let v = cpu.read_data(u_read, sp, Width::Long, sink)?;
                    cpu.regs.set(Reg::from_number(n), v);
                    computes(cpu, op, 1, sink);
                    sp += 4;
                }
            }
            let old_ap = cpu.regs.get(Reg::Ap);
            cpu.regs.set(Reg::Ap, saved_ap);
            cpu.regs.set(Reg::Fp, saved_fp);
            if maskword & CALLS_FLAG != 0 {
                // Pop the argument count and the arguments.
                let numarg = cpu.read_data(u_read, old_ap, Width::Long, sink)? & 0xFF;
                sp = old_ap + 4 + 4 * numarg;
            }
            cpu.regs.set_sp(sp);
            take_branch(cpu, BranchClass::ProcedureCallRet, return_pc, sink);
            Ok(())
        }
        Pushr => {
            computes(cpu, op, 2, sink);
            let mask = ops[0].u32() & 0x7FFF;
            // PUSHR stores R0 at the lowest address: push high-to-low.
            for n in (0..15).rev() {
                if mask & (1 << n) != 0 {
                    let v = cpu.regs.get(Reg::from_number(n));
                    push_long(cpu, op, v, sink)?;
                    computes(cpu, op, 3, sink);
                }
            }
            Ok(())
        }
        Popr => {
            computes(cpu, op, 2, sink);
            let mask = ops[0].u32() & 0x7FFF;
            let u_read = cpu.cs.exec_read(op);
            let mut sp = cpu.regs.sp();
            for n in 0..15 {
                if mask & (1 << n) != 0 {
                    let v = cpu.read_data(u_read, sp, Width::Long, sink)?;
                    cpu.regs.set(Reg::from_number(n), v);
                    sp += 4;
                }
            }
            cpu.regs.set_sp(sp);
            Ok(())
        }
        other => unreachable!("{other} is not a CALL/RET opcode"),
    }
}

/// The shared tail of `CALLS`/`CALLG`: read the entry mask, save state,
/// build the frame, jump.
fn call_common<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    dst: u32,
    arg_base: u32,
    is_calls: bool,
    sink: &mut S,
) -> Result<(), Fault> {
    // The procedure's entry mask word.
    let mask = cpu.read_data(cpu.cs.exec_read(op), dst, Width::Word, sink)? & 0x0FFF;
    computes(cpu, op, 6, sink);
    // Push registers 11..0 under the mask (high-to-low); the microcode
    // spaces pushes with register-scan/address-update cycles, which also
    // limits (but does not eliminate) write-buffer stalls (§5 notes the
    // CALL/RET group's large write-stall contribution).
    for n in (0..12).rev() {
        if mask & (1 << n) != 0 {
            let v = cpu.regs.get(Reg::from_number(n));
            push_long(cpu, op, v, sink)?;
            computes(cpu, op, 4, sink);
        }
    }
    // Push PC, FP, AP, mask word, handler slot.
    push_long(cpu, op, cpu.regs.pc(), sink)?;
    computes(cpu, op, 2, sink);
    push_long(cpu, op, cpu.regs.get(Reg::Fp), sink)?;
    computes(cpu, op, 2, sink);
    push_long(cpu, op, cpu.regs.get(Reg::Ap), sink)?;
    computes(cpu, op, 2, sink);
    let maskword = mask | if is_calls { CALLS_FLAG } else { 0 };
    push_long(cpu, op, maskword, sink)?;
    computes(cpu, op, 2, sink);
    push_long(cpu, op, 0, sink)?; // condition handler
    computes(cpu, op, 3, sink);
    cpu.regs.set(Reg::Fp, cpu.regs.sp());
    cpu.regs.set(Reg::Ap, arg_base);
    // Execution begins past the entry mask.
    take_branch(cpu, BranchClass::ProcedureCallRet, dst + 2, sink);
    Ok(())
}
