//! FLOAT group: F_floating and D_floating arithmetic (via the Floating
//! Point Accelerator, which all measured machines had — paper §2.2) plus
//! integer multiply/divide, which the paper groups here.

use super::{computes, store};
use crate::cpu::Cpu;
use crate::fault::Fault;
use crate::ffloat;
use crate::specifier::{EvalOp, EvalOps};
use upc_monitor::CycleSink;
use vax_arch::{DataType, Opcode};

/// FPA-assisted execute-cycle costs (beyond the entry cycle).
fn extra_cycles(op: Opcode) -> u32 {
    use Opcode::*;
    match op {
        Movf | Movd | Mnegf | Tstf | Tstd => 3,
        Cmpf | Cmpd => 4,
        Cvtfb | Cvtfw | Cvtfl | Cvtbf | Cvtwf | Cvtlf | Cvtld | Cvtdl => 6,
        Addf2 | Addf3 | Subf2 | Subf3 => 7,
        Addd2 | Addd3 | Subd2 | Subd3 => 7,
        Mulf2 | Mulf3 => 9,
        Muld2 | Muld3 => 10,
        Divf2 | Divf3 => 14,
        Divd2 | Divd3 => 18,
        Mull2 | Mull3 => 11,
        Divl2 | Divl3 => 16,
        Emul => 11,
        Ediv => 15,
        other => unreachable!("{other} is not a FLOAT opcode"),
    }
}

fn decode_op(eop: &EvalOp) -> f64 {
    match eop.dtype {
        DataType::FFloat => ffloat::f_decode(eop.u32()),
        DataType::DFloat => ffloat::d_decode(eop.u64()),
        _ => eop.u32() as i32 as f64,
    }
}

fn encode_for(dtype: DataType, value: f64) -> u64 {
    match dtype {
        DataType::FFloat => u64::from(ffloat::f_encode(value)),
        DataType::DFloat => ffloat::d_encode(value),
        _ => unreachable!("float encode of {dtype}"),
    }
}

fn set_float_cc(cpu: &mut Cpu, value: f64) {
    cpu.psl.n = value < 0.0;
    cpu.psl.z = value == 0.0;
    cpu.psl.v = false;
    cpu.psl.c = false;
}

pub(super) fn exec<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    ops: &EvalOps,
    sink: &mut S,
) -> Result<(), Fault> {
    use Opcode::*;
    computes(cpu, op, extra_cycles(op), sink);
    match op {
        // ----- two/three operand arithmetic ---------------------------------
        Addf2 | Addd2 | Subf2 | Subd2 | Mulf2 | Muld2 | Divf2 | Divd2 => {
            let a = decode_op(&ops[0]);
            let b = decode_op(&ops[1]);
            let r = apply(op, b, a, cpu);
            set_float_cc(cpu, r);
            store(cpu, &ops[1], encode_for(ops[1].dtype, r), sink)?;
        }
        Addf3 | Addd3 | Subf3 | Subd3 | Mulf3 | Muld3 | Divf3 | Divd3 => {
            let a = decode_op(&ops[0]);
            let b = decode_op(&ops[1]);
            let r = apply(op, b, a, cpu);
            set_float_cc(cpu, r);
            store(cpu, &ops[2], encode_for(ops[2].dtype, r), sink)?;
        }
        Movf | Movd => {
            let v = decode_op(&ops[0]);
            set_float_cc(cpu, v);
            store(cpu, &ops[1], ops[0].u64(), sink)?;
        }
        Mnegf => {
            let v = -decode_op(&ops[0]);
            set_float_cc(cpu, v);
            store(cpu, &ops[1], encode_for(DataType::FFloat, v), sink)?;
        }
        Cmpf | Cmpd => {
            let a = decode_op(&ops[0]);
            let b = decode_op(&ops[1]);
            cpu.psl.n = a < b;
            cpu.psl.z = a == b;
            cpu.psl.v = false;
            cpu.psl.c = false;
        }
        Tstf | Tstd => {
            let v = decode_op(&ops[0]);
            set_float_cc(cpu, v);
        }

        // ----- conversions ---------------------------------------------------
        Cvtbf | Cvtwf | Cvtlf => {
            let v = decode_op(&ops[0]);
            set_float_cc(cpu, v);
            store(cpu, &ops[1], encode_for(DataType::FFloat, v), sink)?;
        }
        Cvtld => {
            let v = decode_op(&ops[0]);
            set_float_cc(cpu, v);
            store(cpu, &ops[1], encode_for(DataType::DFloat, v), sink)?;
        }
        Cvtfb | Cvtfw | Cvtfl | Cvtdl => {
            let v = decode_op(&ops[0]);
            let t = v.trunc();
            let dst = ops[1].dtype;
            let (r, overflow) = clamp_int(t, dst);
            cpu.psl.n = (r as i32) < 0;
            cpu.psl.z = r == 0;
            cpu.psl.v = overflow;
            cpu.psl.c = false;
            store(cpu, &ops[1], u64::from(r), sink)?;
        }

        // ----- integer multiply/divide ---------------------------------------
        Mull2 => {
            let (r, v) = mul32(ops[1].u32() as i32, ops[0].u32() as i32);
            int_cc(cpu, r, v);
            store(cpu, &ops[1], r as u32 as u64, sink)?;
        }
        Mull3 => {
            let (r, v) = mul32(ops[0].u32() as i32, ops[1].u32() as i32);
            int_cc(cpu, r, v);
            store(cpu, &ops[2], r as u32 as u64, sink)?;
        }
        Divl2 => {
            let (r, v) = div32(ops[1].u32() as i32, ops[0].u32() as i32);
            int_cc(cpu, r, v);
            store(cpu, &ops[1], r as u32 as u64, sink)?;
        }
        Divl3 => {
            let (r, v) = div32(ops[1].u32() as i32, ops[0].u32() as i32);
            int_cc(cpu, r, v);
            store(cpu, &ops[2], r as u32 as u64, sink)?;
        }
        Emul => {
            let prod = i64::from(ops[0].u32() as i32) * i64::from(ops[1].u32() as i32)
                + i64::from(ops[2].u32() as i32);
            cpu.psl.n = prod < 0;
            cpu.psl.z = prod == 0;
            cpu.psl.v = false;
            cpu.psl.c = false;
            store(cpu, &ops[3], prod as u64, sink)?;
        }
        Ediv => {
            let divisor = ops[0].u32() as i32;
            let dividend = ops[1].u64() as i64;
            if divisor == 0 {
                cpu.psl.v = true;
                store(cpu, &ops[2], dividend as u32 as u64, sink)?;
                store(cpu, &ops[3], 0, sink)?;
            } else {
                let q = dividend / i64::from(divisor);
                let r = dividend % i64::from(divisor);
                let overflow = q > i64::from(i32::MAX) || q < i64::from(i32::MIN);
                int_cc(cpu, q as i32, overflow);
                store(cpu, &ops[2], q as u32 as u64, sink)?;
                store(cpu, &ops[3], r as u32 as u64, sink)?;
            }
        }
        other => unreachable!("{other} is not a FLOAT opcode"),
    }
    Ok(())
}

fn apply(op: Opcode, dst: f64, src: f64, _cpu: &mut Cpu) -> f64 {
    use Opcode::*;
    match op {
        Addf2 | Addd2 | Addf3 | Addd3 => dst + src,
        Subf2 | Subd2 | Subf3 | Subd3 => dst - src,
        Mulf2 | Muld2 | Mulf3 | Muld3 => dst * src,
        Divf2 | Divd2 | Divf3 | Divd3 => {
            if src == 0.0 {
                // Divide by zero: result flushed, V set by caller via cc on
                // a zero result; the workloads never divide by zero.
                0.0
            } else {
                dst / src
            }
        }
        other => unreachable!("{other} has no f64 application"),
    }
}

fn mul32(a: i32, b: i32) -> (i32, bool) {
    let wide = i64::from(a) * i64::from(b);
    (wide as i32, wide != i64::from(wide as i32))
}

fn div32(dividend: i32, divisor: i32) -> (i32, bool) {
    if divisor == 0 || (dividend == i32::MIN && divisor == -1) {
        // VAX: quotient = dividend, V set.
        (dividend, true)
    } else {
        (dividend / divisor, false)
    }
}

fn int_cc(cpu: &mut Cpu, r: i32, v: bool) {
    cpu.psl.n = r < 0;
    cpu.psl.z = r == 0;
    cpu.psl.v = v;
    cpu.psl.c = false;
}

fn clamp_int(t: f64, dtype: DataType) -> (u32, bool) {
    let (lo, hi) = match dtype {
        DataType::Byte => (i64::from(i8::MIN), i64::from(i8::MAX)),
        DataType::Word => (i64::from(i16::MIN), i64::from(i16::MAX)),
        _ => (i64::from(i32::MIN), i64::from(i32::MAX)),
    };
    if !t.is_finite() || t < lo as f64 || t > hi as f64 {
        (0, true)
    } else {
        let v = t as i64;
        ((v as u32) & super::mask_of(dtype), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul32_overflow() {
        assert_eq!(mul32(3, 4), (12, false));
        let (_, v) = mul32(0x4000_0000, 4);
        assert!(v);
    }

    #[test]
    fn div32_by_zero_keeps_dividend() {
        assert_eq!(div32(17, 0), (17, true));
        assert_eq!(div32(17, 5), (3, false));
        assert_eq!(div32(i32::MIN, -1), (i32::MIN, true));
    }

    #[test]
    fn clamp_int_detects_overflow() {
        use vax_arch::DataType;
        assert_eq!(clamp_int(100.0, DataType::Byte), (100, false));
        assert!(clamp_int(300.0, DataType::Byte).1);
        assert_eq!(clamp_int(-5.0, DataType::Word), (0xFFFB, false));
    }
}
