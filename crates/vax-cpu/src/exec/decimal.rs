//! DECIMAL group: packed-decimal string arithmetic.
//!
//! Packed decimal stores two digits per byte, most significant digit
//! first, with the sign nibble in the low half of the last byte (12/15 =
//! plus, 13 = minus). Values are modelled as `i128` (up to 31 digits, the
//! architectural maximum).
//!
//! The microcode structure (setup, per-byte digit loop with decimal
//! correction, result store) is what makes the paper's Table 9 Decimal
//! row two orders of magnitude above SIMPLE — ≈100 cycles, almost all
//! Compute.

use super::computes;
use crate::cpu::Cpu;
use crate::fault::Fault;
use crate::specifier::EvalOps;
use upc_monitor::CycleSink;
use vax_arch::{Opcode, Reg};
use vax_mem::Width;

const SETUP_CYCLES: u32 = 12;
/// Decimal-correction microloop cycles per byte (two digits).
const PER_BYTE_CYCLES: u32 = 5;

pub(super) fn exec<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    ops: &EvalOps,
    sink: &mut S,
) -> Result<(), Fault> {
    use Opcode::*;
    computes(cpu, op, SETUP_CYCLES, sink);
    match op {
        Addp4 | Subp4 => {
            let srclen = ops[0].u32() & 0x1F;
            let src = read_packed(cpu, op, ops[1].addr(), srclen, sink)?;
            let dstlen = ops[2].u32() & 0x1F;
            let dstaddr = ops[3].addr();
            let dst = read_packed(cpu, op, dstaddr, dstlen, sink)?;
            let r = if op == Addp4 { dst + src } else { dst - src };
            write_packed(cpu, op, dstaddr, dstlen, r, sink)?;
            decimal_cc(cpu, r, dstlen);
            finish_regs(cpu, ops[1].addr(), dstaddr);
        }
        Addp6 | Subp6 => {
            let len1 = ops[0].u32() & 0x1F;
            let a = read_packed(cpu, op, ops[1].addr(), len1, sink)?;
            let len2 = ops[2].u32() & 0x1F;
            let b = read_packed(cpu, op, ops[3].addr(), len2, sink)?;
            let dstlen = ops[4].u32() & 0x1F;
            let dstaddr = ops[5].addr();
            let r = if op == Addp6 { b + a } else { b - a };
            write_packed(cpu, op, dstaddr, dstlen, r, sink)?;
            decimal_cc(cpu, r, dstlen);
            finish_regs(cpu, ops[1].addr(), dstaddr);
        }
        Mulp | Divp => {
            let len1 = ops[0].u32() & 0x1F;
            let a = read_packed(cpu, op, ops[1].addr(), len1, sink)?;
            let len2 = ops[2].u32() & 0x1F;
            let b = read_packed(cpu, op, ops[3].addr(), len2, sink)?;
            let dstlen = ops[4].u32() & 0x1F;
            let dstaddr = ops[5].addr();
            // Long multiply/divide loops: proportional to digit product.
            computes(cpu, op, 4 * (len1 + len2).max(4), sink);
            let r = if op == Mulp {
                b.saturating_mul(a)
            } else if a == 0 {
                cpu.psl.v = true;
                b
            } else {
                b / a
            };
            write_packed(cpu, op, dstaddr, dstlen, r, sink)?;
            decimal_cc(cpu, r, dstlen);
            finish_regs(cpu, ops[1].addr(), dstaddr);
        }
        Movp => {
            let len = ops[0].u32() & 0x1F;
            let v = read_packed(cpu, op, ops[1].addr(), len, sink)?;
            write_packed(cpu, op, ops[2].addr(), len, v, sink)?;
            decimal_cc(cpu, v, len);
            finish_regs(cpu, ops[1].addr(), ops[2].addr());
        }
        Cmpp3 => {
            let len = ops[0].u32() & 0x1F;
            let a = read_packed(cpu, op, ops[1].addr(), len, sink)?;
            let b = read_packed(cpu, op, ops[2].addr(), len, sink)?;
            compare_cc(cpu, a, b);
        }
        Cmpp4 => {
            let len1 = ops[0].u32() & 0x1F;
            let a = read_packed(cpu, op, ops[1].addr(), len1, sink)?;
            let len2 = ops[2].u32() & 0x1F;
            let b = read_packed(cpu, op, ops[3].addr(), len2, sink)?;
            compare_cc(cpu, a, b);
        }
        Cvtlp => {
            let v = i128::from(ops[0].u32() as i32);
            let dstlen = ops[1].u32() & 0x1F;
            let dstaddr = ops[2].addr();
            write_packed(cpu, op, dstaddr, dstlen, v, sink)?;
            decimal_cc(cpu, v, dstlen);
        }
        Cvtpl => {
            let len = ops[0].u32() & 0x1F;
            let v = read_packed(cpu, op, ops[1].addr(), len, sink)?;
            let r = v.clamp(i128::from(i32::MIN), i128::from(i32::MAX)) as i32;
            cpu.psl.v = i128::from(r) != v;
            cpu.psl.n = r < 0;
            cpu.psl.z = r == 0;
            cpu.psl.c = false;
            super::store(cpu, &ops[2], r as u32 as u64, sink)?;
        }
        Ashp => {
            let shift = ops[0].u32() as u8 as i8;
            let srclen = ops[1].u32() & 0x1F;
            let src = read_packed(cpu, op, ops[2].addr(), srclen, sink)?;
            let _round = ops[3].u32() as u8;
            let dstlen = ops[4].u32() & 0x1F;
            let dstaddr = ops[5].addr();
            computes(cpu, op, 2 * u32::from(shift.unsigned_abs()), sink);
            let r = if shift >= 0 {
                src.saturating_mul(10i128.saturating_pow(u32::from(shift as u8)))
            } else {
                src / 10i128.pow(u32::from(shift.unsigned_abs()))
            };
            write_packed(cpu, op, dstaddr, dstlen, r, sink)?;
            decimal_cc(cpu, r, dstlen);
        }
        other => unreachable!("{other} is not a DECIMAL opcode"),
    }
    Ok(())
}

/// Bytes occupied by a packed decimal of `digits` digits.
fn packed_bytes(digits: u32) -> u32 {
    digits / 2 + 1
}

/// Read a packed decimal string, charging the digit loop.
fn read_packed<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    addr: u32,
    digits: u32,
    sink: &mut S,
) -> Result<i128, Fault> {
    let bytes = packed_bytes(digits);
    let mut value: i128 = 0;
    let mut negative = false;
    for i in 0..bytes {
        // One longword read fetches four bytes of digits.
        if i % 4 == 0 {
            cpu.read_data(cpu.cs.exec_read(op), (addr + i) & !3, Width::Long, sink)?;
        }
        computes(cpu, op, PER_BYTE_CYCLES, sink);
        let pa = cpu.translate_data(addr + i, sink)?;
        let byte = cpu.mem.phys().read_u8(pa);
        let hi = (byte >> 4) & 0xF;
        let lo = byte & 0xF;
        if i == bytes - 1 {
            value = value * 10 + i128::from(hi.min(9));
            negative = lo == 13 || lo == 11;
        } else {
            value = value * 10 + i128::from(hi.min(9));
            value = value * 10 + i128::from(lo.min(9));
        }
    }
    Ok(if negative { -value } else { value })
}

/// Write a packed decimal string, charging the digit loop.
fn write_packed<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    addr: u32,
    digits: u32,
    value: i128,
    sink: &mut S,
) -> Result<(), Fault> {
    let bytes = packed_bytes(digits);
    let negative = value < 0;
    let mut mag = value.unsigned_abs();
    // Truncate to the representable digit count.
    let cap = 10u128.saturating_pow(digits.min(38));
    if digits < 38 {
        mag %= cap;
    }
    // Build digits least significant first.
    let mut digs = [0u8; 40];
    let total_digits = (bytes - 1) * 2 + 1;
    for d in digs.iter_mut().take(total_digits as usize) {
        *d = (mag % 10) as u8;
        mag /= 10;
    }
    for i in 0..bytes {
        computes(cpu, op, PER_BYTE_CYCLES.div_ceil(2), sink);
        let byte = if i == bytes - 1 {
            let sign = if negative { 13 } else { 12 };
            (digs[0] << 4) | sign
        } else {
            // Most significant digits first.
            let hi_index = (total_digits - 2 * i - 1) as usize;
            let lo_index = hi_index - 1;
            (digs[hi_index] << 4) | digs[lo_index]
        };
        cpu.write_data(
            cpu.cs.exec_write(op),
            addr + i,
            Width::Byte,
            u32::from(byte),
            sink,
        )?;
    }
    Ok(())
}

fn decimal_cc(cpu: &mut Cpu, value: i128, digits: u32) {
    cpu.psl.n = value < 0;
    cpu.psl.z = value == 0;
    let cap = 10i128.saturating_pow(digits.max(1));
    cpu.psl.v = value.abs() >= cap;
    cpu.psl.c = false;
}

fn compare_cc(cpu: &mut Cpu, a: i128, b: i128) {
    cpu.psl.n = a < b;
    cpu.psl.z = a == b;
    cpu.psl.v = false;
    cpu.psl.c = false;
}

/// Architectural register state after a decimal operation.
fn finish_regs(cpu: &mut Cpu, src: u32, dst: u32) {
    cpu.regs.set(Reg::R0, 0);
    cpu.regs.set(Reg::R1, src);
    cpu.regs.set(Reg::R2, 0);
    cpu.regs.set(Reg::R3, dst);
}

#[cfg(test)]
mod tests {
    use super::packed_bytes;

    #[test]
    fn packed_sizes() {
        assert_eq!(packed_bytes(0), 1);
        assert_eq!(packed_bytes(1), 1);
        assert_eq!(packed_bytes(2), 2);
        assert_eq!(packed_bytes(15), 8);
        assert_eq!(packed_bytes(31), 16);
    }
}
