//! SIMPLE group: moves, integer arithmetic, booleans, shifts, converts,
//! and all the simple/loop/case/subroutine control flow.

use super::{
    add_cc, computes, disp_target, mask_of, pop_long, push_long, set_nz, sext, store, sub_cc,
    take_branch,
};
use crate::cpu::Cpu;
use crate::fault::Fault;
use crate::specifier::EvalOps;
use upc_monitor::CycleSink;
use vax_arch::{BranchClass, DataType, Opcode};
use vax_mem::Width;

pub(super) fn exec<S: CycleSink>(
    cpu: &mut Cpu,
    op: Opcode,
    ops: &EvalOps,
    disp: Option<i32>,
    sink: &mut S,
) -> Result<(), Fault> {
    use Opcode::*;
    let dt = |i: usize| ops[i].dtype;
    match op {
        // ----- moves -------------------------------------------------------
        Movb | Movw | Movl => {
            let v = ops[0].u32();
            set_nz(cpu, v, dt(0), sink);
            store(cpu, &ops[1], u64::from(v), sink)?;
        }
        Movq => {
            let v = ops[0].u64();
            cpu.psl.n = (v as i64) < 0;
            cpu.psl.z = v == 0;
            cpu.psl.v = false;
            store(cpu, &ops[1], v, sink)?;
        }
        Movzbl | Movzbw | Movzwl => {
            let v = ops[0].u32() & mask_of(dt(0));
            set_nz(cpu, v, ops[1].dtype, sink);
            store(cpu, &ops[1], u64::from(v), sink)?;
        }
        Moval | Movaw => {
            let a = ops[0].addr();
            set_nz(cpu, a, DataType::Long, sink);
            store(cpu, &ops[1], u64::from(a), sink)?;
        }
        Pushal => {
            let a = ops[0].addr();
            set_nz(cpu, a, DataType::Long, sink);
            push_long(cpu, op, a, sink)?;
        }
        Pushl => {
            let v = ops[0].u32();
            set_nz(cpu, v, DataType::Long, sink);
            push_long(cpu, op, v, sink)?;
        }
        Clrb | Clrw | Clrl => {
            set_nz(cpu, 0, dt(0), sink);
            store(cpu, &ops[0], 0, sink)?;
        }
        Clrq => {
            cpu.psl.n = false;
            cpu.psl.z = true;
            cpu.psl.v = false;
            store(cpu, &ops[0], 0, sink)?;
        }
        Mnegb | Mnegl => {
            let r = sub_cc(cpu, 0, ops[0].u32(), dt(0));
            store(cpu, &ops[1], u64::from(r), sink)?;
        }
        Mcomb | Mcoml => {
            let r = !ops[0].u32() & mask_of(dt(0));
            set_nz(cpu, r, dt(0), sink);
            store(cpu, &ops[1], u64::from(r), sink)?;
        }
        Movpsl => {
            let v = cpu.psl.to_u32();
            store(cpu, &ops[0], u64::from(v), sink)?;
        }

        // ----- add/subtract -------------------------------------------------
        Addb2 | Addw2 | Addl2 => {
            let r = add_cc(cpu, ops[1].u32(), ops[0].u32(), 0, dt(0));
            store(cpu, &ops[1], u64::from(r), sink)?;
        }
        Addb3 | Addw3 | Addl3 => {
            let r = add_cc(cpu, ops[0].u32(), ops[1].u32(), 0, dt(0));
            store(cpu, &ops[2], u64::from(r), sink)?;
        }
        Subb2 | Subw2 | Subl2 => {
            let r = sub_cc(cpu, ops[1].u32(), ops[0].u32(), dt(0));
            store(cpu, &ops[1], u64::from(r), sink)?;
        }
        Subb3 | Subw3 | Subl3 => {
            let r = sub_cc(cpu, ops[1].u32(), ops[0].u32(), dt(0));
            store(cpu, &ops[2], u64::from(r), sink)?;
        }
        Adwc => {
            let cin = u32::from(cpu.psl.c);
            let r = add_cc(cpu, ops[1].u32(), ops[0].u32(), cin, DataType::Long);
            store(cpu, &ops[1], u64::from(r), sink)?;
        }
        Sbwc => {
            let borrow = u32::from(cpu.psl.c);
            let r = sub_cc(
                cpu,
                ops[1].u32(),
                ops[0].u32().wrapping_add(borrow),
                DataType::Long,
            );
            store(cpu, &ops[1], u64::from(r), sink)?;
        }
        Incb | Incw | Incl => {
            let r = add_cc(cpu, ops[0].u32(), 1, 0, dt(0));
            store(cpu, &ops[0], u64::from(r), sink)?;
        }
        Decb | Decw | Decl => {
            let r = sub_cc(cpu, ops[0].u32(), 1, dt(0));
            store(cpu, &ops[0], u64::from(r), sink)?;
        }

        // ----- booleans and tests --------------------------------------------
        Bisb2 | Bisw2 | Bisl2 => {
            let r = (ops[1].u32() | ops[0].u32()) & mask_of(dt(0));
            set_nz(cpu, r, dt(0), sink);
            store(cpu, &ops[1], u64::from(r), sink)?;
        }
        Bisb3 | Bisl3 => {
            let r = (ops[1].u32() | ops[0].u32()) & mask_of(dt(0));
            set_nz(cpu, r, dt(0), sink);
            store(cpu, &ops[2], u64::from(r), sink)?;
        }
        Bicb2 | Bicw2 | Bicl2 => {
            let r = (ops[1].u32() & !ops[0].u32()) & mask_of(dt(0));
            set_nz(cpu, r, dt(0), sink);
            store(cpu, &ops[1], u64::from(r), sink)?;
        }
        Bicb3 | Bicl3 => {
            let r = (ops[1].u32() & !ops[0].u32()) & mask_of(dt(0));
            set_nz(cpu, r, dt(0), sink);
            store(cpu, &ops[2], u64::from(r), sink)?;
        }
        Xorb2 | Xorl2 => {
            let r = (ops[1].u32() ^ ops[0].u32()) & mask_of(dt(0));
            set_nz(cpu, r, dt(0), sink);
            store(cpu, &ops[1], u64::from(r), sink)?;
        }
        Xorl3 => {
            let r = ops[1].u32() ^ ops[0].u32();
            set_nz(cpu, r, DataType::Long, sink);
            store(cpu, &ops[2], u64::from(r), sink)?;
        }
        Bitb | Bitw | Bitl => {
            let r = ops[0].u32() & ops[1].u32() & mask_of(dt(0));
            set_nz(cpu, r, dt(0), sink);
        }
        Cmpb | Cmpw | Cmpl => {
            sub_cc(cpu, ops[0].u32(), ops[1].u32(), dt(0));
        }
        Tstb | Tstw | Tstl => {
            set_nz(cpu, ops[0].u32(), dt(0), sink);
            cpu.psl.c = false;
        }

        // ----- shifts and converts -------------------------------------------
        Ashl => {
            computes(cpu, op, 1, sink);
            let cnt = ops[0].u32() as u8 as i8;
            let src = ops[1].u32() as i32;
            let (r, v) = ash32(src, cnt);
            set_nz(cpu, r as u32, DataType::Long, sink);
            cpu.psl.v = v;
            store(cpu, &ops[2], u64::from(r as u32), sink)?;
        }
        Ashq => {
            computes(cpu, op, 2, sink);
            let cnt = ops[0].u32() as u8 as i8;
            let src = ops[1].u64() as i64;
            let r = if cnt >= 0 {
                src.wrapping_shl(cnt.min(63) as u32)
            } else {
                src >> (-cnt).min(63) as u32
            };
            cpu.psl.n = r < 0;
            cpu.psl.z = r == 0;
            cpu.psl.v = false;
            store(cpu, &ops[2], r as u64, sink)?;
        }
        Rotl => {
            computes(cpu, op, 1, sink);
            let cnt = (ops[0].u32() as u8 as i8).rem_euclid(32) as u32;
            let r = ops[1].u32().rotate_left(cnt);
            set_nz(cpu, r, DataType::Long, sink);
            store(cpu, &ops[2], u64::from(r), sink)?;
        }
        Cvtbl | Cvtbw | Cvtwl => {
            let r = sext(ops[0].u32(), dt(0)) as u32;
            set_nz(cpu, r, ops[1].dtype, sink);
            store(cpu, &ops[1], u64::from(r), sink)?;
        }
        Cvtwb | Cvtlb | Cvtlw => {
            let src = sext(ops[0].u32(), dt(0));
            let dst_dt = ops[1].dtype;
            let r = src as u32 & mask_of(dst_dt);
            set_nz(cpu, r, dst_dt, sink);
            // V on value change under truncation.
            cpu.psl.v = sext(r, dst_dt) != src;
            store(cpu, &ops[1], u64::from(r), sink)?;
        }

        // ----- branches ------------------------------------------------------
        Brb | Brw => {
            let t = disp_target(cpu, disp.expect("displacement decoded"), sink);
            take_branch(cpu, BranchClass::SimpleCond, t, sink);
        }
        Bneq | Beql | Bgtr | Bleq | Bgeq | Blss | Bgtru | Blequ | Bvc | Bvs | Bcc | Bcs => {
            if condition(cpu, op) {
                let t = disp_target(cpu, disp.expect("displacement decoded"), sink);
                take_branch(cpu, BranchClass::SimpleCond, t, sink);
            }
        }
        Blbs | Blbc => {
            let bit = ops[0].u32() & 1;
            let want = u32::from(op == Blbs);
            if bit == want {
                let t = disp_target(cpu, disp.expect("displacement decoded"), sink);
                take_branch(cpu, BranchClass::LowBitTest, t, sink);
            }
        }
        Aoblss | Aobleq => {
            let limit = ops[0].u32() as i32;
            let idx = (ops[1].u32() as i32).wrapping_add(1);
            set_nz(cpu, idx as u32, DataType::Long, sink);
            store(cpu, &ops[1], idx as u32 as u64, sink)?;
            let go = if op == Aoblss {
                idx < limit
            } else {
                idx <= limit
            };
            if go {
                let t = disp_target(cpu, disp.expect("displacement decoded"), sink);
                take_branch(cpu, BranchClass::Loop, t, sink);
            }
        }
        Sobgeq | Sobgtr => {
            let idx = (ops[0].u32() as i32).wrapping_sub(1);
            set_nz(cpu, idx as u32, DataType::Long, sink);
            store(cpu, &ops[0], idx as u32 as u64, sink)?;
            let go = if op == Sobgeq { idx >= 0 } else { idx > 0 };
            if go {
                let t = disp_target(cpu, disp.expect("displacement decoded"), sink);
                take_branch(cpu, BranchClass::Loop, t, sink);
            }
        }
        Acbw | Acbl => {
            computes(cpu, op, 1, sink);
            let limit = sext(ops[0].u32(), dt(0));
            let add = sext(ops[1].u32(), dt(1));
            let idx = sext(ops[2].u32(), dt(2)).wrapping_add(add);
            set_nz(cpu, idx as u32, dt(2), sink);
            store(cpu, &ops[2], idx as u32 as u64, sink)?;
            let go = if add >= 0 { idx <= limit } else { idx >= limit };
            if go {
                let t = disp_target(cpu, disp.expect("displacement decoded"), sink);
                take_branch(cpu, BranchClass::Loop, t, sink);
            }
        }
        Caseb | Casew | Casel => {
            computes(cpu, op, 1, sink);
            let sel = ops[0].u32() & mask_of(dt(0));
            let base = ops[1].u32() & mask_of(dt(0));
            let limit = ops[2].u32() & mask_of(dt(0));
            let idx = sel.wrapping_sub(base) & mask_of(dt(0));
            let table = cpu.regs.pc();
            let target = if idx <= limit {
                let entry = cpu.read_data(
                    cpu.cs.exec_read(op),
                    table.wrapping_add(2 * idx),
                    Width::Word,
                    sink,
                )?;
                table.wrapping_add(entry as u16 as i16 as i32 as u32)
            } else {
                // Fall past the displacement table.
                table.wrapping_add(2 * (limit + 1))
            };
            sub_cc(cpu, idx, limit, dt(0));
            take_branch(cpu, BranchClass::Case, target, sink);
        }
        Bsbb | Bsbw => {
            push_long(cpu, op, cpu.regs.pc(), sink)?;
            let t = disp_target(cpu, disp.expect("displacement decoded"), sink);
            take_branch(cpu, BranchClass::SubroutineCallRet, t, sink);
        }
        Jsb => {
            push_long(cpu, op, cpu.regs.pc(), sink)?;
            let t = ops[0].addr();
            take_branch(cpu, BranchClass::SubroutineCallRet, t, sink);
        }
        Rsb => {
            let t = pop_long(cpu, op, sink)?;
            take_branch(cpu, BranchClass::SubroutineCallRet, t, sink);
        }
        Jmp => {
            let t = ops[0].addr();
            take_branch(cpu, BranchClass::Unconditional, t, sink);
        }

        other => unreachable!("{other} is not a SIMPLE opcode"),
    }
    Ok(())
}

/// Arithmetic shift of a longword with overflow detection.
fn ash32(src: i32, cnt: i8) -> (i32, bool) {
    if cnt >= 0 {
        let cnt = cnt.min(32) as u32;
        if cnt >= 32 {
            return (0, src != 0);
        }
        let r = src.wrapping_shl(cnt);
        let v = (r >> cnt) != src;
        (r, v)
    } else {
        let cnt = (-cnt).min(31) as u32;
        (src >> cnt, false)
    }
}

/// Evaluate a simple conditional branch against the PSL.
fn condition(cpu: &Cpu, op: Opcode) -> bool {
    let p = &cpu.psl;
    use Opcode::*;
    match op {
        Bneq => !p.z,
        Beql => p.z,
        Bgtr => !(p.n | p.z),
        Bleq => p.n | p.z,
        Bgeq => !p.n,
        Blss => p.n,
        Bgtru => !(p.c | p.z),
        Blequ => p.c | p.z,
        Bvc => !p.v,
        Bvs => p.v,
        Bcc => !p.c,
        Bcs => p.c,
        other => unreachable!("{other} is not a condition branch"),
    }
}

#[cfg(test)]
mod tests {
    use super::ash32;

    #[test]
    fn ash32_left_right_and_overflow() {
        assert_eq!(ash32(1, 4), (16, false));
        assert_eq!(ash32(-16, -2), (-4, false));
        let (_, v) = ash32(0x4000_0000, 2);
        assert!(v, "shifting into the sign bit overflows");
        assert_eq!(ash32(5, 0), (5, false));
    }
}
