//! The predecode cache: parse each static instruction once, replay it on
//! re-execution.
//!
//! Workloads are dominated by redundant loop re-execution: the same
//! static instruction is decoded byte-by-byte millions of times while
//! its bytes never change. The cache stores the *parse* of an
//! instruction — opcode, per-specifier mode class and registers, and the
//! pre-assembled extension values (expanded short literals, immediate
//! data, sign-extended displacements) — keyed by the PC of its opcode
//! byte. On a hit, `Cpu::execute_one` replays the decoded form: it still
//! consumes the same I-stream bytes (so IB starvation stalls, prefetch
//! traffic, and I-stream TB misses land on exactly the same cycles) and
//! still issues the same specifier microinstructions, but skips the
//! host-side parsing work. The simulated machine cannot tell the
//! difference: histograms, hardware counters, and trace streams are
//! bit-identical to the naive loop.
//!
//! # Invalidation
//!
//! Two mechanisms keep entries honest:
//!
//! * **Writes.** Entries are stamped with
//!   [`MemorySubsystem::decode_gen`], which the memory subsystem bumps
//!   on any simulated write into a physical page flagged as holding
//!   predecoded bytes (so even self-modifying code cannot outrun the
//!   cache). A stale stamp is a miss; the slow path re-parses and
//!   re-inserts.
//! * **Address spaces.** Process-space entries are additionally tagged
//!   with the owning space's identity ([`MemorySubsystem::space_tag`]:
//!   the P0/P1 page-table bases, which are distinct per process).
//!   Context switches therefore cost nothing: the outgoing process's
//!   entries go dormant behind their tag and are live again the moment
//!   `LDPCTX` restores that space. System-space PCs (S0 is mapped
//!   identically for every process) use the shared tag 0 and survive
//!   all switches. This mirrors the translation buffer's discipline —
//!   rewriting a live page table in place without switching spaces is
//!   as undefined for the predecode cache as it is for the TB.
//!
//! [`MemorySubsystem::space_tag`]: vax_mem::MemorySubsystem::space_tag
//!
//! [`MemorySubsystem::decode_gen`]: vax_mem::MemorySubsystem::decode_gen

use crate::specifier::SpecDecode;
use vax_arch::Opcode;

/// VAX instructions have at most six operand specifiers (branch
/// displacements included).
pub(crate) const OPS_MAX: usize = 6;

/// One predecoded operand: a full specifier, or a branch displacement.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PdOp {
    /// An operand specifier (mode byte and extension already parsed).
    Spec(SpecDecode),
    /// A branch displacement: the sign-extended value and how many
    /// I-stream bytes it occupies.
    Branch { disp: i32, bytes: u8 },
}

/// The cached parse of one static instruction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PredecodedInst {
    pub opcode: Opcode,
    pub nops: u8,
    pub ops: [PdOp; OPS_MAX],
}

impl PredecodedInst {
    pub(crate) fn new(opcode: Opcode) -> PredecodedInst {
        PredecodedInst {
            opcode,
            nops: 0,
            ops: [PdOp::Branch { disp: 0, bytes: 0 }; OPS_MAX],
        }
    }

    pub(crate) fn push(&mut self, op: PdOp) {
        self.ops[usize::from(self.nops)] = op;
        self.nops += 1;
    }
}

/// Slot identity, kept apart from the instruction payload so a lookup
/// scans one compact array (both ways of a set share a cache line)
/// and touches the big payload array only on a hit.
#[derive(Debug, Clone, Copy)]
struct Tag {
    pc: u32,
    /// Address-space tag at insert time (0 for system-space code).
    space: u64,
    /// `decode_gen` at insert time; 0 = empty (the subsystem's
    /// generation starts at 1).
    gen: u64,
}

/// Host-side predecode cache statistics (diagnostics: no simulated
/// meaning whatsoever).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredecodeStats {
    /// Lookups that replayed a cached parse.
    pub hits: u64,
    /// Lookups that fell to the parse path.
    pub misses: u64,
    /// Parses inserted (or re-inserted) into the cache.
    pub inserts: u64,
}

/// Two-way set-associative predecode cache indexed by the low bits of
/// the PC. Two ways because the combined static footprint of a
/// timesharing workload's processes approaches the set count, and a
/// direct-mapped array would ping-pong hot instructions that share an
/// index; the replacement policy protects the most recently hit way, so
/// a conflicting cold instruction cannot evict a loop body.
#[derive(Debug)]
pub(crate) struct PredecodeCache {
    /// `2 * SETS` slot identities; set `i` occupies `[2i, 2i + 1]`.
    tags: Vec<Tag>,
    /// The instruction payloads, parallel to `tags`.
    insts: Vec<PredecodedInst>,
    mask: usize,
    /// One bit per set: which way was most recently hit (victim is the
    /// other one).
    mru: Vec<u64>,
    stats: PredecodeStats,
}

/// Set count (× 2 ways): generously covers the combined static
/// instructions of every process of a workload at ~5 MB of host memory
/// per CPU.
const SETS: usize = 1 << 14;

impl PredecodeCache {
    /// An empty cache; `enabled == false` allocates nothing (the naive
    /// loop never touches it).
    pub(crate) fn new(enabled: bool) -> PredecodeCache {
        let empty = Tag {
            pc: 0,
            space: 0,
            gen: 0,
        };
        PredecodeCache {
            tags: if enabled {
                vec![empty; 2 * SETS]
            } else {
                Vec::new()
            },
            insts: if enabled {
                vec![PredecodedInst::new(Opcode::Nop); 2 * SETS]
            } else {
                Vec::new()
            },
            mask: SETS - 1,
            mru: if enabled {
                vec![0; SETS / 64]
            } else {
                Vec::new()
            },
            stats: PredecodeStats::default(),
        }
    }

    /// Hit/miss/insert counts since construction.
    pub(crate) fn stats(&self) -> PredecodeStats {
        self.stats
    }

    /// Set index for `(pc, space)`. Sequential PCs stay in sequential
    /// sets (loop locality); the space tag contributes a well-mixed
    /// offset so different processes whose images sit at the same VAs do
    /// not systematically collide.
    #[inline]
    fn set_of(&self, pc: u32, space: u64) -> usize {
        let mixed = space.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (pc.wrapping_add((mixed >> 48) as u32) as usize) & self.mask
    }

    #[inline]
    fn note_mru(&mut self, set: usize, way: usize) {
        let word = &mut self.mru[set / 64];
        *word = (*word & !(1 << (set % 64))) | ((way as u64) << (set % 64));
    }

    /// The slot index of the instruction at `pc` in address space
    /// `space`, if present and stamped with the current generation. An
    /// index, not a borrow: the replay path walks the cached operands
    /// *in place* through [`op_at`] while it mutates the rest of the
    /// CPU, and nothing inserts into the cache during a replay (only
    /// the parse path inserts), so the index stays valid for the whole
    /// instruction.
    ///
    /// [`op_at`]: PredecodeCache::op_at
    #[inline]
    pub(crate) fn lookup(&mut self, pc: u32, space: u64, gen: u64) -> Option<usize> {
        if self.tags.is_empty() {
            return None;
        }
        let set = self.set_of(pc, space);
        for way in 0..2 {
            let tag = &self.tags[2 * set + way];
            if tag.gen == gen && tag.pc == pc && tag.space == space {
                self.stats.hits += 1;
                self.note_mru(set, way);
                return Some(2 * set + way);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// The opcode and operand count of the slot at `idx`.
    #[inline]
    pub(crate) fn header_at(&self, idx: usize) -> (Opcode, u8) {
        let inst = &self.insts[idx];
        (inst.opcode, inst.nops)
    }

    /// The `i`-th cached operand of the slot at `idx`.
    #[inline]
    pub(crate) fn op_at(&self, idx: usize, i: usize) -> PdOp {
        self.insts[idx].ops[i]
    }

    /// Insert (or replace) the parse of the instruction at `pc`: refresh
    /// a matching slot, else fill a never-used one, else evict the way
    /// that was not hit most recently.
    pub(crate) fn insert(&mut self, pc: u32, space: u64, gen: u64, inst: PredecodedInst) {
        if self.tags.is_empty() {
            return;
        }
        let set = self.set_of(pc, space);
        self.stats.inserts += 1;
        let way = (0..2)
            .find(|&w| {
                let t = &self.tags[2 * set + w];
                (t.pc == pc && t.space == space) || t.gen == 0
            })
            .unwrap_or_else(|| {
                let mru = (self.mru[set / 64] >> (set % 64)) & 1;
                1 - mru as usize
            });
        self.tags[2 * set + way] = Tag { pc, space, gen };
        self.insts[2 * set + way] = inst;
        self.note_mru(set, way);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_misses_on_stale_generation() {
        let mut cache = PredecodeCache::new(true);
        cache.insert(0x200, 7, 1, PredecodedInst::new(Opcode::Nop));
        assert!(cache.lookup(0x200, 7, 1).is_some());
        assert!(cache.lookup(0x200, 7, 2).is_none(), "generation bump");
        assert!(cache.lookup(0x201, 7, 1).is_none(), "different pc");
        assert!(cache.lookup(0x200, 8, 1).is_none(), "different space");
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut cache = PredecodeCache::new(false);
        cache.insert(0x200, 0, 1, PredecodedInst::new(Opcode::Nop));
        assert!(cache.lookup(0x200, 0, 1).is_none());
    }

    #[test]
    fn colliding_pcs_fill_both_ways_then_evict_lru() {
        let mut cache = PredecodeCache::new(true);
        let a = 0x200;
        let b = a + (SETS as u32); // same set as a
        let c = a + 2 * (SETS as u32); // same set again
        cache.insert(a, 0, 1, PredecodedInst::new(Opcode::Nop));
        cache.insert(b, 0, 1, PredecodedInst::new(Opcode::Nop));
        assert!(cache.lookup(a, 0, 1).is_some(), "two ways hold both");
        assert!(cache.lookup(b, 0, 1).is_some());
        // b was hit most recently, so a third conflicting insert evicts a.
        cache.insert(c, 0, 1, PredecodedInst::new(Opcode::Nop));
        assert!(cache.lookup(a, 0, 1).is_none(), "LRU way evicted");
        assert!(cache.lookup(b, 0, 1).is_some(), "MRU way protected");
        assert!(cache.lookup(c, 0, 1).is_some());
    }

    #[test]
    fn spaces_coexist_at_the_same_pc() {
        // Two processes with images at the same VA keep independent
        // entries: a context switch costs nothing.
        let mut cache = PredecodeCache::new(true);
        cache.insert(0x200, 111, 1, PredecodedInst::new(Opcode::Nop));
        cache.insert(0x200, 222, 1, PredecodedInst::new(Opcode::Movl));
        let a = cache.lookup(0x200, 111, 1).expect("space 111 entry");
        assert_eq!(cache.header_at(a).0, Opcode::Nop);
        let b = cache.lookup(0x200, 222, 1).expect("space 222 entry");
        assert_eq!(cache.header_at(b).0, Opcode::Movl);
    }
}
