//! The predecode cache: parse each static instruction once, replay it on
//! re-execution.
//!
//! Workloads are dominated by redundant loop re-execution: the same
//! static instruction is decoded byte-by-byte millions of times while
//! its bytes never change. The cache stores the *parse* of an
//! instruction — opcode, per-specifier mode class and registers, and the
//! pre-assembled extension values (expanded short literals, immediate
//! data, sign-extended displacements) — keyed by the PC of its opcode
//! byte. On a hit, `Cpu::execute_one` replays the decoded form: it still
//! consumes the same I-stream bytes (so IB starvation stalls, prefetch
//! traffic, and I-stream TB misses land on exactly the same cycles) and
//! still issues the same specifier microinstructions, but skips the
//! host-side parsing work. The simulated machine cannot tell the
//! difference: histograms, hardware counters, and trace streams are
//! bit-identical to the naive loop.
//!
//! # Invalidation
//!
//! Two mechanisms keep entries honest:
//!
//! * **Writes.** Entries are stamped with
//!   [`MemorySubsystem::decode_gen`], which the memory subsystem bumps
//!   on any simulated write into a physical page flagged as holding
//!   predecoded bytes (so even self-modifying code cannot outrun the
//!   cache). A stale stamp is a miss; the slow path re-parses and
//!   re-inserts.
//! * **Address spaces.** Process-space entries are additionally tagged
//!   with the owning space's identity ([`MemorySubsystem::space_tag`]:
//!   the P0/P1 page-table bases, which are distinct per process).
//!   Context switches therefore cost nothing: the outgoing process's
//!   entries go dormant behind their tag and are live again the moment
//!   `LDPCTX` restores that space. System-space PCs (S0 is mapped
//!   identically for every process) use the shared tag 0 and survive
//!   all switches. This mirrors the translation buffer's discipline —
//!   rewriting a live page table in place without switching spaces is
//!   as undefined for the predecode cache as it is for the TB.
//!
//! [`MemorySubsystem::space_tag`]: vax_mem::MemorySubsystem::space_tag
//!
//! [`MemorySubsystem::decode_gen`]: vax_mem::MemorySubsystem::decode_gen

use crate::specifier::SpecDecode;
use vax_arch::Opcode;

/// VAX instructions have at most six operand specifiers (branch
/// displacements included).
pub(crate) const OPS_MAX: usize = 6;

/// One predecoded operand: a full specifier, or a branch displacement.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PdOp {
    /// An operand specifier (mode byte and extension already parsed).
    Spec(SpecDecode),
    /// A branch displacement: the sign-extended value and how many
    /// I-stream bytes it occupies.
    Branch { disp: i32, bytes: u8 },
}

/// The cached parse of one static instruction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PredecodedInst {
    pub opcode: Opcode,
    pub nops: u8,
    /// Total I-stream bytes the instruction occupies (opcode byte
    /// included). The block builder walks the static successor chain
    /// with it; a replay consumes exactly this many bytes.
    pub len: u8,
    pub ops: [PdOp; OPS_MAX],
}

impl PredecodedInst {
    pub(crate) fn new(opcode: Opcode) -> PredecodedInst {
        PredecodedInst {
            opcode,
            nops: 0,
            len: 0,
            ops: [PdOp::Branch { disp: 0, bytes: 0 }; OPS_MAX],
        }
    }

    pub(crate) fn push(&mut self, op: PdOp) {
        self.ops[usize::from(self.nops)] = op;
        self.nops += 1;
    }
}

/// The block tier has verified a block headed at this slot's PC; the
/// block's instruction count sits in the upper six bits of the same
/// flags byte. The flag (and the count with it) is all a block *is* —
/// the tier stores no entries anywhere.
pub(crate) const FLAG_HAS_BLOCK: u8 = 1;
/// The block tier has established that this slot's PC cannot head a
/// block at the current identity (unsafe opcode, or a run too short to
/// amortize anything) — don't re-attempt a build on every visit.
pub(crate) const FLAG_NONHEAD: u8 = 2;

/// Slot identity, kept apart from the instruction payload so a lookup
/// scans one compact array (both ways of a set share a cache line)
/// and touches the big payload array only on a hit.
///
/// The two per-slot bytes the block tier needs — the head flags and the
/// chain metadata — ride in the struct's padding: the tag line a lookup
/// already loads answers "is there a block here?" and "may this parse
/// chain into one?" for free, with no side tables to pull through the
/// host cache.
#[derive(Debug, Clone, Copy)]
struct Tag {
    pc: u32,
    /// Block-tier head state: [`FLAG_HAS_BLOCK`] / [`FLAG_NONHEAD`] in
    /// the low two bits, the verified block length in the upper six.
    /// Cleared whenever the slot's identity changes: the flags always
    /// describe the parse this tag currently names.
    flags: u8,
    /// Block-tier chain metadata: the instruction's I-stream length in
    /// the low six bits, bit 7 set if the parse is block-safe
    /// (flattenable mid-block), bit 6 set if it is resume-safe
    /// (eligible to *terminate* a block). Precomputed at insert so the
    /// block builder chains runs by reading tag lines alone.
    meta: u8,
    /// Address-space tag at insert time (0 for system-space code).
    space: u64,
    /// `decode_gen` at insert time; 0 = empty (the subsystem's
    /// generation starts at 1).
    gen: u64,
}

/// Host-side predecode cache statistics (diagnostics: no simulated
/// meaning whatsoever).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredecodeStats {
    /// Lookups that replayed a cached parse.
    pub hits: u64,
    /// Lookups that fell to the parse path.
    pub misses: u64,
    /// Parses inserted (or re-inserted) into the cache.
    pub inserts: u64,
}

/// Two-way set-associative predecode cache indexed by the low bits of
/// the PC. Two ways because the combined static footprint of a
/// timesharing workload's processes approaches the set count, and a
/// direct-mapped array would ping-pong hot instructions that share an
/// index; the replacement policy protects the most recently hit way, so
/// a conflicting cold instruction cannot evict a loop body.
#[derive(Debug)]
pub(crate) struct PredecodeCache {
    /// `2 * SETS` slot identities; set `i` occupies `[2i, 2i + 1]`.
    tags: Vec<Tag>,
    /// The instruction payloads, parallel to `tags`.
    insts: Vec<PredecodedInst>,
    mask: usize,
    /// One bit per set: which way was most recently hit (victim is the
    /// other one).
    mru: Vec<u64>,
    stats: PredecodeStats,
}

/// Set count (× 2 ways): generously covers the combined static
/// instructions of every process of a workload at ~5 MB of host memory
/// per CPU.
const SETS: usize = 1 << 14;

/// Total slots — the index space `lookup` hands out.
const SLOTS: usize = 2 * SETS;

impl PredecodeCache {
    /// An empty cache; `enabled == false` allocates nothing (the naive
    /// loop never touches it).
    pub(crate) fn new(enabled: bool) -> PredecodeCache {
        let empty = Tag {
            pc: 0,
            flags: 0,
            meta: 0,
            space: 0,
            gen: 0,
        };
        PredecodeCache {
            tags: if enabled {
                vec![empty; SLOTS]
            } else {
                Vec::new()
            },
            insts: if enabled {
                vec![PredecodedInst::new(Opcode::Nop); SLOTS]
            } else {
                Vec::new()
            },
            mask: SETS - 1,
            mru: if enabled {
                vec![0; SETS / 64]
            } else {
                Vec::new()
            },
            stats: PredecodeStats::default(),
        }
    }

    /// Hit/miss/insert counts since construction.
    pub(crate) fn stats(&self) -> PredecodeStats {
        self.stats
    }

    /// Set index for `(pc, space)`. Sequential PCs stay in sequential
    /// sets (loop locality); the space tag contributes a well-mixed
    /// offset so different processes whose images sit at the same VAs do
    /// not systematically collide.
    #[inline]
    fn set_of(&self, pc: u32, space: u64) -> usize {
        let mixed = space.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (pc.wrapping_add((mixed >> 48) as u32) as usize) & self.mask
    }

    #[inline]
    fn note_mru(&mut self, set: usize, way: usize) {
        let word = &mut self.mru[set / 64];
        *word = (*word & !(1 << (set % 64))) | ((way as u64) << (set % 64));
    }

    /// The slot index of the instruction at `pc` in address space
    /// `space`, if present and stamped with the current generation. An
    /// index, not a borrow: the replay path walks the cached operands
    /// *in place* through [`op_at`] while it mutates the rest of the
    /// CPU, and nothing inserts into the cache during a replay (only
    /// the parse path inserts), so the index stays valid for the whole
    /// instruction.
    ///
    /// [`op_at`]: PredecodeCache::op_at
    #[inline]
    pub(crate) fn lookup(&mut self, pc: u32, space: u64, gen: u64) -> Option<usize> {
        if self.tags.is_empty() {
            return None;
        }
        let set = self.set_of(pc, space);
        for way in 0..2 {
            let tag = &self.tags[2 * set + way];
            if tag.gen == gen && tag.pc == pc && tag.space == space {
                self.stats.hits += 1;
                self.note_mru(set, way);
                return Some(2 * set + way);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// The opcode and operand count of the slot at `idx`.
    #[inline]
    pub(crate) fn header_at(&self, idx: usize) -> (Opcode, u8) {
        let inst = &self.insts[idx];
        (inst.opcode, inst.nops)
    }

    /// The `i`-th cached operand of the slot at `idx`.
    #[inline]
    pub(crate) fn op_at(&self, idx: usize, i: usize) -> PdOp {
        self.insts[idx].ops[i]
    }

    /// Block-tier metadata of the slot at `idx`: `(I-stream length,
    /// block-safe, resume-safe)`, precomputed at insert. One byte on
    /// the tag line, so the block builder never touches the payload
    /// array.
    #[inline]
    pub(crate) fn meta_at(&self, idx: usize) -> (u8, bool, bool) {
        let m = self.tags[idx].meta;
        (m & 0x3F, m & 0x80 != 0, m & 0x40 != 0)
    }

    /// The block-tier head flags of the slot at `idx`
    /// ([`FLAG_HAS_BLOCK`] / [`FLAG_NONHEAD`]). Valid only for the
    /// identity the slot currently holds — an insert resets them.
    #[inline]
    pub(crate) fn head_flags(&self, idx: usize) -> u8 {
        self.tags[idx].flags
    }

    /// Mark the slot at `idx` as heading a verified block of `count`
    /// instructions. The count rides in the upper six bits of the flags
    /// byte — the flag and the count together are the block's entire
    /// representation.
    #[inline]
    pub(crate) fn note_has_block(&mut self, idx: usize, count: u8) {
        debug_assert!((2..=0x3F).contains(&count));
        self.tags[idx].flags = FLAG_HAS_BLOCK | (count << 2);
    }

    /// Mark the slot at `idx` as unable to head a block (unsafe opcode,
    /// or a run too short to amortize anything). Exact per-slot state —
    /// no hashed side table, so one head can never shadow another.
    #[inline]
    pub(crate) fn note_nonhead(&mut self, idx: usize) {
        self.tags[idx].flags = FLAG_NONHEAD;
    }

    /// Insert (or replace) the parse of the instruction at `pc`: refresh
    /// a matching slot, else reuse a dead one, else evict the way that
    /// was not hit most recently.
    ///
    /// A dead slot is one whose generation stamp is not `gen`: the
    /// subsystem's generation only grows, and a lookup demands an exact
    /// stamp, so a stale slot can never hit again and is as free as a
    /// never-used (`gen == 0`) one. Reusing it directly keeps both ways
    /// live. (With two ways the MRU bit alone already could not pin a
    /// stale slot — every MRU update coincides with making that way
    /// live, and a generation bump kills both ways at once, so the MRU
    /// way is stale only when its neighbor is too — but the explicit
    /// check keeps that invariant from being load-bearing.)
    pub(crate) fn insert(&mut self, pc: u32, space: u64, gen: u64, inst: PredecodedInst) {
        if self.tags.is_empty() {
            return;
        }
        let set = self.set_of(pc, space);
        self.stats.inserts += 1;
        let way = (0..2)
            .find(|&w| {
                let t = &self.tags[2 * set + w];
                t.pc == pc && t.space == space
            })
            .or_else(|| (0..2).find(|&w| self.tags[2 * set + w].gen != gen))
            .unwrap_or_else(|| {
                let mru = (self.mru[set / 64] >> (set % 64)) & 1;
                1 - mru as usize
            });
        // Lengths above 63 cannot happen (the longest encodable VAX
        // instruction is 61 bytes); a zero length simply never chains.
        let len = if inst.len <= 0x3F { inst.len } else { 0 };
        let meta =
            len | if crate::block::block_safe(&inst) {
                0x80
            } else {
                0
            } | if crate::block::claimed_resume_safe(inst.opcode) {
                0x40
            } else {
                0
            };
        // Head flags reset with the identity: whatever the block tier
        // knew about the old parse does not describe the new one.
        self.tags[2 * set + way] = Tag {
            pc,
            flags: 0,
            meta,
            space,
            gen,
        };
        self.insts[2 * set + way] = inst;
        self.note_mru(set, way);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_misses_on_stale_generation() {
        let mut cache = PredecodeCache::new(true);
        cache.insert(0x200, 7, 1, PredecodedInst::new(Opcode::Nop));
        assert!(cache.lookup(0x200, 7, 1).is_some());
        assert!(cache.lookup(0x200, 7, 2).is_none(), "generation bump");
        assert!(cache.lookup(0x201, 7, 1).is_none(), "different pc");
        assert!(cache.lookup(0x200, 8, 1).is_none(), "different space");
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut cache = PredecodeCache::new(false);
        cache.insert(0x200, 0, 1, PredecodedInst::new(Opcode::Nop));
        assert!(cache.lookup(0x200, 0, 1).is_none());
    }

    #[test]
    fn colliding_pcs_fill_both_ways_then_evict_lru() {
        let mut cache = PredecodeCache::new(true);
        let a = 0x200;
        let b = a + (SETS as u32); // same set as a
        let c = a + 2 * (SETS as u32); // same set again
        cache.insert(a, 0, 1, PredecodedInst::new(Opcode::Nop));
        cache.insert(b, 0, 1, PredecodedInst::new(Opcode::Nop));
        assert!(cache.lookup(a, 0, 1).is_some(), "two ways hold both");
        assert!(cache.lookup(b, 0, 1).is_some());
        // b was hit most recently, so a third conflicting insert evicts a.
        cache.insert(c, 0, 1, PredecodedInst::new(Opcode::Nop));
        assert!(cache.lookup(a, 0, 1).is_none(), "LRU way evicted");
        assert!(cache.lookup(b, 0, 1).is_some(), "MRU way protected");
        assert!(cache.lookup(c, 0, 1).is_some());

        // Stale-slot case: a generation bump kills both resident entries
        // (b and c); they can never hit again, so new inserts must land
        // in the dead ways without evicting each other — a stale slot
        // must not occupy a way ahead of live data.
        let d = a + 3 * (SETS as u32);
        let e = a + 4 * (SETS as u32);
        cache.insert(d, 0, 2, PredecodedInst::new(Opcode::Nop));
        assert!(cache.lookup(d, 0, 2).is_some());
        cache.insert(e, 0, 2, PredecodedInst::new(Opcode::Movl));
        assert!(
            cache.lookup(d, 0, 2).is_some(),
            "live entry evicted while a stale slot held the other way"
        );
        assert!(cache.lookup(e, 0, 2).is_some());
        // And a re-insert of a stale PC refreshes its own slot in place
        // instead of consuming the neighboring live way.
        cache.insert(d, 0, 3, PredecodedInst::new(Opcode::Nop));
        cache.insert(e, 0, 3, PredecodedInst::new(Opcode::Movl));
        let slot = cache.lookup(e, 0, 3).expect("refreshed in place");
        assert_eq!(cache.header_at(slot).0, Opcode::Movl);
        assert!(cache.lookup(d, 0, 3).is_some(), "neighbor way survived");
    }

    #[test]
    fn spaces_coexist_at_the_same_pc() {
        // Two processes with images at the same VA keep independent
        // entries: a context switch costs nothing.
        let mut cache = PredecodeCache::new(true);
        cache.insert(0x200, 111, 1, PredecodedInst::new(Opcode::Nop));
        cache.insert(0x200, 222, 1, PredecodedInst::new(Opcode::Movl));
        let a = cache.lookup(0x200, 111, 1).expect("space 111 entry");
        assert_eq!(cache.header_at(a).0, Opcode::Nop);
        let b = cache.lookup(0x200, 222, 1).expect("space 222 entry");
        assert_eq!(cache.header_at(b).0, Opcode::Movl);
    }
}
