//! Faults (delivered to the OS) and model errors (bugs in the machine
//! image or an unimplemented situation).

use std::fmt;
use vax_mem::MemFault;

/// An architectural fault, delivered through the exception microcode to a
/// kernel handler via the SCB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// Translation-not-valid (page fault) at the given address.
    PageFault {
        /// Faulting virtual address.
        va: u32,
    },
    /// Reference beyond a region's mapped length.
    LengthViolation {
        /// Faulting virtual address.
        va: u32,
    },
    /// A reserved or unimplemented opcode byte was decoded.
    ReservedInstruction {
        /// The opcode byte.
        opcode: u8,
    },
    /// Privileged instruction in user mode.
    Privileged,
    /// An injected hardware fault taken through the machine-check
    /// microcode (cache parity, SBI timeout, ...). Unlike the other
    /// variants this is not raised by the instruction stream: the fault
    /// engine latches it and the CPU accepts it at an instruction
    /// boundary, so it is always architecturally survivable.
    MachineCheck,
}

impl From<MemFault> for Fault {
    fn from(f: MemFault) -> Fault {
        match f {
            MemFault::PageFault { va } => Fault::PageFault { va },
            MemFault::LengthViolation { va } => Fault::LengthViolation { va },
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::PageFault { va } => write!(f, "page fault at {va:#010x}"),
            Fault::LengthViolation { va } => write!(f, "length violation at {va:#010x}"),
            Fault::ReservedInstruction { opcode } => {
                write!(f, "reserved instruction {opcode:#04x}")
            }
            Fault::Privileged => write!(f, "privileged instruction in user mode"),
            Fault::MachineCheck => write!(f, "machine check"),
        }
    }
}

/// A model-level error: the machine image is broken in a way a real
/// machine would have crashed on (e.g. a fault with no SCB handler
/// installed). These terminate the simulation rather than being delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CpuError {
    /// A fault occurred but the SCB has no usable vector.
    UnhandledFault {
        /// The fault.
        fault: Fault,
        /// PC at the time.
        pc: u32,
    },
    /// The processor executed `HALT`.
    Halted {
        /// PC after the halt.
        pc: u32,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::UnhandledFault { fault, pc } => {
                write!(f, "unhandled {fault} at pc={pc:#010x}")
            }
            CpuError::Halted { pc } => write!(f, "processor halted at pc={pc:#010x}"),
        }
    }
}

impl std::error::Error for CpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_faults_convert() {
        assert_eq!(
            Fault::from(MemFault::PageFault { va: 0x100 }),
            Fault::PageFault { va: 0x100 }
        );
        assert_eq!(
            Fault::from(MemFault::LengthViolation { va: 0x200 }),
            Fault::LengthViolation { va: 0x200 }
        );
    }

    #[test]
    fn displays_are_informative() {
        let e = CpuError::UnhandledFault {
            fault: Fault::PageFault { va: 0xdead },
            pc: 0x1000,
        };
        let s = e.to_string();
        assert!(s.contains("page fault"));
        assert!(s.contains("0x00001000"));
    }
}
