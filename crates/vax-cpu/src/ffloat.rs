//! VAX F_floating and D_floating codecs.
//!
//! Both formats use an excess-128 8-bit exponent and a normalized
//! `0.1fff…` mantissa with hidden leading bit. F_floating has a 23-bit
//! stored fraction; D_floating has 55 (of which this model keeps the 52
//! that fit in an `f64` — workload arithmetic never observes the
//! difference).
//!
//! Register/longword layout (as seen by `MOVL`): sign at bit 15, exponent
//! at bits 14:7, high fraction at bits 6:0, low fraction at bits 31:16.
//! D_floating appends 32 more fraction bits in the second longword.

/// Encode an `f64` as F_floating. Saturates on overflow; flushes
/// underflow and non-finite values to 0 (true zero: all bits clear).
pub(crate) fn f_encode(x: f64) -> u32 {
    let (sign, exp, frac23) = match split(x, 23) {
        Some(parts) => parts,
        None => return 0,
    };
    pack(sign, exp, frac23 as u32)
}

/// Decode an F_floating longword.
pub(crate) fn f_decode(w: u32) -> f64 {
    let exp = (w >> 7) & 0xFF;
    if exp == 0 {
        return 0.0;
    }
    let sign = if w & 0x8000 != 0 { -1.0 } else { 1.0 };
    let frac = (u64::from(w & 0x7F) << 16) | u64::from((w >> 16) & 0xFFFF);
    let mantissa = ((1u64 << 23) | frac) as f64 / (1u64 << 24) as f64;
    sign * mantissa * f64::powi(2.0, exp as i32 - 128)
}

/// Encode an `f64` as D_floating (two longwords, low longword first).
pub(crate) fn d_encode(x: f64) -> u64 {
    let (sign, exp, frac55) = match split(x, 55) {
        Some(parts) => parts,
        None => return 0,
    };
    let hi_frac = (frac55 >> 32) as u32 & 0x007F_FFFF;
    let lo_frac = frac55 as u32;
    let w0 = pack(sign, exp, hi_frac);
    u64::from(w0) | (u64::from(lo_frac) << 32)
}

/// Decode a D_floating quadword.
pub(crate) fn d_decode(q: u64) -> f64 {
    let w0 = q as u32;
    let exp = (w0 >> 7) & 0xFF;
    if exp == 0 {
        return 0.0;
    }
    let sign = if w0 & 0x8000 != 0 { -1.0 } else { 1.0 };
    let hi = (u64::from(w0 & 0x7F) << 16) | u64::from((w0 >> 16) & 0xFFFF);
    let frac = (hi << 32) | (q >> 32);
    let mantissa = ((1u64 << 55) | frac) as f64 / (1u64 << 56) as f64;
    sign * mantissa * f64::powi(2.0, exp as i32 - 128)
}

/// Split a finite nonzero `f64` into (sign, VAX exponent, fraction of
/// `bits` width). `None` means encode as zero.
fn split(x: f64, bits: u32) -> Option<(bool, u32, u64)> {
    if x == 0.0 || !x.is_finite() {
        return None;
    }
    let ieee = x.to_bits();
    let sign = ieee >> 63 != 0;
    let ieee_exp = ((ieee >> 52) & 0x7FF) as i32;
    if ieee_exp == 0 {
        // IEEE denormal: far below VAX underflow; flush to zero.
        return None;
    }
    // 1.m × 2^e  ==  0.1m × 2^(e+1);  VAX stores e+1 excess-128.
    let vax_exp = ieee_exp - 1023 + 1 + 128;
    if vax_exp <= 0 {
        return None;
    }
    let vax_exp = vax_exp.min(255) as u32;
    let m52 = ieee & 0xF_FFFF_FFFF_FFFF;
    let frac = if bits >= 52 {
        m52 << (bits - 52)
    } else {
        m52 >> (52 - bits)
    };
    Some((sign, vax_exp, frac))
}

fn pack(sign: bool, exp: u32, frac23: u32) -> u32 {
    let mut w = (exp & 0xFF) << 7;
    if sign {
        w |= 0x8000;
    }
    w |= frac23 >> 16; // high 7 bits into bits 6:0
    w |= (frac23 & 0xFFFF) << 16; // low 16 bits into bits 31:16
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_f(x: f64) -> f64 {
        f_decode(f_encode(x))
    }

    fn roundtrip_d(x: f64) -> f64 {
        d_decode(d_encode(x))
    }

    #[test]
    fn zero_and_signs() {
        assert_eq!(f_encode(0.0), 0);
        assert_eq!(f_decode(0), 0.0);
        assert!(roundtrip_f(-1.5) < 0.0);
        assert!(roundtrip_d(-2.25) < 0.0);
    }

    #[test]
    fn f_roundtrip_is_close() {
        for &x in &[1.0, -1.0, 0.5, 2.71875, 1e10, -1e-10, 120.0, 0.0625] {
            let got = roundtrip_f(x);
            let rel = ((got - x) / x).abs();
            assert!(rel < 1e-6, "{x} -> {got}");
        }
    }

    #[test]
    fn d_roundtrip_is_exact_for_f64_range() {
        for &x in &[1.0, -1.0, 0.5, 2.71875, 1e10, -1e-10] {
            let got = roundtrip_d(x);
            assert_eq!(got, x, "{x} -> {got}");
        }
    }

    #[test]
    fn known_encodings() {
        // 1.0 encodes with exponent 129, zero fraction.
        let one = f_encode(1.0);
        assert_eq!((one >> 7) & 0xFF, 129);
        assert_eq!(one & 0x7F, 0);
        assert_eq!(one >> 16, 0);
        // 0.5 encodes with exponent 128.
        assert_eq!((f_encode(0.5) >> 7) & 0xFF, 128);
    }

    #[test]
    fn overflow_saturates_underflow_flushes() {
        assert_eq!((f_encode(1e300) >> 7) & 0xFF, 255);
        assert_eq!(f_encode(1e-300), 0);
        assert_eq!(f_encode(f64::NAN), 0);
        assert_eq!(f_encode(f64::INFINITY), 0);
    }
}
