//! Cycle-level model of the VAX-11/780 CPU pipeline.
//!
//! Implements the left-hand half of the paper's Figure 1: the I-Fetch
//! stage (8-byte instruction buffer with longword prefetch), the I-Decode
//! stage (one non-overlapped decode cycle per instruction, IB-stall
//! dispatches when starved), and the microcoded EBOX that does "most of
//! the actual work associated with fetching operands and executing
//! instructions" (§2.1).
//!
//! Every EBOX cycle executes a microinstruction at a
//! [`vax_ucode::MicroAddr`]; the attached [`upc_monitor::CycleSink`]
//! counts issues and stalls per address, which is the paper's entire
//! measurement interface. Architectural semantics (registers, memory,
//! condition codes) are executed for real — the workloads are genuine
//! VAX machine code.
//!
//! # Structure
//!
//! * [`Cpu::step`] runs one instruction: interrupt check, decode dispatch,
//!   specifier microroutines, branch-displacement processing, execute
//!   microroutine, with TB-miss microtraps wherever translation fails.
//! * Stall generation: read stalls from cache misses, write stalls from
//!   the write buffer, IB stalls from decode starvation — all delegated
//!   to `vax-mem` timing and charged to the stalled micro-address.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod config;
mod cpu;
pub mod effect;
mod exec;
mod fault;
mod ffloat;
pub mod harness;
mod ib;
mod interrupt;
mod ipr;
mod operand;
mod predecode;
mod psl;
mod regs;
mod specifier;

pub use block::{claimed_block_safe, claimed_resume_safe, BlockStats, BLOCK_MAX};
pub use config::CpuConfig;
pub use cpu::scb;
pub use cpu::{Cpu, RunOutcome, StepOutcome};
pub use fault::{CpuError, Fault};
pub use interrupt::Interrupt;
pub use ipr::IprReg;
pub use predecode::PredecodeStats;
pub use psl::{Mode, Psl};
pub use regs::RegFile;
