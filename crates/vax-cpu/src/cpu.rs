//! The CPU: clock owner, microcycle engine, and instruction stepper.

use crate::block::{claimed_resume_safe as resume_safe, BlockStats, BLOCK_MAX};
use crate::config::CpuConfig;
use crate::exec;
use crate::fault::{CpuError, Fault};
use crate::ib::InstructionBuffer;
use crate::interrupt::{Interrupt, InterruptLines};
use crate::predecode::{PdOp, PredecodeCache, PredecodedInst};
use crate::psl::{Mode, Psl};
use crate::regs::RegFile;
use crate::specifier;
use upc_monitor::events::{MemStream, StallCause};
use upc_monitor::{CycleSink, MachineEvent};
use vax_arch::{DataType, Opcode};
use vax_fault::FaultClass;
use vax_mem::{MemorySubsystem, Stream, Width};
use vax_ucode::{ControlStore, MicroAddr, StallPoint};

/// SCB vector offsets used by this model (byte offsets into the system
/// control block, which lives at the physical address in `SCBB`).
pub mod scb {
    /// Machine check (injected hardware fault survived by microcode).
    pub const MACHINE_CHECK: u16 = 0x04;
    /// Reserved/unimplemented instruction.
    pub const RESERVED_INSTRUCTION: u16 = 0x10;
    /// Access-control (length) violation.
    pub const ACCESS_VIOLATION: u16 = 0x20;
    /// Translation not valid (page fault).
    pub const TRANSLATION_NOT_VALID: u16 = 0x24;
    /// `CHMK` change-mode-to-kernel dispatch.
    pub const CHMK: u16 = 0x40;
    /// `CHME`.
    pub const CHME: u16 = 0x44;
    /// `CHMS`.
    pub const CHMS: u16 = 0x48;
    /// `CHMU`.
    pub const CHMU: u16 = 0x4C;
    /// Software interrupt level `n` vectors at `0x80 + 4n`.
    pub const SOFTWARE_BASE: u16 = 0x80;
}

/// What one [`Cpu::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction was executed.
    Instruction(Opcode),
    /// An interrupt was serviced (no instruction executed).
    Interrupt,
    /// An exception was delivered to the OS mid-instruction.
    Exception(Fault),
    /// An injected fault was taken through machine-check microcode (no
    /// instruction executed).
    MachineCheck(FaultClass),
}

/// Summary of a [`Cpu::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Instructions retired during the run.
    pub instructions: u64,
    /// Cycles elapsed during the run.
    pub cycles: u64,
}

/// The VAX-11/780 processor model.
pub struct Cpu {
    pub(crate) regs: RegFile,
    pub(crate) psl: Psl,
    pub(crate) mem: MemorySubsystem,
    pub(crate) cs: ControlStore,
    pub(crate) ib: InstructionBuffer,
    pub(crate) now: u64,
    pub(crate) config: CpuConfig,
    pub(crate) lines: InterruptLines,
    /// Software interrupt summary register (bit n = level n pending).
    pub(crate) sisr: u16,
    /// Process control block base (physical).
    pub(crate) pcbb: u32,
    /// System control block base (physical).
    pub(crate) scbb: u32,
    pub(crate) insn_count: u64,
    /// Host-side predecode cache (empty when `config.predecode` is off).
    predecode: PredecodeCache,
    /// Host-side block-tier counters (the blocks themselves live in
    /// the predecode tags; see `block.rs`).
    block_stats: BlockStats,
    /// Earliest cycle at which an external event source (machine timer,
    /// run-time event queue, DMA engine) can fire. Maintained by the
    /// machine's event pump; `u64::MAX` when no pump drives this CPU.
    /// The block tier stops replaying before crossing it, so the cycles
    /// it runs without re-pumping are provably event-free.
    event_horizon: u64,
}

impl std::fmt::Debug for Cpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu")
            .field("pc", &format_args!("{:#010x}", self.regs.pc()))
            .field("psl", &self.psl)
            .field("now", &self.now)
            .field("instructions", &self.insn_count)
            .finish_non_exhaustive()
    }
}

impl Cpu {
    /// A CPU over `mem`, starting in kernel mode at `pc`.
    pub fn new(mem: MemorySubsystem, config: CpuConfig, pc: u32) -> Cpu {
        let mut regs = RegFile::new();
        regs.set_pc(pc);
        let mut mem = mem;
        mem.set_host_shortcuts(config.host_shortcuts);
        Cpu {
            regs,
            psl: Psl::kernel_boot(),
            mem,
            cs: ControlStore::build(),
            ib: InstructionBuffer::new(pc, config.host_shortcuts),
            now: 0,
            config,
            lines: InterruptLines::new(),
            sisr: 0,
            pcbb: 0,
            scbb: 0,
            insn_count: 0,
            predecode: PredecodeCache::new(config.predecode),
            block_stats: BlockStats::default(),
            event_horizon: u64::MAX,
        }
    }

    // ----- accessors -------------------------------------------------------

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.insn_count
    }

    /// The control store listing (shared with the analysis).
    pub fn control_store(&self) -> &ControlStore {
        &self.cs
    }

    /// Predecode-cache hit/miss/insert counts (host-side diagnostics;
    /// all zero in the naive loop).
    pub fn predecode_stats(&self) -> crate::predecode::PredecodeStats {
        self.predecode.stats()
    }

    /// Block-tier hit/build/replay counts (host-side diagnostics;
    /// all zero unless the block tier is enabled and entered).
    pub fn block_stats(&self) -> BlockStats {
        self.block_stats
    }

    /// Declare the earliest cycle at which an external event source can
    /// fire. Called by the machine's event pump each time it runs; the
    /// block tier stops replaying before `now` reaches this horizon, so
    /// skipping the pump between block instructions is a provable no-op.
    pub fn set_event_horizon(&mut self, horizon: u64) {
        self.event_horizon = horizon;
    }

    /// The memory subsystem.
    pub fn mem(&self) -> &MemorySubsystem {
        &self.mem
    }

    /// Mutable memory subsystem (machine setup).
    pub fn mem_mut(&mut self) -> &mut MemorySubsystem {
        &mut self.mem
    }

    /// The register file.
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// Mutable register file (machine setup).
    pub fn regs_mut(&mut self) -> &mut RegFile {
        &mut self.regs
    }

    /// The PSL.
    pub fn psl(&self) -> &Psl {
        &self.psl
    }

    /// Mutable PSL (machine setup).
    pub fn psl_mut(&mut self) -> &mut Psl {
        &mut self.psl
    }

    /// Set the SCB base (physical). Normally done by kernel boot code via
    /// `MTPR`, exposed for machine setup.
    pub fn set_scbb(&mut self, pa: u32) {
        self.scbb = pa;
    }

    /// Set the PCB base (physical); see [`Cpu::set_scbb`].
    pub fn set_pcbb(&mut self, pa: u32) {
        self.pcbb = pa;
    }

    /// Point the SCB vector at byte `offset` (see [`scb`]) at the handler
    /// `va`. Normally kernel boot code writes the SCB directly; exposed
    /// for machine setup (e.g. installing a `CHMK` service routine).
    pub fn set_scb_vector(&mut self, offset: u16, handler_va: u32) {
        let pa = self.scbb + u32::from(offset);
        self.mem.phys_mut().write_u32(pa, handler_va);
    }

    /// The current PC.
    pub fn pc(&self) -> u32 {
        self.regs.pc()
    }

    /// Redirect execution (machine setup; flushes the IB).
    pub fn jump(&mut self, pc: u32) {
        self.regs.set_pc(pc);
        self.ib.flush(pc);
    }

    /// Post a hardware interrupt request.
    pub fn post_interrupt(&mut self, int: Interrupt) {
        self.lines.post(int);
    }

    /// Pending software-interrupt summary.
    pub fn sisr(&self) -> u16 {
        self.sisr
    }

    /// Is an I-stream TB miss flagged but not yet serviced? The hardware
    /// counters record the miss when the prefetcher hits it; the trace
    /// records it when microcode services (or a flush discards) it, so a
    /// reconciliation at an arbitrary stop point must subtract this
    /// in-flight miss.
    pub fn pending_ib_tb_miss(&self) -> bool {
        self.ib.tb_miss().is_some()
    }

    // ----- the microcycle engine -------------------------------------------

    /// Issue one compute microinstruction at `addr`.
    #[inline]
    pub(crate) fn micro_compute<S: CycleSink>(&mut self, addr: MicroAddr, sink: &mut S) {
        sink.record_issue(addr);
        self.mem.observe_upc(addr.value());
        let fetch = self.ib.tick(&mut self.mem, self.now, true);
        note_ib_fetch(fetch, sink);
        self.now += 1;
    }

    /// Issue `n` consecutive compute microinstructions at `addr` (the
    /// body loops of the service microroutines). When the sink's
    /// monomorphized type permits coalescing ([`CycleSink::COALESCE_OK`])
    /// and the configuration enables the sink fast path, the issues are
    /// recorded with one batched call and prefetcher ticks that provably
    /// do nothing are skipped in bulk; the simulated machine (counters,
    /// events, clock) is bit-identical either way.
    #[inline]
    pub(crate) fn micro_compute_run<S: CycleSink>(
        &mut self,
        addr: MicroAddr,
        n: u32,
        sink: &mut S,
    ) {
        if !S::COALESCE_OK || !self.config.sink_batch {
            for _ in 0..n {
                self.micro_compute(addr, sink);
            }
            return;
        }
        if n == 0 {
            return;
        }
        sink.record_issue_run(addr, n);
        if self.mem.has_fault_hook() {
            // A fault hook must observe every µPC in order: no skipping.
            for _ in 0..n {
                self.mem.observe_upc(addr.value());
                let fetch = self.ib.tick(&mut self.mem, self.now, true);
                note_ib_fetch(fetch, sink);
                self.now += 1;
            }
            return;
        }
        // No hook: observe_upc is a no-op, so only the prefetcher is
        // left — run it with no-op ticks skipped in bulk.
        self.run_ticks_bulk(n, sink);
    }

    /// Advance the clock by `n` cycles, ticking the prefetcher exactly
    /// where the per-cycle loop would have ticked it to any effect.
    /// Nothing consumes IB bytes inside the run, so its evolution is
    /// fully predictable: a tick mutates nothing while the in-flight
    /// fill is not ready (jump straight to `ready_at`), and once there
    /// is no fill and the IB is full (or waiting on a TB miss) every
    /// remaining tick is a no-op. The ticks that do run — and their
    /// fetch outcomes — are exactly the mutating ones the per-cycle
    /// loop would have run, at the same `now` values.
    #[inline]
    fn run_ticks_bulk<S: CycleSink>(&mut self, n: u32, sink: &mut S) {
        let end = self.now + u64::from(n);
        while self.now < end {
            if let Some(ready) = self.ib.pending_ready_at() {
                if ready > self.now {
                    self.now = ready.min(end);
                    continue;
                }
            } else if self.ib.quiescent() {
                self.now = end;
                break;
            }
            let fetch = self.ib.tick(&mut self.mem, self.now, true);
            note_ib_fetch(fetch, sink);
            self.now += 1;
        }
    }

    /// Burn `cycles` stall cycles charged to `addr`, tagged with `cause`
    /// for the trace (the histogram only keys stalls by µPC).
    pub(crate) fn stall<S: CycleSink>(
        &mut self,
        addr: MicroAddr,
        cycles: u32,
        cause: StallCause,
        sink: &mut S,
    ) {
        if cycles == 0 {
            return;
        }
        sink.record_stall(addr, cycles);
        sink.trace_event(MachineEvent::Stall { cause, cycles });
        // Stall cycles don't observe a µPC, so the per-cycle work is the
        // prefetcher alone; skip its no-op ticks in bulk when the sink
        // permits.
        if S::COALESCE_OK && self.config.sink_batch {
            self.run_ticks_bulk(cycles, sink);
            return;
        }
        for _ in 0..cycles {
            let fetch = self.ib.tick(&mut self.mem, self.now, true);
            note_ib_fetch(fetch, sink);
            self.now += 1;
        }
    }

    /// Translate a data reference, running the TB-miss microtrap as needed.
    pub(crate) fn translate_data<S: CycleSink>(
        &mut self,
        va: u32,
        sink: &mut S,
    ) -> Result<u32, Fault> {
        loop {
            match self.mem.translate(va, Stream::Data) {
                Ok(pa) => return Ok(pa),
                Err(_) => self.tb_microtrap(va, MemStream::Data, sink)?,
            }
        }
    }

    /// The TB-miss service microroutine (paper §4.2): microtrap abort,
    /// routine entry, page-table walk with the PTE read through the cache,
    /// TB insert, restart.
    pub(crate) fn tb_microtrap<S: CycleSink>(
        &mut self,
        va: u32,
        stream: MemStream,
        sink: &mut S,
    ) -> Result<(), Fault> {
        self.micro_compute(self.cs.abort(), sink);
        self.micro_compute(self.cs.tb_miss_entry(), sink);
        self.micro_compute_run(
            self.cs.tb_miss_body(),
            self.config.tb_miss_head_cycles,
            sink,
        );
        let fill = self.mem.tb_fill(va, self.now);
        // The fill's PTE reads went through the cache as D-stream
        // references (even for an I-stream miss, and even when the walk
        // ends in a fault) — attribute them before acting on the result.
        let (sys_read, pte_read) = self.mem.last_fill_reads();
        for outcome in [sys_read, pte_read].into_iter().flatten() {
            note_data_read(outcome.miss, sink);
        }
        sink.trace_event(MachineEvent::TbMiss {
            stream,
            double: sys_read.is_some(),
        });
        let fill = fill.map_err(Fault::from)?;
        if let Some(sys) = fill.system_fill {
            self.micro_compute_run(
                self.cs.tb_miss_body(),
                self.config.tb_miss_double_cycles,
                sink,
            );
            let addr = self.cs.tb_miss_sys_read();
            sink.record_issue(addr);
            self.mem.observe_upc(addr.value());
            let fetch = self.ib.tick(&mut self.mem, self.now, false);
            note_ib_fetch(fetch, sink);
            self.now += 1;
            self.stall(addr, sys.stall, StallCause::Read, sink);
        }
        let addr = self.cs.tb_miss_pte_read();
        sink.record_issue(addr);
        self.mem.observe_upc(addr.value());
        let fetch = self.ib.tick(&mut self.mem, self.now, false);
        note_ib_fetch(fetch, sink);
        self.now += 1;
        self.stall(addr, fill.pte_read.stall, StallCause::Read, sink);
        self.micro_compute_run(
            self.cs.tb_miss_insert(),
            self.config.tb_miss_tail_cycles,
            sink,
        );
        Ok(())
    }

    /// Issue a read microinstruction at `addr` for an *aligned* reference.
    fn micro_read_aligned<S: CycleSink>(
        &mut self,
        addr: MicroAddr,
        va: u32,
        width: Width,
        sink: &mut S,
    ) -> Result<u32, Fault> {
        let pa = self.translate_data(va, sink)?;
        sink.record_issue(addr);
        self.mem.observe_upc(addr.value());
        let fetch = self.ib.tick(&mut self.mem, self.now, false);
        note_ib_fetch(fetch, sink);
        let outcome = self.mem.read(pa, width, self.now);
        note_data_read(outcome.miss, sink);
        self.now += 1;
        self.stall(addr, outcome.stall, StallCause::Read, sink);
        Ok(outcome.value)
    }

    /// Issue a write microinstruction at `addr` for an *aligned* reference.
    fn micro_write_aligned<S: CycleSink>(
        &mut self,
        addr: MicroAddr,
        va: u32,
        width: Width,
        value: u32,
        sink: &mut S,
    ) -> Result<(), Fault> {
        let pa = self.translate_data(va, sink)?;
        sink.record_issue(addr);
        self.mem.observe_upc(addr.value());
        let fetch = self.ib.tick(&mut self.mem, self.now, false);
        note_ib_fetch(fetch, sink);
        let outcome = self.mem.write(pa, width, value, self.now);
        note_data_write(self.mem.write_buffer_occupancy(), sink);
        self.now += 1;
        self.stall(addr, outcome.stall, StallCause::Write, sink);
        Ok(())
    }

    /// Does a reference of `width` at `va` cross a longword boundary
    /// (two physical references on the 32-bit data path, §3.3.1)?
    #[inline]
    fn crosses_longword(va: u32, width: Width) -> bool {
        (va & 3) + width.bytes() > 4
    }

    /// D-stream read of up to a longword, splitting unaligned references
    /// through the alignment microcode (Mem Mgmt row).
    pub(crate) fn read_data<S: CycleSink>(
        &mut self,
        addr: MicroAddr,
        va: u32,
        width: Width,
        sink: &mut S,
    ) -> Result<u32, Fault> {
        if !Self::crosses_longword(va, width) {
            // Within one longword: a single reference, possibly at an odd
            // byte offset (handled by the rotator, no extra cost).
            let aligned = va & !3;
            let lw = self.micro_read_aligned(addr, aligned, Width::Long, sink)?;
            let shift = (va & 3) * 8;
            let mask = width_mask(width);
            return Ok((lw >> shift) & mask);
        }
        self.mem.counters_mut().unaligned_refs += 1;
        let lo_lw = self.micro_read_aligned(addr, va & !3, Width::Long, sink)?;
        let hi_lw =
            self.micro_read_aligned(self.cs.memmgmt_read(), (va & !3) + 4, Width::Long, sink)?;
        self.micro_compute(self.cs.memmgmt_compute(), sink);
        let shift = (va & 3) * 8;
        let combined = (u64::from(hi_lw) << 32) | u64::from(lo_lw);
        Ok(((combined >> shift) as u32) & width_mask(width))
    }

    /// D-stream write of up to a longword, splitting unaligned references.
    pub(crate) fn write_data<S: CycleSink>(
        &mut self,
        addr: MicroAddr,
        va: u32,
        width: Width,
        value: u32,
        sink: &mut S,
    ) -> Result<(), Fault> {
        if !Self::crosses_longword(va, width) {
            return self.micro_write_aligned(addr, va, width, value, sink);
        }
        self.mem.counters_mut().unaligned_refs += 1;
        let lo_bytes = 4 - (va & 3);
        self.micro_compute(self.cs.memmgmt_compute(), sink);
        // Low part at the odd offset (aligned at byte granularity).
        for i in 0..width.bytes() {
            // Byte-wise split keeps each physical write aligned; charge the
            // first byte at the caller's address, the rest to alignment
            // microcode.
            let a = if i == 0 {
                addr
            } else {
                self.cs.memmgmt_write()
            };
            if i == lo_bytes {
                self.micro_compute(self.cs.memmgmt_compute(), sink);
            }
            self.micro_write_aligned(a, va + i, Width::Byte, (value >> (8 * i)) & 0xFF, sink)?;
        }
        Ok(())
    }

    /// Quadword read: two longword references.
    pub(crate) fn read_data_u64<S: CycleSink>(
        &mut self,
        addr: MicroAddr,
        va: u32,
        sink: &mut S,
    ) -> Result<u64, Fault> {
        let lo = self.read_data(addr, va, Width::Long, sink)?;
        let hi = self.read_data(addr, va + 4, Width::Long, sink)?;
        Ok(u64::from(lo) | (u64::from(hi) << 32))
    }

    /// Quadword write: two longword references.
    pub(crate) fn write_data_u64<S: CycleSink>(
        &mut self,
        addr: MicroAddr,
        va: u32,
        value: u64,
        sink: &mut S,
    ) -> Result<(), Fault> {
        self.write_data(addr, va, Width::Long, value as u32, sink)?;
        self.write_data(addr, va + 4, Width::Long, (value >> 32) as u32, sink)
    }

    /// Physical read (SCB vectors, PCB): no translation.
    pub(crate) fn micro_read_phys<S: CycleSink>(
        &mut self,
        addr: MicroAddr,
        pa: u32,
        sink: &mut S,
    ) -> u32 {
        sink.record_issue(addr);
        self.mem.observe_upc(addr.value());
        let fetch = self.ib.tick(&mut self.mem, self.now, false);
        note_ib_fetch(fetch, sink);
        let outcome = self.mem.read(pa & !3, Width::Long, self.now);
        note_data_read(outcome.miss, sink);
        self.now += 1;
        self.stall(addr, outcome.stall, StallCause::Read, sink);
        outcome.value
    }

    /// Physical write (PCB save): no translation.
    pub(crate) fn micro_write_phys<S: CycleSink>(
        &mut self,
        addr: MicroAddr,
        pa: u32,
        value: u32,
        sink: &mut S,
    ) {
        sink.record_issue(addr);
        self.mem.observe_upc(addr.value());
        let fetch = self.ib.tick(&mut self.mem, self.now, false);
        note_ib_fetch(fetch, sink);
        let outcome = self.mem.write(pa & !3, Width::Long, value, self.now);
        note_data_write(self.mem.write_buffer_occupancy(), sink);
        self.now += 1;
        self.stall(addr, outcome.stall, StallCause::Write, sink);
    }

    // ----- IB consumption ---------------------------------------------------

    /// Take one instruction byte, stalling at `point` while the IB is
    /// starved and servicing I-stream TB misses when flagged.
    pub(crate) fn ib_take_byte<S: CycleSink>(
        &mut self,
        point: StallPoint,
        sink: &mut S,
    ) -> Result<u8, Fault> {
        loop {
            if let Some(b) = self.ib.take_byte() {
                self.regs.set_pc(self.regs.pc().wrapping_add(1));
                return Ok(b);
            }
            if let Some(va) = self.ib.tb_miss() {
                self.tb_microtrap(va, MemStream::IFetch, sink)?;
                self.ib.clear_tb_miss();
                continue;
            }
            // Starved: execute the IB-stall dispatch microinstruction.
            // These are issued cycles, not `record_stall` stalls, so the
            // trace carries the cause explicitly.
            sink.trace_event(MachineEvent::Stall {
                cause: StallCause::Ib(point),
                cycles: 1,
            });
            self.micro_compute(self.cs.ib_stall(point), sink);
        }
    }

    /// Skip `n` instruction bytes whose values are already known from
    /// the predecode cache. Cycle-for-cycle equivalent to `n` calls of
    /// [`Cpu::ib_take_byte`]: available bytes are discarded in bulk at
    /// zero simulated cost, and starvation stalls / I-stream TB misses
    /// are handled at the identical points with the identical cycles.
    pub(crate) fn ib_skip_bytes<S: CycleSink>(
        &mut self,
        n: usize,
        point: StallPoint,
        sink: &mut S,
    ) -> Result<(), Fault> {
        let mut left = n;
        loop {
            let k = self.ib.skip_bytes(left);
            if k > 0 {
                self.regs.set_pc(self.regs.pc().wrapping_add(k as u32));
                left -= k;
            }
            if left == 0 {
                return Ok(());
            }
            if let Some(va) = self.ib.tb_miss() {
                self.tb_microtrap(va, MemStream::IFetch, sink)?;
                self.ib.clear_tb_miss();
                continue;
            }
            sink.trace_event(MachineEvent::Stall {
                cause: StallCause::Ib(point),
                cycles: 1,
            });
            self.micro_compute(self.cs.ib_stall(point), sink);
        }
    }

    /// Flush the IB for an execution redirect (taken branch, interrupt,
    /// exception). A flagged-but-unserviced I-stream TB miss is reported
    /// to the sink before it is discarded: the hardware monitor counted
    /// it when the prefetcher hit it, so the trace must see it too or the
    /// two instruments drift apart.
    pub(crate) fn flush_ib<S: CycleSink>(&mut self, pc: u32, sink: &mut S) {
        if self.ib.tb_miss().is_some() {
            sink.trace_event(MachineEvent::TbMiss {
                stream: MemStream::IFetch,
                double: false,
            });
        }
        self.ib.flush(pc);
    }

    /// Take a little-endian word from the I-stream.
    pub(crate) fn ib_take_u16<S: CycleSink>(
        &mut self,
        point: StallPoint,
        sink: &mut S,
    ) -> Result<u16, Fault> {
        let lo = self.ib_take_byte(point, sink)?;
        let hi = self.ib_take_byte(point, sink)?;
        Ok(u16::from_le_bytes([lo, hi]))
    }

    /// Take a little-endian longword from the I-stream.
    pub(crate) fn ib_take_u32<S: CycleSink>(
        &mut self,
        point: StallPoint,
        sink: &mut S,
    ) -> Result<u32, Fault> {
        let lo = self.ib_take_u16(point, sink)?;
        let hi = self.ib_take_u16(point, sink)?;
        Ok(u32::from(lo) | (u32::from(hi) << 16))
    }

    // ----- stepping ---------------------------------------------------------

    /// Execute one instruction (or service one interrupt).
    ///
    /// # Errors
    ///
    /// [`CpuError::Halted`] on a kernel-mode `HALT`;
    /// [`CpuError::UnhandledFault`] if an exception has no SCB vector.
    pub fn step<S: CycleSink>(&mut self, sink: &mut S) -> Result<StepOutcome, CpuError> {
        self.step_budgeted(1, sink)
    }

    /// Execute up to `budget` instructions (or service one interrupt).
    ///
    /// Like [`Cpu::step`], but the block tier may retire several
    /// instructions in one call — never more than `budget`, so callers
    /// driving toward an instruction target pass their remaining count
    /// and never overshoot. A budget of 1 is exactly [`Cpu::step`].
    /// [`StepOutcome::Instruction`] carries the *last* retired opcode.
    ///
    /// # Errors
    ///
    /// As [`Cpu::step`].
    pub fn step_budgeted<S: CycleSink>(
        &mut self,
        budget: u64,
        sink: &mut S,
    ) -> Result<StepOutcome, CpuError> {
        // Injected faults are accepted at instruction boundaries, ahead
        // of interrupt arbitration: a machine check outranks any IPL.
        if let Some(class) = self.mem.poll_fault(self.now) {
            self.machine_check(class, sink)?;
            return Ok(StepOutcome::MachineCheck(class));
        }
        // Interrupt arbitration happens between instructions.
        if let Some(int) = self.pending_interrupt() {
            self.service_interrupt(int, sink);
            return Ok(StepOutcome::Interrupt);
        }
        let pc_at_start = self.regs.pc();
        // Block tier: keep executing inside this call — replaying
        // flattened straight-line runs where compiled blocks exist and
        // falling back to single per-instruction executions between
        // them — until the budget, the external-event horizon, or an
        // instruction that can perturb interrupt state ends the run.
        // Entered only when no fault hook is armed (an armed hook polls
        // every instruction boundary and observes every µPC — the
        // per-instruction path handles that) and the budget covers at
        // least two instructions. The checks above plus the run guards
        // make the whole run bit-identical to that many
        // per-instruction steps.
        if budget >= 2
            && self.config.block_tier
            && self.config.predecode
            && !self.mem.has_fault_hook()
        {
            return self.run_block_tier(budget, sink);
        }
        match self.execute_one(sink) {
            Ok(op) => {
                self.insn_count += 1;
                Ok(StepOutcome::Instruction(op))
            }
            Err(ExecStop::Fault(fault)) => {
                self.deliver_exception(fault, pc_at_start, sink)?;
                Ok(StepOutcome::Exception(fault))
            }
            Err(ExecStop::Halt) => Err(CpuError::Halted { pc: self.regs.pc() }),
        }
    }

    /// The block tier's run loop: alternate between replaying compiled
    /// blocks and single per-instruction executions, all inside one
    /// `step_budgeted` call, until the instruction budget is spent, the
    /// external-event horizon is reached, or an instruction retires
    /// that could make an interrupt deliverable
    /// ([`crate::block::claimed_resume_safe`]).
    ///
    /// Bit-identity argument for the skipped per-step work: the fault
    /// poll is a no-op because no hook is armed (entry guard) and none
    /// can be installed from inside the run; interrupt arbitration is a
    /// no-op because the only things that change IPL/SISR/interrupt
    /// lines are external events (which cannot fire before the event
    /// horizon — and the run stops there) and the excluded instructions
    /// (the run returns right after one retires); the external-event
    /// pump is a no-op for the same horizon reason. So the run retires
    /// exactly the instructions, in exactly the states, that that many
    /// per-instruction steps would have.
    fn run_block_tier<S: CycleSink>(
        &mut self,
        budget: u64,
        sink: &mut S,
    ) -> Result<StepOutcome, CpuError> {
        let mut executed: u64 = 0;
        let mut last;
        loop {
            let pc = self.regs.pc();
            let space = self.code_space_tag(pc);
            let gen = self.mem.decode_gen();
            // One predecode lookup dispatches everything: the head
            // flags ride on the tag it just loaded, so "is there a
            // block here?" costs no second probe, and on a flagless
            // hit the slot replays directly — the exact work the fast
            // loop would have done for this instruction.
            if let Some(head) = self.predecode.lookup(pc, space, gen) {
                let flags = self.predecode.head_flags(head);
                let count = if flags & crate::predecode::FLAG_HAS_BLOCK != 0 {
                    flags >> 2
                } else if flags & crate::predecode::FLAG_NONHEAD == 0 {
                    self.build_block(head, pc, space, gen)
                } else {
                    0
                };
                if count != 0 {
                    self.block_stats.hits += 1;
                    match self.execute_block(head, count, budget - executed, sink) {
                        Ok((op, n)) => {
                            // Every block instruction is resume-safe
                            // (terminators included), so the run
                            // always continues after a block.
                            last = op;
                            executed += n;
                        }
                        Err((ExecStop::Fault(fault), fault_pc)) => {
                            self.deliver_exception(fault, fault_pc, sink)?;
                            return Ok(StepOutcome::Exception(fault));
                        }
                        Err((ExecStop::Halt, _)) => {
                            return Err(CpuError::Halted { pc: self.regs.pc() })
                        }
                    }
                } else {
                    // A predecoded non-head: replay the single parse,
                    // reusing the lookup already done.
                    match self.execute_predecoded(head, pc, sink) {
                        Ok(op) => {
                            self.insn_count += 1;
                            executed += 1;
                            last = op;
                            if !resume_safe(op) {
                                break;
                            }
                        }
                        Err(ExecStop::Fault(fault)) => {
                            self.deliver_exception(fault, pc, sink)?;
                            return Ok(StepOutcome::Exception(fault));
                        }
                        Err(ExecStop::Halt) => return Err(CpuError::Halted { pc: self.regs.pc() }),
                    }
                }
            } else {
                // Not predecoded yet: one ordinary per-instruction
                // execution (whose parse path fills the cache), then
                // keep going.
                match self.execute_one(sink) {
                    Ok(op) => {
                        self.insn_count += 1;
                        executed += 1;
                        last = op;
                        if !resume_safe(op) {
                            break;
                        }
                    }
                    Err(ExecStop::Fault(fault)) => {
                        self.deliver_exception(fault, pc, sink)?;
                        return Ok(StepOutcome::Exception(fault));
                    }
                    Err(ExecStop::Halt) => return Err(CpuError::Halted { pc: self.regs.pc() }),
                }
            }
            if executed >= budget || self.now >= self.event_horizon {
                break;
            }
        }
        Ok(StepOutcome::Instruction(last))
    }

    /// Verify the straight-line run of predecoded instructions headed
    /// at predecode slot `head` (already looked up at `pc`), stopping
    /// at the first instruction that can redirect execution, perturb
    /// interrupt/address-space state, or is simply not predecoded yet.
    /// Returns the verified instruction count (0 = no block) and
    /// records it in the head's tag flags — the count is the block's
    /// entire representation; nothing else is stored. A definitive
    /// "never" marks the head's tag instead
    /// ([`PredecodeCache::note_nonhead`]) so hot branch PCs don't pay a
    /// rebuild attempt on every visit.
    fn build_block(&mut self, head: usize, pc: u32, space: u64, gen: u64) -> u8 {
        let (head_len, head_safe, _) = self.predecode.meta_at(head);
        if !head_safe || head_len == 0 {
            // This head can never start a block while it holds this
            // parse; the flag dies with the slot's identity.
            self.predecode.note_nonhead(head);
            return 0;
        }
        let mut n: u8 = 1;
        let mut va = pc.wrapping_add(u32::from(head_len));
        let mut open_end = false;
        while usize::from(n) < BLOCK_MAX && va > pc && self.code_space_tag(va) == space {
            let Some(idx) = self.predecode.lookup(va, space, gen) else {
                // Not parsed yet — the run may extend once it is.
                open_end = true;
                break;
            };
            let (len, safe, resume) = self.predecode.meta_at(idx);
            if safe && len != 0 {
                n += 1;
                va = va.wrapping_add(u32::from(len));
                continue;
            }
            // The run ends here. If the ender is resume-safe — a plain
            // branch, call, or jump that redirects the PC without
            // touching interrupt state — flatten it too, as the block's
            // *terminator*: it replays through the same
            // `execute_predecoded`, and the run loop simply continues
            // at whatever PC it leaves behind. Resume-unsafe enders
            // (MTPR, CHMx, REI, ...) stay on the per-instruction path.
            if resume {
                n += 1;
            }
            break;
        }
        if n < 2 {
            if !open_end {
                // A lone instruction before a resume-unsafe ender:
                // mark it a non-head, same as an unsafe head.
                self.predecode.note_nonhead(head);
            }
            return 0;
        }
        self.block_stats.builds += 1;
        self.predecode.note_has_block(head, n);
        n
    }

    /// Replay the verified block of `count` instructions headed at
    /// predecode slot `head`, retiring at most `budget` of them (the
    /// budget caps the walk up front — it cannot change mid-block).
    /// The block stores no entries: each instruction after the head is
    /// reached exactly the way the fast loop would reach it — a
    /// predecode lookup at the current PC, space, and generation, then
    /// a replay of the cached parse. That lookup *is* the mid-run
    /// revalidation: self-modifying code bumps the generation and the
    /// lookup misses, an evicted interior parse misses, and either way
    /// the replay ends early and reroutes to the parse path, which
    /// consumes the same bytes. Between instructions only the
    /// external-event horizon is checked on top; everything else
    /// provably cannot change mid-run, which is what the entry guards
    /// and the block-safety filter established. Each instruction
    /// replays through `execute_predecoded` — the same code the fast
    /// loop runs — so the block tier adds no third replay
    /// implementation to keep bit-identical. Returns the last opcode
    /// and how many instructions retired (≥ 1; the caller guarantees
    /// `budget ≥ 1`). On a fault the error carries the faulting
    /// instruction's PC for delivery.
    fn execute_block<S: CycleSink>(
        &mut self,
        head: usize,
        count: u8,
        budget: u64,
        sink: &mut S,
    ) -> Result<(Opcode, u64), (ExecStop, u32)> {
        let limit = u64::from(count).min(budget.min(BLOCK_MAX as u64));
        let mut slot = head;
        let mut pc = self.regs.pc();
        let mut last;
        let mut executed: u64 = 0;
        loop {
            match self.execute_predecoded(slot, pc, sink) {
                Ok(op) => {
                    self.insn_count += 1;
                    executed += 1;
                    last = op;
                }
                Err(stop) => {
                    self.block_stats.replayed += executed;
                    if executed > 0 {
                        self.block_stats.run_hist[executed as usize] += 1;
                    }
                    return Err((stop, pc));
                }
            }
            if executed >= limit || self.now >= self.event_horizon {
                break;
            }
            // The next instruction of the run, revalidated by the same
            // lookup the fast loop would do for it.
            pc = self.regs.pc();
            let space = self.code_space_tag(pc);
            let gen = self.mem.decode_gen();
            let Some(next) = self.predecode.lookup(pc, space, gen) else {
                break;
            };
            slot = next;
        }
        self.block_stats.replayed += executed;
        self.block_stats.run_hist[executed as usize] += 1;
        Ok((last, executed))
    }

    fn execute_one<S: CycleSink>(&mut self, sink: &mut S) -> Result<Opcode, ExecStop> {
        let pc_at_start = self.regs.pc();
        // Predecode fast path: replay the cached parse of this static
        // instruction. Bit-identical to the parse path below — same bytes
        // consumed, same microinstructions issued, same evaluation code.
        if self.config.predecode {
            let space = self.code_space_tag(pc_at_start);
            if let Some(idx) = self
                .predecode
                .lookup(pc_at_start, space, self.mem.decode_gen())
            {
                return self.execute_predecoded(idx, pc_at_start, sink);
            }
        }
        let opbyte = self
            .ib_take_byte(StallPoint::Decode, sink)
            .map_err(ExecStop::Fault)?;
        let opcode =
            Opcode::from_byte(opbyte).ok_or(ExecStop::Fault(Fault::ReservedInstruction {
                opcode: opbyte,
            }))?;
        sink.trace_event(MachineEvent::Decode { opcode });
        // The non-overlapped decode cycle (§2.1). The 11/750-style ablation
        // folds it away for non-PC-changing instructions (§5).
        if !self.config.decode_overlap || opcode.is_pc_changing() {
            self.micro_compute(self.cs.ird1(), sink);
        }
        self.patch_abort_cycle(sink);
        // Specifier processing, recording each parse for the predecode
        // cache as we go.
        let mut rec = PredecodedInst::new(opcode);
        let mut ops = specifier::EvalOps::new();
        let mut branch_disp: Option<i32> = None;
        for (i, template) in opcode.operands().iter().enumerate() {
            if template.is_branch_displacement() {
                let (disp, bytes) = match template.data_type() {
                    DataType::Byte => (
                        self.ib_take_byte(StallPoint::BranchDisp, sink)
                            .map_err(ExecStop::Fault)? as i8 as i32,
                        1u8,
                    ),
                    DataType::Word => (
                        self.ib_take_u16(StallPoint::BranchDisp, sink)
                            .map_err(ExecStop::Fault)? as i16 as i32,
                        2u8,
                    ),
                    other => unreachable!("displacement of type {other}"),
                };
                // The displacement bytes are consumed here (IB stalls land
                // in the B-Disp row), but the target-address computation
                // cycle is spent only if the branch is taken — §5: "the
                // branch displacement need not be computed when the
                // instruction does not branch".
                rec.push(PdOp::Branch { disp, bytes });
                branch_disp = Some(disp);
            } else {
                let (op, dec) =
                    specifier::eval_specifier(self, i, *template, sink).map_err(ExecStop::Fault)?;
                rec.push(PdOp::Spec(dec));
                ops.push(op);
            }
        }
        // All operands parsed cleanly: cache the parse. (Execute-phase
        // faults don't invalidate a parse; instructions whose *parse*
        // faults never reach here and stay on this path, preserving
        // their exact fault payloads.)
        if self.config.predecode {
            self.insert_predecode(pc_at_start, rec);
        }
        // Execute phase.
        let specifiers = (ops.len() + usize::from(branch_disp.is_some())) as u8;
        exec::execute(self, opcode, &ops, branch_disp, sink)?;
        sink.trace_event(MachineEvent::Retire {
            opcode,
            pc: pc_at_start,
            specifiers,
        });
        Ok(opcode)
    }

    /// Replay a predecode-cache hit: consume the same I-stream bytes and
    /// issue the same microinstructions as the parse path, evaluating
    /// operands through the shared `eval_decoded` code. `idx` is the
    /// cache slot from `PredecodeCache::lookup`, read in place per
    /// operand: nothing inserts into the cache during a replay, so the
    /// slot cannot be overwritten under us.
    fn execute_predecoded<S: CycleSink>(
        &mut self,
        idx: usize,
        pc_at_start: u32,
        sink: &mut S,
    ) -> Result<Opcode, ExecStop> {
        let (opcode, nops) = self.predecode.header_at(idx);
        self.ib_skip_bytes(1, StallPoint::Decode, sink)
            .map_err(ExecStop::Fault)?; // the opcode byte
        sink.trace_event(MachineEvent::Decode { opcode });
        if !self.config.decode_overlap || opcode.is_pc_changing() {
            self.micro_compute(self.cs.ird1(), sink);
        }
        self.patch_abort_cycle(sink);
        let mut ops = specifier::EvalOps::new();
        let mut branch_disp: Option<i32> = None;
        for i in 0..usize::from(nops) {
            match self.predecode.op_at(idx, i) {
                PdOp::Branch { disp, bytes } => {
                    self.ib_skip_bytes(usize::from(bytes), StallPoint::BranchDisp, sink)
                        .map_err(ExecStop::Fault)?;
                    branch_disp = Some(disp);
                }
                PdOp::Spec(dec) => {
                    let op =
                        specifier::eval_predecoded(self, i, &dec, sink).map_err(ExecStop::Fault)?;
                    ops.push(op);
                }
            }
        }
        let specifiers = (ops.len() + usize::from(branch_disp.is_some())) as u8;
        exec::execute(self, opcode, &ops, branch_disp, sink)?;
        sink.trace_event(MachineEvent::Retire {
            opcode,
            pc: pc_at_start,
            specifiers,
        });
        Ok(opcode)
    }

    /// Cache the parse of the instruction spanning `[pc, regs.pc())`,
    /// flagging every physical code page it touches so simulated writes
    /// there invalidate the cache. If any page fails to resolve (it was
    /// just fetched, so this cannot normally happen), skip the insert —
    /// staying on the parse path is always safe.
    fn insert_predecode(&mut self, pc: u32, mut inst: PredecodedInst) {
        let end = self.regs.pc();
        if end <= pc {
            return; // PC wrapped mid-instruction: not worth caching.
        }
        // Record the instruction's I-stream length so the block builder
        // can chain consecutive parses. Longest encodable instruction is
        // 61 bytes (opcode + six 10-byte specifiers); the guard is
        // defensive.
        let Ok(len) = u8::try_from(end - pc) else {
            return;
        };
        inst.len = len;
        // Flag exactly the bytes the instruction occupies, page by page
        // (the range is virtually contiguous but not physically).
        let mut va = pc;
        while va < end {
            let page_end = (va & !(vax_mem::PAGE_BYTES - 1)).wrapping_add(vax_mem::PAGE_BYTES);
            let chunk_end = if page_end == 0 {
                end
            } else {
                page_end.min(end)
            };
            match self.mem.resolve_va(va) {
                Some(pa) => self.mem.note_code_bytes(pa, chunk_end - va),
                None => return,
            }
            va = chunk_end;
        }
        let space = self.code_space_tag(pc);
        self.predecode
            .insert(pc, space, self.mem.decode_gen(), inst);
    }

    /// The predecode address-space tag for code at `pc`: system-space
    /// code (S0/S1, top VA bit set) is mapped identically for every
    /// process and shares tag 0; process-space code is tagged with the
    /// owning space's identity so entries survive context switches.
    #[inline]
    fn code_space_tag(&self, pc: u32) -> u64 {
        if pc & 0x8000_0000 != 0 {
            0
        } else {
            self.mem.space_tag()
        }
    }

    /// Microcode-patch abort cycles (§5: "one for each microcode patch")
    /// at a steady rate: on instruction counts `period, 2·period, …` —
    /// never at count 0, which would charge a spurious abort on the very
    /// first instruction of every run and skew short ablations.
    #[inline]
    fn patch_abort_cycle<S: CycleSink>(&mut self, sink: &mut S) {
        if self.config.patch_abort_period > 0
            && self.insn_count > 0
            && self
                .insn_count
                .is_multiple_of(u64::from(self.config.patch_abort_period))
        {
            self.micro_compute(self.cs.abort(), sink);
        }
    }

    fn pending_interrupt(&self) -> Option<PendingInt> {
        let hw = self.lines.max_ipl().filter(|&ipl| ipl > self.psl.ipl);
        let sw = highest_bit(self.sisr).filter(|&lvl| lvl > self.psl.ipl);
        match (hw, sw) {
            (Some(h), Some(s)) if s > h => Some(PendingInt::Software(s)),
            (Some(_), _) => Some(PendingInt::Hardware),
            (None, Some(s)) => Some(PendingInt::Software(s)),
            (None, None) => None,
        }
    }

    /// Interrupt-service microcode: save PC/PSL on the interrupt stack,
    /// fetch the SCB vector, dispatch to the kernel's ISR code.
    fn service_interrupt<S: CycleSink>(&mut self, which: PendingInt, sink: &mut S) {
        let (ipl, vector) = match which {
            PendingInt::Hardware => {
                let int = self
                    .lines
                    .acknowledge_above(self.psl.ipl)
                    .expect("pending_interrupt saw it");
                (int.ipl, int.vector)
            }
            PendingInt::Software(level) => {
                self.sisr &= !(1 << level);
                (level, scb::SOFTWARE_BASE + 4 * u16::from(level))
            }
        };
        sink.trace_event(MachineEvent::InterruptEntry { ipl });
        let (u_entry, u_body, u_read, u_write) = (
            self.cs.int_entry(),
            self.cs.int_body(),
            self.cs.int_read(),
            self.cs.int_write(),
        );
        self.micro_compute(u_entry, sink);
        let body = self.config.int_service_body_cycles;
        self.micro_compute_run(u_body, body / 2, sink);
        // Hardware interrupts are serviced on the interrupt stack;
        // software interrupts (e.g. VMS rescheduling at level 3) on the
        // current process's kernel stack, so the PC/PSL frame is part of
        // the per-process context that SVPCTX/LDPCTX hand over.
        let on_interrupt_stack = matches!(which, PendingInt::Hardware);
        let old_psl = self.psl;
        let mut new_psl = self.psl;
        new_psl.mode = Mode::Kernel;
        new_psl.interrupt_stack = on_interrupt_stack;
        new_psl.ipl = ipl;
        self.regs.switch_stack(&old_psl, &new_psl);
        self.psl = new_psl;
        let sp = self.regs.sp().wrapping_sub(8);
        self.regs.set_sp(sp);
        // Pushes go through translation; the interrupt stack is wired
        // resident in the workloads, so faults cannot occur here. The PSL
        // slot address must wrap like the SP computation itself did: with
        // SP < 8 the subtraction wraps and `sp + 4` would overflow.
        let pc = self.regs.pc();
        let psl_word = old_psl.to_u32();
        let _ = self.write_data(u_write, sp.wrapping_add(4), Width::Long, psl_word, sink);
        self.micro_compute(u_body, sink);
        self.micro_compute(u_body, sink);
        let _ = self.write_data(u_write, sp, Width::Long, pc, sink);
        self.micro_compute_run(u_body, body - body / 2, sink);
        let handler = self.micro_read_phys(u_read, self.scbb + u32::from(vector), sink);
        self.regs.set_pc(handler);
        self.flush_ib(handler, sink);
    }

    /// Exception-service microcode; delivers `fault` through the SCB.
    fn deliver_exception<S: CycleSink>(
        &mut self,
        fault: Fault,
        pc_at_fault: u32,
        sink: &mut S,
    ) -> Result<(), CpuError> {
        let vector = match fault {
            Fault::PageFault { .. } => scb::TRANSLATION_NOT_VALID,
            Fault::LengthViolation { .. } => scb::ACCESS_VIOLATION,
            Fault::ReservedInstruction { .. } | Fault::Privileged => scb::RESERVED_INSTRUCTION,
            Fault::MachineCheck => scb::MACHINE_CHECK,
        };
        sink.trace_event(MachineEvent::ExceptionEntry);
        let (u_abort, u_entry, u_body, u_read, u_write) = (
            self.cs.abort(),
            self.cs.exc_entry(),
            self.cs.exc_body(),
            self.cs.exc_read(),
            self.cs.exc_write(),
        );
        self.micro_compute(u_abort, sink);
        self.micro_compute(u_entry, sink);
        self.micro_compute_run(u_body, self.config.exc_service_body_cycles, sink);
        let old_psl = self.psl;
        let mut new_psl = self.psl;
        new_psl.mode = Mode::Kernel;
        self.regs.switch_stack(&old_psl, &new_psl);
        self.psl = new_psl;
        let sp = self.regs.sp().wrapping_sub(8);
        self.regs.set_sp(sp);
        let _ = self.write_data(
            u_write,
            sp.wrapping_add(4),
            Width::Long,
            old_psl.to_u32(),
            sink,
        );
        let _ = self.write_data(u_write, sp, Width::Long, pc_at_fault, sink);
        let handler = self.micro_read_phys(u_read, self.scbb + u32::from(vector), sink);
        if handler == 0 {
            return Err(CpuError::UnhandledFault {
                fault,
                pc: pc_at_fault,
            });
        }
        self.regs.set_pc(handler);
        self.flush_ib(handler, sink);
        Ok(())
    }

    /// Machine-check microcode for an injected fault. The recovery
    /// sequence (scrub/retry, per fault class) runs first and is
    /// attributed to the fault-handling control-store region; the
    /// architectural perturbation is then applied to the memory
    /// subsystem, and the event is reported to the kernel's
    /// machine-check handler through the normal exception microcode.
    /// All recovery µwords are Compute ops, so the stall-cause
    /// partition of the histogram stays exact under injection.
    fn machine_check<S: CycleSink>(
        &mut self,
        class: FaultClass,
        sink: &mut S,
    ) -> Result<(), CpuError> {
        sink.trace_event(MachineEvent::MachineCheck { class });
        let (u_abort, u_entry, u_body) =
            (self.cs.abort(), self.cs.fault_entry(), self.cs.fault_body());
        self.micro_compute(u_abort, sink);
        self.micro_compute(u_entry, sink);
        self.micro_compute_run(u_body, class.recovery_body_cycles(), sink);
        // Perturb the memory subsystem the way the real error would
        // have (flushed cache/TB, busy SBI, ...), count it, and log the
        // entry cycle back to the hook.
        self.mem.apply_fault(class, self.now);
        let pc = self.regs.pc();
        self.deliver_exception(Fault::MachineCheck, pc, sink)
    }

    /// Run up to `max_instructions` instructions.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuError`] from [`Cpu::step`].
    pub fn run<S: CycleSink>(
        &mut self,
        max_instructions: u64,
        sink: &mut S,
    ) -> Result<RunOutcome, CpuError> {
        let start_insns = self.insn_count;
        let start_cycles = self.now;
        while self.insn_count - start_insns < max_instructions {
            let remaining = max_instructions - (self.insn_count - start_insns);
            self.step_budgeted(remaining, sink)?;
        }
        Ok(RunOutcome {
            instructions: self.insn_count - start_insns,
            cycles: self.now - start_cycles,
        })
    }
}

enum PendingInt {
    Hardware,
    Software(u8),
}

/// Why instruction execution stopped abnormally.
pub(crate) enum ExecStop {
    /// An architectural fault to deliver.
    Fault(Fault),
    /// Kernel-mode HALT.
    Halt,
}

impl From<Fault> for ExecStop {
    fn from(f: Fault) -> ExecStop {
        ExecStop::Fault(f)
    }
}

/// Report an IB prefetch issued this cycle (if any) to the sink.
#[inline]
fn note_ib_fetch<S: CycleSink>(fetch: Option<bool>, sink: &mut S) {
    if let Some(miss) = fetch {
        sink.trace_event(MachineEvent::CacheAccess {
            stream: MemStream::IFetch,
            hit: !miss,
        });
        if miss {
            sink.trace_event(MachineEvent::Sbi { read: true });
        }
    }
}

/// Report a D-stream cache read (and its SBI fill, on a miss).
#[inline]
fn note_data_read<S: CycleSink>(miss: bool, sink: &mut S) {
    sink.trace_event(MachineEvent::CacheAccess {
        stream: MemStream::Data,
        hit: !miss,
    });
    if miss {
        sink.trace_event(MachineEvent::Sbi { read: true });
    }
}

/// Report a write entering the write buffer (every write also goes out
/// on the SBI — the cache is write-through).
#[inline]
fn note_data_write<S: CycleSink>(occupancy: usize, sink: &mut S) {
    sink.trace_event(MachineEvent::WriteBuffer {
        occupancy: occupancy.min(usize::from(u8::MAX)) as u8,
    });
    sink.trace_event(MachineEvent::Sbi { read: false });
}

#[inline]
fn width_mask(width: Width) -> u32 {
    match width {
        Width::Byte => 0xFF,
        Width::Word => 0xFFFF,
        Width::Long => 0xFFFF_FFFF,
    }
}

/// Highest set bit index of a 16-bit mask (software interrupt level).
fn highest_bit(mask: u16) -> Option<u8> {
    if mask == 0 {
        None
    } else {
        Some(15 - mask.leading_zeros() as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn highest_bit_finds_top_level() {
        assert_eq!(highest_bit(0), None);
        assert_eq!(highest_bit(0b0000_0010), Some(1));
        assert_eq!(highest_bit(0b1000_0010), Some(7));
    }

    #[test]
    fn crosses_longword_detection() {
        assert!(!Cpu::crosses_longword(0x1000, Width::Long));
        assert!(Cpu::crosses_longword(0x1002, Width::Long));
        assert!(!Cpu::crosses_longword(0x1002, Width::Word));
        assert!(Cpu::crosses_longword(0x1003, Width::Word));
        assert!(!Cpu::crosses_longword(0x1003, Width::Byte));
    }
}
