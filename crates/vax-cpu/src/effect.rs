//! The effect audit: refute (or confirm) the block tier's safety
//! claims against the derived footprints.
//!
//! The block tier's two classifiers ([`crate::block::claimed_block_safe`]
//! and [`crate::block::claimed_resume_safe`]) are hand-maintained
//! opcode lists. [`vax_ucode::effect`] derives, for every opcode, a
//! conservative effect footprint from the operand templates, the
//! control-store row map, and the static characterization — with no
//! hand list as input. This module compares claim against derivation
//! over **all** opcodes, in both directions:
//!
//! * **Unsound** (an error when linted): the derivation says the opcode
//!   may redirect PC or perturb interrupt state, but the tier claims
//!   it safe. Replaying through such an opcode would skip a fault poll
//!   or arbitration check that is not a provable no-op.
//! * **Foregone** (a warning when linted): the derivation proves the
//!   opcode safe, but the tier claims it unsafe. Nothing breaks — the
//!   tier just declines block coverage the tables say it could have.
//!
//! The audit is exported (and re-run with injectable claims) so both
//! the in-crate tests and `vax780 lint --effects` gate on it.

use crate::block::{claimed_block_safe, claimed_resume_safe};
use vax_arch::Opcode;
use vax_ucode::effect::{self, EffectSet};
use vax_ucode::ControlStore;

/// Which claim diverged from the derived footprint, and in which
/// direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditKind {
    /// Claimed block-safe, derived unsafe: unsound.
    BlockUnsound,
    /// Claimed resume-safe, derived unsafe: unsound.
    ResumeUnsound,
    /// Derived block-safe, claimed unsafe: foregone block coverage.
    BlockForgone,
    /// Derived resume-safe, claimed unsafe: foregone run continuation.
    ResumeForgone,
}

impl AuditKind {
    /// Is this finding a soundness violation (as opposed to foregone
    /// coverage)?
    pub fn is_unsound(self) -> bool {
        matches!(self, AuditKind::BlockUnsound | AuditKind::ResumeUnsound)
    }
}

/// One divergence between a claimed classifier and the derived
/// footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditFinding {
    /// The diverging opcode.
    pub op: Opcode,
    /// Which claim, which direction.
    pub kind: AuditKind,
    /// The derived footprint, for the diagnostic message.
    pub effects: EffectSet,
}

/// Audit the shipped classifiers over every opcode. Empty on a healthy
/// build — any finding is either a soundness bug in the block tier or
/// deliberate (and then it should be visible here, not silent).
pub fn audit_claims(cs: &ControlStore) -> Vec<AuditFinding> {
    audit_claims_with(cs, claimed_block_safe, claimed_resume_safe)
}

/// Audit arbitrary claim functions against the derived footprints.
/// The lint pass and the misclassification tests inject claims here;
/// production code always audits the shipped ones via
/// [`audit_claims`].
pub fn audit_claims_with(
    cs: &ControlStore,
    claim_block: impl Fn(Opcode) -> bool,
    claim_resume: impl Fn(Opcode) -> bool,
) -> Vec<AuditFinding> {
    let mut findings = Vec::new();
    for &op in Opcode::ALL {
        let effects = effect::derive(op, cs);
        let derived_block = effect::derived_block_safe(op, cs);
        let derived_resume = effect::derived_resume_safe(op, cs);
        let kind = |claimed: bool, derived: bool, unsound: AuditKind, forgone: AuditKind| match (
            claimed, derived,
        ) {
            (true, false) => Some(unsound),
            (false, true) => Some(forgone),
            _ => None,
        };
        for k in [
            kind(
                claim_block(op),
                derived_block,
                AuditKind::BlockUnsound,
                AuditKind::BlockForgone,
            ),
            kind(
                claim_resume(op),
                derived_resume,
                AuditKind::ResumeUnsound,
                AuditKind::ResumeForgone,
            ),
        ]
        .into_iter()
        .flatten()
        {
            findings.push(AuditFinding {
                op,
                kind: k,
                effects,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forgone_direction_is_reported_too() {
        let cs = ControlStore::build();
        // Claim NOP (provably inert) is not block-safe: coverage is
        // foregone, and the audit must say so — as a non-unsound kind.
        let findings = audit_claims_with(
            &cs,
            |op| op != Opcode::Nop && claimed_block_safe(op),
            claimed_resume_safe,
        );
        let f = findings
            .iter()
            .find(|f| f.op == Opcode::Nop)
            .expect("foregone finding");
        assert_eq!(f.kind, AuditKind::BlockForgone);
        assert!(!f.kind.is_unsound());
    }

    #[test]
    fn both_claims_of_one_opcode_can_diverge() {
        let cs = ControlStore::build();
        // Claim REI (system branch) safe on both axes: two findings.
        let findings = audit_claims_with(
            &cs,
            |op| op == Opcode::Rei || claimed_block_safe(op),
            |op| op == Opcode::Rei || claimed_resume_safe(op),
        );
        let rei: Vec<_> = findings.iter().filter(|f| f.op == Opcode::Rei).collect();
        assert_eq!(rei.len(), 2);
        assert!(rei.iter().all(|f| f.kind.is_unsound()));
    }
}
