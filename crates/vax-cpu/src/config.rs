//! CPU model configuration.

/// Tunable microcode/pipeline parameters.
///
/// Defaults model the 11/780; the ablation benches flip individual fields
/// (e.g. `decode_overlap` models the 11/750's folding of the decode cycle,
/// discussed in the paper's §5: "the later VAX model 11/750 did [save the
/// non-overlapped I-Decode cycle]").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Overlap the initial decode with the previous instruction's last
    /// cycle for non-PC-changing instructions (11/750-style). The 11/780
    /// does not (`false`).
    pub decode_overlap: bool,
    /// Compute cycles in the TB-miss routine before the PTE read
    /// (probe, region dispatch, address formation).
    pub tb_miss_head_cycles: u32,
    /// Compute cycles in the TB-miss routine after the PTE read
    /// (validity check, TB write, restart).
    pub tb_miss_tail_cycles: u32,
    /// Extra compute cycles when the miss double-faults into a system
    /// page-table fill.
    pub tb_miss_double_cycles: u32,
    /// Compute cycles of interrupt-service microcode around its memory
    /// references (vector fetch, stack pushes).
    pub int_service_body_cycles: u32,
    /// Compute cycles of exception-service microcode.
    pub exc_service_body_cycles: u32,
    /// Compute cycles inserted between a character-string loop's read and
    /// write ("microprogrammed to reduce write stalls by writing only in
    /// every sixth cycle", §4.3).
    pub char_loop_spacing: u32,
    /// One abort cycle is charged every this many instructions, modelling
    /// the paper's "one \[abort\] for each microcode patch" — the WCS
    /// patches on production machines executed at a steady rate. 0
    /// disables.
    pub patch_abort_period: u32,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            decode_overlap: false,
            tb_miss_head_cycles: 9,
            tb_miss_tail_cycles: 7,
            tb_miss_double_cycles: 4,
            int_service_body_cycles: 30,
            exc_service_body_cycles: 12,
            char_loop_spacing: 5,
            patch_abort_period: 12,
        }
    }
}

impl CpuConfig {
    /// The 11/750-style decode-overlap ablation configuration.
    pub fn with_decode_overlap() -> CpuConfig {
        CpuConfig {
            decode_overlap: true,
            ..CpuConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_780() {
        let c = CpuConfig::default();
        assert!(!c.decode_overlap);
        // Nominal TB service path: entry + head + read + tail ≈ 18 issue
        // cycles, landing near the paper's 21.6 with stalls.
        assert_eq!(1 + c.tb_miss_head_cycles + 1 + c.tb_miss_tail_cycles, 18);
    }

    #[test]
    fn ablation_flips_overlap_only() {
        let a = CpuConfig::with_decode_overlap();
        assert!(a.decode_overlap);
        assert_eq!(
            a.tb_miss_head_cycles,
            CpuConfig::default().tb_miss_head_cycles
        );
    }
}
