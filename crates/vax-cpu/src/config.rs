//! CPU model configuration.

/// Tunable microcode/pipeline parameters.
///
/// Defaults model the 11/780; the ablation benches flip individual fields
/// (e.g. `decode_overlap` models the 11/750's folding of the decode cycle,
/// discussed in the paper's §5: "the later VAX model 11/750 did [save the
/// non-overlapped I-Decode cycle]").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Overlap the initial decode with the previous instruction's last
    /// cycle for non-PC-changing instructions (11/750-style). The 11/780
    /// does not (`false`).
    pub decode_overlap: bool,
    /// Compute cycles in the TB-miss routine before the PTE read
    /// (probe, region dispatch, address formation).
    pub tb_miss_head_cycles: u32,
    /// Compute cycles in the TB-miss routine after the PTE read
    /// (validity check, TB write, restart).
    pub tb_miss_tail_cycles: u32,
    /// Extra compute cycles when the miss double-faults into a system
    /// page-table fill.
    pub tb_miss_double_cycles: u32,
    /// Compute cycles of interrupt-service microcode around its memory
    /// references (vector fetch, stack pushes).
    pub int_service_body_cycles: u32,
    /// Compute cycles of exception-service microcode.
    pub exc_service_body_cycles: u32,
    /// Compute cycles inserted between a character-string loop's read and
    /// write ("microprogrammed to reduce write stalls by writing only in
    /// every sixth cycle", §4.3).
    pub char_loop_spacing: u32,
    /// One abort cycle is charged every this many instructions, modelling
    /// the paper's "one \[abort\] for each microcode patch" — the WCS
    /// patches on production machines executed at a steady rate. 0
    /// disables.
    pub patch_abort_period: u32,
    /// Use the predecode cache: parse each static instruction once and
    /// replay the decoded form on re-execution, charging the identical
    /// IB/decode cycles. A **host-side** optimization with no simulated
    /// effect — histograms, hardware counters, and trace streams are
    /// bit-identical to the naive loop (`tests/perf_equivalence.rs`
    /// proves it; `vax780 bench` measures the speedup). `false` selects
    /// the naive byte-by-byte loop, kept as the executable reference.
    pub predecode: bool,
    /// Use the sink fast paths: coalesce consecutive same-µPC issues
    /// into one batched histogram call and skip prefetcher ticks that
    /// provably mutate nothing. Like `predecode`, a host-side
    /// optimization with no simulated effect; `false` restores the
    /// per-cycle loop the equivalence suite and `vax780 bench` use as
    /// the reference.
    pub sink_batch: bool,
    /// Use the generation-validated host shortcuts in the machine model:
    /// the prefetcher's cheap-gate tick and the one-entry translation
    /// shortcuts (IB and EBOX) that skip a TB set scan while the TB
    /// generation proves the scan's outcome. All are host-side
    /// optimizations counted exactly like the work they elide; `false`
    /// selects the straight-line reference implementation (full scans,
    /// every prefetcher cycle runs the full body).
    pub host_shortcuts: bool,
    /// Use the basic-block execution tier on top of the predecode cache:
    /// straight-line runs of predecoded instructions are flattened into
    /// one pre-resolved block and replayed back-to-back, amortizing the
    /// per-instruction step overhead (fault poll, interrupt arbitration,
    /// event pump, cache lookup) over the whole run. Entry guards keep
    /// it a pure host-side optimization — no fault hook installed, no
    /// pending interrupt, no external event due inside the block — and
    /// every µinstruction is still issued one at a time, so histograms,
    /// hardware counters, and trace streams stay bit-identical to the
    /// naive loop. Requires `predecode`; has no effect without it.
    pub block_tier: bool,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            decode_overlap: false,
            tb_miss_head_cycles: 9,
            tb_miss_tail_cycles: 7,
            tb_miss_double_cycles: 4,
            int_service_body_cycles: 30,
            exc_service_body_cycles: 12,
            char_loop_spacing: 5,
            patch_abort_period: 12,
            predecode: true,
            sink_batch: true,
            host_shortcuts: true,
            block_tier: true,
        }
    }
}

impl CpuConfig {
    /// The 11/750-style decode-overlap ablation configuration.
    pub fn with_decode_overlap() -> CpuConfig {
        CpuConfig {
            decode_overlap: true,
            ..CpuConfig::default()
        }
    }

    /// The naive reference loop: byte-by-byte decode on every dynamic
    /// execution, no predecode cache, per-cycle sink calls. This is the
    /// pre-optimization interpreter, kept as the executable reference;
    /// `vax780 bench` and the equivalence suite compare against it.
    pub fn naive_loop() -> CpuConfig {
        CpuConfig {
            predecode: false,
            sink_batch: false,
            host_shortcuts: false,
            block_tier: false,
            ..CpuConfig::default()
        }
    }

    /// The PR 5 fast loop without the block tier: predecode replay, sink
    /// batching, and host shortcuts, but every instruction still goes
    /// through the full per-instruction step. `vax780 bench --tier fast`
    /// times this configuration so the block tier's marginal gain is
    /// measured against the right baseline.
    pub fn fast_loop() -> CpuConfig {
        CpuConfig {
            block_tier: false,
            ..CpuConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_780() {
        let c = CpuConfig::default();
        assert!(!c.decode_overlap);
        // Nominal TB service path: entry + head + read + tail ≈ 18 issue
        // cycles, landing near the paper's 21.6 with stalls.
        assert_eq!(1 + c.tb_miss_head_cycles + 1 + c.tb_miss_tail_cycles, 18);
    }

    #[test]
    fn tier_configs_nest() {
        let naive = CpuConfig::naive_loop();
        assert!(!naive.predecode && !naive.sink_batch && !naive.host_shortcuts);
        assert!(!naive.block_tier);
        let fast = CpuConfig::fast_loop();
        assert!(fast.predecode && fast.sink_batch && fast.host_shortcuts);
        assert!(!fast.block_tier);
        assert!(CpuConfig::default().block_tier);
        // The simulated-machine parameters are identical in all three.
        let strip = |c: CpuConfig| CpuConfig {
            predecode: false,
            sink_batch: false,
            host_shortcuts: false,
            block_tier: false,
            ..c
        };
        assert_eq!(strip(naive), strip(fast));
        assert_eq!(strip(fast), strip(CpuConfig::default()));
    }

    #[test]
    fn ablation_flips_overlap_only() {
        let a = CpuConfig::with_decode_overlap();
        assert!(a.decode_overlap);
        assert_eq!(
            a.tb_miss_head_cycles,
            CpuConfig::default().tb_miss_head_cycles
        );
    }
}
