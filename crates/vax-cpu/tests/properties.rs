//! Property tests on the CPU model: random well-formed programs always
//! run to completion, every cycle is classified, PC bookkeeping matches
//! instruction lengths, and semantics agree with an independent oracle
//! for pure register arithmetic.

use proptest::prelude::*;
use upc_monitor::{Command, CycleSink, HistogramBoard};
use vax_arch::{Assembler, Opcode, Operand, Reg};
use vax_cpu::harness::SimpleMachine;
use vax_cpu::CpuError;

/// Strategy: a small register-arithmetic instruction with literals, plus
/// the oracle computing its effect on a 4-register model.
#[derive(Debug, Clone, Copy)]
enum Alu {
    MovLit(u8, usize),
    Add(usize, usize),
    Sub(usize, usize),
    Xor(usize, usize),
    Bic(u8, usize),
    Inc(usize),
    Dec(usize),
    Mull(u8, usize),
}

fn alu_strategy() -> impl Strategy<Value = Alu> {
    prop_oneof![
        (0u8..64, 0usize..4).prop_map(|(v, r)| Alu::MovLit(v, r)),
        (0usize..4, 0usize..4).prop_map(|(a, b)| Alu::Add(a, b)),
        (0usize..4, 0usize..4).prop_map(|(a, b)| Alu::Sub(a, b)),
        (0usize..4, 0usize..4).prop_map(|(a, b)| Alu::Xor(a, b)),
        (0u8..64, 0usize..4).prop_map(|(v, r)| Alu::Bic(v, r)),
        (0usize..4).prop_map(Alu::Inc),
        (0usize..4).prop_map(Alu::Dec),
        (1u8..16, 0usize..4).prop_map(|(v, r)| Alu::Mull(v, r)),
    ]
}

fn regs4() -> [Reg; 4] {
    [Reg::R0, Reg::R1, Reg::R2, Reg::R3]
}

fn emit(asm: &mut Assembler, op: Alu) {
    let r = regs4();
    match op {
        Alu::MovLit(v, d) => asm
            .inst(Opcode::Movl, &[Operand::Literal(v), Operand::Reg(r[d])])
            .unwrap(),
        Alu::Add(s, d) => asm
            .inst(Opcode::Addl2, &[Operand::Reg(r[s]), Operand::Reg(r[d])])
            .unwrap(),
        Alu::Sub(s, d) => asm
            .inst(Opcode::Subl2, &[Operand::Reg(r[s]), Operand::Reg(r[d])])
            .unwrap(),
        Alu::Xor(s, d) => asm
            .inst(Opcode::Xorl2, &[Operand::Reg(r[s]), Operand::Reg(r[d])])
            .unwrap(),
        Alu::Bic(v, d) => asm
            .inst(Opcode::Bicl2, &[Operand::Literal(v), Operand::Reg(r[d])])
            .unwrap(),
        Alu::Inc(d) => asm.inst(Opcode::Incl, &[Operand::Reg(r[d])]).unwrap(),
        Alu::Dec(d) => asm.inst(Opcode::Decl, &[Operand::Reg(r[d])]).unwrap(),
        Alu::Mull(v, d) => asm
            .inst(Opcode::Mull2, &[Operand::Literal(v), Operand::Reg(r[d])])
            .unwrap(),
    };
}

fn oracle(state: &mut [u32; 4], op: Alu) {
    match op {
        Alu::MovLit(v, d) => state[d] = u32::from(v),
        Alu::Add(s, d) => state[d] = state[d].wrapping_add(state[s]),
        Alu::Sub(s, d) => state[d] = state[d].wrapping_sub(state[s]),
        Alu::Xor(s, d) => state[d] ^= state[s],
        Alu::Bic(v, d) => state[d] &= !u32::from(v),
        Alu::Inc(d) => state[d] = state[d].wrapping_add(1),
        Alu::Dec(d) => state[d] = state[d].wrapping_sub(1),
        Alu::Mull(v, d) => state[d] = state[d].wrapping_mul(u32::from(v)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random ALU programs: the simulator's final registers equal an
    /// independent oracle's, the instruction count is exact, and every
    /// cycle lands in exactly one histogram bucket.
    #[test]
    fn alu_programs_match_oracle(ops in prop::collection::vec(alu_strategy(), 1..60)) {
        let mut asm = Assembler::new(0x400);
        for &op in &ops {
            emit(&mut asm, op);
        }
        asm.inst(Opcode::Halt, &[]).unwrap();
        let image = asm.finish().unwrap();

        let mut machine = SimpleMachine::with_code(&image);
        let mut board = HistogramBoard::new();
        board.execute(Command::Start);
        let start = machine.cpu.now();
        let err = machine.cpu.run(ops.len() as u64 + 10, &mut board).unwrap_err();
        let halted = matches!(err, CpuError::Halted { .. });
        prop_assert!(halted);
        let cycles = machine.cpu.now() - start;

        // Oracle agreement.
        let mut state = [0u32; 4];
        for &op in &ops {
            oracle(&mut state, op);
        }
        for (i, reg) in regs4().into_iter().enumerate() {
            prop_assert_eq!(machine.cpu.regs().get(reg), state[i], "R{}", i);
        }
        // Instruction count and cycle conservation.
        prop_assert_eq!(machine.cpu.instructions(), ops.len() as u64);
        prop_assert_eq!(board.snapshot().total_cycles(), cycles);
    }

    /// The PC after HALT is exactly base + program length: decode
    /// consumed each instruction's bytes exactly once.
    #[test]
    fn pc_advances_by_instruction_lengths(ops in prop::collection::vec(alu_strategy(), 1..40)) {
        let mut asm = Assembler::new(0x400);
        for &op in &ops {
            emit(&mut asm, op);
        }
        asm.inst(Opcode::Halt, &[]).unwrap();
        let image = asm.finish().unwrap();
        let end = image.end();

        let mut machine = SimpleMachine::with_code(&image);
        let mut sink = upc_monitor::NullSink;
        let _ = machine.cpu.run(1000, &mut sink);
        prop_assert_eq!(machine.cpu.pc(), end);
    }

    /// Monitored and unmonitored executions are cycle-identical
    /// (the instrument is passive).
    #[test]
    fn monitoring_never_perturbs(ops in prop::collection::vec(alu_strategy(), 1..30)) {
        let build = || {
            let mut asm = Assembler::new(0x400);
            for &op in &ops {
                emit(&mut asm, op);
            }
            asm.inst(Opcode::Halt, &[]).unwrap();
            SimpleMachine::with_code(&asm.finish().unwrap())
        };
        let mut a = build();
        let mut b = build();
        let mut null = upc_monitor::NullSink;
        let mut board = HistogramBoard::new();
        board.execute(Command::Start);
        let _ = a.cpu.run(1000, &mut null);
        let _ = b.cpu.run(1000, &mut board);
        prop_assert_eq!(a.cpu.now(), b.cpu.now());
        prop_assert_eq!(a.cpu.regs().get(Reg::R0), b.cpu.regs().get(Reg::R0));
    }
}

/// NullSink smoke coverage for the trait-object path.
#[test]
fn sink_by_reference_works() {
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    let sink: &mut dyn FnMut() = &mut || {};
    let _ = sink;
    let r = &mut board;
    CycleSink::record_issue(r, vax_ucode::MicroAddr::new(1));
    assert_eq!(board.snapshot().total_issues(), 1);
}
