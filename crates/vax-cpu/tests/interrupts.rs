//! Interrupt and exception delivery through the SCB, REI return paths,
//! and the stack-switching rules.

use upc_monitor::{Command, HistogramBoard, NullSink};
use vax_arch::{Assembler, Opcode, Operand, Reg};
use vax_cpu::harness::SimpleMachine;
use vax_cpu::{CpuError, Interrupt};
use vax_ucode::EventTag;

/// A machine whose SCB vectors point at a REI stub (SimpleMachine default)
/// and a main loop that just increments R0 forever.
fn looping_machine() -> SimpleMachine {
    let mut asm = Assembler::new(0x400);
    let top = asm.label_here();
    asm.inst(Opcode::Incl, &[Operand::Reg(Reg::R0)]).unwrap();
    asm.branch(Opcode::Brb, &[], top).unwrap();
    SimpleMachine::with_code(&asm.finish().unwrap())
}

#[test]
fn hardware_interrupt_is_serviced_and_resumes() {
    let mut m = looping_machine();
    m.cpu.psl_mut().ipl = 0;
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    // Run a bit, post an interrupt, keep running.
    m.cpu.run(100, &mut board).unwrap();
    let r0_before = m.cpu.regs().get(Reg::R0);
    m.cpu.post_interrupt(Interrupt {
        ipl: 20,
        vector: 0xF0,
    });
    m.cpu.run(100, &mut board).unwrap();
    // The loop kept making progress after the REI stub returned.
    assert!(m.cpu.regs().get(Reg::R0) >= r0_before + 45);
    // The interrupt-service microcode ran exactly once.
    let hist = board.snapshot();
    let cs = m.cpu.control_store();
    let mut entries = 0;
    for (addr, class) in cs.iter() {
        if class.tag == EventTag::InterruptEntry {
            entries += hist.issue(addr);
        }
    }
    assert_eq!(entries, 1);
    // And one REI executed (the stub).
    assert_eq!(hist.issue(cs.exec_entry(Opcode::Rei)), 1);
}

#[test]
fn interrupts_respect_ipl_masking() {
    let mut m = looping_machine();
    // Boot PSL starts at IPL 31 only during bootstrap; harness machines
    // run at the boot PSL, so lower it first.
    m.cpu.psl_mut().ipl = 25;
    m.cpu.post_interrupt(Interrupt {
        ipl: 20,
        vector: 0xF0,
    });
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    m.cpu.run(50, &mut board).unwrap();
    let int_entry = m.cpu.control_store().int_entry();
    assert_eq!(
        board.snapshot().issue(int_entry),
        0,
        "IPL 20 must not interrupt IPL 25"
    );
    // Lower IPL: now it fires.
    m.cpu.psl_mut().ipl = 0;
    m.cpu.run(50, &mut board).unwrap();
    assert_eq!(board.snapshot().issue(int_entry), 1);
}

#[test]
fn higher_ipl_wins_arbitration() {
    let mut m = looping_machine();
    m.cpu.psl_mut().ipl = 0;
    m.cpu.post_interrupt(Interrupt {
        ipl: 20,
        vector: 0xF0,
    });
    m.cpu.post_interrupt(Interrupt {
        ipl: 24,
        vector: 0xC0,
    });
    // First step services the IPL 24 one; PSL IPL rises to 24, masking
    // the IPL 20 request until the stub's REI.
    let mut sink = NullSink;
    let outcome = m.cpu.step(&mut sink).unwrap();
    assert!(matches!(outcome, vax_cpu::StepOutcome::Interrupt));
    assert_eq!(m.cpu.psl().ipl, 24);
}

#[test]
fn reserved_instruction_faults_through_scb() {
    // 0xFF is an unimplemented opcode byte: the CPU delivers a
    // reserved-instruction exception; the stub REIs back to the byte
    // after... which faults again — so just check the first delivery.
    let mut asm = Assembler::new(0x400);
    asm.inst(Opcode::Nop, &[]).unwrap();
    asm.bytes(&[0xFF]);
    asm.inst(Opcode::Halt, &[]).unwrap();
    let image = asm.finish().unwrap();
    let mut m = SimpleMachine::with_code(&image);
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    let mut saw_exception = false;
    for _ in 0..10 {
        match m.cpu.step(&mut board) {
            Ok(vax_cpu::StepOutcome::Exception(f)) => {
                assert!(matches!(
                    f,
                    vax_cpu::Fault::ReservedInstruction { opcode: 0xFF }
                ));
                saw_exception = true;
                break;
            }
            Ok(_) => {}
            Err(CpuError::Halted { .. }) => break,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(saw_exception);
    let cs = m.cpu.control_store();
    assert!(board.snapshot().issue(cs.exc_entry()) >= 1);
}

#[test]
fn user_mode_privileged_instruction_faults() {
    // Drop to user mode via REI, then attempt MTPR.
    let mut asm = Assembler::new(0x400);
    let user = asm.new_label();
    // Push a user-mode PSL and the user entry PC, then REI.
    asm.inst(
        Opcode::Pushl,
        &[Operand::Immediate(0x0300_0000)], // user mode, IPL 0
    )
    .unwrap();
    let user_ref = user;
    asm.moval_pcrel(user_ref, Operand::Reg(Reg::R1)).unwrap();
    asm.inst(Opcode::Pushl, &[Operand::Reg(Reg::R1)]).unwrap();
    asm.inst(Opcode::Rei, &[]).unwrap();
    asm.place(user).unwrap();
    // User mode: MTPR must fault (privileged).
    asm.inst(Opcode::Mtpr, &[Operand::Literal(0), Operand::Literal(18)])
        .unwrap();
    asm.inst(Opcode::Halt, &[]).unwrap();
    let image = asm.finish().unwrap();
    let mut m = SimpleMachine::with_code(&image);
    let mut sink = NullSink;
    let mut saw = false;
    for _ in 0..20 {
        match m.cpu.step(&mut sink) {
            Ok(vax_cpu::StepOutcome::Exception(vax_cpu::Fault::Privileged)) => {
                saw = true;
                break;
            }
            Ok(_) => {}
            Err(_) => break,
        }
    }
    assert!(saw, "MTPR in user mode must raise the privileged fault");
}

#[test]
fn interrupt_uses_interrupt_stack_and_rei_restores() {
    let mut m = looping_machine();
    m.cpu.psl_mut().ipl = 0;
    let sp_before = m.cpu.regs().sp();
    m.cpu.post_interrupt(Interrupt {
        ipl: 22,
        vector: 0xF4,
    });
    let mut sink = NullSink;
    // Service (switches to interrupt stack)...
    m.cpu.step(&mut sink).unwrap();
    assert!(m.cpu.psl().interrupt_stack);
    assert_ne!(m.cpu.regs().sp(), sp_before);
    // ...REI stub runs next instruction and returns.
    m.cpu.step(&mut sink).unwrap();
    assert!(!m.cpu.psl().interrupt_stack);
    assert_eq!(m.cpu.regs().sp(), sp_before, "SP restored after REI");
    assert_eq!(m.cpu.psl().ipl, 0);
}
