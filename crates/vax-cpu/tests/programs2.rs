//! Second semantics suite: the instructions not covered by
//! `programs.rs` — MOVC5/SKPC/SCANC/SPANC, field compares, extended
//! multiply/divide, quad moves, multi-precision carry chains, decimal
//! arithmetic variants, CALLG, CASE fall-through, processor registers.

use upc_monitor::NullSink;
use vax_arch::{Assembler, CodeImage, Opcode, Operand, Reg};
use vax_cpu::harness::SimpleMachine;
use vax_cpu::CpuError;

fn run_program(build: impl FnOnce(&mut Assembler)) -> SimpleMachine {
    let mut asm = Assembler::new(0x400);
    build(&mut asm);
    asm.inst(Opcode::Halt, &[]).unwrap();
    let image = asm.finish().unwrap();
    run_image(&image)
}

fn run_image(image: &CodeImage) -> SimpleMachine {
    let mut m = SimpleMachine::with_code(image);
    match m.cpu.run(1_000_000, &mut NullSink) {
        Err(CpuError::Halted { .. }) => m,
        other => panic!("program did not halt cleanly: {other:?}"),
    }
}

fn r(m: &SimpleMachine, reg: Reg) -> u32 {
    m.cpu.regs().get(reg)
}

#[test]
fn movc5_copies_and_fills() {
    let m = run_program(|asm| {
        let src = asm.new_label();
        let dst = asm.new_label();
        asm.moval_pcrel(src, Operand::Reg(Reg::R6)).unwrap();
        asm.moval_pcrel(dst, Operand::Reg(Reg::R7)).unwrap();
        // movc5 #4, (r6), #'x', #8, (r7): copy 4, fill 4 with 'x'.
        asm.inst(
            Opcode::Movc5,
            &[
                Operand::Literal(4),
                Operand::RegDeferred(Reg::R6),
                Operand::Immediate(u64::from(b'x')),
                Operand::Literal(8),
                Operand::RegDeferred(Reg::R7),
            ],
        )
        .unwrap();
        // Read back the filled destination into R4/R5.
        asm.inst(
            Opcode::Movl,
            &[Operand::RegDeferred(Reg::R7), Operand::Reg(Reg::R4)],
        )
        .unwrap();
        asm.inst(
            Opcode::Movl,
            &[Operand::Disp(4, Reg::R7), Operand::Reg(Reg::R5)],
        )
        .unwrap();
        let done = asm.new_label();
        asm.branch(Opcode::Brb, &[], done).unwrap();
        asm.place(src).unwrap();
        asm.bytes(b"abcdWXYZ");
        asm.place(dst).unwrap();
        asm.bytes(&[0u8; 8]);
        asm.place(done).unwrap();
    });
    assert_eq!(r(&m, Reg::R4).to_le_bytes(), *b"abcd");
    assert_eq!(r(&m, Reg::R5).to_le_bytes(), *b"xxxx");
}

#[test]
fn skpc_skips_matching_bytes() {
    let m = run_program(|asm| {
        let data = asm.new_label();
        asm.moval_pcrel(data, Operand::Reg(Reg::R6)).unwrap();
        asm.inst(
            Opcode::Skpc,
            &[
                Operand::Immediate(u64::from(b'a')),
                Operand::Literal(10),
                Operand::RegDeferred(Reg::R6),
            ],
        )
        .unwrap();
        let done = asm.new_label();
        asm.branch(Opcode::Brb, &[], done).unwrap();
        asm.place(data).unwrap();
        asm.bytes(b"aaaabcdefg");
        asm.place(done).unwrap();
    });
    // Four leading 'a's skipped: 6 bytes remain.
    assert_eq!(r(&m, Reg::R0), 6);
}

#[test]
fn scanc_and_spanc_use_the_table() {
    let m = run_program(|asm| {
        let data = asm.new_label();
        let table = asm.new_label();
        asm.moval_pcrel(data, Operand::Reg(Reg::R6)).unwrap();
        asm.moval_pcrel(table, Operand::Reg(Reg::R7)).unwrap();
        // SCANC: find first byte whose table entry has bit 0 set; the
        // table marks byte value 3.
        asm.inst(
            Opcode::Scanc,
            &[
                Operand::Literal(6),
                Operand::RegDeferred(Reg::R6),
                Operand::RegDeferred(Reg::R7),
                Operand::Literal(1),
            ],
        )
        .unwrap();
        asm.inst(
            Opcode::Movl,
            &[Operand::Reg(Reg::R0), Operand::Reg(Reg::R4)],
        )
        .unwrap();
        let done = asm.new_label();
        asm.branch(Opcode::Brb, &[], done).unwrap();
        asm.place(data).unwrap();
        asm.bytes(&[0, 1, 2, 3, 4, 5]);
        asm.place(table).unwrap();
        let mut tbl = [0u8; 8];
        tbl[3] = 1;
        asm.bytes(&tbl);
        asm.place(done).unwrap();
    });
    // Byte value 3 is at index 3: remaining = 3.
    assert_eq!(r(&m, Reg::R4), 3);
}

#[test]
fn emul_and_ediv_round_trip() {
    let m = run_program(|asm| {
        // R2:R3 = 100000 * 70000 + 5 (EMUL prod into R2/R3).
        asm.inst(
            Opcode::Movl,
            &[Operand::Immediate(100_000), Operand::Reg(Reg::R0)],
        )
        .unwrap();
        asm.inst(
            Opcode::Movl,
            &[Operand::Immediate(70_000), Operand::Reg(Reg::R1)],
        )
        .unwrap();
        asm.inst(
            Opcode::Emul,
            &[
                Operand::Reg(Reg::R0),
                Operand::Reg(Reg::R1),
                Operand::Literal(5),
                Operand::Reg(Reg::R2),
            ],
        )
        .unwrap();
        // EDIV back: quotient into R4, remainder into R5.
        asm.inst(
            Opcode::Ediv,
            &[
                Operand::Reg(Reg::R0),
                Operand::Reg(Reg::R2),
                Operand::Reg(Reg::R4),
                Operand::Reg(Reg::R5),
            ],
        )
        .unwrap();
    });
    assert_eq!(r(&m, Reg::R4), 70_000);
    assert_eq!(r(&m, Reg::R5), 5);
    // EMUL's quad product in R2:R3.
    let prod = u64::from(r(&m, Reg::R2)) | (u64::from(r(&m, Reg::R3)) << 32);
    assert_eq!(prod, 100_000u64 * 70_000 + 5);
}

#[test]
fn movq_and_ashq_are_64_bit() {
    let m = run_program(|asm| {
        let data = asm.new_label();
        asm.moval_pcrel(data, Operand::Reg(Reg::R6)).unwrap();
        asm.inst(
            Opcode::Movq,
            &[Operand::RegDeferred(Reg::R6), Operand::Reg(Reg::R0)],
        )
        .unwrap();
        asm.inst(
            Opcode::Ashq,
            &[
                Operand::Literal(8),
                Operand::Reg(Reg::R0),
                Operand::Reg(Reg::R2),
            ],
        )
        .unwrap();
        let done = asm.new_label();
        asm.branch(Opcode::Brb, &[], done).unwrap();
        asm.place(data).unwrap();
        asm.long(0x1122_3344);
        asm.long(0x0000_0055);
        asm.place(done).unwrap();
    });
    let q = u64::from(r(&m, Reg::R2)) | (u64::from(r(&m, Reg::R3)) << 32);
    assert_eq!(q, 0x0000_0055_1122_3344u64 << 8);
}

#[test]
fn adwc_sbwc_multiprecision() {
    let m = run_program(|asm| {
        // 64-bit add: (0xFFFFFFFF, 1) + (1, 0) = (0, 2) via ADDL2 + ADWC.
        asm.inst(
            Opcode::Movl,
            &[Operand::Immediate(0xFFFF_FFFF), Operand::Reg(Reg::R0)],
        )
        .unwrap();
        asm.inst(Opcode::Movl, &[Operand::Literal(1), Operand::Reg(Reg::R1)])
            .unwrap();
        asm.inst(Opcode::Addl2, &[Operand::Literal(1), Operand::Reg(Reg::R0)])
            .unwrap();
        asm.inst(Opcode::Adwc, &[Operand::Literal(0), Operand::Reg(Reg::R1)])
            .unwrap();
    });
    assert_eq!(r(&m, Reg::R0), 0);
    assert_eq!(r(&m, Reg::R1), 2, "carry propagated");
}

#[test]
fn field_compares_and_memory_insv() {
    let m = run_program(|asm| {
        let data = asm.new_label();
        asm.moval_pcrel(data, Operand::Reg(Reg::R6)).unwrap();
        // INSV 0x2A into bits 4..12 of memory.
        asm.inst(
            Opcode::Insv,
            &[
                Operand::Immediate(0x2A),
                Operand::Literal(4),
                Operand::Literal(8),
                Operand::RegDeferred(Reg::R6),
            ],
        )
        .unwrap();
        // EXTZV it back into R4.
        asm.inst(
            Opcode::Extzv,
            &[
                Operand::Literal(4),
                Operand::Literal(8),
                Operand::RegDeferred(Reg::R6),
                Operand::Reg(Reg::R4),
            ],
        )
        .unwrap();
        // CMPZV equal => Z set; record PSL.
        asm.inst(
            Opcode::Cmpzv,
            &[
                Operand::Literal(4),
                Operand::Literal(8),
                Operand::RegDeferred(Reg::R6),
                Operand::Immediate(0x2A),
            ],
        )
        .unwrap();
        asm.inst(Opcode::Movpsl, &[Operand::Reg(Reg::R5)]).unwrap();
        let done = asm.new_label();
        asm.branch(Opcode::Brb, &[], done).unwrap();
        asm.place(data).unwrap();
        asm.long(0);
        asm.long(0);
        asm.place(done).unwrap();
    });
    assert_eq!(r(&m, Reg::R4), 0x2A);
    assert!(r(&m, Reg::R5) & 0x4 != 0, "CMPZV equal sets Z");
}

#[test]
fn extv_sign_extends() {
    let m = run_program(|asm| {
        asm.inst(
            Opcode::Movl,
            &[Operand::Immediate(0x0000_00F0), Operand::Reg(Reg::R0)],
        )
        .unwrap();
        // Bits 4..8 of 0xF0 = 0b1111 -> sign-extended = -1.
        asm.inst(
            Opcode::Extv,
            &[
                Operand::Literal(4),
                Operand::Literal(4),
                Operand::Reg(Reg::R0),
                Operand::Reg(Reg::R1),
            ],
        )
        .unwrap();
    });
    assert_eq!(r(&m, Reg::R1), 0xFFFF_FFFF);
}

#[test]
fn decimal_subtract_multiply_compare() {
    let m = run_program(|asm| {
        let a = asm.new_label();
        let b = asm.new_label();
        let c = asm.new_label();
        asm.moval_pcrel(a, Operand::Reg(Reg::R6)).unwrap();
        asm.moval_pcrel(b, Operand::Reg(Reg::R7)).unwrap();
        asm.moval_pcrel(c, Operand::Reg(Reg::R8)).unwrap();
        for (val, reg) in [(250u64, Reg::R6), (100, Reg::R7)] {
            asm.inst(
                Opcode::Cvtlp,
                &[
                    Operand::Immediate(val),
                    Operand::Literal(7),
                    Operand::RegDeferred(reg),
                ],
            )
            .unwrap();
        }
        // SUBP4: (r7) = (r7) - (r6) -> 100 - 250 = -150.
        asm.inst(
            Opcode::Subp4,
            &[
                Operand::Literal(7),
                Operand::RegDeferred(Reg::R6),
                Operand::Literal(7),
                Operand::RegDeferred(Reg::R7),
            ],
        )
        .unwrap();
        // MULP: (r8) = (r7) * (r6)?  MULP mul, muld, prod (6 operands).
        asm.inst(
            Opcode::Mulp,
            &[
                Operand::Literal(7),
                Operand::RegDeferred(Reg::R6),
                Operand::Literal(7),
                Operand::RegDeferred(Reg::R7),
                Operand::Literal(9),
                Operand::RegDeferred(Reg::R8),
            ],
        )
        .unwrap();
        // CVTPL results.
        asm.inst(
            Opcode::Cvtpl,
            &[
                Operand::Literal(7),
                Operand::RegDeferred(Reg::R7),
                Operand::Reg(Reg::R4),
            ],
        )
        .unwrap();
        asm.inst(
            Opcode::Cvtpl,
            &[
                Operand::Literal(9),
                Operand::RegDeferred(Reg::R8),
                Operand::Reg(Reg::R5),
            ],
        )
        .unwrap();
        // CMPP3 a vs b: 250 vs -150 -> N clear (a > b).
        asm.inst(
            Opcode::Cmpp3,
            &[
                Operand::Literal(7),
                Operand::RegDeferred(Reg::R6),
                Operand::RegDeferred(Reg::R7),
            ],
        )
        .unwrap();
        asm.inst(Opcode::Movpsl, &[Operand::Reg(Reg::R3)]).unwrap();
        let done = asm.new_label();
        asm.branch(Opcode::Brb, &[], done).unwrap();
        for l in [a, b, c] {
            asm.place(l).unwrap();
            asm.bytes(&[0u8; 8]);
        }
        asm.place(done).unwrap();
    });
    assert_eq!(r(&m, Reg::R4) as i32, -150);
    assert_eq!(r(&m, Reg::R5) as i32, 250 * -150);
    assert_eq!(r(&m, Reg::R3) & 0x8, 0, "CMPP3: 250 > -150 clears N");
}

#[test]
fn callg_passes_an_arglist() {
    let m = run_program(|asm| {
        let proc_entry = asm.new_label();
        let arglist = asm.new_label();
        asm.moval_pcrel(proc_entry, Operand::Reg(Reg::R10)).unwrap();
        asm.moval_pcrel(arglist, Operand::Reg(Reg::R9)).unwrap();
        asm.inst(
            Opcode::Callg,
            &[
                Operand::RegDeferred(Reg::R9),
                Operand::RegDeferred(Reg::R10),
            ],
        )
        .unwrap();
        let done = asm.new_label();
        asm.branch(Opcode::Brb, &[], done).unwrap();
        asm.place(proc_entry).unwrap();
        asm.word(0); // no saved registers
        asm.inst(
            Opcode::Movl,
            &[Operand::Disp(4, Reg::Ap), Operand::Reg(Reg::R4)],
        )
        .unwrap();
        asm.inst(Opcode::Ret, &[]).unwrap();
        asm.place(arglist).unwrap();
        asm.long(1); // argument count
        asm.long(777); // argument 1
        asm.place(done).unwrap();
    });
    assert_eq!(r(&m, Reg::R4), 777);
}

#[test]
fn case_fallthrough_out_of_range() {
    let m = run_program(|asm| {
        asm.inst(Opcode::Movl, &[Operand::Literal(9), Operand::Reg(Reg::R0)])
            .unwrap();
        let t0 = asm.new_label();
        let t1 = asm.new_label();
        // Selector 9, base 0, limit 1 -> out of range -> falls past table.
        asm.case(
            Opcode::Casel,
            &[
                Operand::Reg(Reg::R0),
                Operand::Literal(0),
                Operand::Literal(1),
            ],
            &[t0, t1],
        )
        .unwrap();
        asm.inst(Opcode::Movl, &[Operand::Literal(42), Operand::Reg(Reg::R1)])
            .unwrap();
        let done = asm.new_label();
        asm.branch(Opcode::Brb, &[], done).unwrap();
        asm.place(t0).unwrap();
        asm.inst(Opcode::Movl, &[Operand::Literal(1), Operand::Reg(Reg::R1)])
            .unwrap();
        asm.branch(Opcode::Brb, &[], done).unwrap();
        asm.place(t1).unwrap();
        asm.inst(Opcode::Movl, &[Operand::Literal(2), Operand::Reg(Reg::R1)])
            .unwrap();
        asm.place(done).unwrap();
    });
    assert_eq!(r(&m, Reg::R1), 42, "fell through past the table");
}

#[test]
fn mtpr_mfpr_round_trip_sisr() {
    // Kernel-mode program: set software-interrupt summary bits via SIRR,
    // read SISR back. (Level 1 stays pending but below kernel-boot IPL.)
    let m = run_program(|asm| {
        asm.inst(
            Opcode::Mtpr,
            &[Operand::Literal(1), Operand::Literal(20)], // SIRR <- 1
        )
        .unwrap();
        asm.inst(
            Opcode::Mfpr,
            &[Operand::Literal(21), Operand::Reg(Reg::R4)], // R4 <- SISR
        )
        .unwrap();
    });
    assert_eq!(r(&m, Reg::R4), 1 << 1);
}

#[test]
fn prober_reports_accessibility() {
    let m = run_program(|asm| {
        // Probe a mapped address and an unmapped one.
        asm.inst(
            Opcode::Prober,
            &[
                Operand::Literal(0),
                Operand::Literal(4),
                Operand::Disp(0x400, Reg::R11), // R11=0, VA 0x400 mapped
            ],
        )
        .unwrap();
        asm.inst(Opcode::Movpsl, &[Operand::Reg(Reg::R4)]).unwrap();
        asm.inst(
            Opcode::Prober,
            &[
                Operand::Literal(0),
                Operand::Literal(4),
                Operand::Absolute(0x3F00_0000), // far beyond P0LR
            ],
        )
        .unwrap();
        asm.inst(Opcode::Movpsl, &[Operand::Reg(Reg::R5)]).unwrap();
    });
    assert_eq!(r(&m, Reg::R4) & 0x4, 0, "mapped: Z clear");
    assert_ne!(r(&m, Reg::R5) & 0x4, 0, "unmapped: Z set");
}

#[test]
fn bbss_sets_and_bbcc_clears() {
    let m = run_program(|asm| {
        asm.inst(Opcode::Clrl, &[Operand::Reg(Reg::R0)]).unwrap();
        let l1 = asm.new_label();
        // BBSS on clear bit: no branch, bit set afterwards.
        asm.branch(
            Opcode::Bbss,
            &[Operand::Literal(3), Operand::Reg(Reg::R0)],
            l1,
        )
        .unwrap();
        asm.inst(Opcode::Incl, &[Operand::Reg(Reg::R2)]).unwrap();
        asm.place(l1).unwrap();
        // Now BBCC on the set bit: branches (bit set) and clears it.
        let l2 = asm.new_label();
        asm.branch(
            Opcode::Bbcc,
            &[Operand::Literal(3), Operand::Reg(Reg::R0)],
            l2,
        )
        .unwrap();
        asm.inst(Opcode::Incl, &[Operand::Reg(Reg::R3)]).unwrap();
        asm.place(l2).unwrap();
    });
    assert_eq!(r(&m, Reg::R2), 1, "BBSS on clear bit fell through");
    assert_eq!(r(&m, Reg::R0), 0, "BBCC cleared the bit");
    assert_eq!(
        r(&m, Reg::R3),
        1,
        "BBCC branches on *clear*; the bit was set, so it fell through"
    );
}

#[test]
fn acbw_loops_with_word_operands() {
    let m = run_program(|asm| {
        asm.inst(Opcode::Clrl, &[Operand::Reg(Reg::R0)]).unwrap();
        asm.inst(Opcode::Clrw, &[Operand::Reg(Reg::R1)]).unwrap();
        let top = asm.label_here();
        asm.inst(Opcode::Incl, &[Operand::Reg(Reg::R0)]).unwrap();
        // acbw #6, #2, r1: r1 += 2 while <= 6.
        asm.branch(
            Opcode::Acbw,
            &[
                Operand::Literal(6),
                Operand::Literal(2),
                Operand::Reg(Reg::R1),
            ],
            top,
        )
        .unwrap();
    });
    // r1: 2,4,6 (loop) then 8 (exit): body ran 4 times.
    assert_eq!(r(&m, Reg::R0), 4);
    assert_eq!(r(&m, Reg::R1) & 0xFFFF, 8);
}

#[test]
fn dfloat_arithmetic_runs() {
    let m = run_program(|asm| {
        asm.inst(
            Opcode::Cvtld,
            &[Operand::Immediate(10), Operand::Reg(Reg::R0)],
        )
        .unwrap();
        asm.inst(
            Opcode::Cvtld,
            &[Operand::Immediate(4), Operand::Reg(Reg::R2)],
        )
        .unwrap();
        asm.inst(
            Opcode::Divd3,
            &[
                Operand::Reg(Reg::R2),
                Operand::Reg(Reg::R0),
                Operand::Reg(Reg::R4),
            ],
        )
        .unwrap();
        asm.inst(
            Opcode::Cvtdl,
            &[Operand::Reg(Reg::R4), Operand::Reg(Reg::R6)],
        )
        .unwrap();
    });
    assert_eq!(r(&m, Reg::R6), 2, "10.0 / 4.0 truncates to 2");
}
