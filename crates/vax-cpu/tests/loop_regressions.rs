//! Regression tests for two interpreter-loop bugs:
//!
//! * the microcode-patch abort cycle fired at instruction count 0, so
//!   every run was charged a spurious abort on its very first
//!   instruction (and short ablation runs were skewed hardest);
//! * `service_interrupt` computed the PSL push address as `sp + 4`
//!   without wrapping, which overflows (a debug-build panic) when the
//!   stack pointer sits within 8 bytes of zero.

use upc_monitor::{Command, HistogramBoard, NullSink};
use vax_arch::{Assembler, Opcode, Operand, Reg};
use vax_cpu::harness::SimpleMachine;
use vax_cpu::{CpuConfig, Interrupt, Mode, Psl, StepOutcome};

/// An R0-incrementing loop, as in the interrupt tests.
fn looping_image() -> vax_arch::CodeImage {
    let mut asm = Assembler::new(0x400);
    let top = asm.label_here();
    asm.inst(Opcode::Incl, &[Operand::Reg(Reg::R0)]).unwrap();
    asm.branch(Opcode::Brb, &[], top).unwrap();
    asm.finish().unwrap()
}

/// Run `instructions` of the loop under `config` from boot, collecting
/// the µPC histogram from the very first instruction, and return the
/// issue count at the abort micro-address plus the total cycle count.
fn abort_issues_after(config: CpuConfig, instructions: u64) -> (u64, u64) {
    let mut m = SimpleMachine::with_code_and_config(&looping_image(), config);
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    let outcome = m.cpu.run(instructions, &mut board).unwrap();
    board.execute(Command::Stop);
    let abort = m.cpu.control_store().abort();
    (board.snapshot().issue(abort), outcome.cycles)
}

/// A patch-abort period longer than the whole run must charge nothing:
/// the run is bit-identical to one with patch aborts disabled. Before
/// the fix, instruction 0 satisfied `count % period == 0` and the first
/// instruction of every run carried a phantom abort cycle.
#[test]
fn patch_abort_never_fires_at_instruction_zero() {
    let long_period = CpuConfig {
        patch_abort_period: 1_000,
        ..CpuConfig::default()
    };
    let disabled = CpuConfig {
        patch_abort_period: 0,
        ..CpuConfig::default()
    };
    // 50 instructions < period: the only count that could fire is 0.
    let (with_period, cycles_a) = abort_issues_after(long_period, 50);
    let (without, cycles_b) = abort_issues_after(disabled, 50);
    // TB-miss microtraps also issue from the abort address, identically
    // in both runs; any difference is the spurious instruction-0 abort.
    assert_eq!(with_period, without, "spurious abort at instruction 0");
    assert_eq!(cycles_a, cycles_b, "cycle counts must match");
}

/// And the steady-rate behavior still holds: counts `period, 2·period,
/// …` each charge exactly one abort cycle.
#[test]
fn patch_abort_fires_once_per_period() {
    let period = CpuConfig {
        patch_abort_period: 10,
        ..CpuConfig::default()
    };
    let disabled = CpuConfig {
        patch_abort_period: 0,
        ..CpuConfig::default()
    };
    // 35 instructions with period 10: aborts at counts 10, 20, 30.
    let (with_period, cycles_a) = abort_issues_after(period, 35);
    let (without, cycles_b) = abort_issues_after(disabled, 35);
    assert_eq!(with_period - without, 3, "aborts at 10, 20, 30 only");
    assert_eq!(cycles_a - cycles_b, 3, "each abort is one cycle");
}

/// Interrupt service with the stack pointer within 8 bytes of zero: the
/// SP decrement wraps, and the PSL slot address (`sp + 4`) must wrap
/// with it instead of overflowing (which panics in debug builds).
#[test]
fn interrupt_service_survives_near_zero_stack_pointer() {
    let mut m = SimpleMachine::with_code(&looping_image());
    m.cpu.psl_mut().ipl = 0;
    // Wedge the interrupt stack pointer just above zero.
    let int_stack_psl = Psl {
        interrupt_stack: true,
        mode: Mode::Kernel,
        ..Psl::default()
    };
    m.cpu.regs_mut().set_banked_sp(&int_stack_psl, 4);
    m.cpu.post_interrupt(Interrupt {
        ipl: 20,
        vector: 0xF0,
    });
    let mut sink = NullSink;
    // Before the fix this step overflowed `sp + 4` and panicked.
    let outcome = m.cpu.step(&mut sink).unwrap();
    assert!(matches!(outcome, StepOutcome::Interrupt));
    assert_eq!(m.cpu.regs().sp(), 4u32.wrapping_sub(8), "SP wrapped");
}
