//! Regression tests for interpreter-loop bugs:
//!
//! * the microcode-patch abort cycle fired at instruction count 0, so
//!   every run was charged a spurious abort on its very first
//!   instruction (and short ablation runs were skewed hardest);
//! * `service_interrupt` computed the PSL push address as `sp + 4`
//!   without wrapping, which overflows (a debug-build panic) when the
//!   stack pointer sits within 8 bytes of zero;
//! * (pinning, audited not-a-bug) a write into only the *tail* bytes of
//!   a predecoded instruction that straddles a 64-byte invalidation
//!   block must still bump `decode_gen` — `note_code_bytes` flags every
//!   block the instruction touches, and this test keeps it that way.

use upc_monitor::{Command, Histogram, HistogramBoard, NullSink};
use vax_arch::{Assembler, Opcode, Operand, Reg};
use vax_cpu::harness::SimpleMachine;
use vax_cpu::{CpuConfig, Interrupt, Mode, Psl, StepOutcome};

/// An R0-incrementing loop, as in the interrupt tests.
fn looping_image() -> vax_arch::CodeImage {
    let mut asm = Assembler::new(0x400);
    let top = asm.label_here();
    asm.inst(Opcode::Incl, &[Operand::Reg(Reg::R0)]).unwrap();
    asm.branch(Opcode::Brb, &[], top).unwrap();
    asm.finish().unwrap()
}

/// Run `instructions` of the loop under `config` from boot, collecting
/// the µPC histogram from the very first instruction, and return the
/// issue count at the abort micro-address plus the total cycle count.
fn abort_issues_after(config: CpuConfig, instructions: u64) -> (u64, u64) {
    let mut m = SimpleMachine::with_code_and_config(&looping_image(), config);
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    let outcome = m.cpu.run(instructions, &mut board).unwrap();
    board.execute(Command::Stop);
    let abort = m.cpu.control_store().abort();
    (board.snapshot().issue(abort), outcome.cycles)
}

/// A patch-abort period longer than the whole run must charge nothing:
/// the run is bit-identical to one with patch aborts disabled. Before
/// the fix, instruction 0 satisfied `count % period == 0` and the first
/// instruction of every run carried a phantom abort cycle.
#[test]
fn patch_abort_never_fires_at_instruction_zero() {
    let long_period = CpuConfig {
        patch_abort_period: 1_000,
        ..CpuConfig::default()
    };
    let disabled = CpuConfig {
        patch_abort_period: 0,
        ..CpuConfig::default()
    };
    // 50 instructions < period: the only count that could fire is 0.
    let (with_period, cycles_a) = abort_issues_after(long_period, 50);
    let (without, cycles_b) = abort_issues_after(disabled, 50);
    // TB-miss microtraps also issue from the abort address, identically
    // in both runs; any difference is the spurious instruction-0 abort.
    assert_eq!(with_period, without, "spurious abort at instruction 0");
    assert_eq!(cycles_a, cycles_b, "cycle counts must match");
}

/// And the steady-rate behavior still holds: counts `period, 2·period,
/// …` each charge exactly one abort cycle.
#[test]
fn patch_abort_fires_once_per_period() {
    let period = CpuConfig {
        patch_abort_period: 10,
        ..CpuConfig::default()
    };
    let disabled = CpuConfig {
        patch_abort_period: 0,
        ..CpuConfig::default()
    };
    // 35 instructions with period 10: aborts at counts 10, 20, 30.
    let (with_period, cycles_a) = abort_issues_after(period, 35);
    let (without, cycles_b) = abort_issues_after(disabled, 35);
    assert_eq!(with_period - without, 3, "aborts at 10, 20, 30 only");
    assert_eq!(cycles_a - cycles_b, 3, "each abort is one cycle");
}

/// Self-modifying code whose target instruction straddles a 64-byte
/// invalidation block, patched through its *tail* bytes only.
///
/// The image pads with `NOP`s so a `MOVL #imm32, R0` starts at VA
/// `0x43B`: its opcode and first three immediate bytes sit in the
/// 64-byte block `[0x400, 0x440)` while the last immediate byte (the
/// value's high byte, at `0x440`) and the register byte spill into the
/// next block. The loop executes the `MOVL` (predecoding it), saves the
/// loaded value, writes `0x99` into `0x440` — tail bytes only — and
/// re-executes the `MOVL`, which must observe the patched immediate.
/// If only the head block were flagged, the replay path would serve the
/// stale parse and `R0` would still read `0x1122_3344`.
fn straddling_smc_image() -> vax_arch::CodeImage {
    let mut asm = Assembler::new(0x400);
    for _ in 0..0x3B {
        asm.inst(Opcode::Nop, &[]).unwrap();
    }
    let top = asm.label_here();
    let movl_at = asm
        .inst(
            Opcode::Movl,
            &[Operand::Immediate(0x1122_3344), Operand::Reg(Reg::R0)],
        )
        .unwrap();
    assert_eq!(movl_at, 0x43B, "padding must land the MOVL at 0x43B");
    asm.inst(Opcode::Tstl, &[Operand::Reg(Reg::R3)]).unwrap();
    let done = asm.new_label();
    asm.branch(Opcode::Bneq, &[], done).unwrap();
    asm.inst(
        Opcode::Movl,
        &[Operand::Reg(Reg::R0), Operand::Reg(Reg::R3)],
    )
    .unwrap();
    // Patch the immediate's high byte — the one byte in the tail block.
    asm.inst(
        Opcode::Movb,
        &[Operand::Immediate(0x99), Operand::Absolute(0x440)],
    )
    .unwrap();
    asm.branch(Opcode::Brb, &[], top).unwrap();
    asm.place(done).unwrap();
    let spin = asm.label_here();
    asm.branch(Opcode::Brb, &[], spin).unwrap();
    asm.finish().unwrap()
}

fn run_straddling_smc(config: CpuConfig) -> (u32, u32, u64, Histogram) {
    let mut m = SimpleMachine::with_code_and_config(&straddling_smc_image(), config);
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    let outcome = m.cpu.run(80, &mut board).unwrap();
    board.execute(Command::Stop);
    (
        m.cpu.regs().get(Reg::R0),
        m.cpu.regs().get(Reg::R3),
        outcome.cycles,
        board.into_histogram(),
    )
}

#[test]
fn tail_byte_write_invalidates_straddling_instruction() {
    let (r0, r3, naive_cycles, naive_hist) = run_straddling_smc(CpuConfig::naive_loop());
    assert_eq!(r3, 0x1122_3344, "first execution saw the original bytes");
    assert_eq!(r0, 0x9922_3344, "re-execution saw the patched tail byte");
    for config in [CpuConfig::fast_loop(), CpuConfig::default()] {
        let (f_r0, f_r3, cycles, hist) = run_straddling_smc(config);
        assert_eq!((f_r0, f_r3), (r0, r3), "stale parse served after patch");
        assert_eq!(cycles, naive_cycles, "cycle count diverged");
        assert_eq!(hist, naive_hist, "histogram diverged");
    }
}

/// Interrupt service with the stack pointer within 8 bytes of zero: the
/// SP decrement wraps, and the PSL slot address (`sp + 4`) must wrap
/// with it instead of overflowing (which panics in debug builds).
#[test]
fn interrupt_service_survives_near_zero_stack_pointer() {
    let mut m = SimpleMachine::with_code(&looping_image());
    m.cpu.psl_mut().ipl = 0;
    // Wedge the interrupt stack pointer just above zero.
    let int_stack_psl = Psl {
        interrupt_stack: true,
        mode: Mode::Kernel,
        ..Psl::default()
    };
    m.cpu.regs_mut().set_banked_sp(&int_stack_psl, 4);
    m.cpu.post_interrupt(Interrupt {
        ipl: 20,
        vector: 0xF0,
    });
    let mut sink = NullSink;
    // Before the fix this step overflowed `sp + 4` and panicked.
    let outcome = m.cpu.step(&mut sink).unwrap();
    assert!(matches!(outcome, StepOutcome::Interrupt));
    assert_eq!(m.cpu.regs().sp(), 4u32.wrapping_sub(8), "SP wrapped");
}
