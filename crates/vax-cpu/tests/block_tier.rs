//! Block-compiled execution tier: engagement, bit-identity, budget
//! exactness, and mid-block self-modifying-code invalidation.
//!
//! The block tier is a host-side batching layer: it must retire the
//! same instructions, charge the same cycles, and issue the same µPCs
//! as the naive reference loop. These tests run small images under all
//! three config tiers (`naive_loop`, `fast_loop`, `default`) and assert
//! exact equality — plus that blocks actually engage under `default`,
//! so the equality is not vacuous.

use upc_monitor::{Command, Histogram, HistogramBoard};
use vax_arch::{Assembler, CodeImage, Opcode, Operand, Reg};
use vax_cpu::harness::SimpleMachine;
use vax_cpu::CpuConfig;

/// A counted loop whose body is five straight-line instructions — long
/// enough to form a block, revisited enough times to replay it.
fn counted_loop_image() -> CodeImage {
    let mut asm = Assembler::new(0x400);
    let top = asm.label_here();
    asm.inst(Opcode::Incl, &[Operand::Reg(Reg::R0)]).unwrap();
    asm.inst(
        Opcode::Addl2,
        &[Operand::Reg(Reg::R0), Operand::Reg(Reg::R1)],
    )
    .unwrap();
    asm.inst(Opcode::Nop, &[]).unwrap();
    asm.inst(Opcode::Nop, &[]).unwrap();
    asm.inst(Opcode::Cmpl, &[Operand::Reg(Reg::R0), Operand::Literal(50)])
        .unwrap();
    asm.branch(Opcode::Blss, &[], top).unwrap();
    let done = asm.label_here();
    asm.branch(Opcode::Brb, &[], done).unwrap();
    asm.finish().unwrap()
}

struct Observed {
    r_low: [u32; 8],
    cycles: u64,
    histogram: Histogram,
    block_replayed: u64,
}

fn observe(image: &CodeImage, config: CpuConfig, instructions: u64) -> Observed {
    let mut m = SimpleMachine::with_code_and_config(image, config);
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    let outcome = m.cpu.run(instructions, &mut board).unwrap();
    board.execute(Command::Stop);
    let mut r_low = [0u32; 8];
    for (i, slot) in r_low.iter_mut().enumerate() {
        *slot = m.cpu.regs().get(Reg::from_number(i as u8));
    }
    Observed {
        r_low,
        cycles: outcome.cycles,
        histogram: board.into_histogram(),
        block_replayed: m.cpu.block_stats().replayed,
    }
}

fn assert_tiers_identical(image: &CodeImage, instructions: u64) -> Observed {
    let naive = observe(image, CpuConfig::naive_loop(), instructions);
    let fast = observe(image, CpuConfig::fast_loop(), instructions);
    let block = observe(image, CpuConfig::default(), instructions);
    assert_eq!(naive.block_replayed, 0, "naive loop must not touch blocks");
    assert_eq!(fast.block_replayed, 0, "fast loop must not touch blocks");
    for (label, tier) in [("fast", &fast), ("block", &block)] {
        assert_eq!(tier.r_low, naive.r_low, "{label}: registers diverged");
        assert_eq!(tier.cycles, naive.cycles, "{label}: cycles diverged");
        assert_eq!(
            tier.histogram, naive.histogram,
            "{label}: µPC histogram diverged"
        );
    }
    block
}

/// The loop body replays as a block under the default config and stays
/// bit-identical to the naive and fast tiers.
#[test]
fn block_tier_engages_and_matches_naive_loop() {
    let image = counted_loop_image();
    let block = assert_tiers_identical(&image, 320);
    assert!(
        block.block_replayed > 0,
        "block tier never replayed an instruction — the equality above is vacuous"
    );
}

/// `Cpu::run(n)` retires exactly `n` instructions with the block tier
/// enabled: the budget plumbing must stop a block mid-flight rather
/// than overshoot the target.
#[test]
fn block_tier_never_overshoots_an_instruction_budget() {
    let image = counted_loop_image();
    for target in [1u64, 2, 3, 7, 23, 64] {
        let mut m = SimpleMachine::with_code_and_config(&image, CpuConfig::default());
        let mut board = HistogramBoard::new();
        m.cpu.run(target, &mut board).unwrap();
        assert_eq!(
            m.cpu.instructions(),
            target,
            "run({target}) retired a different count"
        );
    }
}

/// Self-modifying code where the patcher and the patched instruction
/// live in the *same* block: the store must end the block replay at the
/// next instruction boundary (the mid-block `decode_gen` guard), so the
/// re-parsed victim observes the new bytes.
///
/// The loop writes `R4` through `(R6)` and then loads an immediate into
/// `R2`. For the first three iterations `R6` aims at scratch memory and
/// the block replays intact; after the third, `R6` is re-aimed at the
/// immediate's low byte, so every later iteration's first instruction
/// rewrites an instruction *later in its own block*. A replay that
/// ignored the generation bump would keep serving `#0x11`.
///
/// Built in two passes because the patch address (`MOVL` immediate + 2)
/// is only known once the prefix is assembled; operand encodings are
/// size-stable, so pass two lands every instruction at the same VA.
fn mid_block_smc_image() -> CodeImage {
    let probe = build_smc_image(0x8000);
    build_smc_image(probe.1).0
}

fn build_smc_image(patch_va: u32) -> (CodeImage, u32) {
    let mut asm = Assembler::new(0x400);
    // Aim the patcher at harmless scratch memory first.
    asm.inst(
        Opcode::Movl,
        &[Operand::Immediate(0x8000), Operand::Reg(Reg::R6)],
    )
    .unwrap();
    let top = asm.label_here();
    asm.inst(
        Opcode::Movb,
        &[Operand::Reg(Reg::R4), Operand::RegDeferred(Reg::R6)],
    )
    .unwrap();
    asm.inst(Opcode::Nop, &[]).unwrap();
    asm.inst(Opcode::Nop, &[]).unwrap();
    let victim = asm
        .inst(
            Opcode::Movl,
            &[Operand::Immediate(0x11), Operand::Reg(Reg::R2)],
        )
        .unwrap();
    asm.inst(
        Opcode::Addl2,
        &[Operand::Reg(Reg::R2), Operand::Reg(Reg::R5)],
    )
    .unwrap();
    asm.inst(Opcode::Incl, &[Operand::Reg(Reg::R4)]).unwrap();
    asm.inst(Opcode::Incl, &[Operand::Reg(Reg::R3)]).unwrap();
    asm.inst(Opcode::Cmpl, &[Operand::Reg(Reg::R3), Operand::Literal(3)])
        .unwrap();
    let cont = asm.new_label();
    asm.branch(Opcode::Bneq, &[], cont).unwrap();
    // Third iteration only: re-aim the patcher at the victim's
    // immediate low byte (opcode + mode byte = +2).
    asm.inst(
        Opcode::Movl,
        &[
            Operand::Immediate(u64::from(patch_va)),
            Operand::Reg(Reg::R6),
        ],
    )
    .unwrap();
    asm.place(cont).unwrap();
    asm.inst(Opcode::Cmpl, &[Operand::Reg(Reg::R3), Operand::Literal(6)])
        .unwrap();
    asm.branch(Opcode::Blss, &[], top).unwrap();
    let done = asm.label_here();
    asm.branch(Opcode::Brb, &[], done).unwrap();
    (asm.finish().unwrap(), victim + 2)
}

#[test]
fn mid_block_store_into_own_block_is_observed() {
    let image = mid_block_smc_image();
    let block = assert_tiers_identical(&image, 90);
    // The instruction buffer has already prefetched the victim's bytes
    // when the patcher executes, so each patch lands one iteration late
    // (faithful VAX-11/780 behavior — the reference loop agrees):
    // iterations 1–4 load #0x11 (4 × 17 = 68), iterations 5–6 load the
    // patched bytes 3 and 4. A replay that ignored the generation bump
    // entirely would keep serving #0x11 and end with R5 = 102.
    assert_eq!(block.r_low[2], 4, "R2: last patched immediate");
    assert_eq!(block.r_low[3], 6, "R3: iteration count");
    assert_eq!(block.r_low[5], 75, "R5: sum over patched immediates");
    assert!(
        block.block_replayed > 0,
        "patcher/victim block never replayed — guard not exercised"
    );
}
