//! Property tests for the VAX floating-point codecs, driven through the
//! instruction interface (CVTLF/CVTFL etc. on a live machine) and
//! directly through arithmetic identities.

use proptest::prelude::*;
use upc_monitor::NullSink;
use vax_arch::{Assembler, Opcode, Operand, Reg};
use vax_cpu::harness::SimpleMachine;

/// Run CVTLF x -> CVTFL round trip on the machine.
fn cvt_round_trip(x: i32) -> i32 {
    let mut asm = Assembler::new(0x400);
    asm.inst(
        Opcode::Movl,
        &[Operand::Immediate(x as u32 as u64), Operand::Reg(Reg::R0)],
    )
    .unwrap();
    asm.inst(
        Opcode::Cvtlf,
        &[Operand::Reg(Reg::R0), Operand::Reg(Reg::R1)],
    )
    .unwrap();
    asm.inst(
        Opcode::Cvtfl,
        &[Operand::Reg(Reg::R1), Operand::Reg(Reg::R2)],
    )
    .unwrap();
    asm.inst(Opcode::Halt, &[]).unwrap();
    let mut m = SimpleMachine::with_code(&asm.finish().unwrap());
    let _ = m.cpu.run(100, &mut NullSink);
    m.cpu.regs().get(Reg::R2) as i32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Integers up to 24 bits convert to F_floating and back exactly
    /// (F has a 24-bit effective mantissa).
    #[test]
    fn cvtlf_cvtfl_exact_for_24_bit(x in -(1i32 << 24)..(1i32 << 24)) {
        prop_assert_eq!(cvt_round_trip(x), x);
    }

    /// F_floating addition on the machine agrees with f64 addition for
    /// small integers (exactly representable).
    #[test]
    fn addf_matches_integer_addition(a in -2000i32..2000, b in -2000i32..2000) {
        let mut asm = Assembler::new(0x400);
        asm.inst(
            Opcode::Movl,
            &[Operand::Immediate(a as u32 as u64), Operand::Reg(Reg::R0)],
        )
        .unwrap();
        asm.inst(Opcode::Cvtlf, &[Operand::Reg(Reg::R0), Operand::Reg(Reg::R1)])
            .unwrap();
        asm.inst(
            Opcode::Movl,
            &[Operand::Immediate(b as u32 as u64), Operand::Reg(Reg::R0)],
        )
        .unwrap();
        asm.inst(Opcode::Cvtlf, &[Operand::Reg(Reg::R0), Operand::Reg(Reg::R2)])
            .unwrap();
        asm.inst(
            Opcode::Addf3,
            &[
                Operand::Reg(Reg::R1),
                Operand::Reg(Reg::R2),
                Operand::Reg(Reg::R3),
            ],
        )
        .unwrap();
        asm.inst(Opcode::Cvtfl, &[Operand::Reg(Reg::R3), Operand::Reg(Reg::R4)])
            .unwrap();
        asm.inst(Opcode::Halt, &[]).unwrap();
        let mut m = SimpleMachine::with_code(&asm.finish().unwrap());
        let _ = m.cpu.run(100, &mut NullSink);
        prop_assert_eq!(m.cpu.regs().get(Reg::R4) as i32, a + b);
    }

    /// CMPF ordering agrees with integer ordering.
    #[test]
    fn cmpf_orders_like_integers(a in -5000i32..5000, b in -5000i32..5000) {
        let mut asm = Assembler::new(0x400);
        for (val, dst) in [(a, Reg::R1), (b, Reg::R2)] {
            asm.inst(
                Opcode::Movl,
                &[Operand::Immediate(val as u32 as u64), Operand::Reg(Reg::R0)],
            )
            .unwrap();
            asm.inst(Opcode::Cvtlf, &[Operand::Reg(Reg::R0), Operand::Reg(dst)])
                .unwrap();
        }
        asm.inst(Opcode::Cmpf, &[Operand::Reg(Reg::R1), Operand::Reg(Reg::R2)])
            .unwrap();
        asm.inst(Opcode::Movpsl, &[Operand::Reg(Reg::R5)]).unwrap();
        asm.inst(Opcode::Halt, &[]).unwrap();
        let mut m = SimpleMachine::with_code(&asm.finish().unwrap());
        let _ = m.cpu.run(100, &mut NullSink);
        let psl = m.cpu.regs().get(Reg::R5);
        let n = psl & 0x8 != 0;
        let z = psl & 0x4 != 0;
        prop_assert_eq!(z, a == b, "Z vs equality");
        prop_assert_eq!(n, a < b, "N vs ordering");
    }
}
