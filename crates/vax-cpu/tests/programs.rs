//! End-to-end instruction-semantics tests: assemble real VAX programs,
//! run them on the full model (IB, decode, specifiers, execute, memory
//! hierarchy), and check architectural results plus measurement sanity.

use upc_monitor::{Command, HistogramBoard, NullSink};
use vax_arch::{Assembler, CodeImage, Opcode, Operand, Reg};
use vax_cpu::harness::SimpleMachine;
use vax_cpu::CpuError;
use vax_ucode::{EventTag, MemOp};

/// Assemble, run to HALT, return the machine.
fn run_program(build: impl FnOnce(&mut Assembler)) -> SimpleMachine {
    let mut asm = Assembler::new(0x400);
    build(&mut asm);
    asm.inst(Opcode::Halt, &[]).unwrap();
    let image = asm.finish().unwrap();
    run_image(&image)
}

fn run_image(image: &CodeImage) -> SimpleMachine {
    let mut m = SimpleMachine::with_code(image);
    let mut sink = NullSink;
    match m.cpu.run(1_000_000, &mut sink) {
        Err(CpuError::Halted { .. }) => m,
        other => panic!("program did not halt cleanly: {other:?}"),
    }
}

fn r(m: &SimpleMachine, reg: Reg) -> u32 {
    m.cpu.regs().get(reg)
}

#[test]
fn arithmetic_and_condition_codes() {
    let m = run_program(|asm| {
        asm.inst(Opcode::Movl, &[Operand::Literal(10), Operand::Reg(Reg::R0)])
            .unwrap();
        asm.inst(
            Opcode::Subl3,
            &[
                Operand::Literal(3),
                Operand::Reg(Reg::R0),
                Operand::Reg(Reg::R1),
            ],
        )
        .unwrap();
        // R2 = R1 * 6 via MULL3
        asm.inst(
            Opcode::Mull3,
            &[
                Operand::Literal(6),
                Operand::Reg(Reg::R1),
                Operand::Reg(Reg::R2),
            ],
        )
        .unwrap();
        // R3 = R2 / 2
        asm.inst(
            Opcode::Divl3,
            &[
                Operand::Literal(2),
                Operand::Reg(Reg::R2),
                Operand::Reg(Reg::R3),
            ],
        )
        .unwrap();
    });
    assert_eq!(r(&m, Reg::R1), 7);
    assert_eq!(r(&m, Reg::R2), 42);
    assert_eq!(r(&m, Reg::R3), 21);
}

#[test]
fn memory_operands_and_displacement_modes() {
    let m = run_program(|asm| {
        // R11 = data base (forward reference resolved by moval).
        let data = asm.new_label();
        asm.moval_pcrel(data, Operand::Reg(Reg::R11)).unwrap();
        asm.inst(
            Opcode::Movl,
            &[Operand::Immediate(0x1234_5678), Operand::Disp(0, Reg::R11)],
        )
        .unwrap();
        asm.inst(
            Opcode::Movl,
            &[Operand::Disp(0, Reg::R11), Operand::Disp(8, Reg::R11)],
        )
        .unwrap();
        asm.inst(
            Opcode::Addl3,
            &[
                Operand::Disp(0, Reg::R11),
                Operand::Disp(8, Reg::R11),
                Operand::Reg(Reg::R5),
            ],
        )
        .unwrap();
        let done = asm.new_label();
        asm.branch(Opcode::Brb, &[], done).unwrap();
        asm.place(data).unwrap();
        for _ in 0..8 {
            asm.long(0);
        }
        asm.place(done).unwrap();
    });
    assert_eq!(r(&m, Reg::R5), 0x2468_ACF0);
}

#[test]
fn loop_branch_iterates_correctly() {
    let m = run_program(|asm| {
        asm.inst(Opcode::Clrl, &[Operand::Reg(Reg::R0)]).unwrap();
        asm.inst(Opcode::Clrl, &[Operand::Reg(Reg::R1)]).unwrap();
        let top = asm.label_here();
        asm.inst(Opcode::Addl2, &[Operand::Literal(2), Operand::Reg(Reg::R0)])
            .unwrap();
        asm.branch(
            Opcode::Aoblss,
            &[Operand::Literal(10), Operand::Reg(Reg::R1)],
            top,
        )
        .unwrap();
    });
    assert_eq!(r(&m, Reg::R1), 10);
    assert_eq!(r(&m, Reg::R0), 20);
}

#[test]
fn sob_loops_and_case_dispatch() {
    let m = run_program(|asm| {
        asm.inst(Opcode::Movl, &[Operand::Literal(5), Operand::Reg(Reg::R0)])
            .unwrap();
        asm.inst(Opcode::Clrl, &[Operand::Reg(Reg::R1)]).unwrap();
        let top = asm.label_here();
        asm.inst(Opcode::Incl, &[Operand::Reg(Reg::R1)]).unwrap();
        asm.branch(Opcode::Sobgtr, &[Operand::Reg(Reg::R0)], top)
            .unwrap();
        // CASE on R1 (= 5): selector-base = 3 with base 2, limit 3.
        let (c0, c1, c2, c3) = (
            asm.new_label(),
            asm.new_label(),
            asm.new_label(),
            asm.new_label(),
        );
        asm.case(
            Opcode::Casel,
            &[
                Operand::Reg(Reg::R1),
                Operand::Literal(2),
                Operand::Literal(3),
            ],
            &[c0, c1, c2, c3],
        )
        .unwrap();
        let done = asm.new_label();
        for (label, value) in [(c0, 10u8), (c1, 11), (c2, 12), (c3, 13)] {
            asm.place(label).unwrap();
            asm.inst(
                Opcode::Movl,
                &[Operand::Literal(value), Operand::Reg(Reg::R2)],
            )
            .unwrap();
            asm.branch(Opcode::Brb, &[], done).unwrap();
        }
        asm.place(done).unwrap();
    });
    assert_eq!(r(&m, Reg::R1), 5);
    assert_eq!(r(&m, Reg::R2), 13, "case index 3 selected");
}

#[test]
fn subroutine_linkage_bsb_rsb() {
    let m = run_program(|asm| {
        let sub = asm.new_label();
        asm.inst(Opcode::Movl, &[Operand::Literal(1), Operand::Reg(Reg::R0)])
            .unwrap();
        asm.branch(Opcode::Bsbb, &[], sub).unwrap();
        asm.inst(Opcode::Addl2, &[Operand::Literal(8), Operand::Reg(Reg::R0)])
            .unwrap();
        let done = asm.new_label();
        asm.branch(Opcode::Brb, &[], done).unwrap();
        asm.place(sub).unwrap();
        asm.inst(Opcode::Addl2, &[Operand::Literal(2), Operand::Reg(Reg::R0)])
            .unwrap();
        asm.inst(Opcode::Rsb, &[]).unwrap();
        asm.place(done).unwrap();
    });
    assert_eq!(r(&m, Reg::R0), 11, "1 + 2 (sub) + 8 (after return)");
}

#[test]
fn procedure_call_saves_and_restores_registers() {
    let m = run_program(|asm| {
        let proc_entry = asm.new_label();
        asm.inst(Opcode::Movl, &[Operand::Literal(7), Operand::Reg(Reg::R2)])
            .unwrap();
        asm.inst(Opcode::Movl, &[Operand::Literal(9), Operand::Reg(Reg::R3)])
            .unwrap();
        // Push one argument, call.
        asm.inst(Opcode::Pushl, &[Operand::Literal(33)]).unwrap();
        let proc_op = Operand::Disp(0, Reg::R10);
        // Load the procedure address into R10 first.
        asm.moval_pcrel(proc_entry, Operand::Reg(Reg::R10)).unwrap();
        asm.inst(Opcode::Calls, &[Operand::Literal(1), proc_op])
            .unwrap();
        let done = asm.new_label();
        asm.branch(Opcode::Brb, &[], done).unwrap();
        // Procedure: entry mask saves R2, R3; clobbers them; reads arg 1.
        asm.place(proc_entry).unwrap();
        asm.word((1 << 2) | (1 << 3));
        asm.inst(Opcode::Clrl, &[Operand::Reg(Reg::R2)]).unwrap();
        asm.inst(Opcode::Clrl, &[Operand::Reg(Reg::R3)]).unwrap();
        // R4 = first argument (AP+4).
        asm.inst(
            Opcode::Movl,
            &[Operand::Disp(4, Reg::Ap), Operand::Reg(Reg::R4)],
        )
        .unwrap();
        asm.inst(Opcode::Ret, &[]).unwrap();
        asm.place(done).unwrap();
    });
    assert_eq!(r(&m, Reg::R2), 7, "callee-saved register restored");
    assert_eq!(r(&m, Reg::R3), 9);
    assert_eq!(r(&m, Reg::R4), 33, "argument reached the procedure");
}

#[test]
fn pushr_popr_round_trip() {
    let m = run_program(|asm| {
        asm.inst(Opcode::Movl, &[Operand::Literal(1), Operand::Reg(Reg::R1)])
            .unwrap();
        asm.inst(Opcode::Movl, &[Operand::Literal(2), Operand::Reg(Reg::R2)])
            .unwrap();
        asm.inst(Opcode::Pushr, &[Operand::Immediate((1 << 1) | (1 << 2))])
            .unwrap();
        asm.inst(Opcode::Clrl, &[Operand::Reg(Reg::R1)]).unwrap();
        asm.inst(Opcode::Clrl, &[Operand::Reg(Reg::R2)]).unwrap();
        asm.inst(Opcode::Popr, &[Operand::Immediate((1 << 1) | (1 << 2))])
            .unwrap();
    });
    assert_eq!(r(&m, Reg::R1), 1);
    assert_eq!(r(&m, Reg::R2), 2);
}

#[test]
fn string_move_and_compare() {
    let m = run_program(|asm| {
        let src = asm.new_label();
        let dst = asm.new_label();
        asm.moval_pcrel(src, Operand::Reg(Reg::R6)).unwrap();
        asm.moval_pcrel(dst, Operand::Reg(Reg::R7)).unwrap();
        // movc3 #16, (r6), (r7)
        asm.inst(
            Opcode::Movc3,
            &[
                Operand::Immediate(16),
                Operand::RegDeferred(Reg::R6),
                Operand::RegDeferred(Reg::R7),
            ],
        )
        .unwrap();
        // Re-derive pointers (movc3 clobbers r0-r5 only).
        asm.inst(
            Opcode::Cmpc3,
            &[
                Operand::Immediate(16),
                Operand::RegDeferred(Reg::R6),
                Operand::RegDeferred(Reg::R7),
            ],
        )
        .unwrap();
        // Z set iff equal: record it.
        asm.inst(Opcode::Movpsl, &[Operand::Reg(Reg::R8)]).unwrap();
        let done = asm.new_label();
        asm.branch(Opcode::Brb, &[], done).unwrap();
        asm.place(src).unwrap();
        asm.bytes(b"pack my box with");
        asm.place(dst).unwrap();
        asm.bytes(&[0u8; 16]);
        asm.place(done).unwrap();
    });
    // Z is PSL bit 2.
    assert!(
        r(&m, Reg::R8) & 0x4 != 0,
        "strings compare equal after move"
    );
    assert_eq!(r(&m, Reg::R0), 0, "cmpc3 leaves zero remainder");
}

#[test]
fn locc_finds_a_byte() {
    let m = run_program(|asm| {
        let data = asm.new_label();
        asm.moval_pcrel(data, Operand::Reg(Reg::R6)).unwrap();
        asm.inst(
            Opcode::Locc,
            &[
                Operand::Immediate(b'x' as u64),
                Operand::Immediate(10),
                Operand::RegDeferred(Reg::R6),
            ],
        )
        .unwrap();
        let done = asm.new_label();
        asm.branch(Opcode::Brb, &[], done).unwrap();
        asm.place(data).unwrap();
        asm.bytes(b"abcxefghij");
        asm.place(done).unwrap();
    });
    assert_eq!(r(&m, Reg::R0), 7, "7 bytes remained at the hit");
}

#[test]
fn decimal_add_round_trips() {
    let m = run_program(|asm| {
        let a = asm.new_label();
        let b = asm.new_label();
        asm.moval_pcrel(a, Operand::Reg(Reg::R6)).unwrap();
        asm.moval_pcrel(b, Operand::Reg(Reg::R7)).unwrap();
        // CVTLP #123 -> packed at (r6), 5 digits.
        asm.inst(
            Opcode::Cvtlp,
            &[
                Operand::Immediate(123),
                Operand::Immediate(5),
                Operand::RegDeferred(Reg::R6),
            ],
        )
        .unwrap();
        asm.inst(
            Opcode::Cvtlp,
            &[
                Operand::Immediate(877),
                Operand::Immediate(5),
                Operand::RegDeferred(Reg::R7),
            ],
        )
        .unwrap();
        // ADDP4: (r6) += ... no: add src (r6,5) into dst (r7,5).
        asm.inst(
            Opcode::Addp4,
            &[
                Operand::Immediate(5),
                Operand::RegDeferred(Reg::R6),
                Operand::Immediate(5),
                Operand::RegDeferred(Reg::R7),
            ],
        )
        .unwrap();
        // CVTPL the sum back into R5.
        asm.inst(
            Opcode::Cvtpl,
            &[
                Operand::Immediate(5),
                Operand::RegDeferred(Reg::R7),
                Operand::Reg(Reg::R5),
            ],
        )
        .unwrap();
        let done = asm.new_label();
        asm.branch(Opcode::Brb, &[], done).unwrap();
        asm.place(a).unwrap();
        asm.bytes(&[0u8; 4]);
        asm.place(b).unwrap();
        asm.bytes(&[0u8; 4]);
        asm.place(done).unwrap();
    });
    assert_eq!(r(&m, Reg::R5), 1000);
}

#[test]
fn float_arithmetic_round_trips() {
    let m = run_program(|asm| {
        // R0 = f(2.5) via CVTLF of 5 then divide by 2.
        asm.inst(
            Opcode::Cvtlf,
            &[Operand::Immediate(5), Operand::Reg(Reg::R0)],
        )
        .unwrap();
        asm.inst(
            Opcode::Cvtlf,
            &[Operand::Immediate(2), Operand::Reg(Reg::R1)],
        )
        .unwrap();
        asm.inst(
            Opcode::Divf3,
            &[
                Operand::Reg(Reg::R1),
                Operand::Reg(Reg::R0),
                Operand::Reg(Reg::R2),
            ],
        )
        .unwrap();
        // R3 = round-trip integer: cvtfl(2.5) truncates to 2.
        asm.inst(
            Opcode::Cvtfl,
            &[Operand::Reg(Reg::R2), Operand::Reg(Reg::R3)],
        )
        .unwrap();
        // R4 = 2.5 * 4 = 10 as integer.
        asm.inst(
            Opcode::Cvtlf,
            &[Operand::Immediate(4), Operand::Reg(Reg::R5)],
        )
        .unwrap();
        asm.inst(
            Opcode::Mulf3,
            &[
                Operand::Reg(Reg::R5),
                Operand::Reg(Reg::R2),
                Operand::Reg(Reg::R6),
            ],
        )
        .unwrap();
        asm.inst(
            Opcode::Cvtfl,
            &[Operand::Reg(Reg::R6), Operand::Reg(Reg::R4)],
        )
        .unwrap();
    });
    assert_eq!(r(&m, Reg::R3), 2);
    assert_eq!(r(&m, Reg::R4), 10);
}

#[test]
fn bit_field_extract_insert() {
    let m = run_program(|asm| {
        asm.inst(
            Opcode::Movl,
            &[Operand::Immediate(0xABCD_1234), Operand::Reg(Reg::R0)],
        )
        .unwrap();
        // Extract bits 12..20 (8 bits) of R0 -> R1 = 0xD1.
        asm.inst(
            Opcode::Extzv,
            &[
                Operand::Immediate(12),
                Operand::Literal(8),
                Operand::Reg(Reg::R0),
                Operand::Reg(Reg::R1),
            ],
        )
        .unwrap();
        // Insert 0x5 into bits 0..4 of R2.
        asm.inst(Opcode::Clrl, &[Operand::Reg(Reg::R2)]).unwrap();
        asm.inst(
            Opcode::Insv,
            &[
                Operand::Literal(5),
                Operand::Literal(0),
                Operand::Literal(4),
                Operand::Reg(Reg::R2),
            ],
        )
        .unwrap();
        // FFS on R2: lowest set bit is 0.
        asm.inst(
            Opcode::Ffs,
            &[
                Operand::Literal(0),
                Operand::Literal(32),
                Operand::Reg(Reg::R2),
                Operand::Reg(Reg::R3),
            ],
        )
        .unwrap();
    });
    assert_eq!(r(&m, Reg::R1), 0xD1);
    assert_eq!(r(&m, Reg::R2), 5);
    assert_eq!(r(&m, Reg::R3), 0);
}

#[test]
fn queue_insert_remove() {
    let m = run_program(|asm| {
        let qhead = asm.new_label();
        let e1 = asm.new_label();
        asm.moval_pcrel(qhead, Operand::Reg(Reg::R6)).unwrap();
        asm.moval_pcrel(e1, Operand::Reg(Reg::R7)).unwrap();
        // Self-linked queue head.
        asm.inst(
            Opcode::Movl,
            &[Operand::Reg(Reg::R6), Operand::Disp(0, Reg::R6)],
        )
        .unwrap();
        asm.inst(
            Opcode::Movl,
            &[Operand::Reg(Reg::R6), Operand::Disp(4, Reg::R6)],
        )
        .unwrap();
        asm.inst(
            Opcode::Insque,
            &[Operand::RegDeferred(Reg::R7), Operand::RegDeferred(Reg::R6)],
        )
        .unwrap();
        // Head's flink now points at e1.
        asm.inst(
            Opcode::Movl,
            &[Operand::Disp(0, Reg::R6), Operand::Reg(Reg::R0)],
        )
        .unwrap();
        asm.inst(
            Opcode::Remque,
            &[Operand::RegDeferred(Reg::R7), Operand::Reg(Reg::R1)],
        )
        .unwrap();
        // Head self-linked again.
        asm.inst(
            Opcode::Movl,
            &[Operand::Disp(0, Reg::R6), Operand::Reg(Reg::R2)],
        )
        .unwrap();
        let done = asm.new_label();
        asm.branch(Opcode::Brb, &[], done).unwrap();
        asm.place(qhead).unwrap();
        asm.long(0);
        asm.long(0);
        asm.place(e1).unwrap();
        asm.long(0);
        asm.long(0);
        asm.place(done).unwrap();
    });
    assert_eq!(r(&m, Reg::R0), r(&m, Reg::R7), "inserted at head");
    assert_eq!(r(&m, Reg::R1), r(&m, Reg::R7), "remque returns the entry");
    assert_eq!(r(&m, Reg::R2), r(&m, Reg::R6), "queue empty again");
}

#[test]
fn autoincrement_walks_an_array() {
    let m = run_program(|asm| {
        let data = asm.new_label();
        asm.moval_pcrel(data, Operand::Reg(Reg::R6)).unwrap();
        asm.inst(Opcode::Clrl, &[Operand::Reg(Reg::R0)]).unwrap();
        asm.inst(Opcode::Clrl, &[Operand::Reg(Reg::R1)]).unwrap();
        let top = asm.label_here();
        asm.inst(
            Opcode::Addl2,
            &[Operand::AutoIncrement(Reg::R6), Operand::Reg(Reg::R0)],
        )
        .unwrap();
        asm.branch(
            Opcode::Aoblss,
            &[Operand::Literal(4), Operand::Reg(Reg::R1)],
            top,
        )
        .unwrap();
        let done = asm.new_label();
        asm.branch(Opcode::Brb, &[], done).unwrap();
        asm.place(data).unwrap();
        for v in [10u32, 20, 30, 40] {
            asm.long(v);
        }
        asm.place(done).unwrap();
    });
    assert_eq!(r(&m, Reg::R0), 100);
}

#[test]
fn histogram_accounts_every_cycle() {
    let mut asm = Assembler::new(0x400);
    asm.inst(Opcode::Movl, &[Operand::Literal(3), Operand::Reg(Reg::R0)])
        .unwrap();
    let top = asm.label_here();
    asm.inst(Opcode::Incl, &[Operand::Reg(Reg::R1)]).unwrap();
    asm.branch(Opcode::Sobgtr, &[Operand::Reg(Reg::R0)], top)
        .unwrap();
    asm.inst(Opcode::Halt, &[]).unwrap();
    let image = asm.finish().unwrap();

    let mut m = SimpleMachine::with_code(&image);
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    let start = m.cpu.now();
    let err = m.cpu.run(1000, &mut board).unwrap_err();
    assert!(matches!(err, CpuError::Halted { .. }));
    let elapsed = m.cpu.now() - start;
    let hist = board.snapshot();
    // Every processor cycle falls into exactly one bucket of one plane
    // (§5): the HALT instruction's cycles up to the stop are included, so
    // allow the final partially-executed instruction's cycles.
    assert_eq!(
        hist.total_cycles(),
        elapsed,
        "histogram must classify every cycle"
    );
    // Instruction count from the decode bucket matches retired count +
    // the HALT itself.
    let cs = m.cpu.control_store();
    let ird1_count = hist.issue(cs.ird1());
    assert_eq!(ird1_count, m.cpu.instructions() + 1);
}

#[test]
fn histogram_read_write_buckets_match_hw_counters() {
    let mut asm = Assembler::new(0x400);
    let data = asm.new_label();
    asm.moval_pcrel(data, Operand::Reg(Reg::R11)).unwrap();
    for i in 0..8 {
        asm.inst(
            Opcode::Movl,
            &[
                Operand::Disp(4 * i, Reg::R11),
                Operand::Disp(4 * i + 32, Reg::R11),
            ],
        )
        .unwrap();
    }
    asm.inst(Opcode::Halt, &[]).unwrap();
    asm.place(data).unwrap();
    for _ in 0..16 {
        asm.long(7);
    }
    let image = asm.finish().unwrap();

    let mut m = SimpleMachine::with_code(&image);
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    let _ = m.cpu.run(1000, &mut board);
    let hist = board.snapshot();
    let cs = m.cpu.control_store();

    // Sum issue counts at every Write-class address: that is the paper's
    // derivation of writes/instruction. It must equal the hardware
    // counter (all D-stream writes come from microinstructions).
    let mut writes_from_hist = 0u64;
    let mut reads_from_hist = 0u64;
    for (addr, class) in cs.iter() {
        match class.op {
            MemOp::Write => writes_from_hist += hist.issue(addr),
            MemOp::Read => reads_from_hist += hist.issue(addr),
            MemOp::Compute => {}
        }
    }
    let c = m.cpu.mem().counters();
    assert_eq!(writes_from_hist, c.writes);
    // Reads: D-stream reads counted by hardware = hits + misses.
    assert_eq!(reads_from_hist, c.cache_hit_d + c.cache_miss_d);
    assert_eq!(c.writes, 8, "one write per MOVL to memory");

    // The TB-miss entries tagged in the listing match the hardware count.
    let mut tb_entries = 0;
    for (addr, class) in cs.iter() {
        if class.tag == EventTag::TbMissEntry {
            tb_entries += hist.issue(addr);
        }
    }
    assert_eq!(tb_entries, c.tb_miss_d + c.tb_miss_i);
}

#[test]
fn unaligned_references_are_counted_and_work() {
    let mut asm = Assembler::new(0x400);
    let data = asm.new_label();
    asm.moval_pcrel(data, Operand::Reg(Reg::R11)).unwrap();
    // Longword access at offset 2: crosses a longword boundary.
    asm.inst(
        Opcode::Movl,
        &[Operand::Immediate(0xA1B2_C3D4), Operand::Disp(2, Reg::R11)],
    )
    .unwrap();
    asm.inst(
        Opcode::Movl,
        &[Operand::Disp(2, Reg::R11), Operand::Reg(Reg::R0)],
    )
    .unwrap();
    asm.inst(Opcode::Halt, &[]).unwrap();
    asm.place(data).unwrap();
    asm.long(0);
    asm.long(0);
    let image = asm.finish().unwrap();
    let mut m = SimpleMachine::with_code(&image);
    let _ = m.cpu.run(1000, &mut NullSink);
    assert_eq!(m.cpu.regs().get(Reg::R0), 0xA1B2_C3D4);
    assert!(m.cpu.mem().counters().unaligned_refs >= 2);
}

#[test]
fn cpi_of_simple_loop_is_plausible() {
    // A register-heavy loop should run well under the composite 10.6 CPI
    // once the caches warm up, but above 2 (decode + execute + branches).
    let mut asm = Assembler::new(0x400);
    asm.inst(
        Opcode::Movl,
        &[Operand::Immediate(2000), Operand::Reg(Reg::R0)],
    )
    .unwrap();
    let top = asm.label_here();
    asm.inst(Opcode::Addl2, &[Operand::Literal(1), Operand::Reg(Reg::R1)])
        .unwrap();
    asm.inst(
        Opcode::Addl2,
        &[Operand::Reg(Reg::R1), Operand::Reg(Reg::R2)],
    )
    .unwrap();
    asm.branch(Opcode::Sobgtr, &[Operand::Reg(Reg::R0)], top)
        .unwrap();
    asm.inst(Opcode::Halt, &[]).unwrap();
    let image = asm.finish().unwrap();
    let mut m = SimpleMachine::with_code(&image);
    let start_c = m.cpu.now();
    let _ = m.cpu.run(10_000, &mut NullSink);
    let cycles = m.cpu.now() - start_c;
    let insns = m.cpu.instructions();
    let cpi = cycles as f64 / insns as f64;
    assert!(insns > 5000, "loop actually iterated: {insns}");
    assert!(
        (2.0..8.0).contains(&cpi),
        "register-loop CPI plausible, got {cpi:.2}"
    );
}
