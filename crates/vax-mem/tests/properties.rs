//! Property tests for the memory subsystem: cache/TB invariants, paging
//! round trips, and timing monotonicity.

use proptest::prelude::*;
use vax_mem::{
    load_virtual, resolve_va, Cache, CacheConfig, MapBuilder, MemConfig, MemorySubsystem, Stream,
    Tb, TbConfig, Width, PAGE_BYTES,
};

fn small_machine() -> MemorySubsystem {
    let mut mem = MemorySubsystem::new(MemConfig::default());
    let mut mb = MapBuilder::new(mem.phys(), 4096);
    mb.map_system(mem.phys_mut(), 32);
    let space = mb.create_process(mem.phys_mut(), 128, 8);
    let sys = mb.system_map();
    mem.set_system_map(sys);
    mem.switch_address_space(space);
    mem
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A second probe of any just-filled cache block hits.
    #[test]
    fn cache_fill_then_probe_hits(pa in 0u32..(1 << 22)) {
        let mut cache = Cache::new(CacheConfig::default());
        cache.fill(pa);
        prop_assert!(cache.probe(pa));
        // And the whole 8-byte block is present.
        prop_assert!(cache.probe(pa & !7));
        prop_assert!(cache.probe((pa & !7) + 7));
    }

    /// The number of valid lines never exceeds the capacity, no matter
    /// the fill sequence.
    #[test]
    fn cache_capacity_is_bounded(pas in prop::collection::vec(0u32..(1 << 22), 1..600)) {
        let config = CacheConfig {
            size_bytes: 1024,
            ways: 2,
            block_bytes: 8,
        };
        let mut cache = Cache::new(config);
        for pa in pas {
            cache.fill(pa);
        }
        prop_assert!(cache.valid_lines() <= (config.size_bytes / config.block_bytes) as usize);
    }

    /// TB insert-then-lookup returns the inserted translation; lookups
    /// never invent entries.
    #[test]
    fn tb_insert_lookup(vas in prop::collection::vec(0u32..0x4000_0000, 1..100)) {
        let mut tb = Tb::new(TbConfig::default());
        for (i, &va) in vas.iter().enumerate() {
            tb.insert(va, vax_mem::Pte::valid_frame(i as u32 + 1));
            let got = tb.lookup(va);
            prop_assert!(got.is_some());
            prop_assert_eq!(got.unwrap().pfn(), i as u32 + 1);
        }
        prop_assert!(tb.valid_entries() <= 128);
    }

    /// Virtual loads round-trip through the page tables byte-exactly.
    #[test]
    fn load_virtual_round_trips(
        offset in 0u32..30_000,
        data in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        let mut mem = MemorySubsystem::new(MemConfig::default());
        let mut mb = MapBuilder::new(mem.phys(), 4096);
        mb.map_system(mem.phys_mut(), 8);
        let space = mb.create_process(mem.phys_mut(), 128, 4);
        let sys = mb.system_map();
        mem.set_system_map(sys);
        mem.switch_address_space(space);
        let va = PAGE_BYTES + offset; // page 0 reserved
        load_virtual(mem.phys_mut(), &sys, &space, va, &data);
        for (i, &b) in data.iter().enumerate() {
            let pa = resolve_va(mem.phys(), &sys, &space, va + i as u32).unwrap();
            prop_assert_eq!(mem.phys().read_u8(pa), b);
        }
    }

    /// Writes become visible to subsequent reads at every width, and the
    /// second read of the same location never stalls longer than the
    /// first (the block is cached).
    #[test]
    fn write_read_coherence(
        page in 1u32..100,
        off in 0u32..(PAGE_BYTES / 8),
        value: u32,
    ) {
        let mut mem = small_machine();
        let va = page * PAGE_BYTES + off * 8; // longword-aligned, in P0
        mem.tb_fill(va, 0).unwrap();
        let pa = mem.translate(va, Stream::Data).unwrap();
        mem.write(pa, Width::Long, value, 100);
        let r1 = mem.read(pa, Width::Long, 200);
        prop_assert_eq!(r1.value, value);
        let r2 = mem.read(pa, Width::Long, 300);
        prop_assert_eq!(r2.value, value);
        prop_assert!(r2.stall <= r1.stall);
        prop_assert!(!r2.miss);
    }

    /// Sub-longword reads extract exactly the bytes a longword read sees.
    #[test]
    fn subword_extraction(page in 1u32..100, value: u32, byte in 0u32..4) {
        let mut mem = small_machine();
        let va = page * PAGE_BYTES;
        mem.tb_fill(va, 0).unwrap();
        let pa = mem.translate(va, Stream::Data).unwrap();
        mem.write(pa, Width::Long, value, 0);
        let b = mem.read(pa + byte, Width::Byte, 100);
        prop_assert_eq!(b.value, (value >> (8 * byte)) & 0xFF);
        if byte < 3 {
            let w = mem.read(pa + byte, Width::Word, 200);
            prop_assert_eq!(w.value, (value >> (8 * byte)) & 0xFFFF);
        }
    }

    /// Back-to-back writes stall by exactly the remaining drain time.
    #[test]
    fn write_stall_formula(gap in 0u64..12) {
        let mut mem = small_machine();
        mem.tb_fill(0x1000, 0).unwrap();
        let pa = mem.translate(0x1000, Stream::Data).unwrap();
        // Quiesce the page-walk SBI traffic.
        let w1 = mem.write(pa, Width::Long, 1, 1000);
        prop_assert_eq!(w1.stall, 0);
        let w2 = mem.write(pa + 4, Width::Long, 2, 1000 + gap);
        let expected = 6u64.saturating_sub(gap);
        prop_assert_eq!(u64::from(w2.stall), expected);
    }
}

#[test]
fn tb_fill_is_idempotent_for_timing() {
    let mut mem = small_machine();
    mem.tb_fill(0x2000, 0).unwrap();
    let pa1 = mem.translate(0x2000, Stream::Data).unwrap();
    mem.tb_fill(0x2000, 100).unwrap();
    let pa2 = mem.translate(0x2000, Stream::Data).unwrap();
    assert_eq!(pa1, pa2);
}

#[test]
fn dma_injection_delays_misses() {
    let mut a = small_machine();
    let mut b = small_machine();
    a.tb_fill(0x3000, 0).unwrap();
    b.tb_fill(0x3000, 0).unwrap();
    let pa = a.translate(0x3000, Stream::Data).unwrap();
    let _ = b.translate(0x3000, Stream::Data).unwrap();
    // Same read, but machine B has a DMA transfer in flight.
    b.inject_dma(99, 20);
    let ra = a.read(pa, Width::Long, 100);
    let rb = b.read(pa, Width::Long, 100);
    assert!(ra.miss && rb.miss);
    assert!(rb.stall > ra.stall, "{} vs {}", rb.stall, ra.stall);
}
