//! The translation buffer.
//!
//! 128 entries, 2-way set associative, split into a *system* half (S0
//! addresses) and a *process* half (P0/P1 addresses); the process half is
//! flushed by `LDPCTX` on context switch. Unlike the cache, the TB is
//! microcode-managed: misses trap to a microcode service routine, which is
//! exactly why the paper can measure them with the µPC histogram (§4.2).

use crate::paging::Pte;
use crate::TbConfig;

/// Which half of a split TB an address maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TbHalf {
    /// P0/P1 (per-process) addresses.
    Process,
    /// S0 (system) addresses.
    System,
}

impl TbHalf {
    /// Classify a virtual address: S0 has VA bit 31 set.
    #[inline]
    pub fn of_va(va: u32) -> TbHalf {
        if va & 0x8000_0000 != 0 {
            TbHalf::System
        } else {
            TbHalf::Process
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    valid: bool,
    vpn: u32,
    pte: Pte,
}

impl Default for Entry {
    fn default() -> Self {
        Entry {
            valid: false,
            vpn: 0,
            pte: Pte::invalid(),
        }
    }
}

/// The translation buffer.
#[derive(Debug, Clone)]
pub struct Tb {
    entries: Vec<Entry>,
    sets_per_half: u32,
    ways: u32,
    split: bool,
    rng: u32,
    /// Content generation: bumped by every mutation (insert or flush).
    /// Lets a caller cache a translation and revalidate it for free —
    /// an unchanged generation proves the cached entry is still present
    /// (no insert could have evicted it, no flush dropped it). Starts at
    /// 1 so 0 can serve as a never-valid sentinel.
    gen: u64,
}

impl Tb {
    /// An empty TB of the given geometry.
    pub fn new(config: TbConfig) -> Tb {
        config.validate();
        Tb {
            entries: vec![Entry::default(); config.entries as usize],
            sets_per_half: config.sets_per_half(),
            ways: config.ways,
            split: config.split,
            rng: 0x9E37_79B9,
            gen: 1,
        }
    }

    #[inline]
    fn set_base(&self, va: u32) -> usize {
        let vpn = va >> crate::PAGE_SHIFT;
        let set = vpn & (self.sets_per_half - 1);
        let half_offset = if self.split && TbHalf::of_va(va) == TbHalf::System {
            self.sets_per_half * self.ways
        } else {
            0
        };
        (half_offset + set * self.ways) as usize
    }

    /// Look up the translation for `va`. A hit costs no extra cycles.
    #[inline]
    pub fn lookup(&self, va: u32) -> Option<Pte> {
        let vpn = va >> crate::PAGE_SHIFT;
        let base = self.set_base(va);
        self.entries[base..base + self.ways as usize]
            .iter()
            .find(|e| e.valid && e.vpn == vpn)
            .map(|e| e.pte)
    }

    /// The content generation (see the field doc).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Insert a translation (called by the miss-service microroutine).
    pub fn insert(&mut self, va: u32, pte: Pte) {
        self.gen += 1;
        let vpn = va >> crate::PAGE_SHIFT;
        let base = self.set_base(va);
        let ways = self.ways as usize;
        let set = &mut self.entries[base..base + ways];
        let victim = match set.iter().position(|e| !e.valid || e.vpn == vpn) {
            Some(i) => i,
            None => {
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 17;
                self.rng ^= self.rng << 5;
                (self.rng as usize) % ways
            }
        };
        set[victim] = Entry {
            valid: true,
            vpn,
            pte,
        };
    }

    /// Flush the process half (context switch via `LDPCTX`). On a unified
    /// TB this flushes process-region entries individually.
    pub fn flush_process(&mut self) {
        self.gen += 1;
        if self.split {
            let half = (self.sets_per_half * self.ways) as usize;
            for e in &mut self.entries[..half] {
                e.valid = false;
            }
        } else {
            for e in &mut self.entries {
                if e.valid && e.vpn >> (31 - crate::PAGE_SHIFT) == 0 {
                    e.valid = false;
                }
            }
        }
    }

    /// Flush everything.
    pub fn flush_all(&mut self) {
        self.gen += 1;
        for e in &mut self.entries {
            e.valid = false;
        }
    }

    /// Number of valid entries (diagnostics).
    pub fn valid_entries(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_BYTES;

    fn tb() -> Tb {
        Tb::new(TbConfig::default())
    }

    fn pte(pfn: u32) -> Pte {
        Pte::valid_frame(pfn)
    }

    const S0: u32 = 0x8000_0000;

    #[test]
    fn miss_then_hit() {
        let mut t = tb();
        assert!(t.lookup(0x200).is_none());
        t.insert(0x200, pte(7));
        let got = t.lookup(0x200).unwrap();
        assert_eq!(got.pfn(), 7);
        assert!(t.lookup(0x200 + PAGE_BYTES).is_none(), "next page misses");
    }

    #[test]
    fn same_page_hits_for_all_offsets() {
        let mut t = tb();
        t.insert(0x1000, pte(3));
        assert!(t.lookup(0x1000 + PAGE_BYTES - 1).is_some());
    }

    #[test]
    fn process_flush_spares_system_half() {
        let mut t = tb();
        t.insert(0x1000, pte(1));
        t.insert(S0 | 0x1000, pte(2));
        t.flush_process();
        assert!(t.lookup(0x1000).is_none());
        assert!(t.lookup(S0 | 0x1000).is_some());
    }

    #[test]
    fn unified_tb_process_flush_spares_system_pages() {
        let mut t = Tb::new(TbConfig {
            entries: 128,
            ways: 2,
            split: false,
        });
        t.insert(0x1000, pte(1));
        t.insert(S0 | 0x1000, pte(2));
        t.flush_process();
        assert!(t.lookup(0x1000).is_none());
        assert!(t.lookup(S0 | 0x1000).is_some());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut t = tb();
        t.insert(0x1000, pte(1));
        t.insert(0x1000, pte(9));
        assert_eq!(t.lookup(0x1000).unwrap().pfn(), 9);
        assert_eq!(t.valid_entries(), 1);
    }

    #[test]
    fn conflict_eviction_keeps_set_size() {
        let mut t = tb();
        // 32 sets per half; same set every 32 pages.
        let stride = 32 * PAGE_BYTES;
        t.insert(0, pte(1));
        t.insert(stride, pte(2));
        t.insert(2 * stride, pte(3));
        let alive = [0, stride, 2 * stride]
            .iter()
            .filter(|&&va| t.lookup(va).is_some())
            .count();
        assert_eq!(alive, 2, "2-way set holds two translations");
    }

    #[test]
    fn flush_all_empties() {
        let mut t = tb();
        t.insert(0x1000, pte(1));
        t.insert(S0 | 0x2000, pte(2));
        t.flush_all();
        assert_eq!(t.valid_entries(), 0);
    }
}
