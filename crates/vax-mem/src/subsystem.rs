//! The composed memory subsystem: TB → cache → write buffer/SBI → memory.
//!
//! All methods take the current cycle and return stall/completion
//! information; the CPU owns the clock (see the crate docs).

use crate::paging::{self, PteLocation};
use crate::{
    AddressSpace, Cache, HwCounters, MemConfig, PhysMem, Pte, Sbi, SystemMap, Tb, TbHalf,
    PAGE_BYTES,
};
use vax_fault::{FaultClass, FaultHook, FiredFault};

/// Which reference stream a memory operation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// Instruction fetch (the IB).
    IFetch,
    /// Data reference (the EBOX).
    Data,
}

/// Width of a data reference. Quadwords are performed by the CPU as two
/// longword references, as on the real 32-bit data path (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// One byte.
    Byte,
    /// Two bytes.
    Word,
    /// Four bytes.
    Long,
}

impl Width {
    /// Size in bytes.
    #[inline]
    pub const fn bytes(self) -> u32 {
        match self {
            Width::Byte => 1,
            Width::Word => 2,
            Width::Long => 4,
        }
    }
}

/// Outcome of an EBOX data read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The data (zero-extended).
    pub value: u32,
    /// Read-stall cycles the EBOX incurs (0 on a cache hit).
    pub stall: u32,
    /// Did the reference miss in the cache?
    pub miss: bool,
}

/// Outcome of an EBOX data write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Write-stall cycles (0 if the write buffer was free).
    pub stall: u32,
}

/// Outcome of an IB longword fetch. The EBOX is not stalled; the IB
/// accepts the data when `ready_at` arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IFetchOutcome {
    /// The aligned longword containing the requested byte.
    pub data: u32,
    /// Cycle at which the data is available to the IB.
    pub ready_at: u64,
    /// Did the reference miss in the cache?
    pub miss: bool,
}

/// Result of a TB-fill microroutine's memory work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbFill {
    /// If the process PTE's own page-table page missed in the system TB,
    /// the stall of the extra system PTE read (the "double miss").
    pub system_fill: Option<ReadOutcome>,
    /// The PTE read itself (through the cache, as on the 11/780 — this is
    /// where the paper's 3.5 read-stall cycles per miss come from).
    pub pte_read: ReadOutcome,
}

impl TbFill {
    /// Total read-stall cycles incurred filling this entry.
    pub fn total_stall(&self) -> u32 {
        self.pte_read.stall + self.system_fill.map_or(0, |r| r.stall)
    }
}

/// A memory-management fault delivered to the operating system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// Reference beyond the mapped length of its region.
    LengthViolation {
        /// The faulting virtual address.
        va: u32,
    },
    /// Valid-bit clear in the PTE (page not resident).
    PageFault {
        /// The faulting virtual address.
        va: u32,
    },
}

/// TB miss: the CPU must run the miss-service microroutine and call
/// [`MemorySubsystem::tb_fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbMiss {
    /// The missing virtual address.
    pub va: u32,
    /// Which half of the TB missed.
    pub half: TbHalf,
}

/// Granularity of the predecode write-invalidation bitmap.
pub const CODE_BLOCK_BYTES: usize = 64;

/// The full memory subsystem of Figure 1.
#[derive(Debug)]
pub struct MemorySubsystem {
    config: MemConfig,
    phys: PhysMem,
    cache: Cache,
    tb: Tb,
    sbi: Sbi,
    /// Write buffer: completion time of each occupied entry (bounded by
    /// `config.write_buffer_entries`).
    wbuf: Vec<u64>,
    system: SystemMap,
    space: AddressSpace,
    counters: HwCounters,
    /// Cache-read outcomes of the most recent [`MemorySubsystem::tb_fill`]
    /// call `(system PTE read, process/system PTE read)`, recorded even
    /// when the fill ends in a fault. The tracer needs them: a faulting
    /// fill still made cache references that the hardware counters saw.
    last_fill_reads: (Option<ReadOutcome>, Option<ReadOutcome>),
    /// Fault-injection hook (None on the happy path; installing one is
    /// how `vax780 inject` perturbs the machine).
    fault_hook: Option<Box<dyn FaultHook>>,
    /// Generation stamp for host-side predecode caches layered above this
    /// subsystem (see `vax_cpu`). Bumped whenever previously decoded
    /// instruction bytes could be stale: a simulated write into a
    /// physical page flagged as holding predecoded code. (Address-space
    /// switches don't bump it — predecode entries are tagged with
    /// [`MemorySubsystem::space_tag`] instead.) Starts at 1 so 0 can
    /// serve as a never-valid sentinel.
    decode_gen: u64,
    /// One-entry translation shortcut (same argument as the IB
    /// prefetcher's): the page and frame base of the last successful
    /// [`MemorySubsystem::translate`], valid while the TB generation is
    /// unchanged. A shortcut hit counts as a TB hit — it *is* one.
    t_page: u32,
    t_frame: u32,
    t_gen: u64,
    /// Use the one-entry translation shortcut. `false` scans the TB on
    /// every translate — the straight-line reference the equivalence
    /// suite compares against (see `CpuConfig::host_shortcuts` in
    /// `vax_cpu`).
    shortcuts: bool,
    /// Bitmap over 64-byte physical blocks currently holding predecoded
    /// instruction bytes. Block granularity matters: workload images
    /// commonly keep writable data on the same page as code, and
    /// page-granular flagging would turn every such store into a full
    /// predecode flush. Cleared on every generation bump: the bump
    /// invalidates all cached decode, so the flagged set restarts empty.
    code_blocks: Vec<u64>,
}

impl MemorySubsystem {
    /// A subsystem with the given configuration and an empty machine image.
    pub fn new(config: MemConfig) -> MemorySubsystem {
        config.validate();
        MemorySubsystem {
            phys: PhysMem::new(config.phys_bytes),
            cache: Cache::new(config.cache),
            tb: Tb::new(config.tb),
            sbi: Sbi::new(),
            wbuf: Vec::with_capacity(config.write_buffer_entries as usize),
            system: SystemMap { sbr: 0, slr: 0 },
            space: AddressSpace::empty(),
            counters: HwCounters::new(),
            last_fill_reads: (None, None),
            fault_hook: None,
            decode_gen: 1,
            t_page: 0,
            t_frame: 0,
            t_gen: 0,
            shortcuts: true,
            code_blocks: vec![0; (config.phys_bytes as usize).div_ceil(CODE_BLOCK_BYTES * 64)],
            config,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Physical memory (image loading).
    pub fn phys(&self) -> &PhysMem {
        &self.phys
    }

    /// Mutable physical memory (image loading).
    pub fn phys_mut(&mut self) -> &mut PhysMem {
        &mut self.phys
    }

    /// Enable or disable the host-side one-entry translation shortcut
    /// (see `CpuConfig::host_shortcuts` in `vax_cpu`). On by default;
    /// `false` scans the TB on every translate, the straight-line
    /// reference behaviour.
    pub fn set_host_shortcuts(&mut self, on: bool) {
        self.shortcuts = on;
    }

    /// Install the system page-table description.
    pub fn set_system_map(&mut self, system: SystemMap) {
        self.system = system;
    }

    /// The installed system map.
    pub fn system_map(&self) -> SystemMap {
        self.system
    }

    /// Switch the current process address space (`LDPCTX`): installs the
    /// new base/length registers and flushes the process half of the TB.
    /// Predecode state keyed by [`space_tag`] needs no flush here: the
    /// outgoing space's entries go dormant behind their tag.
    ///
    /// [`space_tag`]: MemorySubsystem::space_tag
    pub fn switch_address_space(&mut self, space: AddressSpace) {
        self.space = space;
        self.tb.flush_process();
    }

    // ----- predecode invalidation protocol ---------------------------------

    /// The current predecode generation. A host-side predecode cache
    /// stamps each entry with the generation at insert time and treats
    /// any entry with a stale stamp as a miss.
    #[inline]
    pub fn decode_gen(&self) -> u64 {
        self.decode_gen
    }

    /// Identity of the current process address space: the P0/P1
    /// page-table bases, which are distinct per process (each process's
    /// page tables live at their own system VAs). Predecode caches tag
    /// process-space entries with this value so entries survive context
    /// switches; system-space code, mapped identically for every
    /// process, should use the shared tag 0 instead.
    #[inline]
    pub fn space_tag(&self) -> u64 {
        (u64::from(self.space.p0br) << 32) | u64::from(self.space.p1br)
    }

    /// Flag the 64-byte physical blocks covering `[pa, pa + len)` as
    /// containing predecoded instruction bytes, so a later simulated
    /// write into them bumps the generation (self-modifying code cannot
    /// outrun the cache).
    pub fn note_code_bytes(&mut self, pa: u32, len: u32) {
        if len == 0 {
            return;
        }
        let first = (pa as usize) / CODE_BLOCK_BYTES;
        let last = (pa as usize + len as usize - 1) / CODE_BLOCK_BYTES;
        for block in first..=last {
            if let Some(word) = self.code_blocks.get_mut(block / 64) {
                *word |= 1 << (block % 64);
            }
        }
    }

    /// Is *every* 64-byte block covering `[pa, pa + len)` flagged as
    /// holding predecoded bytes? This is the invariant the
    /// write-invalidation protocol depends on for instructions that
    /// straddle a block boundary: a write into only the tail bytes must
    /// still bump the generation, so the tail block must be flagged,
    /// not just the head. Exposed so the predecode layers (and their
    /// regression tests) can audit the flagging rather than trust it.
    pub fn code_bytes_flagged(&self, pa: u32, len: u32) -> bool {
        if len == 0 {
            return true;
        }
        let first = (pa as usize) / CODE_BLOCK_BYTES;
        let last = (pa as usize + len as usize - 1) / CODE_BLOCK_BYTES;
        (first..=last).all(|block| {
            self.code_blocks
                .get(block / 64)
                .is_some_and(|word| word & (1 << (block % 64)) != 0)
        })
    }

    #[inline]
    fn code_block_flagged(&self, pa: u32) -> bool {
        // Writes are width-aligned within one longword, so a single
        // reference can never straddle a block boundary.
        let block = (pa as usize) / CODE_BLOCK_BYTES;
        self.code_blocks
            .get(block / 64)
            .is_some_and(|word| word & (1 << (block % 64)) != 0)
    }

    /// Invalidate all predecode state above this subsystem: bump the
    /// generation and forget the flagged pages (re-inserts re-flag).
    fn invalidate_predecode(&mut self) {
        self.decode_gen += 1;
        self.code_blocks.fill(0);
    }

    /// Software page-table walk with no cache/TB/timing/counter effects:
    /// the physical address `va` resolves to, if mapped. Predecode
    /// caches use it to flag code pages at insert time.
    pub fn resolve_va(&self, va: u32) -> Option<u32> {
        paging::resolve_va(&self.phys, &self.system, &self.space, va)
    }

    /// TB content generation: bumped by every insert and flush. A cached
    /// (page → frame) shortcut taken by the IB prefetcher is valid only
    /// while the generation is unchanged — any TB mutation could have
    /// evicted the entry the shortcut relies on.
    #[inline]
    pub fn tb_generation(&self) -> u64 {
        self.tb.generation()
    }

    /// The current process address space.
    pub fn address_space(&self) -> AddressSpace {
        self.space
    }

    /// The hardware counters (the "cache study" instrument).
    pub fn counters(&self) -> &HwCounters {
        &self.counters
    }

    /// Mutable access for the CPU (e.g. unaligned-reference counting).
    pub fn counters_mut(&mut self) -> &mut HwCounters {
        &mut self.counters
    }

    /// The translation buffer (diagnostics).
    pub fn tb(&self) -> &Tb {
        &self.tb
    }

    /// The cache (diagnostics).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Translate `va`. On a TB hit returns the physical address (no extra
    /// cycles); on a miss the CPU must run the miss microroutine.
    ///
    /// # Errors
    ///
    /// Returns [`TbMiss`] when the TB has no entry for the page.
    #[inline]
    pub fn translate(&mut self, va: u32, stream: Stream) -> Result<u32, TbMiss> {
        // One-entry shortcut: while the TB generation is unchanged, the
        // entry behind the last successful translation is still
        // resident, so a real lookup would hit with the same frame.
        // Count the hit and skip the set scan.
        let page = va & !(PAGE_BYTES - 1);
        if self.shortcuts && self.t_gen == self.tb.generation() && self.t_page == page {
            self.counters.tb_hits += 1;
            return Ok(self.t_frame + (va & (PAGE_BYTES - 1)));
        }
        match self.tb.lookup(va) {
            Some(pte) => {
                self.counters.tb_hits += 1;
                self.t_page = page;
                self.t_frame = pte.frame_pa();
                self.t_gen = self.tb.generation();
                Ok(pte.frame_pa() + (va & (PAGE_BYTES - 1)))
            }
            None => {
                match stream {
                    Stream::IFetch => self.counters.tb_miss_i += 1,
                    Stream::Data => self.counters.tb_miss_d += 1,
                }
                Err(TbMiss {
                    va,
                    half: TbHalf::of_va(va),
                })
            }
        }
    }

    /// Fill the TB entry for `va` by walking the page tables. The PTE reads
    /// go through the cache and may themselves stall (and, for process
    /// pages, may require a nested system-TB fill first).
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for length violations or invalid PTEs.
    pub fn tb_fill(&mut self, va: u32, now: u64) -> Result<TbFill, MemFault> {
        self.last_fill_reads = (None, None);
        let loc = paging::pte_location(&self.system, &self.space, va)
            .ok_or(MemFault::LengthViolation { va })?;
        let (system_fill, pte_pa) = match loc {
            PteLocation::Physical(pa) => (None, pa),
            PteLocation::SystemVirtual(sva) => {
                // The page-table page itself may miss in the system TB.
                let (fill, pa) = match self.tb.lookup(sva) {
                    Some(pte) => (None, pte.frame_pa() + (sva & (PAGE_BYTES - 1))),
                    None => {
                        // The nested system fill is part of servicing the
                        // original miss: one miss-routine entry, one count.
                        let outer_loc = paging::pte_location(&self.system, &self.space, sva)
                            .ok_or(MemFault::LengthViolation { va })?;
                        let outer_pa = match outer_loc {
                            PteLocation::Physical(pa) => pa,
                            PteLocation::SystemVirtual(_) => {
                                unreachable!("system PTEs live in physical memory")
                            }
                        };
                        let outcome = self.cached_read_u32(outer_pa, now, Stream::Data);
                        self.last_fill_reads.0 = Some(outcome);
                        let outer = Pte::from_raw(outcome.value);
                        if !outer.is_valid() {
                            return Err(MemFault::PageFault { va: sva });
                        }
                        self.tb.insert(sva, outer);
                        (Some(outcome), outer.frame_pa() + (sva & (PAGE_BYTES - 1)))
                    }
                };
                (fill, pa)
            }
        };
        let delay = system_fill.map_or(0, |f| u64::from(f.stall));
        let pte_read = self.cached_read_u32(pte_pa, now + delay, Stream::Data);
        self.last_fill_reads.1 = Some(pte_read);
        let pte = Pte::from_raw(pte_read.value);
        if !pte.is_valid() {
            return Err(MemFault::PageFault { va });
        }
        self.tb.insert(va, pte);
        Ok(TbFill {
            system_fill,
            pte_read,
        })
    }

    /// EBOX data read of `width` at physical address `pa` (must be aligned
    /// to `width`; the CPU splits unaligned references).
    #[inline]
    pub fn read(&mut self, pa: u32, width: Width, now: u64) -> ReadOutcome {
        debug_assert!(
            (pa & 3) + width.bytes() <= 4,
            "CPU must split longword-crossing reads"
        );
        let outcome = self.cached_read_u32(pa & !3, now, Stream::Data);
        let shift = (pa & 3) * 8;
        let mask = match width {
            Width::Byte => 0xFF,
            Width::Word => 0xFFFF,
            Width::Long => 0xFFFF_FFFF,
        };
        ReadOutcome {
            value: (outcome.value >> shift) & mask,
            ..outcome
        }
    }

    /// Core read path: aligned longword through the cache.
    #[inline]
    fn cached_read_u32(&mut self, pa: u32, now: u64, stream: Stream) -> ReadOutcome {
        debug_assert_eq!(pa & 3, 0);
        let hit = self.cache.probe(pa);
        let value = self.phys.read_u32(pa);
        if hit {
            match stream {
                Stream::IFetch => self.counters.cache_hit_i += 1,
                Stream::Data => self.counters.cache_hit_d += 1,
            }
            ReadOutcome {
                value,
                stall: 0,
                miss: false,
            }
        } else {
            match stream {
                Stream::IFetch => self.counters.cache_miss_i += 1,
                Stream::Data => self.counters.cache_miss_d += 1,
            }
            self.counters.sbi_reads += 1;
            let wait = self
                .sbi
                .acquire(now, u64::from(self.config.read_miss_cycles));
            self.cache.fill(pa);
            ReadOutcome {
                value,
                stall: wait as u32 + self.config.read_miss_cycles,
                miss: true,
            }
        }
    }

    /// EBOX data write of `width` at `pa` (aligned; CPU splits unaligned).
    ///
    /// One cycle to initiate (charged by the CPU as the µinstruction
    /// itself); the returned stall is the wait for the previous write to
    /// drain (paper §4.3).
    #[inline]
    pub fn write(&mut self, pa: u32, width: Width, value: u32, now: u64) -> WriteOutcome {
        // Any offset within one longword is a single reference (the byte
        // rotator handles it); only longword-crossing writes must be
        // split by the CPU.
        debug_assert!(
            (pa & 3) + width.bytes() <= 4,
            "CPU must split longword-crossing writes"
        );
        // A store into a block holding predecoded code invalidates the
        // predecode layer (cheap bitmap probe on the common path).
        if self.code_block_flagged(pa) {
            self.invalidate_predecode();
        }
        // Retire completed drains, then stall only if every buffer entry
        // is still occupied (the 11/780 has exactly one).
        self.wbuf.retain(|&done| done > now);
        let stall = if self.wbuf.len() < self.config.write_buffer_entries as usize {
            0
        } else {
            let earliest = self.wbuf.iter().copied().min().unwrap_or(now);
            let stall = earliest.saturating_sub(now);
            self.wbuf.retain(|&done| done > now + stall);
            stall
        };
        // The drain occupies the SBI starting when the buffer accepts it.
        let start = now + stall;
        let bus_wait = self.sbi.acquire(start, u64::from(self.config.write_cycles));
        self.wbuf
            .push(start + bus_wait + u64::from(self.config.write_cycles));
        self.counters.writes += 1;
        self.counters.sbi_writes += 1;
        if self.cache.write_probe(pa) {
            self.counters.write_hits += 1;
        }
        match width {
            Width::Byte => self.phys.write_u8(pa, value as u8),
            Width::Word => self.phys.write_u16(pa, value as u16),
            Width::Long => self.phys.write_u32(pa, value),
        }
        WriteOutcome {
            stall: stall as u32,
        }
    }

    /// IB longword fetch at `pa` (aligned to 4). Does not stall the EBOX;
    /// returns when the data arrives.
    #[inline]
    pub fn ifetch(&mut self, pa: u32, now: u64) -> IFetchOutcome {
        debug_assert_eq!(pa & 3, 0);
        self.counters.ib_requests += 1;
        let hit = self.cache.probe(pa);
        let value = self.phys.read_u32(pa);
        if hit {
            self.counters.cache_hit_i += 1;
            // One cycle of cache-to-IB transfer latency even on a hit.
            IFetchOutcome {
                data: value,
                ready_at: now + 1,
                miss: false,
            }
        } else {
            self.counters.cache_miss_i += 1;
            self.counters.sbi_reads += 1;
            let wait = self
                .sbi
                .acquire(now, u64::from(self.config.read_miss_cycles));
            self.cache.fill(pa);
            IFetchOutcome {
                data: value,
                ready_at: now + wait + u64::from(self.config.read_miss_cycles),
                miss: true,
            }
        }
    }

    /// The cache-read outcomes of the most recent [`MemorySubsystem::tb_fill`],
    /// `(system PTE read, PTE read)`, present even when the fill faulted.
    /// Lets an observer attribute the fill's cache/SBI traffic without
    /// changing `tb_fill`'s error type.
    pub fn last_fill_reads(&self) -> (Option<ReadOutcome>, Option<ReadOutcome>) {
        self.last_fill_reads
    }

    /// Write-buffer entries currently occupied (most recently completed
    /// write included until its drain time passes).
    pub fn write_buffer_occupancy(&self) -> usize {
        self.wbuf.len()
    }

    /// Record bytes accepted by the IB (for the §4.1 statistic).
    #[inline]
    pub fn note_ib_bytes(&mut self, n: u32) {
        self.counters.ib_bytes_delivered += u64::from(n);
    }

    /// Inject a DMA transaction onto the SBI (disk/terminal controllers
    /// on a live timesharing system). The bus is occupied for `duration`
    /// cycles starting no earlier than `now`; CPU misses arriving during
    /// the transfer wait it out.
    pub fn inject_dma(&mut self, now: u64, duration: u64) {
        self.sbi.acquire(now, duration);
    }

    /// Reset the dynamic state (cache, TB, bus, counters) without touching
    /// memory contents — a measurement boundary.
    pub fn reset_dynamic_state(&mut self) {
        self.cache.invalidate_all();
        self.tb.flush_all();
        self.sbi.reset();
        self.wbuf.clear();
        self.counters.clear();
        self.last_fill_reads = (None, None);
    }

    // ----- fault injection -------------------------------------------------

    /// Install a fault-injection hook. The hook is inert until
    /// [`arm_fault_hook`](MemorySubsystem::arm_fault_hook) is called.
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.fault_hook = Some(hook);
    }

    /// Remove the hook (back to the happy path).
    pub fn clear_fault_hook(&mut self) {
        self.fault_hook = None;
    }

    /// Is a hook installed? The CPU gates its per-µcycle observation
    /// calls on this, so the happy path pays a single branch.
    #[inline]
    pub fn has_fault_hook(&self) -> bool {
        self.fault_hook.is_some()
    }

    /// Arm the installed hook: trigger offsets count from `now`.
    pub fn arm_fault_hook(&mut self, now: u64) {
        if let Some(hook) = &mut self.fault_hook {
            hook.arm(now);
        }
    }

    /// Report one µPC issue to the hook (µPC-keyed triggers).
    #[inline]
    pub fn observe_upc(&mut self, upc: u16) {
        if let Some(hook) = &mut self.fault_hook {
            hook.observe_issue(upc);
        }
    }

    /// Has a scheduled fault matured by `now`? At most one per call; the
    /// CPU polls at instruction boundaries so the fault is taken between
    /// instructions (architecturally survivable).
    #[inline]
    pub fn poll_fault(&mut self, now: u64) -> Option<FaultClass> {
        match &mut self.fault_hook {
            Some(hook) => hook.poll(now),
            None => None,
        }
    }

    /// The machine took an injected fault: count it on the hardware
    /// monitor, log it on the hook, and apply the class's perturbation to
    /// the subsystem state (this is what makes the fault *observable*
    /// beyond its recovery-microcode cycles).
    pub fn apply_fault(&mut self, class: FaultClass, now: u64) {
        self.counters.machine_checks += 1;
        if let Some(hook) = &mut self.fault_hook {
            hook.record_taken(class, now);
        }
        match class {
            // A parity error poisons the whole cache: recovery microcode
            // flushes it and lets demand misses rebuild it.
            FaultClass::CacheParity => self.cache.invalidate_all(),
            // A corrupt TB entry cannot be located precisely; recovery
            // invalidates the TB and the miss microcode refills it.
            FaultClass::TbCorrupt => self.tb.flush_all(),
            // A timed-out transfer is retried: the bus is held for the
            // retry window, delaying any miss that arrives meanwhile.
            FaultClass::SbiTimeout => {
                let retry = 4 * u64::from(self.config.read_miss_cycles);
                self.sbi.acquire(now, retry);
            }
            // The suspect buffered longword is re-sent: forced drain,
            // re-occupying the SBI for one write time.
            FaultClass::WriteBufferError => {
                self.wbuf.clear();
                self.sbi.acquire(now, u64::from(self.config.write_cycles));
            }
            // A control-store bit flip is repaired from the backup copy:
            // pure recovery-cycle burn, no memory-side effect.
            FaultClass::ControlStoreBitFlip => {}
        }
    }

    /// The log of faults taken so far (empty without a hook).
    pub fn faults_fired(&self) -> Vec<FiredFault> {
        self.fault_hook
            .as_ref()
            .map_or_else(Vec::new, |h| h.fired())
    }

    /// Software page-table walk with no cache/TB/timing effects: would a
    /// reference to `va` translate? Used by the `PROBEx` instructions.
    pub fn probe_va(&self, va: u32) -> bool {
        paging::resolve_va(&self.phys, &self.system, &self.space, va).is_some()
    }

    /// Software (non-simulated) read of a virtual longword, for test and
    /// workload setup. Panics on unmapped addresses.
    pub fn debug_read_virtual_u32(&self, va: u32) -> u32 {
        let pa = paging::resolve_va(&self.phys, &self.system, &self.space, va)
            .unwrap_or_else(|| panic!("debug read of unmapped VA {va:#010x}"));
        self.phys.read_u32(pa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MapBuilder;

    fn machine() -> MemorySubsystem {
        let mut mem = MemorySubsystem::new(MemConfig::default());
        let mut mb = MapBuilder::new(mem.phys(), 4096);
        let sys_base = mb.map_system(mem.phys_mut(), 64);
        assert_eq!(sys_base, 0x8000_0000);
        let space = mb.create_process(mem.phys_mut(), 64, 8);
        mem.set_system_map(mb.system_map());
        mem.switch_address_space(space);
        mem
    }

    #[test]
    fn translate_miss_then_fill_then_hit() {
        let mut mem = machine();
        let miss = mem.translate(0x1000, Stream::Data).unwrap_err();
        assert_eq!(miss.half, TbHalf::Process);
        mem.tb_fill(0x1000, 0).unwrap();
        let pa = mem.translate(0x1000, Stream::Data).unwrap();
        assert_eq!(pa & (PAGE_BYTES - 1), 0x1000 & (PAGE_BYTES - 1));
    }

    #[test]
    fn process_fill_can_double_miss() {
        let mut mem = machine();
        // First process fill: the page-table page is not in the system TB.
        let fill = mem.tb_fill(0x1000, 0).unwrap();
        assert!(fill.system_fill.is_some(), "double miss on first touch");
        // Second fill for a nearby page: page-table page now cached in TB.
        let fill2 = mem.tb_fill(0x1000 + PAGE_BYTES, 100).unwrap();
        assert!(fill2.system_fill.is_none());
    }

    #[test]
    fn read_miss_stalls_then_hits() {
        let mut mem = machine();
        mem.tb_fill(0x1000, 0).unwrap();
        let pa = mem.translate(0x1000, Stream::Data).unwrap();
        // By cycle 20 the page-walk's SBI traffic has drained.
        let first = mem.read(pa, Width::Long, 20);
        assert!(first.miss);
        assert_eq!(first.stall, 6);
        let again = mem.read(pa, Width::Long, 40);
        assert!(!again.miss);
        assert_eq!(again.stall, 0);
    }

    #[test]
    fn straddling_code_bytes_flag_every_block_they_touch() {
        // Satellite audit (ISSUE 7): an instruction whose bytes straddle
        // a 64-byte block boundary must flag BOTH blocks, so a write
        // into only its tail bytes still bumps `decode_gen`.
        let mut mem = machine();
        mem.tb_fill(0x1000, 0).unwrap();
        let pa = mem.translate(0x1000, Stream::Data).unwrap();
        // A 7-byte "instruction" whose last 3 bytes spill into the next
        // 64-byte block.
        let head = pa + 60;
        mem.note_code_bytes(head, 7);
        assert!(mem.code_bytes_flagged(head, 7), "head and tail flagged");
        assert!(mem.code_bytes_flagged(pa + 64, 1), "tail block flagged");
        assert!(!mem.code_bytes_flagged(pa + 128, 1), "beyond is untouched");
        // A write landing only in the tail bytes bumps the generation.
        let gen = mem.decode_gen();
        mem.write(pa + 64, Width::Long, 0xDEAD_BEEF, 50);
        assert_eq!(mem.decode_gen(), gen + 1, "tail write invalidates");
        // The bump forgot the flags; re-inserts re-flag.
        assert!(!mem.code_bytes_flagged(head, 7));
    }

    #[test]
    fn head_only_write_also_invalidates_straddler() {
        let mut mem = machine();
        mem.tb_fill(0x1000, 0).unwrap();
        let pa = mem.translate(0x1000, Stream::Data).unwrap();
        mem.note_code_bytes(pa + 60, 7);
        let gen = mem.decode_gen();
        mem.write(pa + 60, Width::Byte, 0x01, 50);
        assert_eq!(mem.decode_gen(), gen + 1, "head write invalidates");
    }

    #[test]
    fn back_to_back_writes_stall() {
        let mut mem = machine();
        mem.tb_fill(0x1000, 0).unwrap();
        let pa = mem.translate(0x1000, Stream::Data).unwrap();
        let w1 = mem.write(pa, Width::Long, 1, 100);
        assert_eq!(w1.stall, 0);
        let w2 = mem.write(pa + 4, Width::Long, 2, 102);
        assert_eq!(w2.stall, 4, "second write waits for the buffer");
        let w3 = mem.write(pa + 8, Width::Long, 3, 200);
        assert_eq!(w3.stall, 0, "spaced writes do not stall");
    }

    #[test]
    fn deeper_write_buffer_absorbs_bursts() {
        let mut mem = MemorySubsystem::new(MemConfig {
            write_buffer_entries: 4,
            ..MemConfig::default()
        });
        let mut mb = MapBuilder::new(mem.phys(), 4096);
        mb.map_system(mem.phys_mut(), 8);
        let space = mb.create_process(mem.phys_mut(), 16, 4);
        mem.set_system_map(mb.system_map());
        mem.switch_address_space(space);
        mem.tb_fill(0x1000, 0).unwrap();
        let pa = mem.translate(0x1000, Stream::Data).unwrap();
        // Four back-to-back writes: none stall with a 4-entry buffer.
        for i in 0..4 {
            let w = mem.write(pa + 4 * i, Width::Long, i, 100 + u64::from(i));
            assert_eq!(w.stall, 0, "write {i}");
        }
        // The fifth waits for the first drain.
        let w = mem.write(pa + 16, Width::Long, 9, 104);
        assert!(w.stall > 0, "buffer full");
    }

    #[test]
    fn write_through_updates_memory() {
        let mut mem = machine();
        mem.tb_fill(0x1000, 0).unwrap();
        let pa = mem.translate(0x1000, Stream::Data).unwrap();
        mem.write(pa, Width::Long, 0xCAFE_F00D, 0);
        assert_eq!(mem.read(pa, Width::Long, 100).value, 0xCAFE_F00D);
        assert_eq!(mem.debug_read_virtual_u32(0x1000), 0xCAFE_F00D);
    }

    #[test]
    fn ifetch_miss_does_not_block_but_occupies_bus() {
        let mut mem = machine();
        mem.tb_fill(0x8000_0000, 0).unwrap();
        mem.tb_fill(0x1000, 20).unwrap();
        // Page-walk SBI traffic has drained by cycle 100.
        let pa = mem.translate(0x8000_0000, Stream::IFetch).unwrap();
        let f = mem.ifetch(pa, 100);
        assert!(f.miss);
        assert_eq!(f.ready_at, 106);
        // An EBOX miss right after waits for the IB's bus transaction.
        let dpa = mem.translate(0x1000, Stream::Data).unwrap();
        let r = mem.read(dpa, Width::Long, 101);
        assert!(r.miss);
        assert_eq!(r.stall, 5 + 6, "waits out the IB fill, then its own");
    }

    #[test]
    fn subword_reads_extract_correct_bytes() {
        let mut mem = machine();
        mem.tb_fill(0x1000, 0).unwrap();
        let pa = mem.translate(0x1000, Stream::Data).unwrap();
        mem.write(pa, Width::Long, 0x0403_0201, 0);
        assert_eq!(mem.read(pa, Width::Byte, 50).value, 0x01);
        assert_eq!(mem.read(pa + 1, Width::Byte, 60).value, 0x02);
        assert_eq!(mem.read(pa + 2, Width::Word, 70).value, 0x0403);
    }

    #[test]
    fn context_switch_flushes_process_tb() {
        let mut mem = machine();
        mem.tb_fill(0x1000, 0).unwrap();
        assert!(mem.translate(0x1000, Stream::Data).is_ok());
        let space = mem.address_space();
        mem.switch_address_space(space);
        assert!(mem.translate(0x1000, Stream::Data).is_err());
    }

    #[test]
    fn length_violation_faults() {
        let mut mem = machine();
        let fault = mem.tb_fill(0x3F00_0000, 0).unwrap_err();
        assert!(matches!(fault, MemFault::LengthViolation { .. }));
    }

    #[test]
    fn applied_faults_perturb_state_and_count() {
        let mut mem = machine();
        mem.tb_fill(0x1000, 0).unwrap();
        let pa = mem.translate(0x1000, Stream::Data).unwrap();
        mem.read(pa, Width::Long, 20); // warm the cache
        assert!(mem.cache().valid_lines() > 0);
        assert!(mem.tb().valid_entries() > 0);

        mem.apply_fault(FaultClass::CacheParity, 100);
        assert_eq!(mem.cache().valid_lines(), 0, "parity flushes the cache");
        mem.apply_fault(FaultClass::TbCorrupt, 110);
        assert_eq!(mem.tb().valid_entries(), 0, "corruption flushes the TB");
        let free_before = mem.sbi.is_free(200);
        assert!(free_before);
        mem.apply_fault(FaultClass::SbiTimeout, 200);
        assert!(!mem.sbi.is_free(200), "retry occupies the bus");
        mem.apply_fault(FaultClass::ControlStoreBitFlip, 300);
        assert_eq!(mem.counters().machine_checks, 4);
    }

    #[test]
    fn fault_hook_drives_poll_and_fired_log() {
        use vax_fault::{FaultEngine, FaultPlan, FaultTrigger};
        let mut mem = machine();
        assert!(!mem.has_fault_hook());
        assert_eq!(mem.poll_fault(u64::MAX), None);
        let plan = FaultPlan::new().with(FaultClass::CacheParity, FaultTrigger::AtCycle(50));
        mem.set_fault_hook(Box::new(FaultEngine::new(&plan)));
        assert!(mem.has_fault_hook());
        mem.arm_fault_hook(1_000);
        assert_eq!(mem.poll_fault(1_010), None);
        assert_eq!(mem.poll_fault(1_050), Some(FaultClass::CacheParity));
        mem.apply_fault(FaultClass::CacheParity, 1_051);
        let fired = mem.faults_fired();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].class, FaultClass::CacheParity);
        assert_eq!(fired[0].at_cycle, 1_051);
    }

    #[test]
    fn counters_track_events() {
        let mut mem = machine();
        assert!(mem.translate(0x1000, Stream::Data).is_err());
        mem.tb_fill(0x1000, 0).unwrap();
        let pa = mem.translate(0x1000, Stream::Data).unwrap();
        mem.read(pa, Width::Long, 10);
        mem.write(pa, Width::Long, 5, 20);
        let c = mem.counters();
        assert!(c.tb_miss_d >= 1);
        assert!(c.cache_miss_d >= 1);
        assert_eq!(c.writes, 1);
    }
}
