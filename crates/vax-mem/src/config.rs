//! Configuration of the memory subsystem.
//!
//! Defaults reproduce the VAX-11/780 as described in the paper and the
//! companion cache study; the fields exist so the ablation benches can
//! sweep geometry.

/// Data cache geometry and policy (fixed: write-through, no write-allocate,
/// as on the 11/780).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes. 11/780: 8 KB.
    pub size_bytes: u32,
    /// Associativity. 11/780: 2-way.
    pub ways: u32,
    /// Block (line) size in bytes. 11/780: 8.
    pub block_bytes: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.ways * self.block_bytes)
    }

    /// Panics if the geometry is not a valid power-of-two arrangement.
    pub fn validate(&self) {
        assert!(self.size_bytes.is_power_of_two(), "cache size");
        assert!(self.block_bytes.is_power_of_two(), "block size");
        assert!(self.ways >= 1, "ways");
        assert!(
            self.size_bytes >= self.ways * self.block_bytes,
            "cache smaller than one set"
        );
        assert!(self.sets().is_power_of_two(), "set count");
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024,
            ways: 2,
            block_bytes: 8,
        }
    }
}

/// Translation buffer geometry.
///
/// The 11/780 TB holds 128 entries, 2-way set associative, split into a
/// system half and a process half; the process half is flushed on context
/// switch (paper §3.4, \[3\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbConfig {
    /// Total entries. 11/780: 128.
    pub entries: u32,
    /// Associativity. 11/780: 2-way.
    pub ways: u32,
    /// Split halves (system/process)? 11/780: true.
    pub split: bool,
}

impl TbConfig {
    /// Sets per half (if split) or in total (if unified).
    pub fn sets_per_half(&self) -> u32 {
        let halves = if self.split { 2 } else { 1 };
        self.entries / (self.ways * halves)
    }

    /// Panics if the geometry is invalid.
    pub fn validate(&self) {
        assert!(self.entries.is_power_of_two(), "tb entries");
        assert!(self.ways >= 1);
        assert!(self.sets_per_half() >= 1, "tb smaller than one set");
        assert!(self.sets_per_half().is_power_of_two(), "tb set count");
    }
}

impl Default for TbConfig {
    fn default() -> Self {
        TbConfig {
            entries: 128,
            ways: 2,
            split: true,
        }
    }
}

/// Full memory-subsystem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Physical memory size in bytes (power of two). The measured machines
    /// had 8 MB (paper §2.2).
    pub phys_bytes: u32,
    /// Cache geometry.
    pub cache: CacheConfig,
    /// Translation buffer geometry.
    pub tb: TbConfig,
    /// EBOX read-stall cycles for a cache miss with an idle SBI
    /// ("in the simplest case this takes 6 cycles", §4.3).
    pub read_miss_cycles: u32,
    /// Cycles the write buffer + SBI are busy completing one write
    /// ("a write will stall if attempted less than 6 cycles after the
    /// previous write", §4.3).
    pub write_cycles: u32,
    /// Write-buffer entries. The 11/780 has one 4-byte buffer; deeper
    /// buffers (as on later VAXes) absorb write bursts — an ablation
    /// axis for the paper's CALL/RET write-stall observation.
    pub write_buffer_entries: u32,
}

impl MemConfig {
    /// Panics if any sub-configuration is invalid.
    pub fn validate(&self) {
        assert!(self.phys_bytes.is_power_of_two(), "physical memory size");
        self.cache.validate();
        self.tb.validate();
        assert!(self.read_miss_cycles >= 1);
        assert!(self.write_cycles >= 1);
        assert!(self.write_buffer_entries >= 1, "write buffer entries");
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            phys_bytes: 8 * 1024 * 1024,
            cache: CacheConfig::default(),
            tb: TbConfig::default(),
            read_miss_cycles: 6,
            write_cycles: 6,
            write_buffer_entries: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_780() {
        let c = MemConfig::default();
        c.validate();
        assert_eq!(c.cache.sets(), 512);
        assert_eq!(c.tb.sets_per_half(), 32);
        assert_eq!(c.phys_bytes, 8 << 20);
    }

    #[test]
    #[should_panic(expected = "cache size")]
    fn rejects_non_power_of_two_cache() {
        CacheConfig {
            size_bytes: 3000,
            ..CacheConfig::default()
        }
        .validate();
    }

    #[test]
    fn unified_tb_sets() {
        let tb = TbConfig {
            entries: 128,
            ways: 2,
            split: false,
        };
        assert_eq!(tb.sets_per_half(), 64);
    }
}
