//! Hardware event counters — the model's stand-in for the companion cache
//! study's separate hardware monitor.
//!
//! These events are *invisible to microcode* on the real machine (paper
//! §2.2, §4.1–4.2), so the µPC-histogram analysis must not derive them
//! from the histogram; it reads them from here, clearly labelled as a
//! second instrument.

/// Accumulated hardware events. All counts are totals over a run; the
/// analysis divides by the instruction count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HwCounters {
    /// Longword read requests issued by the instruction buffer.
    pub ib_requests: u64,
    /// Bytes actually accepted into the IB across those requests.
    pub ib_bytes_delivered: u64,
    /// I-stream cache read hits.
    pub cache_hit_i: u64,
    /// I-stream cache read misses.
    pub cache_miss_i: u64,
    /// D-stream cache read hits.
    pub cache_hit_d: u64,
    /// D-stream cache read misses.
    pub cache_miss_d: u64,
    /// D-stream writes (write-through; each goes to memory).
    pub writes: u64,
    /// Writes that found their block in the cache (cache updated).
    pub write_hits: u64,
    /// Unaligned D-stream references (each costs two physical references).
    pub unaligned_refs: u64,
    /// TB misses on D-stream (EBOX) references.
    pub tb_miss_d: u64,
    /// TB misses on I-stream (I-fetch) references.
    pub tb_miss_i: u64,
    /// TB hits (either stream).
    pub tb_hits: u64,
    /// SBI read transactions.
    pub sbi_reads: u64,
    /// SBI write transactions.
    pub sbi_writes: u64,
    /// Injected faults taken through machine-check microcode.
    pub machine_checks: u64,
}

impl HwCounters {
    /// The field names reported by [`to_pairs`](HwCounters::to_pairs), in
    /// order, as a static list (for taxonomy audits that must enumerate
    /// the instrument's counters without a value in hand).
    pub const FIELD_NAMES: &'static [&'static str] = &[
        "ib_requests",
        "ib_bytes_delivered",
        "cache_hit_i",
        "cache_miss_i",
        "cache_hit_d",
        "cache_miss_d",
        "writes",
        "write_hits",
        "unaligned_refs",
        "tb_miss_d",
        "tb_miss_i",
        "tb_hits",
        "sbi_reads",
        "sbi_writes",
        "machine_checks",
    ];

    /// Fresh, zeroed counters.
    pub fn new() -> HwCounters {
        HwCounters::default()
    }

    /// Zero everything (measurement start).
    pub fn clear(&mut self) {
        *self = HwCounters::default();
    }

    /// Merge another counter set into this one (composite workloads).
    pub fn merge(&mut self, other: &HwCounters) {
        self.ib_requests += other.ib_requests;
        self.ib_bytes_delivered += other.ib_bytes_delivered;
        self.cache_hit_i += other.cache_hit_i;
        self.cache_miss_i += other.cache_miss_i;
        self.cache_hit_d += other.cache_hit_d;
        self.cache_miss_d += other.cache_miss_d;
        self.writes += other.writes;
        self.write_hits += other.write_hits;
        self.unaligned_refs += other.unaligned_refs;
        self.tb_miss_d += other.tb_miss_d;
        self.tb_miss_i += other.tb_miss_i;
        self.tb_hits += other.tb_hits;
        self.sbi_reads += other.sbi_reads;
        self.sbi_writes += other.sbi_writes;
        self.machine_checks += other.machine_checks;
    }

    /// Counts accumulated since `base` was captured (field-wise
    /// difference). Used to compare instruments that attached after the
    /// machine already ran — e.g. a tracer attached post-warmup.
    pub fn delta_since(&self, base: &HwCounters) -> HwCounters {
        HwCounters {
            ib_requests: self.ib_requests - base.ib_requests,
            ib_bytes_delivered: self.ib_bytes_delivered - base.ib_bytes_delivered,
            cache_hit_i: self.cache_hit_i - base.cache_hit_i,
            cache_miss_i: self.cache_miss_i - base.cache_miss_i,
            cache_hit_d: self.cache_hit_d - base.cache_hit_d,
            cache_miss_d: self.cache_miss_d - base.cache_miss_d,
            writes: self.writes - base.writes,
            write_hits: self.write_hits - base.write_hits,
            unaligned_refs: self.unaligned_refs - base.unaligned_refs,
            tb_miss_d: self.tb_miss_d - base.tb_miss_d,
            tb_miss_i: self.tb_miss_i - base.tb_miss_i,
            tb_hits: self.tb_hits - base.tb_hits,
            sbi_reads: self.sbi_reads - base.sbi_reads,
            sbi_writes: self.sbi_writes - base.sbi_writes,
            machine_checks: self.machine_checks - base.machine_checks,
        }
    }

    /// Total cache read misses (both streams).
    pub fn cache_read_misses(&self) -> u64 {
        self.cache_miss_i + self.cache_miss_d
    }

    /// Total TB misses (both streams).
    pub fn tb_misses(&self) -> u64 {
        self.tb_miss_d + self.tb_miss_i
    }

    /// Name/value pairs for persistence alongside a histogram.
    pub fn to_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("ib_requests", self.ib_requests),
            ("ib_bytes_delivered", self.ib_bytes_delivered),
            ("cache_hit_i", self.cache_hit_i),
            ("cache_miss_i", self.cache_miss_i),
            ("cache_hit_d", self.cache_hit_d),
            ("cache_miss_d", self.cache_miss_d),
            ("writes", self.writes),
            ("write_hits", self.write_hits),
            ("unaligned_refs", self.unaligned_refs),
            ("tb_miss_d", self.tb_miss_d),
            ("tb_miss_i", self.tb_miss_i),
            ("tb_hits", self.tb_hits),
            ("sbi_reads", self.sbi_reads),
            ("sbi_writes", self.sbi_writes),
            ("machine_checks", self.machine_checks),
        ]
    }

    /// Rebuild from persisted pairs; unknown names are ignored, missing
    /// names stay zero.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, u64)>) -> HwCounters {
        let mut c = HwCounters::new();
        for (name, value) in pairs {
            match name {
                "ib_requests" => c.ib_requests = value,
                "ib_bytes_delivered" => c.ib_bytes_delivered = value,
                "cache_hit_i" => c.cache_hit_i = value,
                "cache_miss_i" => c.cache_miss_i = value,
                "cache_hit_d" => c.cache_hit_d = value,
                "cache_miss_d" => c.cache_miss_d = value,
                "writes" => c.writes = value,
                "write_hits" => c.write_hits = value,
                "unaligned_refs" => c.unaligned_refs = value,
                "tb_miss_d" => c.tb_miss_d = value,
                "tb_miss_i" => c.tb_miss_i = value,
                "tb_hits" => c.tb_hits = value,
                "sbi_reads" => c.sbi_reads = value,
                "sbi_writes" => c.sbi_writes = value,
                "machine_checks" => c.machine_checks = value,
                _ => {}
            }
        }
        c
    }

    /// Average bytes delivered per IB request (paper §4.1 reports ≈1.7).
    pub fn ib_bytes_per_request(&self) -> f64 {
        if self.ib_requests == 0 {
            0.0
        } else {
            self.ib_bytes_delivered as f64 / self.ib_requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = HwCounters {
            ib_requests: 10,
            cache_miss_i: 2,
            ..HwCounters::default()
        };
        let b = HwCounters {
            ib_requests: 5,
            cache_miss_d: 3,
            ..HwCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.ib_requests, 15);
        assert_eq!(a.cache_read_misses(), 5);
    }

    #[test]
    fn field_names_match_to_pairs() {
        let names: Vec<&str> = HwCounters::new()
            .to_pairs()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, HwCounters::FIELD_NAMES);
    }

    #[test]
    fn ib_bytes_per_request_handles_zero() {
        assert_eq!(HwCounters::new().ib_bytes_per_request(), 0.0);
        let c = HwCounters {
            ib_requests: 4,
            ib_bytes_delivered: 7,
            ..HwCounters::default()
        };
        assert!((c.ib_bytes_per_request() - 1.75).abs() < 1e-12);
    }
}
