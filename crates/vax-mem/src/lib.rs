//! VAX-11/780 memory subsystem model.
//!
//! Implements the right-hand half of the paper's Figure 1: the translation
//! buffer, the 8 KB write-through data cache, the 4-byte write buffer, the
//! SBI (Synchronous Backplane Interconnect) with its memory latency, and
//! VAX paging (512-byte pages over the P0/P1/S0 regions).
//!
//! # Cycle accounting
//!
//! The subsystem is passive with respect to time: every operation takes the
//! current cycle `now` and returns how many *stall* cycles the requester
//! incurs, plus (for instruction fetches) the completion time. The CPU
//! model owns the clock. Shared resources (the SBI and the write buffer)
//! are modelled as busy-until timestamps, which reproduces the paper's
//! read-stall / write-stall interactions:
//!
//! * a **read stall** is a cache read miss waiting for the SBI transfer
//!   (6 cycles in the simplest case, §4.3);
//! * a **write stall** happens when a write is attempted less than the
//!   write time after the previous write (§2.1);
//! * I-fetch misses do **not** stall the EBOX, but they occupy the SBI and
//!   can therefore delay later EBOX misses.
//!
//! # Hardware counters
//!
//! Events invisible to microcode on the real machine — IB references and
//! cache hit/miss counts — are accumulated in [`HwCounters`], the model's
//! stand-in for the separate hardware monitor of the companion cache study
//! (paper §4.1–4.2). The µPC histogram analysis never reads these.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod counters;
mod paging;
mod phys;
mod sbi;
mod subsystem;
mod tb;

pub use cache::Cache;
pub use config::{CacheConfig, MemConfig, TbConfig};
pub use counters::HwCounters;
pub use paging::{
    load_virtual, pte_location, resolve_va, AddressSpace, MapBuilder, Pte, PteLocation, Region,
    SystemMap, P1_BASE, PAGE_BYTES, PAGE_SHIFT, S0_BASE,
};
pub use phys::PhysMem;
pub use sbi::Sbi;
pub use subsystem::{
    IFetchOutcome, MemFault, MemorySubsystem, ReadOutcome, Stream, TbFill, TbMiss, Width,
    WriteOutcome, CODE_BLOCK_BYTES,
};
pub use tb::{Tb, TbHalf};
