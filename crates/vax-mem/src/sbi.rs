//! The Synchronous Backplane Interconnect: a single shared transfer
//! resource modelled as a busy-until timestamp.

/// SBI occupancy model.
///
/// One transaction at a time; a requester arriving while the bus is busy
/// waits for the remainder. This is what couples I-fetch misses, EBOX read
/// misses and write-buffer drains into each other's stall times.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sbi {
    busy_until: u64,
}

impl Sbi {
    /// An idle bus.
    pub fn new() -> Sbi {
        Sbi::default()
    }

    /// Acquire the bus at cycle `now` for `duration` cycles. Returns the
    /// number of cycles the requester waits before its transfer begins.
    pub fn acquire(&mut self, now: u64, duration: u64) -> u64 {
        let wait = self.busy_until.saturating_sub(now);
        self.busy_until = now + wait + duration;
        wait
    }

    /// When the current transaction (if any) completes.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Is the bus free at `now`?
    pub fn is_free(&self, now: u64) -> bool {
        now >= self.busy_until
    }

    /// Reset to idle (measurement boundaries).
    pub fn reset(&mut self) {
        self.busy_until = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bus_grants_immediately() {
        let mut sbi = Sbi::new();
        assert_eq!(sbi.acquire(100, 6), 0);
        assert_eq!(sbi.busy_until(), 106);
    }

    #[test]
    fn busy_bus_makes_requester_wait() {
        let mut sbi = Sbi::new();
        sbi.acquire(100, 6);
        let wait = sbi.acquire(103, 6);
        assert_eq!(wait, 3);
        assert_eq!(sbi.busy_until(), 112);
    }

    #[test]
    fn bus_frees_after_transaction() {
        let mut sbi = Sbi::new();
        sbi.acquire(0, 6);
        assert!(!sbi.is_free(5));
        assert!(sbi.is_free(6));
        assert_eq!(sbi.acquire(10, 6), 0);
    }
}
