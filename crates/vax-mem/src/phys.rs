//! Physical memory array.

/// Byte-addressable physical memory.
///
/// Addresses wrap modulo the (power-of-two) size, mirroring the fact that
/// this model's page tables are the only source of physical addresses, so
/// a wrap indicates a mis-built machine image rather than a runtime
/// condition to propagate; `debug_assert!`s catch it in test builds.
#[derive(Debug, Clone)]
pub struct PhysMem {
    bytes: Vec<u8>,
    mask: u32,
}

impl PhysMem {
    /// Memory of `size` bytes (must be a power of two), zero-filled.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two.
    pub fn new(size: u32) -> PhysMem {
        assert!(
            size.is_power_of_two(),
            "physical memory size must be a power of two"
        );
        PhysMem {
            bytes: vec![0; size as usize],
            mask: size - 1,
        }
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    #[inline]
    fn idx(&self, pa: u32) -> usize {
        debug_assert!(pa <= self.mask, "physical address {pa:#x} out of range");
        (pa & self.mask) as usize
    }

    /// Read one byte.
    #[inline]
    pub fn read_u8(&self, pa: u32) -> u8 {
        self.bytes[self.idx(pa)]
    }

    /// Read a little-endian word (may straddle, handled bytewise).
    #[inline]
    pub fn read_u16(&self, pa: u32) -> u16 {
        u16::from_le_bytes([self.read_u8(pa), self.read_u8(pa.wrapping_add(1))])
    }

    /// Read a little-endian longword: one slice load when the four bytes
    /// are contiguous, bytewise (wrapping through the address mask) only
    /// in the degenerate end-of-memory case.
    #[inline]
    pub fn read_u32(&self, pa: u32) -> u32 {
        let i = self.idx(pa);
        match self.bytes.get(i..i + 4) {
            Some(b) => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
            None => {
                u32::from(self.read_u16(pa)) | (u32::from(self.read_u16(pa.wrapping_add(2))) << 16)
            }
        }
    }

    /// Read a little-endian quadword.
    #[inline]
    pub fn read_u64(&self, pa: u32) -> u64 {
        u64::from(self.read_u32(pa)) | (u64::from(self.read_u32(pa.wrapping_add(4))) << 32)
    }

    /// Write one byte.
    #[inline]
    pub fn write_u8(&mut self, pa: u32, v: u8) {
        let i = self.idx(pa);
        self.bytes[i] = v;
    }

    /// Write a little-endian word.
    #[inline]
    pub fn write_u16(&mut self, pa: u32, v: u16) {
        let [a, b] = v.to_le_bytes();
        self.write_u8(pa, a);
        self.write_u8(pa.wrapping_add(1), b);
    }

    /// Write a little-endian longword.
    #[inline]
    pub fn write_u32(&mut self, pa: u32, v: u32) {
        self.write_u16(pa, v as u16);
        self.write_u16(pa.wrapping_add(2), (v >> 16) as u16);
    }

    /// Write a little-endian quadword.
    #[inline]
    pub fn write_u64(&mut self, pa: u32, v: u64) {
        self.write_u32(pa, v as u32);
        self.write_u32(pa.wrapping_add(4), (v >> 32) as u32);
    }

    /// Copy a slice into memory at `pa`.
    pub fn load(&mut self, pa: u32, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            self.write_u8(pa.wrapping_add(i as u32), b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let mut m = PhysMem::new(1 << 16);
        m.write_u8(0x10, 0xAB);
        assert_eq!(m.read_u8(0x10), 0xAB);
        m.write_u16(0x20, 0x1234);
        assert_eq!(m.read_u16(0x20), 0x1234);
        m.write_u32(0x30, 0xDEADBEEF);
        assert_eq!(m.read_u32(0x30), 0xDEADBEEF);
        m.write_u64(0x40, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u64(0x40), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = PhysMem::new(1 << 12);
        m.write_u32(0, 0x0403_0201);
        assert_eq!(m.read_u8(0), 1);
        assert_eq!(m.read_u8(1), 2);
        assert_eq!(m.read_u8(2), 3);
        assert_eq!(m.read_u8(3), 4);
    }

    #[test]
    fn loads_slices() {
        let mut m = PhysMem::new(1 << 12);
        m.load(0x100, &[1, 2, 3]);
        assert_eq!(m.read_u8(0x102), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_sizes() {
        let _ = PhysMem::new(1000);
    }
}
