//! VAX paging: 512-byte pages, P0/P1/S0 regions, page-table entries, and a
//! builder that lays out machine images.
//!
//! Faithful to the structure that matters for TB behaviour: the system
//! (S0) page table lives in *physical* memory at `SBR`, while per-process
//! P0/P1 page tables live in *system virtual* memory — so filling a TB
//! entry for a process page may first require a system TB fill for the
//! page table page itself (the "double miss" of the companion TB study).

use crate::PhysMem;

/// Page size in bytes (VAX: 512).
pub const PAGE_BYTES: u32 = 512;
/// log2 of the page size.
pub const PAGE_SHIFT: u32 = 9;

/// Base virtual address of the P1 region.
pub const P1_BASE: u32 = 0x4000_0000;
/// Base virtual address of the S0 (system) region.
pub const S0_BASE: u32 = 0x8000_0000;

/// A page-table entry. Bit 31 = valid; low 21 bits = page frame number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte(u32);

impl Pte {
    /// An invalid (fault-on-reference) entry.
    pub const fn invalid() -> Pte {
        Pte(0)
    }

    /// A valid entry mapping `pfn`.
    pub const fn valid_frame(pfn: u32) -> Pte {
        Pte(0x8000_0000 | (pfn & 0x001F_FFFF))
    }

    /// From the raw longword stored in memory.
    pub const fn from_raw(raw: u32) -> Pte {
        Pte(raw)
    }

    /// Raw longword representation.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Is the valid bit set?
    pub const fn is_valid(self) -> bool {
        self.0 & 0x8000_0000 != 0
    }

    /// Page frame number.
    pub const fn pfn(self) -> u32 {
        self.0 & 0x001F_FFFF
    }

    /// Physical address of the first byte of the mapped frame.
    pub const fn frame_pa(self) -> u32 {
        self.pfn() << PAGE_SHIFT
    }
}

/// The three VAX address regions used by VMS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Program region (VA bits 31:30 = 00).
    P0,
    /// Control/stack region (VA bits 31:30 = 01).
    P1,
    /// System region (VA bits 31:30 = 10).
    S0,
}

impl Region {
    /// Region of a virtual address.
    #[inline]
    pub fn of_va(va: u32) -> Region {
        match va >> 30 {
            0 => Region::P0,
            1 => Region::P1,
            _ => Region::S0,
        }
    }

    /// Page number of `va` within its region.
    #[inline]
    pub fn vpn_offset(va: u32) -> u32 {
        (va & 0x3FFF_FFFF) >> PAGE_SHIFT
    }
}

/// Per-process address-space description: base (system VA) and length (in
/// pages) of the P0 and P1 page tables.
///
/// Simplification relative to the real VAX: P1 maps upward from
/// [`P1_BASE`] rather than downward from the region top; the stack is
/// placed at the top of the mapped P1 window. This preserves what matters
/// here — process-space translations whose PTEs live in system space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressSpace {
    /// System VA of the P0 page table.
    pub p0br: u32,
    /// Number of P0 pages mapped.
    pub p0lr: u32,
    /// System VA of the P1 page table.
    pub p1br: u32,
    /// Number of P1 pages mapped.
    pub p1lr: u32,
}

impl AddressSpace {
    /// An empty address space (kernel-only execution).
    pub const fn empty() -> AddressSpace {
        AddressSpace {
            p0br: S0_BASE,
            p0lr: 0,
            p1br: S0_BASE,
            p1lr: 0,
        }
    }

    /// Highest mapped P1 address plus one — the initial user stack pointer.
    pub fn stack_top(&self) -> u32 {
        P1_BASE + self.p1lr * PAGE_BYTES
    }
}

/// System page-table description: physical base and length in pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemMap {
    /// Physical address of the S0 page table.
    pub sbr: u32,
    /// Number of S0 pages mapped.
    pub slr: u32,
}

/// Where the PTE for a virtual address lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PteLocation {
    /// PTE at a physical address (S0 translations).
    Physical(u32),
    /// PTE at a system virtual address (P0/P1 translations).
    SystemVirtual(u32),
}

/// Compute the PTE location for `va`, or `None` on a length violation.
pub fn pte_location(sys: &SystemMap, space: &AddressSpace, va: u32) -> Option<PteLocation> {
    let off = Region::vpn_offset(va);
    match Region::of_va(va) {
        Region::S0 => {
            if off >= sys.slr {
                return None;
            }
            Some(PteLocation::Physical(sys.sbr + off * 4))
        }
        Region::P0 => {
            if off >= space.p0lr {
                return None;
            }
            Some(PteLocation::SystemVirtual(space.p0br + off * 4))
        }
        Region::P1 => {
            if off >= space.p1lr {
                return None;
            }
            Some(PteLocation::SystemVirtual(space.p1br + off * 4))
        }
    }
}

/// Software page-table walk (no cache/TB effects): resolve `va` to a
/// physical address. Used when *loading* machine images, not during
/// simulation.
pub fn resolve_va(phys: &PhysMem, sys: &SystemMap, space: &AddressSpace, va: u32) -> Option<u32> {
    let loc = pte_location(sys, space, va)?;
    let pte_pa = match loc {
        PteLocation::Physical(pa) => pa,
        PteLocation::SystemVirtual(sva) => {
            // The page-table page itself is in S0; one more level.
            let sys_off = Region::vpn_offset(sva);
            if sys_off >= sys.slr {
                return None;
            }
            let outer = Pte::from_raw(phys.read_u32(sys.sbr + sys_off * 4));
            if !outer.is_valid() {
                return None;
            }
            outer.frame_pa() + (sva & (PAGE_BYTES - 1))
        }
    };
    let pte = Pte::from_raw(phys.read_u32(pte_pa));
    if !pte.is_valid() {
        return None;
    }
    Some(pte.frame_pa() + (va & (PAGE_BYTES - 1)))
}

/// Builds a machine image: allocates physical frames, maintains the system
/// page table, and creates process address spaces whose page tables live
/// in system space.
#[derive(Debug)]
pub struct MapBuilder {
    sbr: u32,
    spt_capacity: u32,
    slr: u32,
    next_frame: u32,
    max_frames: u32,
    next_sys_page: u32,
}

impl MapBuilder {
    /// Start building. The system page table is placed at physical address
    /// 0 with room for `spt_capacity` entries; frames are allocated
    /// immediately after it.
    ///
    /// # Panics
    ///
    /// Panics if the capacity exceeds physical memory.
    pub fn new(phys: &PhysMem, spt_capacity: u32) -> MapBuilder {
        let spt_bytes = spt_capacity * 4;
        let first_frame = spt_bytes.div_ceil(PAGE_BYTES);
        let max_frames = phys.size() / PAGE_BYTES;
        assert!(first_frame < max_frames, "system page table too large");
        MapBuilder {
            sbr: 0,
            spt_capacity,
            slr: 0,
            next_frame: first_frame,
            max_frames,
            next_sys_page: 0,
        }
    }

    /// Allocate `n` physical frames; returns the first PFN.
    ///
    /// # Panics
    ///
    /// Panics if physical memory is exhausted.
    pub fn alloc_frames(&mut self, n: u32) -> u32 {
        assert!(
            self.next_frame + n <= self.max_frames,
            "out of physical memory ({} frames)",
            self.max_frames
        );
        let first = self.next_frame;
        self.next_frame += n;
        first
    }

    /// Map `n` fresh pages into system space; returns the base system VA.
    ///
    /// # Panics
    ///
    /// Panics if the system page table fills up or memory is exhausted.
    pub fn map_system(&mut self, phys: &mut PhysMem, n: u32) -> u32 {
        assert!(
            self.next_sys_page + n <= self.spt_capacity,
            "system page table full"
        );
        let base_va = S0_BASE + self.next_sys_page * PAGE_BYTES;
        for i in 0..n {
            let pfn = self.alloc_frames(1);
            let idx = self.next_sys_page + i;
            phys.write_u32(self.sbr + idx * 4, Pte::valid_frame(pfn).raw());
        }
        self.next_sys_page += n;
        self.slr = self.slr.max(self.next_sys_page);
        base_va
    }

    /// Create a process address space with `p0_pages` of program region
    /// and `p1_pages` of stack region, all resident.
    ///
    /// The process page tables are themselves mapped into system space.
    pub fn create_process(
        &mut self,
        phys: &mut PhysMem,
        p0_pages: u32,
        p1_pages: u32,
    ) -> AddressSpace {
        let p0_table_pages = (p0_pages * 4).div_ceil(PAGE_BYTES).max(1);
        let p1_table_pages = (p1_pages * 4).div_ceil(PAGE_BYTES).max(1);
        let p0br = self.map_system(phys, p0_table_pages);
        let p1br = self.map_system(phys, p1_table_pages);
        let sys = self.system_map();
        let space = AddressSpace {
            p0br,
            p0lr: p0_pages,
            p1br,
            p1lr: p1_pages,
        };
        for i in 0..p0_pages {
            let pfn = self.alloc_frames(1);
            let pte_va = p0br + i * 4;
            let pa = resolve_va(phys, &sys, &AddressSpace::empty(), pte_va)
                .expect("page table page just mapped");
            phys.write_u32(pa, Pte::valid_frame(pfn).raw());
        }
        for i in 0..p1_pages {
            let pfn = self.alloc_frames(1);
            let pte_va = p1br + i * 4;
            let pa = resolve_va(phys, &sys, &AddressSpace::empty(), pte_va)
                .expect("page table page just mapped");
            phys.write_u32(pa, Pte::valid_frame(pfn).raw());
        }
        space
    }

    /// The system map as built so far.
    pub fn system_map(&self) -> SystemMap {
        SystemMap {
            sbr: self.sbr,
            slr: self.slr,
        }
    }

    /// Frames allocated so far (diagnostics).
    pub fn frames_used(&self) -> u32 {
        self.next_frame
    }
}

/// Copy `data` into virtual memory at `va` via software walk.
///
/// # Panics
///
/// Panics if any page in the range is unmapped.
pub fn load_virtual(
    phys: &mut PhysMem,
    sys: &SystemMap,
    space: &AddressSpace,
    va: u32,
    data: &[u8],
) {
    for (i, &b) in data.iter().enumerate() {
        let va = va + i as u32;
        let pa = resolve_va(phys, sys, space, va)
            .unwrap_or_else(|| panic!("load_virtual: {va:#010x} unmapped"));
        phys.write_u8(pa, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pte_bit_layout() {
        let p = Pte::valid_frame(0x1234);
        assert!(p.is_valid());
        assert_eq!(p.pfn(), 0x1234);
        assert_eq!(p.frame_pa(), 0x1234 << 9);
        assert!(!Pte::invalid().is_valid());
    }

    #[test]
    fn region_classification() {
        assert_eq!(Region::of_va(0x0000_1000), Region::P0);
        assert_eq!(Region::of_va(0x4000_1000), Region::P1);
        assert_eq!(Region::of_va(0x8000_1000), Region::S0);
        assert_eq!(Region::of_va(0xC000_1000), Region::S0);
    }

    #[test]
    fn system_mapping_resolves() {
        let mut phys = PhysMem::new(1 << 20);
        let mut mb = MapBuilder::new(&phys, 1024);
        let va = mb.map_system(&mut phys, 4);
        let sys = mb.system_map();
        let space = AddressSpace::empty();
        let pa0 = resolve_va(&phys, &sys, &space, va).unwrap();
        let pa1 = resolve_va(&phys, &sys, &space, va + PAGE_BYTES).unwrap();
        assert_ne!(pa0, pa1);
        assert!(resolve_va(&phys, &sys, &space, va + 4 * PAGE_BYTES).is_none());
    }

    #[test]
    fn process_space_resolves_and_isolates() {
        let mut phys = PhysMem::new(1 << 22);
        let mut mb = MapBuilder::new(&phys, 2048);
        let a = mb.create_process(&mut phys, 8, 2);
        let b = mb.create_process(&mut phys, 8, 2);
        let sys = mb.system_map();
        let pa_a = resolve_va(&phys, &sys, &a, 0x100).unwrap();
        let pa_b = resolve_va(&phys, &sys, &b, 0x100).unwrap();
        assert_ne!(pa_a, pa_b, "processes get distinct frames");
        // Stack top is page-aligned above P1 base.
        assert_eq!(a.stack_top(), P1_BASE + 2 * PAGE_BYTES);
        // P1 resolves.
        assert!(resolve_va(&phys, &sys, &a, P1_BASE).is_some());
        // Beyond length violates.
        assert!(resolve_va(&phys, &sys, &a, 8 * PAGE_BYTES).is_none());
    }

    #[test]
    fn load_virtual_round_trips() {
        let mut phys = PhysMem::new(1 << 22);
        let mut mb = MapBuilder::new(&phys, 2048);
        let space = mb.create_process(&mut phys, 4, 1);
        let sys = mb.system_map();
        let data: Vec<u8> = (0..=255).collect();
        // Straddles a page boundary on purpose.
        load_virtual(&mut phys, &sys, &space, 400, &data);
        for (i, &b) in data.iter().enumerate() {
            let pa = resolve_va(&phys, &sys, &space, 400 + i as u32).unwrap();
            assert_eq!(phys.read_u8(pa), b);
        }
    }

    #[test]
    fn pte_location_kinds() {
        let mut phys = PhysMem::new(1 << 22);
        let mut mb = MapBuilder::new(&phys, 2048);
        let space = mb.create_process(&mut phys, 4, 1);
        let sys = mb.system_map();
        assert!(matches!(
            pte_location(&sys, &space, 0x200),
            Some(PteLocation::SystemVirtual(_))
        ));
        assert!(matches!(
            pte_location(&sys, &space, S0_BASE),
            Some(PteLocation::Physical(_))
        ));
        assert_eq!(pte_location(&sys, &space, 4 * PAGE_BYTES), None);
    }
}
