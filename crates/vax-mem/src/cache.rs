//! The 11/780 data cache: presence-only model.
//!
//! Data always lives in [`crate::PhysMem`] (the cache is write-through, so
//! memory is never stale); the cache tracks only which blocks are present,
//! which is all the timing model needs.

use crate::CacheConfig;

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u32,
}

/// Physically indexed, physically tagged set-associative cache with random
/// replacement (as on the 11/780) and no-write-allocate policy.
#[derive(Debug, Clone)]
pub struct Cache {
    lines: Vec<Line>,
    sets: u32,
    ways: u32,
    block_shift: u32,
    set_mask: u32,
    /// Simple xorshift state for random replacement; deterministic.
    rng: u32,
}

impl Cache {
    /// A cache of the given geometry, initially empty.
    pub fn new(config: CacheConfig) -> Cache {
        config.validate();
        let sets = config.sets();
        Cache {
            lines: vec![Line::default(); (sets * config.ways) as usize],
            sets,
            ways: config.ways,
            block_shift: config.block_bytes.trailing_zeros(),
            set_mask: sets - 1,
            rng: 0x2545_F491,
        }
    }

    #[inline]
    fn set_and_tag(&self, pa: u32) -> (u32, u32) {
        let block = pa >> self.block_shift;
        (block & self.set_mask, block >> self.sets.trailing_zeros())
    }

    #[inline]
    fn set_lines(&self, set: u32) -> std::ops::Range<usize> {
        let start = (set * self.ways) as usize;
        start..start + self.ways as usize
    }

    /// Is the block containing `pa` present?
    #[inline]
    pub fn probe(&self, pa: u32) -> bool {
        let (set, tag) = self.set_and_tag(pa);
        self.lines[self.set_lines(set)]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Bring the block containing `pa` in (random victim if the set is
    /// full). No-op if already present.
    #[inline]
    pub fn fill(&mut self, pa: u32) {
        let (set, tag) = self.set_and_tag(pa);
        let range = self.set_lines(set);
        if self.lines[range.clone()]
            .iter()
            .any(|l| l.valid && l.tag == tag)
        {
            return;
        }
        // Prefer an invalid way; otherwise evict pseudo-randomly.
        let victim = match self.lines[range.clone()].iter().position(|l| !l.valid) {
            Some(i) => i,
            None => {
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 17;
                self.rng ^= self.rng << 5;
                (self.rng % self.ways) as usize
            }
        };
        let idx = range.start + victim;
        self.lines[idx] = Line { valid: true, tag };
    }

    /// A write touches the cache only to update a hit; on a miss the cache
    /// is *not* updated (paper §2.1). Returns whether the write hit.
    pub fn write_probe(&mut self, pa: u32) -> bool {
        self.probe(pa)
    }

    /// Invalidate everything (power-up or explicit flush).
    pub fn invalidate_all(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
        }
    }

    /// Number of valid lines (diagnostics).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 8-byte blocks = 64 bytes.
        Cache::new(CacheConfig {
            size_bytes: 64,
            ways: 2,
            block_bytes: 8,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(!c.probe(0x100));
        c.fill(0x100);
        assert!(c.probe(0x100));
        assert!(c.probe(0x107), "same 8-byte block");
        assert!(!c.probe(0x108), "next block");
    }

    #[test]
    fn two_way_associativity_holds_two_conflicting_blocks() {
        let mut c = small();
        // Same set: addresses 32 bytes apart (4 sets * 8 bytes).
        c.fill(0x000);
        c.fill(0x020);
        assert!(c.probe(0x000));
        assert!(c.probe(0x020));
        // A third conflicting block evicts one of them.
        c.fill(0x040);
        assert!(c.probe(0x040));
        let survivors = [0x000, 0x020].iter().filter(|&&pa| c.probe(pa)).count();
        assert_eq!(survivors, 1);
    }

    #[test]
    fn write_miss_does_not_allocate() {
        let mut c = small();
        assert!(!c.write_probe(0x200));
        assert!(!c.probe(0x200), "no-write-allocate");
    }

    #[test]
    fn invalidate_all_empties() {
        let mut c = small();
        c.fill(0x0);
        c.fill(0x8);
        assert_eq!(c.valid_lines(), 2);
        c.invalidate_all();
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn fill_is_idempotent() {
        let mut c = small();
        c.fill(0x10);
        c.fill(0x10);
        assert_eq!(c.valid_lines(), 1);
    }
}
