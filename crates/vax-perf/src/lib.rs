//! Reproducible benchmark harness for the simulator itself.
//!
//! The paper instruments a real machine; we instrument the *simulator*:
//! each of the five workloads is run under identical machine
//! configurations once per selected interpreter [`Tier`] — the naive
//! byte-by-byte loop ([`CpuConfig::naive_loop`]), the predecode-cache
//! fast loop ([`CpuConfig::fast_loop`]), and the block-compiled tier on
//! top of it (the default) — and the harness reports per-workload
//! sim-MIPS (millions of simulated instructions per host second), wall
//! time, and the pairwise speedups.
//!
//! Speed without fidelity is worthless, so the harness also *proves*
//! the tiers are the same machine:
//!
//! * the timing runs must produce **bit-identical** µPC histograms and
//!   hardware counters (and the same simulated cycle count) across all
//!   selected tiers;
//! * per-tier smaller traced runs — the µPC board and the event tracer
//!   tee'd off one [`upc_monitor::CycleSink`] feed — must produce
//!   **bit-identical** event streams, and each run must pass the
//!   three-way trace/histogram/counter reconciliation on its own;
//! * each accelerated tier must actually engage (predecode hits for
//!   the fast loop, replayed block instructions for the block tier),
//!   so the equality can never be vacuous.
//!
//! Any discrepancy is recorded as a divergence and fails the bench
//! (`vax780 bench` exits nonzero), making this a trajectory gate: an
//! accelerated loop is only allowed to be fast, never different.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use upc_monitor::{Command, Histogram, HistogramBoard, NullSink};
use vax780_core::measure;
use vax_cpu::CpuConfig;
use vax_mem::{HwCounters, MemConfig};
use vax_trace::Tracer;
use vax_workloads::{build_machine_with_config, profile, WorkloadKind};

/// One interpreter tier of the simulator's host-side execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The byte-by-byte reference loop ([`CpuConfig::naive_loop`]).
    Naive,
    /// The predecode-cache fast loop ([`CpuConfig::fast_loop`]).
    Fast,
    /// The block-compiled tier ([`CpuConfig::default`]).
    Block,
}

impl Tier {
    /// All tiers, slowest first — also the reference order: the first
    /// *selected* tier is the equivalence baseline for the others.
    pub const ALL: [Tier; 3] = [Tier::Naive, Tier::Fast, Tier::Block];

    /// CLI / JSON name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Naive => "naive",
            Tier::Fast => "fast",
            Tier::Block => "block",
        }
    }

    /// Parse a CLI tier name.
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "naive" => Some(Tier::Naive),
            "fast" => Some(Tier::Fast),
            "block" => Some(Tier::Block),
            _ => None,
        }
    }

    /// The CPU configuration this tier benchmarks.
    pub fn config(self) -> CpuConfig {
        match self {
            Tier::Naive => CpuConfig::naive_loop(),
            Tier::Fast => CpuConfig::fast_loop(),
            Tier::Block => CpuConfig::default(),
        }
    }

    fn index(self) -> usize {
        match self {
            Tier::Naive => 0,
            Tier::Fast => 1,
            Tier::Block => 2,
        }
    }
}

/// Which tiers a bench run times and cross-checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierSet([bool; 3]);

impl TierSet {
    /// Every tier (the pinned CI configuration).
    pub fn all() -> TierSet {
        TierSet([true; 3])
    }

    /// No tiers; populate with [`TierSet::insert`].
    pub fn empty() -> TierSet {
        TierSet([false; 3])
    }

    /// Add a tier to the set.
    pub fn insert(&mut self, tier: Tier) {
        self.0[tier.index()] = true;
    }

    /// Is `tier` selected?
    pub fn contains(self, tier: Tier) -> bool {
        self.0[tier.index()]
    }

    /// Selected tiers, slowest first.
    pub fn iter(self) -> impl Iterator<Item = Tier> {
        Tier::ALL.into_iter().filter(move |t| self.contains(*t))
    }

    /// Number of selected tiers.
    pub fn len(self) -> usize {
        self.0.iter().filter(|b| **b).count()
    }

    /// True when nothing is selected.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// The equivalence baseline: the slowest selected tier (the naive
    /// loop whenever it is selected).
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn reference(self) -> Tier {
        self.iter().next().expect("tier set must not be empty")
    }
}

impl Default for TierSet {
    fn default() -> TierSet {
        TierSet::all()
    }
}

/// What to run. The defaults are the pinned CI configuration — change
/// them only through the CLI flags, so `BENCH_*.json` files stay
/// comparable across commits.
#[derive(Debug, Clone, Copy)]
pub struct BenchSpec {
    /// Instructions measured per workload in each timing run.
    pub timing_instructions: u64,
    /// Instructions per workload in each traced equivalence run
    /// (smaller: the tracer records every machine event).
    pub trace_instructions: u64,
    /// Warm-up instructions before each measured region.
    pub warmup: u64,
    /// Timing repetitions per tier; the *minimum* wall time is reported.
    /// The minimum, not the mean: simulated work is deterministic, so
    /// the fastest repetition is the one least disturbed by host noise.
    pub repeat: u32,
    /// Which tiers to time and cross-check.
    pub tiers: TierSet,
}

impl Default for BenchSpec {
    fn default() -> BenchSpec {
        BenchSpec {
            timing_instructions: 2_000_000,
            trace_instructions: 20_000,
            warmup: 30_000,
            repeat: 3,
            tiers: TierSet::all(),
        }
    }
}

/// How much of a run the block tier actually carried: the raw
/// [`BlockStats`](vax_cpu::BlockStats) counters next to the instruction
/// total they grew over, so "replayed share" is well defined.
#[derive(Debug, Clone, Copy)]
pub struct BlockEngagement {
    /// Raw block-tier counters, cumulative over the machine's lifetime
    /// (warm-up plus the measured region — the counters cannot be
    /// reset mid-run without perturbing the tier's hot path).
    pub stats: vax_cpu::BlockStats,
    /// Instructions the machine executed while those counters grew.
    pub executed: u64,
}

impl BlockEngagement {
    /// Fraction of executed instructions retired from inside blocks.
    pub fn replayed_share(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.stats.replayed as f64 / self.executed as f64
        }
    }
}

/// One workload's timing result.
#[derive(Debug, Clone)]
pub struct WorkloadBench {
    /// Workload name.
    pub name: &'static str,
    /// Instructions measured (identical in every tier by construction).
    pub instructions: u64,
    /// Simulated cycles of the measured region.
    pub cycles: u64,
    /// Block-tier engagement, when the block tier was selected: how
    /// often the tier replayed blocks and with what run lengths. This
    /// is the dynamic side of vax-lint's static run-length prediction.
    pub block: Option<BlockEngagement>,
    walls: [Option<Duration>; 3],
}

impl WorkloadBench {
    /// Host wall time of `tier`'s measured region, if it was selected.
    pub fn wall(&self, tier: Tier) -> Option<Duration> {
        self.walls[tier.index()]
    }

    /// Simulated MIPS of `tier`, if it was selected.
    pub fn mips_of(&self, tier: Tier) -> Option<f64> {
        Some(mips(self.instructions, self.wall(tier)?))
    }

    /// Wall-time ratio `base` / `over` — "how much faster is `over`
    /// than `base`" — if both were selected.
    pub fn speedup(&self, base: Tier, over: Tier) -> Option<f64> {
        Some(self.wall(base)?.as_secs_f64() / self.wall(over)?.as_secs_f64().max(1e-9))
    }
}

/// The full benchmark outcome.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The spec that produced this report.
    pub spec: BenchSpec,
    /// Per-workload timing, in [`WorkloadKind::ALL`] order.
    pub workloads: Vec<WorkloadBench>,
    /// Human-readable descriptions of every equivalence violation.
    /// Empty means every selected tier is bit-identical to the
    /// reference tier (and actually engaged its machinery).
    pub divergences: Vec<String>,
}

impl BenchReport {
    /// Did every equivalence check pass?
    pub fn is_equivalent(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Total instructions across all timed workloads.
    pub fn total_instructions(&self) -> u64 {
        self.workloads.iter().map(|w| w.instructions).sum()
    }

    /// Summed wall time of `tier`, if it was selected.
    pub fn wall(&self, tier: Tier) -> Option<Duration> {
        self.workloads.iter().map(|w| w.wall(tier)).sum()
    }

    /// Composite sim-MIPS of `tier`, if it was selected.
    pub fn mips_of(&self, tier: Tier) -> Option<f64> {
        Some(mips(self.total_instructions(), self.wall(tier)?))
    }

    /// Composite wall-time ratio `base` / `over`, if both ran.
    pub fn speedup(&self, base: Tier, over: Tier) -> Option<f64> {
        Some(self.wall(base)?.as_secs_f64() / self.wall(over)?.as_secs_f64().max(1e-9))
    }

    /// The pairwise speedups shown for a tier set, as `(json_key,
    /// base, over)` triples: each accelerated tier over the naive
    /// loop, plus block-over-fast when both accelerated tiers ran.
    fn speedup_keys(&self) -> Vec<(&'static str, Tier, Tier)> {
        let t = self.spec.tiers;
        let mut keys = Vec::new();
        if t.contains(Tier::Naive) && t.contains(Tier::Fast) {
            keys.push(("fast_speedup", Tier::Naive, Tier::Fast));
        }
        if t.contains(Tier::Naive) && t.contains(Tier::Block) {
            keys.push(("block_speedup", Tier::Naive, Tier::Block));
        }
        if t.contains(Tier::Fast) && t.contains(Tier::Block) {
            keys.push(("block_over_fast", Tier::Fast, Tier::Block));
        }
        keys
    }

    /// The report as a JSON document (the `BENCH_*.json` schema: see
    /// DESIGN.md "Host performance").
    pub fn to_json(&self) -> String {
        let tier_names: Vec<String> = self
            .spec
            .tiers
            .iter()
            .map(|t| format!("\"{}\"", t.name()))
            .collect();
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"host\": {},\n",
            vax_trace::HostStamp::collect().to_json()
        ));
        s.push_str(&format!(
            "  \"spec\": {{\"timing_instructions\": {}, \"trace_instructions\": {}, \
             \"warmup\": {}, \"repeat\": {}, \"tiers\": [{}]}},\n",
            self.spec.timing_instructions,
            self.spec.trace_instructions,
            self.spec.warmup,
            self.spec.repeat,
            tier_names.join(", ")
        ));
        s.push_str(&format!("  \"equivalent\": {},\n", self.is_equivalent()));
        s.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"instructions\": {}, \"cycles\": {}",
                w.name, w.instructions, w.cycles
            ));
            for tier in self.spec.tiers.iter() {
                s.push_str(&format!(
                    ", \"{}_wall_s\": {:.4}, \"{}_mips\": {:.3}",
                    tier.name(),
                    w.wall(tier).unwrap_or_default().as_secs_f64(),
                    tier.name(),
                    w.mips_of(tier).unwrap_or_default()
                ));
            }
            for (key, base, over) in self.speedup_keys() {
                s.push_str(&format!(
                    ", \"{key}\": {:.3}",
                    w.speedup(base, over).unwrap_or_default()
                ));
            }
            if let Some(b) = &w.block {
                let hist: Vec<String> = b.stats.run_hist.iter().map(u64::to_string).collect();
                s.push_str(&format!(
                    ", \"block\": {{\"replayed\": {}, \"replayed_share\": {:.4}, \
                     \"mean_run_len\": {:.3}, \"run_hist\": [{}]}}",
                    b.stats.replayed,
                    b.replayed_share(),
                    b.stats.mean_run_len(),
                    hist.join(", ")
                ));
            }
            s.push_str(&format!(
                "}}{}\n",
                if i + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"composite\": {{\"instructions\": {}",
            self.total_instructions()
        ));
        for tier in self.spec.tiers.iter() {
            s.push_str(&format!(
                ", \"{}_wall_s\": {:.4}, \"{}_mips\": {:.3}",
                tier.name(),
                self.wall(tier).unwrap_or_default().as_secs_f64(),
                tier.name(),
                self.mips_of(tier).unwrap_or_default()
            ));
        }
        for (key, base, over) in self.speedup_keys() {
            s.push_str(&format!(
                ", \"{key}\": {:.3}",
                self.speedup(base, over).unwrap_or_default()
            ));
        }
        s.push_str("},\n");
        s.push_str("  \"divergences\": [");
        for (i, d) in self.divergences.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\"{}\"",
                d.replace('\\', "\\\\").replace('"', "\\\"")
            ));
        }
        s.push_str("]\n}\n");
        s
    }

    /// A fixed-width table for terminal output.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("{:<20} {:>12}", "workload", "instructions"));
        for tier in self.spec.tiers.iter() {
            s.push_str(&format!(
                " {:>9} {:>10}",
                format!("{} s", tier.name()),
                format!("{} MIPS", tier.name())
            ));
        }
        for (key, _, _) in self.speedup_keys() {
            s.push_str(&format!(" {:>15}", key));
        }
        s.push('\n');
        let mut row = |name: &str, instructions: u64, w: Option<&WorkloadBench>| {
            s.push_str(&format!("{:<20} {:>12}", name, instructions));
            for tier in self.spec.tiers.iter() {
                let (wall, mips_v) = match w {
                    Some(w) => (w.wall(tier), w.mips_of(tier)),
                    None => (self.wall(tier), self.mips_of(tier)),
                };
                s.push_str(&format!(
                    " {:>9.3} {:>10.2}",
                    wall.unwrap_or_default().as_secs_f64(),
                    mips_v.unwrap_or_default()
                ));
            }
            for (_, base, over) in self.speedup_keys() {
                let v = match w {
                    Some(w) => w.speedup(base, over),
                    None => self.speedup(base, over),
                };
                s.push_str(&format!(" {:>14.2}x", v.unwrap_or_default()));
            }
            s.push('\n');
        };
        for w in &self.workloads {
            row(w.name, w.instructions, Some(w));
        }
        row("composite", self.total_instructions(), None);
        s
    }
}

fn mips(instructions: u64, wall: Duration) -> f64 {
    instructions as f64 / wall.as_secs_f64().max(1e-9) / 1e6
}

/// One timed measurement: build, warm up (untimed), measure (timed).
/// Returns the measurement plus the wall time of the measured region
/// only, so machine construction and warm-up don't pollute sim-MIPS.
fn timed_run(
    kind: WorkloadKind,
    tier: Tier,
    spec: &BenchSpec,
) -> (
    vax780_core::MeasuredWorkload,
    Duration,
    vax_cpu::PredecodeStats,
    vax_cpu::BlockStats,
) {
    let mut machine =
        build_machine_with_config(&profile(kind), tier.config(), MemConfig::default());
    let mut null = NullSink;
    machine
        .run_instructions(spec.warmup, &mut null)
        .expect("warmup runs");
    let start = Instant::now();
    let measured = measure(&mut machine, spec.timing_instructions);
    let wall = start.elapsed();
    let predecode = machine.cpu.predecode_stats();
    let blocks = machine.cpu.block_stats();
    (measured, wall, predecode, blocks)
}

/// Everything a traced equivalence run observes.
struct TracedRun {
    tracer: Tracer,
    histogram: Histogram,
    hw: HwCounters,
    reconciles: bool,
}

/// Run `kind` with both instruments attached from boot (the µPC board
/// and the event tracer tee'd off one sink feed), as `vax780 trace`
/// does, and reconcile the instruments.
fn traced_run(kind: WorkloadKind, tier: Tier, spec: &BenchSpec) -> TracedRun {
    // Capacity for every event: equivalence on a ring that dropped
    // events would still hold (both runs drop identically) but a full
    // stream makes the check maximally strict.
    let capacity = (spec.trace_instructions as usize)
        .saturating_mul(96)
        .clamp(1 << 16, 1 << 23);
    let mut machine =
        build_machine_with_config(&profile(kind), tier.config(), MemConfig::default());
    let hw_base = *machine.cpu.mem().counters();
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    let mut tracer = Tracer::with_capacity(capacity);
    {
        let mut tee = (&mut board, &mut tracer);
        machine
            .run_phase("warmup", spec.warmup.min(5_000), &mut tee)
            .expect("workload runs");
        machine
            .run_phase("measure", spec.trace_instructions, &mut tee)
            .expect("workload runs");
    }
    board.execute(Command::Stop);
    let histogram = board.snapshot();
    let hw = machine.cpu.mem().counters().delta_since(&hw_base);
    let reconciles = vax_analysis::reconcile::reconcile(
        &tracer,
        &histogram,
        &hw,
        machine.cpu.pending_ib_tb_miss(),
    )
    .is_ok();
    TracedRun {
        tracer,
        histogram,
        hw,
        reconciles,
    }
}

/// Compare two tiers' traced runs event-for-event and record every
/// difference into `divergences`.
fn check_traces(
    name: &str,
    tier: &str,
    reference: &TracedRun,
    run: &TracedRun,
    divergences: &mut Vec<String>,
) {
    if !run.reconciles {
        divergences.push(format!(
            "{name}: {tier} tier fails instrument reconciliation"
        ));
    }
    if reference.histogram != run.histogram {
        divergences.push(format!("{name}: {tier} traced histograms differ"));
    }
    if reference.hw != run.hw {
        divergences.push(format!("{name}: {tier} traced hardware counters differ"));
    }
    if reference.tracer.counters() != run.tracer.counters() {
        divergences.push(format!("{name}: {tier} trace counters differ"));
    }
    if reference.tracer.now() != run.tracer.now() {
        divergences.push(format!(
            "{name}: {tier} derived trace clocks differ ({} vs {})",
            reference.tracer.now(),
            run.tracer.now()
        ));
    }
    if reference.tracer.dropped() != run.tracer.dropped()
        || reference.tracer.len() != run.tracer.len()
        || !reference.tracer.events().eq(run.tracer.events())
    {
        divergences.push(format!("{name}: {tier} trace event streams differ"));
    }
}

/// Run the full benchmark: per-workload per-tier timing with
/// bit-identity checks against the slowest selected tier, plus
/// traced-run stream equivalence and three-way reconciliation per tier.
pub fn run_bench(spec: &BenchSpec) -> BenchReport {
    run_bench_with_progress(spec, |_| {})
}

/// [`run_bench`] with a progress callback (one line per completed
/// stage, for interactive use).
///
/// # Panics
///
/// Panics if `spec.tiers` is empty.
pub fn run_bench_with_progress(spec: &BenchSpec, progress: impl Fn(&str)) -> BenchReport {
    let reference = spec.tiers.reference();
    let mut workloads = Vec::new();
    let mut divergences = Vec::new();
    for kind in WorkloadKind::ALL {
        let name = kind.name();
        // Interleave the repetitions (naive, fast, block, naive, …) so
        // a burst of host load penalizes every tier alike, and keep
        // each tier's best time.
        let mut best: [Option<(vax780_core::MeasuredWorkload, Duration)>; 3] = [None, None, None];
        let mut block_engagement = None;
        for rep in 0..spec.repeat.max(1) {
            for tier in spec.tiers.iter() {
                let (m, w, predecode, blocks) = timed_run(kind, tier, spec);
                if rep == 0 && tier == Tier::Block {
                    // Deterministic simulation: every repetition sees
                    // identical counters, so the first one suffices.
                    block_engagement = Some(BlockEngagement {
                        stats: blocks,
                        executed: spec.warmup + m.instructions,
                    });
                }
                if rep == 0 {
                    // Engagement: the measured equality below is only
                    // meaningful if each accelerated tier actually ran
                    // its machinery.
                    if tier == Tier::Fast && predecode.hits == 0 {
                        divergences
                            .push(format!("{name}: fast loop never hit the predecode cache"));
                    }
                    if tier == Tier::Block && blocks.replayed == 0 {
                        divergences.push(format!("{name}: block tier never entered a block"));
                    }
                    progress(&format!(
                        "{name}: {} run, {:.2}s (predecode {} hits, block {} replayed)",
                        tier.name(),
                        w.as_secs_f64(),
                        predecode.hits,
                        blocks.replayed
                    ));
                }
                let slot = &mut best[tier.index()];
                if slot.as_ref().is_none_or(|(_, old)| w < *old) {
                    *slot = Some((m, w));
                }
            }
        }
        let (ref_measured, _) = best[reference.index()]
            .as_ref()
            .expect("reference tier was timed");
        for tier in spec.tiers.iter().filter(|t| *t != reference) {
            let (m, _) = best[tier.index()].as_ref().expect("tier was timed");
            if ref_measured.histogram != m.histogram {
                divergences.push(format!("{name}: {} timed histograms differ", tier.name()));
            }
            if ref_measured.counters != m.counters {
                divergences.push(format!(
                    "{name}: {} timed hardware counters differ",
                    tier.name()
                ));
            }
            if ref_measured.cycles != m.cycles || ref_measured.instructions != m.instructions {
                divergences.push(format!(
                    "{name}: {} simulated progress differs ({} insns/{} cycles vs {} insns/{} cycles)",
                    tier.name(),
                    ref_measured.instructions,
                    ref_measured.cycles,
                    m.instructions,
                    m.cycles
                ));
            }
        }
        let ref_traced = traced_run(kind, reference, spec);
        if !ref_traced.reconciles {
            divergences.push(format!(
                "{name}: {} tier fails instrument reconciliation",
                reference.name()
            ));
        }
        for tier in spec.tiers.iter().filter(|t| *t != reference) {
            let traced = traced_run(kind, tier, spec);
            check_traces(name, tier.name(), &ref_traced, &traced, &mut divergences);
        }
        progress(&format!("{name}: traces compared"));
        let (instructions, cycles) = (ref_measured.instructions, ref_measured.cycles);
        let mut walls = [None; 3];
        for tier in spec.tiers.iter() {
            walls[tier.index()] = best[tier.index()].as_ref().map(|(_, w)| *w);
        }
        workloads.push(WorkloadBench {
            name,
            instructions,
            cycles,
            block: block_engagement,
            walls,
        });
    }
    BenchReport {
        spec: *spec,
        workloads,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature three-tier bench must come back equivalent — this is
    /// the same machinery the CI gate runs at full size.
    #[test]
    fn mini_bench_is_equivalent() {
        let spec = BenchSpec {
            timing_instructions: 3_000,
            trace_instructions: 2_000,
            warmup: 1_000,
            repeat: 1,
            tiers: TierSet::all(),
        };
        let report = run_bench(&spec);
        assert!(
            report.is_equivalent(),
            "divergences: {:?}",
            report.divergences
        );
        assert_eq!(report.workloads.len(), 5);
        let json = report.to_json();
        assert!(json.contains("\"equivalent\": true"));
        assert!(json.contains("\"fast_speedup\""));
        assert!(json.contains("\"block_speedup\""));
        assert!(json.contains("\"block_over_fast\""));
        assert!(json.contains("\"tiers\": [\"naive\", \"fast\", \"block\"]"));
        assert!(
            json.contains("\"block\": {\"replayed\": "),
            "block engagement in JSON"
        );
        assert!(json.contains("\"run_hist\": ["));
        for w in &report.workloads {
            let b = w.block.expect("block tier selected => engagement recorded");
            assert!(b.stats.replayed > 0, "{}: block tier engaged", w.name);
            assert!(b.replayed_share() > 0.0 && b.replayed_share() <= 1.0);
        }
    }

    /// A single-tier spec degrades gracefully: no speedup columns, the
    /// selected tier is its own reference, still equivalent.
    #[test]
    fn single_tier_bench_reports_no_speedups() {
        let mut tiers = TierSet::empty();
        tiers.insert(Tier::Block);
        let spec = BenchSpec {
            timing_instructions: 2_000,
            trace_instructions: 1_000,
            warmup: 500,
            repeat: 1,
            tiers,
        };
        let report = run_bench(&spec);
        assert!(
            report.is_equivalent(),
            "divergences: {:?}",
            report.divergences
        );
        let json = report.to_json();
        assert!(json.contains("\"tiers\": [\"block\"]"));
        assert!(!json.contains("speedup"));
        assert!(report.speedup(Tier::Naive, Tier::Block).is_none());
    }

    #[test]
    fn tier_set_reference_prefers_slowest() {
        assert_eq!(TierSet::all().reference(), Tier::Naive);
        let mut t = TierSet::empty();
        t.insert(Tier::Block);
        t.insert(Tier::Fast);
        assert_eq!(t.reference(), Tier::Fast);
        assert_eq!(t.len(), 2);
        assert!(!t.contains(Tier::Naive));
        assert_eq!(Tier::parse("block"), Some(Tier::Block));
        assert_eq!(Tier::parse("warp"), None);
    }
}
