//! Reproducible benchmark harness for the simulator itself.
//!
//! The paper instruments a real machine; we instrument the *simulator*:
//! each of the five workloads is run twice under identical machine
//! configurations — once with the naive byte-by-byte interpreter loop
//! ([`CpuConfig::naive_loop`]) and once with the predecode-cache fast
//! loop (the default) — and the harness reports per-workload sim-MIPS
//! (millions of simulated instructions per host second), wall time, and
//! the fast/naive speedup.
//!
//! Speed without fidelity is worthless, so the harness also *proves*
//! the two loops are the same machine:
//!
//! * the timing runs must produce **bit-identical** µPC histograms and
//!   hardware counters (and the same simulated cycle count);
//! * a pair of smaller traced runs — the µPC board and the event tracer
//!   tee'd off one [`upc_monitor::CycleSink`] feed — must produce
//!   **bit-identical** event streams, and each run must pass the
//!   three-way trace/histogram/counter reconciliation on its own.
//!
//! Any discrepancy is recorded as a divergence and fails the bench
//! (`vax780 bench` exits nonzero), making this a trajectory gate: the
//! fast loop is only allowed to be fast, never different.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use upc_monitor::{Command, Histogram, HistogramBoard, NullSink};
use vax780_core::measure;
use vax_cpu::CpuConfig;
use vax_mem::{HwCounters, MemConfig};
use vax_trace::Tracer;
use vax_workloads::{build_machine_with_config, profile, WorkloadKind};

/// What to run. The defaults are the pinned CI configuration — change
/// them only through the CLI flags, so `BENCH_*.json` files stay
/// comparable across commits.
#[derive(Debug, Clone, Copy)]
pub struct BenchSpec {
    /// Instructions measured per workload in each timing run.
    pub timing_instructions: u64,
    /// Instructions per workload in each traced equivalence run
    /// (smaller: the tracer records every machine event).
    pub trace_instructions: u64,
    /// Warm-up instructions before each measured region.
    pub warmup: u64,
    /// Timing repetitions per loop; the *minimum* wall time is reported.
    /// The minimum, not the mean: simulated work is deterministic, so
    /// the fastest repetition is the one least disturbed by host noise.
    pub repeat: u32,
}

impl Default for BenchSpec {
    fn default() -> BenchSpec {
        BenchSpec {
            timing_instructions: 2_000_000,
            trace_instructions: 20_000,
            warmup: 30_000,
            repeat: 3,
        }
    }
}

/// One workload's timing result.
#[derive(Debug, Clone)]
pub struct WorkloadBench {
    /// Workload name.
    pub name: &'static str,
    /// Instructions measured (identical in both loops by construction).
    pub instructions: u64,
    /// Simulated cycles of the measured region.
    pub cycles: u64,
    /// Host wall time of the naive-loop measured region.
    pub naive_wall: Duration,
    /// Host wall time of the fast-loop measured region.
    pub fast_wall: Duration,
}

impl WorkloadBench {
    /// Simulated MIPS of the naive loop.
    pub fn naive_mips(&self) -> f64 {
        mips(self.instructions, self.naive_wall)
    }

    /// Simulated MIPS of the fast loop.
    pub fn fast_mips(&self) -> f64 {
        mips(self.instructions, self.fast_wall)
    }

    /// Fast-over-naive speedup (wall-time ratio).
    pub fn speedup(&self) -> f64 {
        self.naive_wall.as_secs_f64() / self.fast_wall.as_secs_f64().max(1e-9)
    }
}

/// The full benchmark outcome.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The spec that produced this report.
    pub spec: BenchSpec,
    /// Per-workload timing, in [`WorkloadKind::ALL`] order.
    pub workloads: Vec<WorkloadBench>,
    /// Human-readable descriptions of every equivalence violation.
    /// Empty means the fast loop is bit-identical to the naive loop.
    pub divergences: Vec<String>,
}

impl BenchReport {
    /// Did every equivalence check pass?
    pub fn is_equivalent(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Total instructions across all timed workloads.
    pub fn total_instructions(&self) -> u64 {
        self.workloads.iter().map(|w| w.instructions).sum()
    }

    /// Summed naive wall time.
    pub fn naive_wall(&self) -> Duration {
        self.workloads.iter().map(|w| w.naive_wall).sum()
    }

    /// Summed fast wall time.
    pub fn fast_wall(&self) -> Duration {
        self.workloads.iter().map(|w| w.fast_wall).sum()
    }

    /// Composite speedup (total naive wall over total fast wall).
    pub fn composite_speedup(&self) -> f64 {
        self.naive_wall().as_secs_f64() / self.fast_wall().as_secs_f64().max(1e-9)
    }

    /// Composite fast-loop sim-MIPS.
    pub fn composite_fast_mips(&self) -> f64 {
        mips(self.total_instructions(), self.fast_wall())
    }

    /// Composite naive-loop sim-MIPS.
    pub fn composite_naive_mips(&self) -> f64 {
        mips(self.total_instructions(), self.naive_wall())
    }

    /// The report as a JSON document (the `BENCH_*.json` schema: see
    /// DESIGN.md "Host performance").
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"host\": {},\n",
            vax_trace::HostStamp::collect().to_json()
        ));
        s.push_str(&format!(
            "  \"spec\": {{\"timing_instructions\": {}, \"trace_instructions\": {}, \
             \"warmup\": {}, \"repeat\": {}}},\n",
            self.spec.timing_instructions,
            self.spec.trace_instructions,
            self.spec.warmup,
            self.spec.repeat
        ));
        s.push_str(&format!("  \"equivalent\": {},\n", self.is_equivalent()));
        s.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"instructions\": {}, \"cycles\": {}, \
                 \"naive_wall_s\": {:.4}, \"fast_wall_s\": {:.4}, \
                 \"naive_mips\": {:.3}, \"fast_mips\": {:.3}, \"speedup\": {:.3}}}{}\n",
                w.name,
                w.instructions,
                w.cycles,
                w.naive_wall.as_secs_f64(),
                w.fast_wall.as_secs_f64(),
                w.naive_mips(),
                w.fast_mips(),
                w.speedup(),
                if i + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"composite\": {{\"instructions\": {}, \"naive_wall_s\": {:.4}, \
             \"fast_wall_s\": {:.4}, \"naive_mips\": {:.3}, \"fast_mips\": {:.3}, \
             \"speedup\": {:.3}}},\n",
            self.total_instructions(),
            self.naive_wall().as_secs_f64(),
            self.fast_wall().as_secs_f64(),
            self.composite_naive_mips(),
            self.composite_fast_mips(),
            self.composite_speedup()
        ));
        s.push_str("  \"divergences\": [");
        for (i, d) in self.divergences.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\"{}\"",
                d.replace('\\', "\\\\").replace('"', "\\\"")
            ));
        }
        s.push_str("]\n}\n");
        s
    }

    /// A fixed-width table for terminal output.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<20} {:>12} {:>10} {:>10} {:>9} {:>9} {:>8}\n",
            "workload", "instructions", "naive s", "fast s", "naive MIPS", "fast MIPS", "speedup"
        ));
        for w in &self.workloads {
            s.push_str(&format!(
                "{:<20} {:>12} {:>10.3} {:>10.3} {:>9.2} {:>9.2} {:>7.2}x\n",
                w.name,
                w.instructions,
                w.naive_wall.as_secs_f64(),
                w.fast_wall.as_secs_f64(),
                w.naive_mips(),
                w.fast_mips(),
                w.speedup()
            ));
        }
        s.push_str(&format!(
            "{:<20} {:>12} {:>10.3} {:>10.3} {:>9.2} {:>9.2} {:>7.2}x\n",
            "composite",
            self.total_instructions(),
            self.naive_wall().as_secs_f64(),
            self.fast_wall().as_secs_f64(),
            self.composite_naive_mips(),
            self.composite_fast_mips(),
            self.composite_speedup()
        ));
        s
    }
}

fn mips(instructions: u64, wall: Duration) -> f64 {
    instructions as f64 / wall.as_secs_f64().max(1e-9) / 1e6
}

/// One timed measurement: build, warm up (untimed), measure (timed).
/// Returns the measurement plus the wall time of the measured region
/// only, so machine construction and warm-up don't pollute sim-MIPS.
fn timed_run(
    kind: WorkloadKind,
    config: CpuConfig,
    spec: &BenchSpec,
) -> (
    vax780_core::MeasuredWorkload,
    Duration,
    vax_cpu::PredecodeStats,
) {
    let mut machine = build_machine_with_config(&profile(kind), config, MemConfig::default());
    let mut null = NullSink;
    machine
        .run_instructions(spec.warmup, &mut null)
        .expect("warmup runs");
    let start = Instant::now();
    let measured = measure(&mut machine, spec.timing_instructions);
    let wall = start.elapsed();
    let stats = machine.cpu.predecode_stats();
    (measured, wall, stats)
}

/// Everything a traced equivalence run observes.
struct TracedRun {
    tracer: Tracer,
    histogram: Histogram,
    hw: HwCounters,
    reconciles: bool,
}

/// Run `kind` with both instruments attached from boot (the µPC board
/// and the event tracer tee'd off one sink feed), as `vax780 trace`
/// does, and reconcile the instruments.
fn traced_run(kind: WorkloadKind, config: CpuConfig, spec: &BenchSpec) -> TracedRun {
    // Capacity for every event: equivalence on a ring that dropped
    // events would still hold (both runs drop identically) but a full
    // stream makes the check maximally strict.
    let capacity = (spec.trace_instructions as usize)
        .saturating_mul(96)
        .clamp(1 << 16, 1 << 23);
    let mut machine = build_machine_with_config(&profile(kind), config, MemConfig::default());
    let hw_base = *machine.cpu.mem().counters();
    let mut board = HistogramBoard::new();
    board.execute(Command::Start);
    let mut tracer = Tracer::with_capacity(capacity);
    {
        let mut tee = (&mut board, &mut tracer);
        machine
            .run_phase("warmup", spec.warmup.min(5_000), &mut tee)
            .expect("workload runs");
        machine
            .run_phase("measure", spec.trace_instructions, &mut tee)
            .expect("workload runs");
    }
    board.execute(Command::Stop);
    let histogram = board.snapshot();
    let hw = machine.cpu.mem().counters().delta_since(&hw_base);
    let reconciles = vax_analysis::reconcile::reconcile(
        &tracer,
        &histogram,
        &hw,
        machine.cpu.pending_ib_tb_miss(),
    )
    .is_ok();
    TracedRun {
        tracer,
        histogram,
        hw,
        reconciles,
    }
}

/// Compare the two loops' traced runs event-for-event and record every
/// difference into `divergences`.
fn check_traces(name: &str, naive: &TracedRun, fast: &TracedRun, divergences: &mut Vec<String>) {
    if !naive.reconciles {
        divergences.push(format!(
            "{name}: naive loop fails instrument reconciliation"
        ));
    }
    if !fast.reconciles {
        divergences.push(format!("{name}: fast loop fails instrument reconciliation"));
    }
    if naive.histogram != fast.histogram {
        divergences.push(format!("{name}: traced histograms differ"));
    }
    if naive.hw != fast.hw {
        divergences.push(format!("{name}: traced hardware counters differ"));
    }
    if naive.tracer.counters() != fast.tracer.counters() {
        divergences.push(format!("{name}: trace counters differ"));
    }
    if naive.tracer.now() != fast.tracer.now() {
        divergences.push(format!(
            "{name}: derived trace clocks differ ({} vs {})",
            naive.tracer.now(),
            fast.tracer.now()
        ));
    }
    if naive.tracer.dropped() != fast.tracer.dropped()
        || naive.tracer.len() != fast.tracer.len()
        || !naive.tracer.events().eq(fast.tracer.events())
    {
        divergences.push(format!("{name}: trace event streams differ"));
    }
}

/// Run the full benchmark: per-workload naive/fast timing with
/// bit-identity checks, plus traced-run stream equivalence and
/// three-way reconciliation in both modes.
pub fn run_bench(spec: &BenchSpec) -> BenchReport {
    run_bench_with_progress(spec, |_| {})
}

/// [`run_bench`] with a progress callback (one line per completed
/// stage, for interactive use).
pub fn run_bench_with_progress(spec: &BenchSpec, progress: impl Fn(&str)) -> BenchReport {
    let mut workloads = Vec::new();
    let mut divergences = Vec::new();
    for kind in WorkloadKind::ALL {
        let name = kind.name();
        // Interleave the repetitions (naive, fast, naive, fast, …) so a
        // burst of host load penalizes both loops alike, and keep each
        // loop's best time.
        let (mut naive, mut naive_wall, _) = timed_run(kind, CpuConfig::naive_loop(), spec);
        let (mut fast, mut fast_wall, stats) = timed_run(kind, CpuConfig::default(), spec);
        for _ in 1..spec.repeat.max(1) {
            let (m, w, _) = timed_run(kind, CpuConfig::naive_loop(), spec);
            if w < naive_wall {
                (naive, naive_wall) = (m, w);
            }
            let (m, w, _) = timed_run(kind, CpuConfig::default(), spec);
            if w < fast_wall {
                (fast, fast_wall) = (m, w);
            }
        }
        progress(&format!(
            "{name}: timed naive {:.2}s fast {:.2}s (predecode {} hits / {} misses / {} inserts)",
            naive_wall.as_secs_f64(),
            fast_wall.as_secs_f64(),
            stats.hits,
            stats.misses,
            stats.inserts
        ));
        if naive.histogram != fast.histogram {
            divergences.push(format!("{name}: timed histograms differ"));
        }
        if naive.counters != fast.counters {
            divergences.push(format!("{name}: timed hardware counters differ"));
        }
        if naive.cycles != fast.cycles || naive.instructions != fast.instructions {
            divergences.push(format!(
                "{name}: simulated progress differs ({} insns/{} cycles vs {} insns/{} cycles)",
                naive.instructions, naive.cycles, fast.instructions, fast.cycles
            ));
        }
        let naive_traced = traced_run(kind, CpuConfig::naive_loop(), spec);
        let fast_traced = traced_run(kind, CpuConfig::default(), spec);
        check_traces(name, &naive_traced, &fast_traced, &mut divergences);
        progress(&format!("{name}: traces compared"));
        workloads.push(WorkloadBench {
            name,
            instructions: fast.instructions,
            cycles: fast.cycles,
            naive_wall,
            fast_wall,
        });
    }
    BenchReport {
        spec: *spec,
        workloads,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature bench must come back equivalent — this is the same
    /// machinery the CI gate runs at full size.
    #[test]
    fn mini_bench_is_equivalent() {
        let spec = BenchSpec {
            timing_instructions: 3_000,
            trace_instructions: 2_000,
            warmup: 1_000,
            repeat: 1,
        };
        let report = run_bench(&spec);
        assert!(
            report.is_equivalent(),
            "divergences: {:?}",
            report.divergences
        );
        assert_eq!(report.workloads.len(), 5);
        let json = report.to_json();
        assert!(json.contains("\"equivalent\": true"));
        assert!(json.contains("\"speedup\""));
    }
}
