//! Property tests for the analysis layer: conservation laws that must
//! hold for *any* histogram, not just ones a real run produced.

use proptest::prelude::*;
use upc_monitor::Histogram;
use vax_analysis::{Analysis, Column};
use vax_mem::HwCounters;
use vax_ucode::{ControlStore, MemOp, MicroAddr, Row};

/// Strategy: a histogram with counts only at allocated control-store
/// addresses (as any real measurement would have).
fn histogram_strategy() -> impl Strategy<Value = Histogram> {
    let cs = ControlStore::build();
    let addrs: Vec<u16> = cs.iter().map(|(a, _)| a.value()).collect();
    // Stall counts may only appear at Read/Write addresses (the board's
    // second plane latches only on memory stalls).
    let stall_ok: Vec<bool> = cs
        .iter()
        .map(|(_, c)| !matches!(c.op, MemOp::Compute))
        .collect();
    prop::collection::vec((0usize..addrs.len(), 0u64..1000, 0u32..50), 0..200).prop_map(
        move |entries| {
            let mut h = Histogram::new();
            for (i, issues, stalls) in entries {
                let addr = MicroAddr::new(addrs[i]);
                h.add_issue(addr, issues);
                if stall_ok[i] {
                    h.bump_stall(addr, stalls);
                }
            }
            h
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Row totals, column totals and the CPI agree for any histogram.
    #[test]
    fn conservation(h in histogram_strategy()) {
        let cs = ControlStore::build();
        let a = Analysis::new(&h, &cs, &HwCounters::new());
        if a.instructions() == 0 {
            return Ok(());
        }
        let rows: f64 = Row::ALL.iter().map(|&r| a.row_total(r)).sum();
        let cols: f64 = Column::ALL.iter().map(|&c| a.col_total(c)).sum();
        prop_assert!((rows - a.cpi()).abs() < 1e-6);
        prop_assert!((cols - a.cpi()).abs() < 1e-6);
        // CPI × instructions recovers total cycles.
        let cycles = a.cpi() * a.instructions() as f64;
        prop_assert!((cycles - a.total_cycles() as f64).abs() < 1e-3);
    }

    /// Merging histograms then analysing equals analysing the sum of
    /// counts (the composite methodology is linear).
    #[test]
    fn merge_linearity(a in histogram_strategy(), b in histogram_strategy()) {
        let cs = ControlStore::build();
        let mut merged = a.clone();
        merged.merge(&b);
        let aa = Analysis::new(&a, &cs, &HwCounters::new());
        let ab = Analysis::new(&b, &cs, &HwCounters::new());
        let am = Analysis::new(&merged, &cs, &HwCounters::new());
        prop_assert_eq!(
            am.instructions(),
            aa.instructions() + ab.instructions()
        );
        prop_assert_eq!(am.total_cycles(), aa.total_cycles() + ab.total_cycles());
        prop_assert_eq!(
            am.tb_miss_entries(),
            aa.tb_miss_entries() + ab.tb_miss_entries()
        );
    }

    /// Taken-branch counts never exceed the class's instruction counts in
    /// a histogram produced by the CPU — for arbitrary histograms Table 2
    /// percentages must at least be finite and non-negative.
    #[test]
    fn table2_is_well_formed(h in histogram_strategy()) {
        let cs = ControlStore::build();
        let a = Analysis::new(&h, &cs, &HwCounters::new());
        let t2 = vax_analysis::tables::Table2::from_analysis(&a);
        for (_, pct, _, taken_of_all) in &t2.rows {
            prop_assert!(pct.is_finite() && *pct >= 0.0);
            prop_assert!(taken_of_all.is_finite() && *taken_of_all >= 0.0);
        }
    }

    /// Table 4 percentages sum to ~100 whenever any specifiers exist.
    #[test]
    fn table4_totals_100(h in histogram_strategy()) {
        let cs = ControlStore::build();
        let a = Analysis::new(&h, &cs, &HwCounters::new());
        let total_specs: u64 = [vax_ucode::SpecPosition::First, vax_ucode::SpecPosition::Rest]
            .iter()
            .map(|&p| a.spec_total(p))
            .sum();
        if total_specs == 0 {
            return Ok(());
        }
        let t4 = vax_analysis::tables::Table4::from_analysis(&a);
        let sum: f64 = t4.rows.iter().map(|&(_, _, _, t)| t).sum();
        prop_assert!((sum - 100.0).abs() < 1e-6, "{sum}");
    }
}
