//! Reduction of µPC histograms to the paper's published artifacts.
//!
//! The analysis consumes exactly what the paper's analysts had:
//!
//! 1. the raw dual-plane histogram ([`upc_monitor::Histogram`]),
//! 2. the microcode listing ([`vax_ucode::ControlStore`]),
//! 3. the companion hardware-monitor counters
//!    ([`vax_mem::HwCounters`]) for the events microcode cannot see
//!    (IB references, cache misses — §4.1–4.2).
//!
//! [`Analysis`] digests those into event counts; the `tables` module
//! renders Tables 1–9; [`paper`] holds the published reference values
//! (with OCR-provenance flags); [`report`] prints paper-vs-measured
//! comparisons for EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod paper;
pub mod probe;
pub mod reconcile;
pub mod report;
pub mod section4;
pub mod sensitivity;
pub mod sweep;
pub mod tables;
pub mod whatif;

pub use analysis::{Analysis, Column};
pub use probe::InferredTables;
pub use section4::Section4Stats;
pub use sensitivity::FaultSensitivity;
