//! What-if analysis: the paper's §5 use of Table 8 — "Table 8 shows
//! where 11/780 performance may be improved, and where it may not".
//!
//! Each scenario removes or shrinks one cycle category from a measured
//! Table 8 and reports the hypothetical CPI and speedup. This is the
//! CPI-stack reasoning the paper pioneered (and the reason the
//! retrospective calls it a foundational measurement study).

use crate::{Analysis, Column};
use std::fmt;
use vax_arch::OpcodeGroup;
use vax_ucode::Row;

/// A what-if scenario over a measured cycle breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// Perfect D-stream memory: no read stalls anywhere.
    NoReadStalls,
    /// Infinite write buffer: no write stalls.
    NoWriteStalls,
    /// Perfect instruction fetch: no IB stalls.
    NoIbStalls,
    /// Fold the non-overlapped decode cycle into the previous instruction
    /// for non-PC-changing instructions (the 11/750 change, §5).
    FoldedDecode {
        /// Fraction of instructions that are PC-changing (Table 2 total).
        pc_changing_fraction: f64,
    },
    /// Infinite TB: remove the memory-management row entirely.
    NoTbMisses,
    /// Remove one execute group's time (upper bound on optimizing it —
    /// the §5 example: "optimizing FIELD memory writes will have a payoff
    /// of at most 0.007 cycles per instruction").
    EliminateGroup(OpcodeGroup),
}

impl Scenario {
    /// Short label for reports.
    pub fn name(&self) -> String {
        match self {
            Scenario::NoReadStalls => "no read stalls".into(),
            Scenario::NoWriteStalls => "no write stalls".into(),
            Scenario::NoIbStalls => "no IB stalls".into(),
            Scenario::FoldedDecode { .. } => "folded decode (11/750)".into(),
            Scenario::NoTbMisses => "no TB misses".into(),
            Scenario::EliminateGroup(g) => format!("eliminate {} execute", g.name()),
        }
    }
}

/// The outcome of applying a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIf {
    /// The scenario applied.
    pub scenario: String,
    /// Measured baseline CPI.
    pub baseline_cpi: f64,
    /// Hypothetical CPI.
    pub new_cpi: f64,
}

impl WhatIf {
    /// Cycles saved per instruction.
    pub fn saving(&self) -> f64 {
        self.baseline_cpi - self.new_cpi
    }

    /// Overall speedup factor.
    pub fn speedup(&self) -> f64 {
        if self.new_cpi == 0.0 {
            f64::INFINITY
        } else {
            self.baseline_cpi / self.new_cpi
        }
    }
}

impl fmt::Display for WhatIf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<26} CPI {:.3} -> {:.3}  (saves {:.3}, speedup {:.3}x)",
            self.scenario,
            self.baseline_cpi,
            self.new_cpi,
            self.saving(),
            self.speedup()
        )
    }
}

/// Apply one scenario to a measured analysis.
pub fn apply(a: &Analysis, scenario: Scenario) -> WhatIf {
    let baseline = a.cpi();
    let saved = match scenario {
        Scenario::NoReadStalls => a.col_total(Column::RStall),
        Scenario::NoWriteStalls => a.col_total(Column::WStall),
        Scenario::NoIbStalls => a.col_total(Column::IbStall),
        Scenario::FoldedDecode {
            pc_changing_fraction,
        } => {
            // One decode-compute cycle saved per non-PC-changing
            // instruction; its IB stall remains (the bytes are still
            // needed).
            a.cell(Row::Decode, Column::Compute) * (1.0 - pc_changing_fraction)
        }
        Scenario::NoTbMisses => a.row_total(Row::MemMgmt),
        Scenario::EliminateGroup(g) => a.row_total(Row::Exec(g)),
    };
    WhatIf {
        scenario: scenario.name(),
        baseline_cpi: baseline,
        new_cpi: baseline - saved,
    }
}

/// The standard scenario sweep (the §5 discussion, in order).
pub fn standard_sweep(a: &Analysis) -> Vec<WhatIf> {
    let t2 = crate::tables::Table2::from_analysis(a);
    let pc_frac = t2.total.0 / 100.0;
    vec![
        apply(
            a,
            Scenario::FoldedDecode {
                pc_changing_fraction: pc_frac,
            },
        ),
        apply(a, Scenario::NoIbStalls),
        apply(a, Scenario::NoReadStalls),
        apply(a, Scenario::NoWriteStalls),
        apply(a, Scenario::NoTbMisses),
        apply(a, Scenario::EliminateGroup(OpcodeGroup::Field)),
        apply(a, Scenario::EliminateGroup(OpcodeGroup::CallRet)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use upc_monitor::Histogram;
    use vax_arch::Opcode;
    use vax_mem::HwCounters;
    use vax_ucode::ControlStore;

    fn toy() -> Analysis {
        let cs = ControlStore::build();
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.bump_issue(cs.ird1());
            h.bump_issue(cs.exec_entry(Opcode::Movl));
        }
        // 5 cycles of IB stall at decode, 3 cycles of read stall in exec.
        for _ in 0..5 {
            h.bump_issue(cs.ib_stall(vax_ucode::StallPoint::Decode));
        }
        h.bump_issue(cs.exec_read(Opcode::Movl));
        h.bump_stall(cs.exec_read(Opcode::Movl), 3);
        Analysis::new(&h, &cs, &HwCounters::new())
    }

    #[test]
    fn scenarios_remove_the_right_cycles() {
        let a = toy();
        let base = a.cpi();
        let no_ib = apply(&a, Scenario::NoIbStalls);
        assert!((no_ib.saving() - 0.5).abs() < 1e-9, "{}", no_ib.saving());
        let no_rs = apply(&a, Scenario::NoReadStalls);
        assert!((no_rs.saving() - 0.3).abs() < 1e-9);
        let folded = apply(
            &a,
            Scenario::FoldedDecode {
                pc_changing_fraction: 0.0,
            },
        );
        assert!((folded.saving() - 1.0).abs() < 1e-9, "full decode cycle");
        assert!(no_ib.speedup() > 1.0 && no_ib.baseline_cpi == base);
    }

    #[test]
    fn sweep_is_ordered_and_displays() {
        let a = toy();
        let sweep = standard_sweep(&a);
        assert_eq!(sweep.len(), 7);
        let text = sweep
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("folded decode"));
        assert!(text.contains("speedup"));
    }
}
