//! Sweep report formatting: per-point CPI/stall breakdowns as an
//! aligned table, CSV, or JSONL.
//!
//! The sweep engine (`vax780_core::sweep`) re-simulates the workloads
//! under ablated machine configurations — the §6 what-if analyses done
//! by measurement instead of by subtracting Table 8 columns. Each point
//! reduces to one [`SweepRow`]; this module renders the set.

use crate::{Analysis, Column};
use std::fmt::Write as _;
use std::time::Duration;

/// One sweep point, reduced to the numbers a what-if table needs.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Point label, e.g. `cache-size=4KB`.
    pub label: String,
    /// The axis this point ablates (`baseline` for the reference point).
    pub axis: String,
    /// Instructions counted by the composite analysis.
    pub instructions: u64,
    /// Total classified cycles.
    pub cycles: u64,
    /// Cycles per instruction.
    pub cpi: f64,
    /// Table 8 column totals, cycles per instruction.
    pub compute: f64,
    /// D-stream read microinstructions per instruction.
    pub read: f64,
    /// Read-stall cycles per instruction.
    pub read_stall: f64,
    /// D-stream write microinstructions per instruction.
    pub write: f64,
    /// Write-stall cycles per instruction.
    pub write_stall: f64,
    /// IB-stall cycles per instruction.
    pub ib_stall: f64,
    /// TB misses per 1000 instructions (second instrument).
    pub tb_miss_per_1k: f64,
    /// Cache read misses per 1000 instructions (second instrument).
    pub cache_miss_per_1k: f64,
    /// Host wall-clock seconds spent simulating this point.
    pub wall_secs: f64,
    /// Simulated instructions per host second, in millions.
    pub sim_mips: f64,
}

impl SweepRow {
    /// Reduce one point's composite analysis, charging it `wall` of host
    /// time and `sim_instructions` of simulated work (for self-metrics).
    pub fn from_analysis(
        label: impl Into<String>,
        axis: impl Into<String>,
        analysis: &Analysis,
        wall: Duration,
        sim_instructions: u64,
    ) -> SweepRow {
        let secs = wall.as_secs_f64();
        let c = analysis.counters();
        let per_1k = |count: u64| 1000.0 * analysis.per_instr(count);
        SweepRow {
            label: label.into(),
            axis: axis.into(),
            instructions: analysis.instructions(),
            cycles: analysis.total_cycles(),
            cpi: analysis.cpi(),
            compute: analysis.col_total(Column::Compute),
            read: analysis.col_total(Column::Read),
            read_stall: analysis.col_total(Column::RStall),
            write: analysis.col_total(Column::Write),
            write_stall: analysis.col_total(Column::WStall),
            ib_stall: analysis.col_total(Column::IbStall),
            tb_miss_per_1k: per_1k(c.tb_misses()),
            cache_miss_per_1k: per_1k(c.cache_read_misses()),
            wall_secs: secs,
            sim_mips: if secs > 0.0 {
                sim_instructions as f64 / secs / 1e6
            } else {
                0.0
            },
        }
    }
}

/// The CSV/JSONL field names, in emission order.
const FIELDS: [&str; 15] = [
    "label",
    "axis",
    "instructions",
    "cycles",
    "cpi",
    "compute",
    "read",
    "read_stall",
    "write",
    "write_stall",
    "ib_stall",
    "tb_miss_per_1k",
    "cache_miss_per_1k",
    "wall_secs",
    "sim_mips",
];

fn numeric_fields(r: &SweepRow) -> [f64; 11] {
    [
        r.cpi,
        r.compute,
        r.read,
        r.read_stall,
        r.write,
        r.write_stall,
        r.ib_stall,
        r.tb_miss_per_1k,
        r.cache_miss_per_1k,
        r.wall_secs,
        r.sim_mips,
    ]
}

/// Render the aligned human-readable table. The first row is the
/// reference point for the Δ-CPI and speedup columns (the sweep engine
/// always emits the baseline first).
pub fn render_table(rows: &[SweepRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>7} {:>8} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8}",
        "point",
        "CPI",
        "dCPI",
        "speedup",
        "Compute",
        "Read",
        "R-Stl",
        "Write",
        "W-Stl",
        "IB-Stl",
        "TBm/1k",
        "C$m/1k"
    );
    let base_cpi = rows.first().map_or(0.0, |r| r.cpi);
    for r in rows {
        let speedup = if r.cpi > 0.0 { base_cpi / r.cpi } else { 0.0 };
        let _ = writeln!(
            out,
            "{:<28} {:>8.3} {:>+7.3} {:>7.3}x {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>8.2} {:>8.2}",
            r.label,
            r.cpi,
            r.cpi - base_cpi,
            speedup,
            r.compute,
            r.read,
            r.read_stall,
            r.write,
            r.write_stall,
            r.ib_stall,
            r.tb_miss_per_1k,
            r.cache_miss_per_1k
        );
    }
    out
}

/// Machine-readable CSV, header first. Labels are quoted.
pub fn to_csv(rows: &[SweepRow]) -> String {
    let mut out = FIELDS.join(",");
    out.push('\n');
    for r in rows {
        let _ = write!(
            out,
            "\"{}\",\"{}\",{},{}",
            r.label.replace('"', "\"\""),
            r.axis.replace('"', "\"\""),
            r.instructions,
            r.cycles
        );
        for v in numeric_fields(r) {
            let _ = write!(out, ",{v:.6}");
        }
        out.push('\n');
    }
    out
}

/// Machine-readable JSONL: one object per point, keys as in [`to_csv`].
pub fn to_jsonl(rows: &[SweepRow]) -> String {
    let mut out = String::new();
    for r in rows {
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"axis\":\"{}\",\"instructions\":{},\"cycles\":{}",
            escape_json(&r.label),
            escape_json(&r.axis),
            r.instructions,
            r.cycles
        );
        for (name, v) in FIELDS[4..].iter().zip(numeric_fields(r)) {
            let _ = write!(out, ",\"{name}\":{v:.6}");
        }
        out.push_str("}\n");
    }
    out
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(label: &str, cpi: f64) -> SweepRow {
        SweepRow {
            label: label.into(),
            axis: "cache-size".into(),
            instructions: 1000,
            cycles: (cpi * 1000.0) as u64,
            cpi,
            compute: cpi * 0.5,
            read: 0.6,
            read_stall: 0.9,
            write: 0.3,
            write_stall: 0.8,
            ib_stall: 1.1,
            tb_miss_per_1k: 20.0,
            cache_miss_per_1k: 80.0,
            wall_secs: 0.5,
            sim_mips: 2.0,
        }
    }

    #[test]
    fn table_reports_delta_and_speedup_vs_first_row() {
        let rows = vec![row("baseline", 10.0), row("cache-size=4KB", 12.5)];
        let t = render_table(&rows);
        assert!(t.contains("baseline"), "{t}");
        assert!(t.contains("+2.500"), "{t}");
        assert!(t.contains("0.800x"), "{t}");
    }

    #[test]
    fn csv_has_header_and_one_line_per_row() {
        let rows = vec![row("a", 10.0), row("b", 11.0)];
        let csv = to_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("label,axis,instructions,cycles,cpi"));
        assert_eq!(lines[0].split(',').count(), FIELDS.len());
        assert_eq!(lines[1].split(',').count(), FIELDS.len());
    }

    #[test]
    fn jsonl_lines_are_flat_objects() {
        let rows = vec![row("quote\"label", 10.0)];
        let j = to_jsonl(&rows);
        let line = j.lines().next().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"quote\\\"label\""));
        assert!(line.contains("\"cpi\":10.000000"));
    }
}
