//! Two-instrument reconciliation: does the trace agree with the µPC
//! histogram board and the hardware counters?
//!
//! The paper's credibility rests on instruments that cross-check: the
//! µPC histogram accounts for every processor cycle, and the separate
//! hardware monitor counts the events microcode cannot see. The tracer
//! is a third instrument watching the same run through the same
//! [`upc_monitor::CycleSink`] feed, and it keeps its own derived clock.
//! This module turns "the instruments agree" from prose into an
//! executable check:
//!
//! * the tracer's derived cycle clock (`issues + stall_cycles`) must
//!   equal the histogram's `total_cycles()`, plane by plane;
//! * every cache/TB/SBI/write aggregate in the trace must equal the
//!   corresponding [`vax_mem::HwCounters`] field, exactly;
//! * when the ring dropped nothing, replaying the per-event record must
//!   reproduce the aggregates.
//!
//! Any disagreement means an emission point (or one of the instruments)
//! is wrong — which is precisely what the check is for.

use std::fmt;
use upc_monitor::Histogram;
use vax_mem::HwCounters;
use vax_trace::Tracer;

/// One compared quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Check {
    /// What is being compared.
    pub name: &'static str,
    /// The trace's value.
    pub trace: u64,
    /// The reference instrument's value.
    pub reference: u64,
    /// Which instrument supplied the reference.
    pub instrument: &'static str,
}

impl Check {
    /// Did the two instruments agree?
    pub fn ok(&self) -> bool {
        self.trace == self.reference
    }
}

/// The full comparison, one [`Check`] per reconciled quantity.
#[derive(Debug, Clone)]
pub struct Reconciliation {
    /// All comparisons performed, in report order.
    pub checks: Vec<Check>,
    /// Whether the event ring dropped records (the replay check is
    /// skipped when it did; the aggregate checks still run).
    pub ring_dropped: u64,
}

impl Reconciliation {
    /// True when every check agreed exactly.
    pub fn is_ok(&self) -> bool {
        self.checks.iter().all(Check::ok)
    }

    /// The checks that disagreed.
    pub fn failures(&self) -> Vec<Check> {
        self.checks.iter().copied().filter(|c| !c.ok()).collect()
    }
}

impl fmt::Display for Reconciliation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>14} {:>14}  {:<10} agree",
            "quantity", "trace", "reference", "instrument"
        )?;
        for c in &self.checks {
            writeln!(
                f,
                "{:<24} {:>14} {:>14}  {:<10} {}",
                c.name,
                c.trace,
                c.reference,
                c.instrument,
                if c.ok() { "yes" } else { "NO" }
            )?;
        }
        write!(
            f,
            "{} ({} events dropped from the ring)",
            if self.is_ok() {
                "all instruments agree"
            } else {
                "INSTRUMENT DISAGREEMENT"
            },
            self.ring_dropped
        )
    }
}

/// Reconcile a tracer against the histogram board and hardware counters
/// that observed the *same* cycles.
///
/// `hw` must be the counter deltas over exactly the traced interval
/// (capture a baseline with [`HwCounters::delta_since`] if the machine
/// ran before the tracer attached). `pending_ib_tb_miss` is the
/// machine's in-flight I-stream TB-miss flag at the stop point
/// ([`vax_cpu::Cpu::pending_ib_tb_miss`] — the hardware counted it, but
/// microcode has not yet serviced it, so the trace legitimately has not
/// seen it yet).
pub fn reconcile(
    tracer: &Tracer,
    histogram: &Histogram,
    hw: &HwCounters,
    pending_ib_tb_miss: bool,
) -> Reconciliation {
    let t = tracer.counters();
    let mut checks = vec![
        Check {
            name: "total_cycles",
            trace: t.total_cycles(),
            reference: histogram.total_cycles(),
            instrument: "histogram",
        },
        Check {
            name: "issues",
            trace: t.issues,
            reference: histogram.total_issues(),
            instrument: "histogram",
        },
        Check {
            name: "stall_cycles",
            trace: t.stall_cycles,
            reference: histogram.total_stalls(),
            instrument: "histogram",
        },
        // The trace's own clock and its stall-cause partition must be
        // internally consistent before cross-instrument claims mean
        // anything. (IB stalls are *issued* dispatch cycles, not
        // record_stall stalls, so they sit outside this sum.)
        Check {
            name: "stall_cause_partition",
            trace: t.read_stall_cycles + t.write_stall_cycles,
            reference: t.stall_cycles,
            instrument: "trace",
        },
        Check {
            name: "derived_clock",
            trace: tracer.now(),
            reference: t.total_cycles(),
            instrument: "trace",
        },
        Check {
            name: "cache_hit_i",
            trace: t.cache_hit_i,
            reference: hw.cache_hit_i,
            instrument: "hw",
        },
        Check {
            name: "cache_miss_i",
            trace: t.cache_miss_i,
            reference: hw.cache_miss_i,
            instrument: "hw",
        },
        Check {
            name: "cache_hit_d",
            trace: t.cache_hit_d,
            reference: hw.cache_hit_d,
            instrument: "hw",
        },
        Check {
            name: "cache_miss_d",
            trace: t.cache_miss_d,
            reference: hw.cache_miss_d,
            instrument: "hw",
        },
        Check {
            name: "tb_miss_i",
            trace: t.tb_miss_i,
            reference: hw.tb_miss_i - u64::from(pending_ib_tb_miss),
            instrument: "hw",
        },
        Check {
            name: "tb_miss_d",
            trace: t.tb_miss_d,
            reference: hw.tb_miss_d,
            instrument: "hw",
        },
        Check {
            name: "writes",
            trace: t.writes_buffered,
            reference: hw.writes,
            instrument: "hw",
        },
        Check {
            name: "sbi_reads",
            trace: t.sbi_reads,
            reference: hw.sbi_reads,
            instrument: "hw",
        },
        Check {
            name: "sbi_writes",
            trace: t.sbi_writes,
            reference: hw.sbi_writes,
            instrument: "hw",
        },
        // Injected faults: every machine check the memory subsystem
        // counted must have produced exactly one trace event on its way
        // through the machine-check microcode.
        Check {
            name: "machine_checks",
            trace: t.machine_checks,
            reference: hw.machine_checks,
            instrument: "hw",
        },
    ];
    if tracer.dropped() == 0 {
        let replayed = tracer.replay();
        checks.push(Check {
            name: "replay_issues",
            trace: replayed.issues,
            reference: t.issues,
            instrument: "replay",
        });
        checks.push(Check {
            name: "replay_stall_cycles",
            trace: replayed.stall_cycles,
            reference: t.stall_cycles,
            instrument: "replay",
        });
        checks.push(Check {
            name: "replay_aggregates",
            trace: u64::from(replayed == *t),
            reference: 1,
            instrument: "replay",
        });
    }
    Reconciliation {
        checks,
        ring_dropped: tracer.dropped(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upc_monitor::events::{MachineEvent, MemStream};
    use upc_monitor::CycleSink;
    use vax_ucode::MicroAddr;

    /// Drive the tracer and a histogram by hand through the same feed
    /// and watch them reconcile.
    #[test]
    fn hand_driven_feed_reconciles() {
        let mut tracer = Tracer::with_capacity(256);
        let mut hist = Histogram::new();
        let mut hw = HwCounters::new();
        for i in 0..10u16 {
            let addr = MicroAddr::new(i);
            tracer.record_issue(addr);
            hist.bump_issue(addr);
        }
        tracer.record_stall(MicroAddr::new(3), 4);
        hist.bump_stall(MicroAddr::new(3), 4);
        tracer.trace_event(MachineEvent::Stall {
            cause: upc_monitor::events::StallCause::Read,
            cycles: 4,
        });
        tracer.trace_event(MachineEvent::CacheAccess {
            stream: MemStream::Data,
            hit: false,
        });
        tracer.trace_event(MachineEvent::Sbi { read: true });
        hw.cache_miss_d = 1;
        hw.sbi_reads = 1;
        let r = reconcile(&tracer, &hist, &hw, false);
        assert!(r.is_ok(), "{r}");
    }

    #[test]
    fn disagreement_is_reported() {
        let tracer = Tracer::with_capacity(16);
        let mut hist = Histogram::new();
        hist.bump_issue(MicroAddr::new(0)); // histogram saw a cycle the trace missed
        let r = reconcile(&tracer, &hist, &HwCounters::new(), false);
        assert!(!r.is_ok());
        let failures = r.failures();
        assert!(failures.iter().any(|c| c.name == "total_cycles"));
        assert!(format!("{r}").contains("DISAGREEMENT"));
    }

    #[test]
    fn pending_ib_tb_miss_is_subtracted() {
        let tracer = Tracer::with_capacity(16);
        let hw = HwCounters {
            tb_miss_i: 1,
            ..HwCounters::new()
        };
        // The hardware flagged a miss microcode has not serviced yet.
        let r = reconcile(&tracer, &Histogram::new(), &hw, true);
        assert!(r.is_ok(), "{r}");
    }
}
