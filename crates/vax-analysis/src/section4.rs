//! Section 3/4 event statistics: the per-instruction rates reported in
//! the paper's prose, combining the µPC histogram with the second
//! instrument ([`vax_mem::HwCounters`]).

use crate::Analysis;
use std::fmt;

/// The §3.3/§4 statistics.
#[derive(Debug, Clone, Copy)]
pub struct Section4Stats {
    /// IB longword references per instruction (§4.1; hardware counter).
    pub ib_refs_per_instr: f64,
    /// Bytes accepted per IB reference (§4.1).
    pub ib_bytes_per_ref: f64,
    /// Cache read misses per instruction, I-stream (§4.2).
    pub cache_miss_i_per_instr: f64,
    /// Cache read misses per instruction, D-stream.
    pub cache_miss_d_per_instr: f64,
    /// TB misses per instruction (from the µPC histogram: miss-routine
    /// entries).
    pub tb_miss_per_instr: f64,
    /// TB misses per instruction, D-stream share (hardware counter).
    pub tb_miss_d_per_instr: f64,
    /// TB misses per instruction, I-stream share.
    pub tb_miss_i_per_instr: f64,
    /// Average TB-miss service cycles (µPC histogram).
    pub tb_service_cycles: f64,
    /// Read-stall cycles within TB service.
    pub tb_service_read_stall: f64,
    /// Unaligned D-stream references per instruction (§3.3.1).
    pub unaligned_per_instr: f64,
    /// D-stream reads per instruction (µPC histogram).
    pub reads_per_instr: f64,
    /// D-stream writes per instruction.
    pub writes_per_instr: f64,
}

impl Section4Stats {
    /// Compute from a digested measurement.
    pub fn from_analysis(a: &Analysis) -> Section4Stats {
        let c = a.counters();
        let per = |n: u64| a.per_instr(n);
        Section4Stats {
            ib_refs_per_instr: per(c.ib_requests),
            ib_bytes_per_ref: c.ib_bytes_per_request(),
            cache_miss_i_per_instr: per(c.cache_miss_i),
            cache_miss_d_per_instr: per(c.cache_miss_d),
            tb_miss_per_instr: per(a.tb_miss_entries()),
            tb_miss_d_per_instr: per(c.tb_miss_d),
            tb_miss_i_per_instr: per(c.tb_miss_i),
            tb_service_cycles: a.tb_miss_service_cycles(),
            tb_service_read_stall: a.tb_miss_read_stall_cycles(),
            unaligned_per_instr: per(c.unaligned_refs),
            reads_per_instr: a.total_reads_per_instr(),
            writes_per_instr: a.total_writes_per_instr(),
        }
    }

    /// Total cache read misses per instruction.
    pub fn cache_miss_per_instr(&self) -> f64 {
        self.cache_miss_i_per_instr + self.cache_miss_d_per_instr
    }

    /// Read:write ratio (§3.3.1 reports ≈2:1).
    pub fn read_write_ratio(&self) -> f64 {
        if self.writes_per_instr == 0.0 {
            0.0
        } else {
            self.reads_per_instr / self.writes_per_instr
        }
    }
}

impl fmt::Display for Section4Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SECTION 3/4 — Event Rates per Instruction")?;
        writeln!(
            f,
            "IB references            {:>8.2}",
            self.ib_refs_per_instr
        )?;
        writeln!(f, "IB bytes per reference   {:>8.2}", self.ib_bytes_per_ref)?;
        writeln!(
            f,
            "Cache read misses        {:>8.3}  (I {:.3} + D {:.3})",
            self.cache_miss_per_instr(),
            self.cache_miss_i_per_instr,
            self.cache_miss_d_per_instr
        )?;
        writeln!(
            f,
            "TB misses                {:>8.4}  (D {:.4} + I {:.4})",
            self.tb_miss_per_instr, self.tb_miss_d_per_instr, self.tb_miss_i_per_instr
        )?;
        writeln!(
            f,
            "TB service cycles        {:>8.1}  ({:.1} read stall)",
            self.tb_service_cycles, self.tb_service_read_stall
        )?;
        writeln!(
            f,
            "Unaligned references     {:>8.4}",
            self.unaligned_per_instr
        )?;
        writeln!(
            f,
            "Reads / writes           {:>8.3} / {:.3}  (ratio {:.2})",
            self.reads_per_instr,
            self.writes_per_instr,
            self.read_write_ratio()
        )
    }
}
