//! The paper's Tables 1–9, computed from an [`Analysis`] and rendered in
//! the published layouts.

use crate::{Analysis, Column};
use std::fmt;
use vax_arch::{BranchClass, OpcodeGroup, SpecModeClass};
use vax_ucode::{Row, SpecPosition};

/// Table 1: opcode group frequency.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// (group, percent of instruction executions).
    pub rows: Vec<(OpcodeGroup, f64)>,
}

impl Table1 {
    /// Compute from a digested measurement.
    pub fn from_analysis(a: &Analysis) -> Table1 {
        Table1 {
            rows: OpcodeGroup::ALL
                .iter()
                .map(|&g| (g, a.group_frequency(g) * 100.0))
                .collect(),
        }
    }

    /// Frequency of one group, percent.
    pub fn pct(&self, group: OpcodeGroup) -> f64 {
        self.rows
            .iter()
            .find(|(g, _)| *g == group)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TABLE 1 — Opcode Group Frequency")?;
        writeln!(f, "{:<12} {:>10}", "Group", "Percent")?;
        for (g, p) in &self.rows {
            writeln!(f, "{:<12} {:>10.2}", g.name(), p)?;
        }
        Ok(())
    }
}

/// Table 2: PC-changing instructions.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// (class, % of all instructions, % that branch, taken % of all).
    pub rows: Vec<(BranchClass, f64, f64, f64)>,
    /// Totals: (% of instructions, % taken, taken % of instructions).
    pub total: (f64, f64, f64),
}

impl Table2 {
    /// Compute from a digested measurement.
    pub fn from_analysis(a: &Analysis) -> Table2 {
        let mut rows = Vec::new();
        let (mut all, mut taken) = (0u64, 0u64);
        for class in BranchClass::ALL {
            let n = a.branch_class_count(class);
            let t = a.branch_taken_count(class);
            all += n;
            taken += t;
            let pct = a.per_instr(n) * 100.0;
            let taken_pct = if n == 0 {
                0.0
            } else {
                100.0 * t as f64 / n as f64
            };
            rows.push((class, pct, taken_pct, a.per_instr(t) * 100.0));
        }
        let total_pct = a.per_instr(all) * 100.0;
        let total_taken = if all == 0 {
            0.0
        } else {
            100.0 * taken as f64 / all as f64
        };
        Table2 {
            rows,
            total: (total_pct, total_taken, a.per_instr(taken) * 100.0),
        }
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TABLE 2 — PC-Changing Instructions")?;
        writeln!(
            f,
            "{:<30} {:>8} {:>10} {:>12}",
            "Type", "% inst", "% branch", "taken %inst"
        )?;
        for (c, pct, taken_pct, taken_of_all) in &self.rows {
            writeln!(
                f,
                "{:<30} {:>8.1} {:>10.0} {:>12.1}",
                c.name(),
                pct,
                taken_pct,
                taken_of_all
            )?;
        }
        writeln!(
            f,
            "{:<30} {:>8.1} {:>10.0} {:>12.1}",
            "TOTAL", self.total.0, self.total.1, self.total.2
        )
    }
}

/// Table 3: specifiers and branch displacements per instruction.
#[derive(Debug, Clone, Copy)]
pub struct Table3 {
    /// First specifiers per instruction.
    pub spec1: f64,
    /// Later specifiers per instruction.
    pub spec2_6: f64,
    /// Branch displacements per instruction.
    pub bdisp: f64,
}

impl Table3 {
    /// Compute from a digested measurement.
    pub fn from_analysis(a: &Analysis) -> Table3 {
        Table3 {
            spec1: a.per_instr(a.spec_total(SpecPosition::First)),
            spec2_6: a.per_instr(a.spec_total(SpecPosition::Rest)),
            bdisp: a.per_instr(a.bdisp_count()),
        }
    }

    /// Total specifiers per instruction.
    pub fn total_specs(&self) -> f64 {
        self.spec1 + self.spec2_6
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TABLE 3 — Specifiers per Average Instruction")?;
        writeln!(f, "First specifiers      {:>7.3}", self.spec1)?;
        writeln!(f, "Other specifiers      {:>7.3}", self.spec2_6)?;
        writeln!(f, "Branch displacements  {:>7.3}", self.bdisp)
    }
}

/// Table 4: operand specifier mode distribution.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// (class, SPEC1 %, SPEC2-6 %, total %).
    pub rows: Vec<(SpecModeClass, f64, f64, f64)>,
    /// Indexed percentages: (SPEC1, SPEC2-6, total).
    pub indexed: (f64, f64, f64),
}

impl Table4 {
    /// Compute from a digested measurement.
    pub fn from_analysis(a: &Analysis) -> Table4 {
        let s1 = a.spec_total(SpecPosition::First);
        let s2 = a.spec_total(SpecPosition::Rest);
        let pct = |n: u64, d: u64| {
            if d == 0 {
                0.0
            } else {
                100.0 * n as f64 / d as f64
            }
        };
        let rows = SpecModeClass::ALL
            .iter()
            .map(|&c| {
                let n1 = a.spec_count(SpecPosition::First, c);
                let n2 = a.spec_count(SpecPosition::Rest, c);
                (c, pct(n1, s1), pct(n2, s2), pct(n1 + n2, s1 + s2))
            })
            .collect();
        let i1 = a.spec_indexed(SpecPosition::First);
        let i2 = a.spec_indexed(SpecPosition::Rest);
        Table4 {
            rows,
            indexed: (pct(i1, s1), pct(i2, s2), pct(i1 + i2, s1 + s2)),
        }
    }

    /// Total-column percentage for one mode class.
    pub fn total_pct(&self, class: SpecModeClass) -> f64 {
        self.rows
            .iter()
            .find(|(c, ..)| *c == class)
            .map(|&(_, _, _, t)| t)
            .unwrap_or(0.0)
    }
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TABLE 4 — Operand Specifier Distribution (percent)")?;
        writeln!(
            f,
            "{:<20} {:>8} {:>9} {:>8}",
            "Mode", "SPEC1", "SPEC2-6", "Total"
        )?;
        for (c, a, b, t) in &self.rows {
            writeln!(f, "{:<20} {:>8.1} {:>9.1} {:>8.1}", c.name(), a, b, t)?;
        }
        writeln!(
            f,
            "{:<20} {:>8.1} {:>9.1} {:>8.1}",
            "Percent indexed", self.indexed.0, self.indexed.1, self.indexed.2
        )
    }
}

/// A Table 5 source row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table5Source {
    /// First-specifier processing.
    Spec1,
    /// Later-specifier processing.
    Spec2to6,
    /// An execute group.
    Group(OpcodeGroup),
    /// Memory management, interrupts, aborts.
    Other,
}

impl Table5Source {
    /// All rows in table order.
    pub fn all() -> Vec<Table5Source> {
        let mut v = vec![Table5Source::Spec1, Table5Source::Spec2to6];
        v.extend(OpcodeGroup::ALL.iter().map(|&g| Table5Source::Group(g)));
        v.push(Table5Source::Other);
        v
    }

    /// Row label.
    pub fn name(&self) -> &'static str {
        match self {
            Table5Source::Spec1 => "Spec 1",
            Table5Source::Spec2to6 => "Spec 2-6",
            Table5Source::Group(g) => g.name(),
            Table5Source::Other => "Other",
        }
    }
}

/// Table 5: D-stream reads and writes per average instruction.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// (source, reads/instr, writes/instr).
    pub rows: Vec<(Table5Source, f64, f64)>,
    /// Totals.
    pub total: (f64, f64),
}

impl Table5 {
    /// Compute from a digested measurement.
    pub fn from_analysis(a: &Analysis) -> Table5 {
        let row_of = |src: &Table5Source| -> (f64, f64) {
            match src {
                Table5Source::Spec1 => (
                    a.reads_per_instr(Row::Spec1),
                    a.writes_per_instr(Row::Spec1),
                ),
                Table5Source::Spec2to6 => (
                    a.reads_per_instr(Row::Spec2to6),
                    a.writes_per_instr(Row::Spec2to6),
                ),
                Table5Source::Group(g) => (
                    a.reads_per_instr(Row::Exec(*g)),
                    a.writes_per_instr(Row::Exec(*g)),
                ),
                Table5Source::Other => {
                    let rows = [
                        Row::Decode,
                        Row::BranchDisp,
                        Row::IntExcept,
                        Row::MemMgmt,
                        Row::Abort,
                        Row::FaultHandling,
                    ];
                    (
                        rows.iter().map(|&r| a.reads_per_instr(r)).sum(),
                        rows.iter().map(|&r| a.writes_per_instr(r)).sum(),
                    )
                }
            }
        };
        let rows: Vec<_> = Table5Source::all()
            .into_iter()
            .map(|s| {
                let (r, w) = row_of(&s);
                (s, r, w)
            })
            .collect();
        Table5 {
            total: (a.total_reads_per_instr(), a.total_writes_per_instr()),
            rows,
        }
    }

    /// Reads ÷ writes.
    pub fn read_write_ratio(&self) -> f64 {
        if self.total.1 == 0.0 {
            0.0
        } else {
            self.total.0 / self.total.1
        }
    }
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TABLE 5 — D-stream Reads and Writes per Instruction")?;
        writeln!(f, "{:<12} {:>8} {:>8}", "Source", "Reads", "Writes")?;
        for (s, r, w) in &self.rows {
            writeln!(f, "{:<12} {:>8.3} {:>8.3}", s.name(), r, w)?;
        }
        writeln!(
            f,
            "{:<12} {:>8.3} {:>8.3}",
            "TOTAL", self.total.0, self.total.1
        )
    }
}

/// Table 6: estimated size of the average instruction.
#[derive(Debug, Clone, Copy)]
pub struct Table6 {
    /// Specifiers per instruction (from Table 3).
    pub specs_per_instr: f64,
    /// Estimated average specifier size in bytes (from the measured mode
    /// distribution, as the paper estimated from \[15\]).
    pub est_spec_bytes: f64,
    /// Branch displacements per instruction.
    pub bdisp_per_instr: f64,
    /// Estimated total instruction bytes.
    pub total_bytes: f64,
}

impl Table6 {
    /// Compute from a digested measurement.
    pub fn from_analysis(a: &Analysis) -> Table6 {
        let t3 = Table3::from_analysis(a);
        let t4 = Table4::from_analysis(a);
        // Size model per mode class (mode byte + extensions; displacement
        // sizes follow the byte/word/long usage reported in [15]).
        let size_of = |c: SpecModeClass| -> f64 {
            match c {
                SpecModeClass::Register
                | SpecModeClass::ShortLiteral
                | SpecModeClass::RegisterDeferred
                | SpecModeClass::AutoIncrement
                | SpecModeClass::AutoDecrement
                | SpecModeClass::AutoIncDeferred => 1.0,
                SpecModeClass::Displacement | SpecModeClass::DisplacementDeferred => 2.3,
                SpecModeClass::Immediate => 4.2,
                SpecModeClass::Absolute => 5.0,
            }
        };
        let mut est = 0.0;
        for &(c, _, _, total_pct) in &t4.rows {
            est += total_pct / 100.0 * size_of(c);
        }
        est += t4.indexed.2 / 100.0; // index prefix byte
        let total = 1.0 + t3.total_specs() * est + t3.bdisp * 1.0;
        Table6 {
            specs_per_instr: t3.total_specs(),
            est_spec_bytes: est,
            bdisp_per_instr: t3.bdisp,
            total_bytes: total,
        }
    }
}

impl fmt::Display for Table6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TABLE 6 — Estimated Size of Average Instruction")?;
        writeln!(
            f,
            "{:<14} {:>9} {:>9} {:>14}",
            "Object", "Num/inst", "Est size", "Size/inst"
        )?;
        writeln!(
            f,
            "{:<14} {:>9.2} {:>9.2} {:>14.2}",
            "Opcode", 1.0, 1.0, 1.0
        )?;
        writeln!(
            f,
            "{:<14} {:>9.2} {:>9.2} {:>14.2}",
            "Specifiers",
            self.specs_per_instr,
            self.est_spec_bytes,
            self.specs_per_instr * self.est_spec_bytes
        )?;
        writeln!(
            f,
            "{:<14} {:>9.2} {:>9.2} {:>14.2}",
            "Branch disp.", self.bdisp_per_instr, 1.0, self.bdisp_per_instr
        )?;
        writeln!(f, "{:<14} {:>34.1}", "TOTAL", self.total_bytes)
    }
}

/// Table 7: interrupt and context-switch headway.
#[derive(Debug, Clone, Copy)]
pub struct Table7 {
    /// Instructions between software-interrupt requests.
    pub soft_int_request_headway: f64,
    /// Instructions between serviced interrupts.
    pub interrupt_headway: f64,
    /// Instructions between context switches.
    pub context_switch_headway: f64,
}

impl Table7 {
    /// Compute from a digested measurement.
    pub fn from_analysis(a: &Analysis) -> Table7 {
        let headway = |events: u64| -> f64 {
            if events == 0 {
                f64::INFINITY
            } else {
                a.instructions() as f64 / events as f64
            }
        };
        Table7 {
            soft_int_request_headway: headway(a.soft_int_requests()),
            interrupt_headway: headway(a.interrupt_entries()),
            context_switch_headway: headway(a.opcode_count(vax_arch::Opcode::Svpctx)),
        }
    }
}

impl fmt::Display for Table7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TABLE 7 — Interrupt and Context-Switch Headway")?;
        writeln!(
            f,
            "Software interrupt requests  {:>8.0}",
            self.soft_int_request_headway
        )?;
        writeln!(
            f,
            "Hardware and software ints   {:>8.0}",
            self.interrupt_headway
        )?;
        writeln!(
            f,
            "Context switches             {:>8.0}",
            self.context_switch_headway
        )
    }
}

/// Table 8: average instruction timing, rows × columns, cycles per
/// instruction.
#[derive(Debug, Clone)]
pub struct Table8 {
    /// cells[row][column].
    pub cells: [[f64; 6]; Row::COUNT],
    /// Row totals.
    pub row_totals: [f64; Row::COUNT],
    /// Column totals.
    pub col_totals: [f64; 6],
    /// Grand total (CPI).
    pub cpi: f64,
}

impl Table8 {
    /// Compute from a digested measurement.
    pub fn from_analysis(a: &Analysis) -> Table8 {
        let mut cells = [[0.0; 6]; Row::COUNT];
        let mut row_totals = [0.0; Row::COUNT];
        let mut col_totals = [0.0; 6];
        for row in Row::ALL {
            for col in Column::ALL {
                let v = a.cell(row, col);
                cells[row.index()][col.index()] = v;
                row_totals[row.index()] += v;
                col_totals[col.index()] += v;
            }
        }
        Table8 {
            cells,
            row_totals,
            col_totals,
            cpi: a.cpi(),
        }
    }

    /// One cell.
    pub fn cell(&self, row: Row, col: Column) -> f64 {
        self.cells[row.index()][col.index()]
    }

    /// A row total.
    pub fn row_total(&self, row: Row) -> f64 {
        self.row_totals[row.index()]
    }

    /// Fraction of all time in decode + specifier processing (§5's
    /// "almost half" observation).
    pub fn decode_plus_spec_fraction(&self) -> f64 {
        let sum = self.row_total(Row::Decode)
            + self.row_total(Row::Spec1)
            + self.row_total(Row::Spec2to6)
            + self.row_total(Row::BranchDisp);
        sum / self.cpi
    }

    /// Render as a machine-readable JSON object (`vax780 report --json`):
    /// per-row cells keyed by column name, row/column totals, and CPI.
    pub fn to_json(&self) -> String {
        let num = |v: f64| {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        };
        let mut out = String::from("{\"table\":8,\"rows\":{");
        for (i, row) in Row::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{{", row.name()));
            for col in Column::ALL {
                out.push_str(&format!("\"{}\":{},", col.name(), num(self.cell(row, col))));
            }
            out.push_str(&format!("\"total\":{}}}", num(self.row_total(row))));
        }
        out.push_str("},\"columns\":{");
        for (i, col) in Column::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{}",
                col.name(),
                num(self.col_totals[col.index()])
            ));
        }
        out.push_str(&format!(
            "}},\"cpi\":{},\"decode_plus_spec_fraction\":{}}}",
            num(self.cpi),
            num(self.decode_plus_spec_fraction())
        ));
        out
    }
}

impl fmt::Display for Table8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TABLE 8 — Average VAX Instruction Timing (cycles per instruction)"
        )?;
        write!(f, "{:<12}", "")?;
        for col in Column::ALL {
            write!(f, "{:>9}", col.name())?;
        }
        writeln!(f, "{:>9}", "Total")?;
        for row in Row::ALL {
            write!(f, "{:<12}", row.name())?;
            for col in Column::ALL {
                write!(f, "{:>9.3}", self.cell(row, col))?;
            }
            writeln!(f, "{:>9.3}", self.row_total(row))?;
        }
        write!(f, "{:<12}", "TOTAL")?;
        for col in Column::ALL {
            write!(f, "{:>9.3}", self.col_totals[col.index()])?;
        }
        writeln!(f, "{:>9.3}", self.cpi)
    }
}

/// Table 9: cycles per instruction *within* each group (execute phase
/// only, unweighted by frequency).
#[derive(Debug, Clone)]
pub struct Table9 {
    /// (group, [compute, read, r-stall, write, w-stall, ib-stall], total).
    pub rows: Vec<(OpcodeGroup, [f64; 6], f64)>,
}

impl Table9 {
    /// Compute from a digested measurement.
    pub fn from_analysis(a: &Analysis) -> Table9 {
        let rows = OpcodeGroup::ALL
            .iter()
            .map(|&g| {
                let n = a.group_count(g);
                let scale = if n == 0 {
                    0.0
                } else {
                    a.instructions() as f64 / n as f64
                };
                let mut cols = [0.0; 6];
                let mut total = 0.0;
                for col in Column::ALL {
                    let v = a.cell(Row::Exec(g), col) * scale;
                    cols[col.index()] = v;
                    total += v;
                }
                (g, cols, total)
            })
            .collect();
        Table9 { rows }
    }

    /// Within-group total for one group.
    pub fn total(&self, group: OpcodeGroup) -> f64 {
        self.rows
            .iter()
            .find(|(g, ..)| *g == group)
            .map(|&(_, _, t)| t)
            .unwrap_or(0.0)
    }
}

impl fmt::Display for Table9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TABLE 9 — Cycles per Instruction Within Each Group")?;
        write!(f, "{:<12}", "")?;
        for col in Column::ALL {
            write!(f, "{:>9}", col.name())?;
        }
        writeln!(f, "{:>9}", "Total")?;
        for (g, cols, total) in &self.rows {
            write!(f, "{:<12}", g.name())?;
            for v in cols {
                write!(f, "{v:>9.2}")?;
            }
            writeln!(f, "{total:>9.2}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upc_monitor::Histogram;
    use vax_arch::Opcode;
    use vax_mem::HwCounters;
    use vax_ucode::ControlStore;

    fn synthetic_analysis() -> Analysis {
        let cs = ControlStore::build();
        let mut h = Histogram::new();
        // 10 instructions: 8 MOVL, 1 BEQL (taken), 1 CALLS.
        for _ in 0..8 {
            h.bump_issue(cs.ird1());
            h.bump_issue(cs.spec_entry(SpecPosition::First, SpecModeClass::ShortLiteral));
            h.bump_issue(cs.spec_entry(SpecPosition::Rest, SpecModeClass::Register));
            h.bump_issue(cs.exec_entry(Opcode::Movl));
        }
        h.bump_issue(cs.ird1());
        h.bump_issue(cs.bdisp());
        h.bump_issue(cs.exec_entry(Opcode::Beql));
        h.bump_issue(cs.branch_taken(BranchClass::SimpleCond));
        h.bump_issue(cs.ird1());
        h.bump_issue(cs.spec_entry(SpecPosition::First, SpecModeClass::ShortLiteral));
        h.bump_issue(cs.spec_entry(SpecPosition::Rest, SpecModeClass::Displacement));
        h.bump_issue(cs.exec_entry(Opcode::Calls));
        for _ in 0..5 {
            h.bump_issue(cs.exec_write(Opcode::Calls));
            h.bump_stall(cs.exec_write(Opcode::Calls), 2);
        }
        Analysis::new(&h, &cs, &HwCounters::new())
    }

    #[test]
    fn table1_frequencies() {
        let a = synthetic_analysis();
        let t1 = Table1::from_analysis(&a);
        assert!((t1.pct(OpcodeGroup::Simple) - 90.0).abs() < 1e-9);
        assert!((t1.pct(OpcodeGroup::CallRet) - 10.0).abs() < 1e-9);
        let sum: f64 = t1.rows.iter().map(|(_, p)| p).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn table2_taken_rates() {
        let a = synthetic_analysis();
        let t2 = Table2::from_analysis(&a);
        let cond = t2
            .rows
            .iter()
            .find(|(c, ..)| *c == BranchClass::SimpleCond)
            .unwrap();
        assert!((cond.1 - 10.0).abs() < 1e-9, "10% of instructions");
        assert!((cond.2 - 100.0).abs() < 1e-9, "the one BEQL was taken");
    }

    #[test]
    fn table3_specifier_rates() {
        let a = synthetic_analysis();
        let t3 = Table3::from_analysis(&a);
        assert!((t3.spec1 - 0.9).abs() < 1e-9);
        assert!((t3.bdisp - 0.1).abs() < 1e-9);
    }

    #[test]
    fn table5_attributes_calls_writes_to_callret_row() {
        let a = synthetic_analysis();
        let t5 = Table5::from_analysis(&a);
        let callret = t5
            .rows
            .iter()
            .find(|(s, ..)| matches!(s, Table5Source::Group(OpcodeGroup::CallRet)))
            .unwrap();
        assert!((callret.2 - 0.5).abs() < 1e-9, "5 writes / 10 instr");
        assert!((t5.total.1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn table8_total_is_cpi_and_consistent() {
        let a = synthetic_analysis();
        let t8 = Table8::from_analysis(&a);
        let row_sum: f64 = t8.row_totals.iter().sum();
        let col_sum: f64 = t8.col_totals.iter().sum();
        assert!((row_sum - t8.cpi).abs() < 1e-9);
        assert!((col_sum - t8.cpi).abs() < 1e-9);
        // W-stall cycles landed in the Call/Ret row.
        assert!(t8.cell(Row::Exec(OpcodeGroup::CallRet), Column::WStall) > 0.0);
    }

    #[test]
    fn table9_unweights_by_frequency() {
        let a = synthetic_analysis();
        let t9 = Table9::from_analysis(&a);
        // CALLS: 1 entry + 5 writes + 10 stall cycles = 16 cycles within.
        assert!((t9.total(OpcodeGroup::CallRet) - 16.0).abs() < 1e-9);
        // SIMPLE: 8 entries + 1 taken redirect over 9 instructions.
        assert!((t9.total(OpcodeGroup::Simple) - 1.0).abs() < 0.2);
    }

    #[test]
    fn tables_render() {
        let a = synthetic_analysis();
        let all = format!(
            "{}{}{}{}{}{}{}{}",
            Table1::from_analysis(&a),
            Table2::from_analysis(&a),
            Table3::from_analysis(&a),
            Table4::from_analysis(&a),
            Table5::from_analysis(&a),
            Table6::from_analysis(&a),
            Table7::from_analysis(&a),
            Table8::from_analysis(&a),
        );
        assert!(all.contains("TABLE 8"));
        assert!(all.contains("SIMPLE"));
    }
}
