//! Fault-sensitivity analysis: how much does CPI move per injected
//! fault class?
//!
//! The paper characterizes the *healthy* machine; this table asks the
//! robustness question the same instruments can answer: run the same
//! workload once clean and once per fault class, and attribute the CPI
//! difference. Because the machine-check microcode executes from its
//! own control-store region, the histogram splits the cost into the
//! direct recovery cycles (the fault-handling row) and the indirect
//! cost (refilling a flushed cache/TB, waiting out a poisoned SBI),
//! which is everything else.

use crate::Analysis;
use std::fmt;
use vax_fault::FaultClass;

/// One fault class's measured impact.
#[derive(Debug, Clone, Copy)]
pub struct SensitivityRow {
    /// The injected class.
    pub class: FaultClass,
    /// Machine checks actually taken in the injected run.
    pub faults_taken: u64,
    /// CPI of the injected run.
    pub cpi: f64,
    /// CPI delta versus the clean baseline.
    pub delta_cpi: f64,
    /// Cycles spent in the fault-handling control-store region,
    /// per fault taken (direct recovery cost).
    pub recovery_cycles_per_fault: f64,
}

/// The fault-sensitivity table: ΔCPI per injected fault class.
#[derive(Debug, Clone)]
pub struct FaultSensitivity {
    /// CPI of the clean (no faults injected) run.
    pub baseline_cpi: f64,
    /// One row per injected class, in injection order.
    pub rows: Vec<SensitivityRow>,
}

impl FaultSensitivity {
    /// Build from a clean baseline and `(class, analysis)` pairs, each
    /// analysis digested from a run that injected only that class.
    pub fn new(baseline: &Analysis, injected: &[(FaultClass, Analysis)]) -> FaultSensitivity {
        let baseline_cpi = baseline.cpi();
        let rows = injected
            .iter()
            .map(|(class, a)| {
                let taken = a.machine_check_entries();
                let recovery = if taken == 0 {
                    0.0
                } else {
                    a.fault_handling_cycles() as f64 / taken as f64
                };
                SensitivityRow {
                    class: *class,
                    faults_taken: taken,
                    cpi: a.cpi(),
                    delta_cpi: a.cpi() - baseline_cpi,
                    recovery_cycles_per_fault: recovery,
                }
            })
            .collect();
        FaultSensitivity { baseline_cpi, rows }
    }

    /// The row for one class, if that class was injected.
    pub fn row(&self, class: FaultClass) -> Option<&SensitivityRow> {
        self.rows.iter().find(|r| r.class == class)
    }
}

impl fmt::Display for FaultSensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FAULT SENSITIVITY — ΔCPI per injected fault class")?;
        writeln!(f, "baseline CPI {:>24.3}", self.baseline_cpi)?;
        writeln!(
            f,
            "{:<14} {:>7} {:>9} {:>9} {:>12}",
            "Class", "Taken", "CPI", "dCPI", "Recov cyc"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<14} {:>7} {:>9.3} {:>+9.3} {:>12.1}",
                r.class.name(),
                r.faults_taken,
                r.cpi,
                r.delta_cpi,
                r.recovery_cycles_per_fault
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upc_monitor::Histogram;
    use vax_arch::Opcode;
    use vax_mem::HwCounters;
    use vax_ucode::ControlStore;

    fn run(faults: u64) -> Analysis {
        let cs = ControlStore::build();
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.bump_issue(cs.ird1());
            h.bump_issue(cs.exec_entry(Opcode::Movl));
        }
        for _ in 0..faults {
            h.bump_issue(cs.abort());
            h.bump_issue(cs.fault_entry());
            for _ in 0..FaultClass::CacheParity.recovery_body_cycles() {
                h.bump_issue(cs.fault_body());
            }
        }
        Analysis::new(&h, &cs, &HwCounters::new())
    }

    #[test]
    fn delta_cpi_reflects_recovery_cost() {
        let base = run(0);
        let injected = run(2);
        assert_eq!(injected.machine_check_entries(), 2);
        let s = FaultSensitivity::new(&base, &[(FaultClass::CacheParity, injected)]);
        let row = s.row(FaultClass::CacheParity).unwrap();
        assert_eq!(row.faults_taken, 2);
        assert!(row.delta_cpi > 0.0, "faults cost cycles");
        // Entry + body cycles land in the fault-handling region; the
        // abort cycle is charged to the abort row as usual.
        let per_fault = 1.0 + f64::from(FaultClass::CacheParity.recovery_body_cycles());
        assert!((row.recovery_cycles_per_fault - per_fault).abs() < 1e-9);
        let text = s.to_string();
        assert!(text.contains("cache-parity"));
    }
}
