//! The paper's published values, used as comparison references.
//!
//! The available scan is OCR-damaged in Tables 4, 8 and 9, so every value
//! carries a [`Provenance`]: `Exact` values are legible in the text;
//! `Reconstructed` values are recovered from row/column sums, cross-table
//! identities (e.g. Table 9 = Table 8 row totals ÷ Table 1 frequencies)
//! and the paper's prose, as documented in DESIGN.md.

use vax_arch::{BranchClass, OpcodeGroup};

/// How a reference value was obtained from the damaged scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Legible in the text.
    Exact,
    /// Recovered from sums/identities/prose.
    Reconstructed,
}

/// A reference value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ref {
    /// The published value.
    pub value: f64,
    /// How it was recovered.
    pub provenance: Provenance,
}

/// Shorthand constructors.
pub const fn exact(value: f64) -> Ref {
    Ref {
        value,
        provenance: Provenance::Exact,
    }
}

/// Shorthand for reconstructed values.
pub const fn approx(value: f64) -> Ref {
    Ref {
        value,
        provenance: Provenance::Reconstructed,
    }
}

// ----- Table 1: opcode group frequency (percent) -----------------------------

/// Table 1 reference (percent of instruction executions).
pub fn table1_group_pct(group: OpcodeGroup) -> Ref {
    match group {
        OpcodeGroup::Simple => exact(83.60),
        OpcodeGroup::Field => exact(6.92),
        OpcodeGroup::Float => exact(3.62),
        OpcodeGroup::CallRet => exact(3.22),
        OpcodeGroup::System => exact(2.11),
        OpcodeGroup::Character => exact(0.43),
        OpcodeGroup::Decimal => exact(0.03),
    }
}

// ----- Table 2: PC-changing instructions ------------------------------------

/// Table 2: (percent of all instructions, percent that branch).
pub fn table2(class: BranchClass) -> (Ref, Ref) {
    match class {
        BranchClass::SimpleCond => (exact(19.3), exact(56.0)),
        BranchClass::Loop => (exact(4.1), exact(91.0)),
        BranchClass::LowBitTest => (exact(2.0), exact(41.0)),
        BranchClass::SubroutineCallRet => (exact(4.5), exact(100.0)),
        BranchClass::Unconditional => (exact(0.3), exact(100.0)),
        BranchClass::Case => (exact(0.9), exact(100.0)),
        BranchClass::BitBranch => (exact(4.3), exact(44.0)),
        BranchClass::ProcedureCallRet => (exact(2.4), exact(100.0)),
        BranchClass::SystemBranch => (exact(0.4), exact(100.0)),
    }
}

/// Table 2 totals: 38.5 % PC-changing, 67 % taken, 25.7 % of all
/// instructions actually branch.
pub const TABLE2_TOTAL_PCT: Ref = exact(38.5);
/// Taken percentage across all PC-changing instructions.
pub const TABLE2_TAKEN_PCT: Ref = exact(67.0);

// ----- Table 3: specifiers per instruction -----------------------------------

/// First specifiers per instruction.
pub const SPEC1_PER_INSTR: Ref = exact(0.726);
/// Later specifiers per instruction.
pub const SPEC2_6_PER_INSTR: Ref = exact(0.758);
/// Branch displacements per instruction.
pub const BDISP_PER_INSTR: Ref = exact(0.312);
/// Total specifiers per instruction (excluding displacements).
pub const SPECS_PER_INSTR: Ref = exact(1.48);

// ----- Table 4: specifier mode distribution (percent, total column) ----------

/// Table 4 total-column percentages (SPEC1/SPEC2-6 splits partially
/// legible; the totals below reconstruct a distribution consistent with
/// every legible cell).
pub mod table4 {
    use super::{approx, exact, Ref};
    use vax_arch::SpecModeClass;

    /// Total-column percentage for a mode class.
    pub fn total_pct(class: SpecModeClass) -> Ref {
        match class {
            SpecModeClass::Register => exact(41.0),
            SpecModeClass::ShortLiteral => exact(15.8),
            SpecModeClass::Immediate => exact(2.4),
            SpecModeClass::Displacement => approx(24.0),
            SpecModeClass::RegisterDeferred => approx(9.0),
            SpecModeClass::DisplacementDeferred => approx(2.0),
            SpecModeClass::AutoIncrement => approx(4.0),
            SpecModeClass::AutoDecrement => approx(1.0),
            SpecModeClass::AutoIncDeferred => approx(0.4),
            SpecModeClass::Absolute => approx(0.4),
        }
    }

    /// Percent of all specifiers that are indexed (bottom line).
    pub const INDEXED_TOTAL_PCT: Ref = exact(6.3);
    /// Indexed percentage among first specifiers.
    pub const INDEXED_SPEC1_PCT: Ref = exact(8.5);
    /// Indexed percentage among later specifiers.
    pub const INDEXED_SPEC2_6_PCT: Ref = exact(4.2);
}

// ----- Table 5: D-stream reads/writes per instruction -------------------------

/// Table 5 rows: (reads, writes) per average instruction.
pub mod table5 {
    use super::{approx, exact, Ref};

    /// First-specifier processing.
    pub const SPEC1: (Ref, Ref) = (exact(0.306), approx(0.065));
    /// Later-specifier processing.
    pub const SPEC2_6: (Ref, Ref) = (exact(0.148), approx(0.097));
    /// SIMPLE group execution.
    pub const SIMPLE: (Ref, Ref) = (exact(0.029), exact(0.033));
    /// FIELD group.
    pub const FIELD: (Ref, Ref) = (exact(0.049), exact(0.007));
    /// FLOAT group.
    pub const FLOAT: (Ref, Ref) = (exact(0.000), exact(0.008));
    /// CALL/RET group.
    pub const CALLRET: (Ref, Ref) = (exact(0.133), exact(0.130));
    /// SYSTEM group.
    pub const SYSTEM: (Ref, Ref) = (exact(0.015), exact(0.014));
    /// CHARACTER group.
    pub const CHARACTER: (Ref, Ref) = (exact(0.039), exact(0.046));
    /// DECIMAL group.
    pub const DECIMAL: (Ref, Ref) = (exact(0.002), exact(0.001));
    /// Everything else (memory management, interrupts).
    pub const OTHER: (Ref, Ref) = (exact(0.062), exact(0.008));
    /// Totals.
    pub const TOTAL: (Ref, Ref) = (exact(0.783), exact(0.409));
}

// ----- Table 6: average instruction size ---------------------------------------

/// Average specifier size in bytes (from \[15\], used by the paper).
pub const SPEC_SIZE_BYTES: Ref = exact(1.68);
/// Average instruction size in bytes.
pub const INSTRUCTION_BYTES: Ref = exact(3.8);

// ----- Table 7: headways ---------------------------------------------------------

/// Instructions between software interrupt requests.
pub const SOFT_INT_REQUEST_HEADWAY: Ref = exact(2539.0);
/// Instructions between interrupts (hardware + software).
pub const INTERRUPT_HEADWAY: Ref = exact(637.0);
/// Instructions between context switches.
pub const CONTEXT_SWITCH_HEADWAY: Ref = exact(6418.0);

// ----- Table 8: cycles per average instruction -----------------------------------

/// Table 8 references.
pub mod table8 {
    use super::{approx, exact, Ref};

    /// Grand total: the famous 10.6 cycles per instruction.
    pub const CPI: Ref = exact(10.593);
    /// Column totals: Compute, Read, R-Stall, Write, W-Stall, IB-Stall.
    pub const COL_TOTALS: [Ref; 6] = [
        exact(7.267),
        exact(0.783),
        exact(0.964),
        exact(0.409),
        exact(0.450),
        exact(0.720),
    ];

    /// Row totals in Table 8 row order (Decode, Spec1, Spec2-6, B-Disp,
    /// Simple, Field, Float, Call/Ret, System, Character, Decimal,
    /// Int/Except, Mem Mgmt, Abort).
    pub const ROW_TOTALS: [Ref; 14] = [
        exact(1.613),
        approx(1.950),
        approx(1.386),
        exact(0.226),
        exact(0.977),
        exact(0.600),
        exact(0.302),
        exact(1.458),
        exact(0.522),
        exact(0.506),
        exact(0.031),
        exact(0.071),
        exact(0.824),
        exact(0.127),
    ];

    /// Decode row: 1.000 compute + 0.613 IB stall.
    pub const DECODE_COMPUTE: Ref = exact(1.000);
    /// Decode-row IB stall.
    pub const DECODE_IB_STALL: Ref = exact(0.613);
    /// "Almost half of all the time went into decode and specifier
    /// processing, counting their stalls" (§5).
    pub const DECODE_PLUS_SPEC_FRACTION: Ref = approx(0.49);
}

// ----- Table 9: cycles within each group -------------------------------------------

/// Table 9 row totals (within-group cycles per instruction of that group,
/// exclusive of specifier processing). Recovered as Table 8 row totals ÷
/// Table 1 frequencies; Decimal row is legible directly (100.77).
pub fn table9_total(group: OpcodeGroup) -> Ref {
    match group {
        OpcodeGroup::Simple => approx(1.17),
        OpcodeGroup::Field => approx(8.67),
        OpcodeGroup::Float => approx(8.33),
        OpcodeGroup::CallRet => approx(45.25),
        OpcodeGroup::System => approx(24.74),
        OpcodeGroup::Character => approx(117.04),
        OpcodeGroup::Decimal => exact(100.77),
    }
}

// ----- Section 3/4 event statistics --------------------------------------------------

/// D-stream reads ÷ writes ≈ 2 (§3.3.1).
pub const READ_WRITE_RATIO: Ref = exact(2.0);
/// Unaligned references per instruction (§3.3.1).
pub const UNALIGNED_PER_INSTR: Ref = exact(0.016);
/// IB references per instruction (§4.1, from the cache study).
pub const IB_REFS_PER_INSTR: Ref = exact(2.2);
/// Bytes delivered per IB reference (§4.1).
pub const IB_BYTES_PER_REF: Ref = exact(1.7);
/// Cache read misses per instruction (§4.2).
pub const CACHE_MISSES_PER_INSTR: Ref = exact(0.28);
/// I-stream share of those misses.
pub const CACHE_MISSES_I_PER_INSTR: Ref = exact(0.18);
/// D-stream share.
pub const CACHE_MISSES_D_PER_INSTR: Ref = exact(0.10);
/// TB misses per instruction (§4.2).
pub const TB_MISSES_PER_INSTR: Ref = exact(0.029);
/// D-stream TB misses per instruction.
pub const TB_MISSES_D_PER_INSTR: Ref = exact(0.020);
/// I-stream TB misses per instruction.
pub const TB_MISSES_I_PER_INSTR: Ref = exact(0.009);
/// Average TB-miss service cycles (§4.2).
pub const TB_SERVICE_CYCLES: Ref = exact(21.6);
/// Read-stall cycles within TB-miss service.
pub const TB_SERVICE_READ_STALL: Ref = exact(3.5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_rows_sum_to_cpi() {
        let sum: f64 = table8::ROW_TOTALS.iter().map(|r| r.value).sum();
        assert!(
            (sum - table8::CPI.value).abs() < 0.02,
            "row totals {sum} vs CPI {}",
            table8::CPI.value
        );
    }

    #[test]
    fn table8_columns_sum_to_cpi() {
        let sum: f64 = table8::COL_TOTALS.iter().map(|r| r.value).sum();
        assert!((sum - table8::CPI.value).abs() < 0.001);
    }

    #[test]
    fn table1_sums_to_about_100() {
        let sum: f64 = OpcodeGroup::ALL
            .iter()
            .map(|&g| table1_group_pct(g).value)
            .sum();
        assert!((99.0..100.5).contains(&sum), "{sum}");
    }

    #[test]
    fn table2_total_matches_rows() {
        let sum: f64 = BranchClass::ALL.iter().map(|&c| table2(c).0.value).sum();
        assert!((sum - TABLE2_TOTAL_PCT.value).abs() < 0.4, "{sum}");
    }

    #[test]
    fn table9_consistent_with_table8_and_table1() {
        for group in OpcodeGroup::ALL {
            let t9 = table9_total(group).value;
            let freq = table1_group_pct(group).value / 100.0;
            let t8_row = table8::ROW_TOTALS[4 + group.index()].value;
            let implied = t9 * freq;
            assert!(
                (implied - t8_row).abs() / t8_row < 0.10,
                "{group}: t9 {t9} × f {freq} = {implied} vs t8 {t8_row}"
            );
        }
    }

    #[test]
    fn table5_reads_sum() {
        use table5::*;
        let rows = [
            SPEC1, SPEC2_6, SIMPLE, FIELD, FLOAT, CALLRET, SYSTEM, CHARACTER, DECIMAL, OTHER,
        ];
        let reads: f64 = rows.iter().map(|(r, _)| r.value).sum();
        let writes: f64 = rows.iter().map(|(_, w)| w.value).sum();
        assert!((reads - TOTAL.0.value).abs() < 0.005, "reads {reads}");
        assert!((writes - TOTAL.1.value).abs() < 0.005, "writes {writes}");
    }
}
